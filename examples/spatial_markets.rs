//! Spatial price equilibrium via the constrained-matrix isomorphism.
//!
//! ```sh
//! cargo run --release --example spatial_markets
//! ```
//!
//! Five producing regions ship a commodity to five consuming regions.
//! Prices are linear in quantities; shipping cost grows with congestion.
//! The competitive equilibrium (supply price + transport cost = demand
//! price on every used route) is computed by transforming to an elastic
//! constrained matrix problem and running SEA — the Table 5 pipeline.

use sea::core::SeaOptions;
use sea::spatial::{check_equilibrium, random_spe, solve_spe};

fn main() {
    let problem = random_spe(5, 5, 2026);
    let sol = solve_spe(&problem, &SeaOptions::with_epsilon(1e-10)).expect("valid instance");
    println!(
        "equilibrium computed in {} iterations (converged: {})",
        sol.iterations, sol.converged
    );

    println!("\nshipments (rows = producers, cols = consumers):");
    for i in 0..5 {
        let row: Vec<String> = sol.x.row(i).iter().map(|v| format!("{v:8.2}")).collect();
        println!("  [{}]", row.join(", "));
    }

    println!("\nmarket clearing:");
    for i in 0..5 {
        println!(
            "  producer {i}: supply {:8.2} at price {:7.3}",
            sol.s[i],
            problem.supply_price(i, sol.s[i])
        );
    }
    for j in 0..5 {
        println!(
            "  consumer {j}: demand {:8.2} at price {:7.3}",
            sol.d[j],
            problem.demand_price(j, sol.d[j])
        );
    }

    // Verify the equilibrium conditions on every route.
    let report = check_equilibrium(&problem, &sol.x, &sol.s, &sol.d);
    println!(
        "\nactive routes: {} / 25; worst price-condition violation: {:.2e}",
        report.active_links, report.max_price_violation
    );
    println!(
        "worst complementarity gap: {:.2e}; conservation gap: {:.2e}",
        report.max_complementarity_gap, report.max_conservation_violation
    );
    assert!(report.max_price_violation < 1e-6);
    assert!(report.max_conservation_violation < 1e-6);

    // Spot-check one active route: prices must equalize along it.
    'outer: for i in 0..5 {
        for j in 0..5 {
            if sol.x.get(i, j) > 1.0 {
                let delivered = problem.supply_price(i, sol.s[i])
                    + problem.transaction_cost(i, j, sol.x.get(i, j));
                let paid = problem.demand_price(j, sol.d[j]);
                println!(
                    "route ({i} -> {j}): delivered price {delivered:.4} = market price {paid:.4}"
                );
                assert!((delivered - paid).abs() < 1e-5);
                break 'outer;
            }
        }
    }
}
