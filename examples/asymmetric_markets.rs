//! Asymmetric spatial price equilibrium: beyond optimization.
//!
//! ```sh
//! cargo run --release --example asymmetric_markets
//! ```
//!
//! When a producer's marginal cost depends on *other* producers' output
//! (shared inputs, congestion) with a non-symmetric Jacobian, the market
//! equilibrium is a variational inequality with no equivalent optimization
//! problem (paper §2). The diagonalization scheme still computes it: freeze
//! the cross-market terms, solve the separable problem with SEA, iterate.

use sea::core::SeaOptions;
use sea::spatial::{random_asymmetric_spe, solve_asymmetric_spe, solve_spe};

fn main() {
    let problem = random_asymmetric_spe(6, 6, 7);

    // How asymmetric is the supply Jacobian?
    let b = &problem.supply_jacobian;
    let mut max_asym: f64 = 0.0;
    for i in 0..6 {
        for k in 0..6 {
            if i != k {
                max_asym = max_asym.max((b.get(i, k) - b.get(k, i)).abs());
            }
        }
    }
    println!("supply Jacobian max |B_ik − B_ki| = {max_asym:.4} (non-symmetric VI)");

    let sol = solve_asymmetric_spe(&problem, &SeaOptions::with_epsilon(1e-10), 1e-8, 500)
        .expect("valid instance");
    println!(
        "equilibrium found in {} diagonalization iterations (converged: {})",
        sol.outer_iterations, sol.converged
    );
    println!(
        "total flow {:.2} over {} active routes",
        sol.report.total_flow, sol.report.active_links
    );
    println!(
        "worst price-condition violation: {:.2e}; complementarity gap: {:.2e}",
        sol.report.max_price_violation, sol.report.max_complementarity_gap
    );
    assert!(sol.converged);
    assert!(sol.report.max_price_violation < 1e-6);

    // Compare with the decoupled (separable) market: coupling changes the
    // equilibrium allocation.
    let separable = sea::spatial::random_spe(6, 6, 7);
    let decoupled = solve_spe(&separable, &SeaOptions::with_epsilon(1e-10)).expect("valid");
    println!(
        "\ndecoupled markets would trade {:.2}; cross-market coupling shifts \
         total flow by {:+.2}",
        decoupled.report.total_flow,
        sol.report.total_flow - decoupled.report.total_flow
    );
}
