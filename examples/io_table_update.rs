//! Input/output table updating: SEA vs RAS on a sparse synthetic I/O table.
//!
//! ```sh
//! cargo run --release --example io_table_update
//! ```
//!
//! The workhorse application from the paper's introduction: update a base
//! I/O table to new sectoral margins. We solve the same updating problem
//! with (a) SEA under chi-square weights with structural zeros, and
//! (b) the RAS method, then compare. On well-posed problems the two give
//! similar biproportional-flavoured answers; unlike RAS, SEA also handles
//! weights other than chi-square and reports a certified objective value.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sea::baselines::ras::{ras_balance, RasOptions};
use sea::core::{solve_diagonal, DiagonalProblem, SeaOptions, TotalSpec, ZeroPolicy};
use sea::data::io_tables::synthetic_io_matrix;
use sea::linalg::DenseMatrix;

fn main() {
    // A 30-sector economy, ~50% of inter-sector flows active.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let x0 = synthetic_io_matrix(30, 0.5, &mut rng);
    println!(
        "base table: 30 x 30, {} nonzero flows ({:.0}% dense)",
        x0.count_nonzero(),
        100.0 * x0.density()
    );

    // New margins: each sector grows by a distinct factor in [0%, 10%].
    use rand::Rng;
    let s0: Vec<f64> = x0
        .row_sums()
        .iter()
        .map(|v| v * (1.0 + rng.random_range(0.0..0.10)))
        .collect();
    let mut d0: Vec<f64> = x0
        .col_sums()
        .iter()
        .map(|v| v * (1.0 + rng.random_range(0.0..0.10)))
        .collect();
    let f: f64 = s0.iter().sum::<f64>() / d0.iter().sum::<f64>();
    for v in &mut d0 {
        *v *= f;
    }

    // --- SEA under chi-square weights, zeros structural. ---
    let gamma = DenseMatrix::from_vec(
        30,
        30,
        x0.as_slice()
            .iter()
            .map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 })
            .collect(),
    )
    .expect("shape");
    let problem = DiagonalProblem::with_zero_policy(
        x0.clone(),
        gamma,
        TotalSpec::Fixed {
            s0: s0.clone(),
            d0: d0.clone(),
        },
        ZeroPolicy::Structural,
    )
    .expect("consistent");
    let sea_sol = solve_diagonal(&problem, &SeaOptions::with_epsilon(1e-10)).expect("feasible");
    println!(
        "SEA: converged={} iterations={} objective={:.4}",
        sea_sol.stats.converged, sea_sol.stats.iterations, sea_sol.stats.objective
    );

    // --- RAS on the same problem. ---
    let ras = ras_balance(&x0, &s0, &d0, &RasOptions::default()).expect("valid inputs");
    println!("RAS: converged={} iterations={}", ras.converged, ras.iterations);

    // --- Compare. ---
    let diff = sea_sol.x.max_abs_diff(&ras.x);
    let scale = x0.as_slice().iter().cloned().fold(0.0_f64, f64::max);
    println!(
        "max |SEA − RAS| = {:.4} ({:.2}% of the largest flow)",
        diff,
        100.0 * diff / scale
    );
    // Both preserve zeros.
    for k in 0..900 {
        if x0.as_slice()[k] == 0.0 {
            assert_eq!(sea_sol.x.as_slice()[k], 0.0);
            assert_eq!(ras.x.as_slice()[k], 0.0);
        }
    }
    println!("both methods preserve all structural zeros");
    assert!(sea_sol.stats.residuals.row_inf < 1e-6);
}
