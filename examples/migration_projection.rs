//! Migration-flow projection with uncertain totals.
//!
//! ```sh
//! cargo run --release --example migration_projection
//! ```
//!
//! Project a 48×48 state-to-state migration table to a new period when the
//! future in/out-migration totals are themselves only estimates — the
//! paper's elastic-totals problem (objective 5): the solver balances
//! fidelity to the old flow pattern against fidelity to the projected
//! totals, and returns *estimated* totals alongside the flows.

use sea::core::{solve_diagonal, ConvergenceCriterion, SeaOptions, TotalSpec};
use sea::data::migration::{migration_problem, MigrationVariant, Period};

fn main() {
    let problem = migration_problem(Period::P7580, MigrationVariant::B);
    let TotalSpec::Elastic { s0, d0, .. } = problem.totals() else {
        unreachable!("migration problems have elastic totals")
    };

    let mut opts = SeaOptions::with_epsilon(1e-6);
    opts.criterion = Some(ConvergenceCriterion::MaxAbsChange);
    let sol = solve_diagonal(&problem, &opts).expect("solvable");
    println!(
        "48x48 projection solved in {} iterations (converged: {})",
        sol.stats.iterations, sol.stats.converged
    );

    // The estimated totals compromise between the prior flows and the
    // projected targets.
    let base_out = problem.x0().row_sums();
    println!("\nfirst five states, out-migration:");
    println!("{:>10} {:>12} {:>12}", "base", "target s0", "estimated s");
    for i in 0..5 {
        println!(
            "{:>10.0} {:>12.0} {:>12.0}",
            base_out[i], s0[i], sol.s[i]
        );
        let lo = base_out[i].min(s0[i]) - 1e-6;
        let hi = base_out[i].max(s0[i]) + 1e-6;
        assert!(
            sol.s[i] >= lo && sol.s[i] <= hi,
            "estimate should interpolate base and target"
        );
    }

    // Flow conservation against the estimated totals.
    let rows = sol.x.row_sums();
    let cols = sol.x.col_sums();
    let max_row_gap = rows
        .iter()
        .zip(&sol.s)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    let max_col_gap = cols
        .iter()
        .zip(&sol.d)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    println!("\nmax |row sum − s| = {max_row_gap:.2e}, max |col sum − d| = {max_col_gap:.2e}");
    // Flows are in the hundreds of thousands; judge gaps relative to scale.
    let scale = sol.s.iter().cloned().fold(1.0_f64, f64::max);
    assert!(max_row_gap / scale < 1e-6 && max_col_gap / scale < 1e-9);

    // No self-migration (structural diagonal zeros).
    for i in 0..48 {
        assert_eq!(sol.x.get(i, i), 0.0);
    }
    println!("diagonal (same-state) flows remain structurally zero");
    let _ = d0;
}
