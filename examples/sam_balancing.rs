//! Social accounting matrix balancing: estimate account totals and
//! transactions simultaneously.
//!
//! ```sh
//! cargo run --release --example sam_balancing
//! ```
//!
//! A SAM's defining ("definitional") constraint is that every account's
//! receipts (row total) equal its expenditures (column total). Raw data
//! assembled from disparate sources never balance, so the totals must be
//! *estimated together with the entries* — the paper's problem (9),
//! objective `Σ αᵢ(sᵢ−s⁰ᵢ)² + Σ γᵢⱼ(xᵢⱼ−x⁰ᵢⱼ)²`, solved by the SAM
//! variant of SEA (§3.1.2).

use sea::core::solve_diagonal;
use sea::core::SeaOptions;
use sea::data::sam::{sam_problem, SamInstance};

fn main() {
    let problem = sam_problem(SamInstance::Stone, 0);
    let names = ["production", "households", "government", "capital", "row"];

    println!("raw SAM (receipts vs expenditures disagree):");
    let raw_rows = problem.x0().row_sums();
    let raw_cols = problem.x0().col_sums();
    for i in 0..5 {
        println!(
            "  {:<11} receipts {:7.2}  expenditures {:7.2}  gap {:+.2}",
            names[i],
            raw_rows[i],
            raw_cols[i],
            raw_rows[i] - raw_cols[i]
        );
    }

    let sol = solve_diagonal(&problem, &SeaOptions::with_epsilon(1e-10)).expect("solvable");
    println!(
        "\nSEA balanced the SAM in {} iterations ({} )",
        sol.stats.iterations,
        if sol.stats.converged { "converged" } else { "NOT converged" }
    );

    println!("balanced accounts:");
    let rows = sol.x.row_sums();
    let cols = sol.x.col_sums();
    for i in 0..5 {
        println!(
            "  {:<11} total {:8.3} (row {:8.3} / col {:8.3})",
            names[i], sol.s[i], rows[i], cols[i]
        );
        assert!(
            (rows[i] - cols[i]).abs() < 1e-6 * rows[i].max(1.0),
            "account must balance"
        );
    }

    println!("\nbalanced transactions:");
    for i in 0..5 {
        let row: Vec<String> = sol.x.row(i).iter().map(|v| format!("{v:7.2}")).collect();
        println!("  [{}]", row.join(", "));
    }
    // Structural zeros (impossible transactions) stay exactly zero.
    assert_eq!(sol.x.get(0, 0), 0.0);
    println!("\nstructural zeros preserved; objective = {:.4}", sol.stats.objective);
}
