//! Quickstart: estimate a matrix with known row/column totals.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! A 3×3 trade table must be updated so that its row totals (producers'
//! outputs) and column totals (consumers' inputs) match newly published
//! margins, staying as close as possible to the observed table in the
//! chi-square sense — the classical constrained matrix problem, solved by
//! the splitting equilibration algorithm.

use sea::core::{solve_diagonal, DiagonalProblem, SeaOptions, TotalSpec, WeightScheme};
use sea::linalg::DenseMatrix;

fn main() {
    // The observed (prior) table.
    let x0 = DenseMatrix::from_rows(&[
        vec![10.0, 4.0, 6.0],
        vec![3.0, 12.0, 5.0],
        vec![7.0, 2.0, 11.0],
    ])
    .expect("static data");

    // New margins: the economy grew unevenly.
    let s0 = vec![24.0, 22.0, 24.0]; // row totals (sum 70)
    let d0 = vec![25.0, 20.0, 25.0]; // column totals (sum 70)

    // Chi-square weights (gamma = 1/x0): the Deming–Stephan objective.
    let gamma = WeightScheme::ChiSquare
        .entry_weights(&x0)
        .expect("positive prior");

    let problem = DiagonalProblem::new(x0.clone(), gamma, TotalSpec::Fixed { s0, d0 })
        .expect("consistent margins");

    let solution = solve_diagonal(&problem, &SeaOptions::with_epsilon(1e-10))
        .expect("feasible problem");

    println!("converged: {} in {} iterations", solution.stats.converged, solution.stats.iterations);
    println!("objective (weighted squared deviation): {:.6}", solution.stats.objective);
    println!("estimate X:");
    for i in 0..3 {
        let row: Vec<String> = solution.x.row(i).iter().map(|v| format!("{v:7.3}")).collect();
        println!("  [{}]", row.join(", "));
    }
    println!("row sums:    {:?}", solution.x.row_sums());
    println!("column sums: {:?}", solution.x.col_sums());
    assert!(solution.stats.residuals.row_inf < 1e-8);
    assert!(solution.stats.residuals.col_inf < 1e-8);
}
