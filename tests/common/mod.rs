//! Shared helpers for the integration tests: an independent dense linear
//! solver and an equality-constrained QP reference that does **not** share
//! any code path with the SEA solvers.

#![allow(clippy::needless_range_loop)] // parallel-array numeric idiom
#![allow(dead_code)] // each integration test uses a subset of these helpers

use sea::linalg::DenseMatrix;

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` for (numerically) singular systems.
pub fn gaussian_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n);
    for col in 0..n {
        // Pivot.
        let (piv, piv_val) = (col..n)
            .map(|r| (r, a[r][col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())?;
        if piv_val < 1e-12 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        // Eliminate below.
        for r in (col + 1)..n {
            let f = a[r][col] / a[col][col];
            if f != 0.0 {
                for c in col..n {
                    a[r][c] -= f * a[col][c];
                }
                b[r] -= f * b[col];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut s = b[r];
        for c in (r + 1)..n {
            s -= a[r][c] * x[c];
        }
        x[r] = s / a[r][r];
    }
    Some(x)
}

/// Reference solution of `min Σ γᵢⱼ(xᵢⱼ − x⁰ᵢⱼ)²` subject to the margin
/// equalities ONLY (nonnegativity ignored), via the KKT linear system with
/// one redundant constraint dropped. Valid as a reference for the full
/// problem exactly when the returned matrix is nonnegative.
pub fn equality_qp_reference(
    x0: &DenseMatrix,
    gamma: &DenseMatrix,
    s0: &[f64],
    d0: &[f64],
) -> Option<DenseMatrix> {
    let (m, n) = (x0.rows(), x0.cols());
    let mn = m * n;
    let ncons = m + n - 1; // drop the last column constraint (redundant)
    let dim = mn + ncons;
    let mut a = vec![vec![0.0; dim]; dim];
    let mut b = vec![0.0; dim];

    // Stationarity: 2γ_k x_k − Σ ν_c A_{c,k} = 2γ_k x0_k.
    for i in 0..m {
        for j in 0..n {
            let k = i * n + j;
            a[k][k] = 2.0 * gamma.get(i, j);
            b[k] = 2.0 * gamma.get(i, j) * x0.get(i, j);
            // Row constraint i.
            a[k][mn + i] = -1.0;
            // Column constraint j (except the dropped last one).
            if j + 1 < n {
                a[k][mn + m + j] = -1.0;
            }
        }
    }
    // Constraints.
    for i in 0..m {
        for j in 0..n {
            a[mn + i][i * n + j] = 1.0;
        }
        b[mn + i] = s0[i];
    }
    for j in 0..(n - 1) {
        for i in 0..m {
            a[mn + m + j][i * n + j] = 1.0;
        }
        b[mn + m + j] = d0[j];
    }

    let x = gaussian_solve(&mut a, &mut b)?;
    DenseMatrix::from_vec(m, n, x[..mn].to_vec()).ok()
}

/// Reference solution of the **general** problem
/// `min (x−x⁰)ᵀG(x−x⁰)` subject to the margin equalities ONLY
/// (nonnegativity ignored), via the dense KKT system. Valid for the full
/// problem exactly when the result is nonnegative.
pub fn general_equality_qp_reference(
    x0: &DenseMatrix,
    g: &sea::linalg::SymMatrix,
    s0: &[f64],
    d0: &[f64],
) -> Option<DenseMatrix> {
    let (m, n) = (x0.rows(), x0.cols());
    let mn = m * n;
    let ncons = m + n - 1;
    let dim = mn + ncons;
    let mut a = vec![vec![0.0; dim]; dim];
    let mut b = vec![0.0; dim];

    // Stationarity: 2·G·x − Σ ν_c A_{c,·} = 2·G·x⁰.
    let mut gx0 = vec![0.0; mn];
    g.matvec(x0.as_slice(), &mut gx0).ok()?;
    for k in 0..mn {
        for l in 0..mn {
            a[k][l] = 2.0 * g.get(k, l);
        }
        b[k] = 2.0 * gx0[k];
        let i = k / n;
        let j = k % n;
        a[k][mn + i] = -1.0;
        if j + 1 < n {
            a[k][mn + m + j] = -1.0;
        }
    }
    for i in 0..m {
        for j in 0..n {
            a[mn + i][i * n + j] = 1.0;
        }
        b[mn + i] = s0[i];
    }
    for j in 0..(n - 1) {
        for i in 0..m {
            a[mn + m + j][i * n + j] = 1.0;
        }
        b[mn + m + j] = d0[j];
    }
    let x = gaussian_solve(&mut a, &mut b)?;
    DenseMatrix::from_vec(m, n, x[..mn].to_vec()).ok()
}
