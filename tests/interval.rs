//! Integration tests for the interval/box-constrained extension
//! (Harrigan–Buchanan 1984 interval estimates; Ohuchi–Kaji 1984 bounds).

#![allow(clippy::needless_range_loop)] // parallel-array numeric idiom

use proptest::prelude::*;
use sea::core::{solve_bounded, solve_diagonal, BoundedProblem, SeaOptions};
use sea::core::{DiagonalProblem, TotalSpec};
use sea::linalg::DenseMatrix;

fn growth_problem(n: usize, seed: u64) -> (DenseMatrix, DenseMatrix, Vec<f64>, Vec<f64>) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let x0 = DenseMatrix::from_vec(
        n,
        n,
        (0..n * n).map(|_| rng.random_range(1.0..50.0)).collect(),
    )
    .unwrap();
    let gamma = DenseMatrix::from_vec(
        n,
        n,
        x0.as_slice().iter().map(|&v| 1.0 / v).collect(),
    )
    .unwrap();
    let s0: Vec<f64> = x0
        .row_sums()
        .iter()
        .map(|v| v * rng.random_range(0.9..1.3))
        .collect();
    let mut d0: Vec<f64> = x0
        .col_sums()
        .iter()
        .map(|v| v * rng.random_range(0.9..1.3))
        .collect();
    let f: f64 = s0.iter().sum::<f64>() / d0.iter().sum::<f64>();
    for v in &mut d0 {
        *v *= f;
    }
    (x0, gamma, s0, d0)
}

#[test]
fn interval_constraints_tighten_the_estimate() {
    let (x0, gamma, s0, d0) = growth_problem(6, 1);
    // Free solve first.
    let free_p = DiagonalProblem::new(
        x0.clone(),
        gamma.clone(),
        TotalSpec::Fixed {
            s0: s0.clone(),
            d0: d0.clone(),
        },
    )
    .unwrap();
    let free = solve_diagonal(&free_p, &SeaOptions::with_epsilon(1e-10)).unwrap();

    // Harrigan–Buchanan style intervals: each entry within ±20 % of prior.
    let lo = DenseMatrix::from_vec(
        6,
        6,
        x0.as_slice().iter().map(|&v| 0.8 * v).collect(),
    )
    .unwrap();
    let hi = DenseMatrix::from_vec(
        6,
        6,
        x0.as_slice().iter().map(|&v| 1.45 * v).collect(),
    )
    .unwrap();
    let bounded_p = BoundedProblem::new(x0.clone(), gamma, lo, hi, s0, d0).unwrap();
    let bounded = solve_bounded(&bounded_p, 1e-9, 100_000).unwrap();
    assert!(bounded.converged);

    // Bounds respected everywhere; objective no better than the free one.
    for (k, &v) in bounded.x.as_slice().iter().enumerate() {
        let x0v = x0.as_slice()[k];
        assert!(v >= 0.8 * x0v - 1e-9 && v <= 1.45 * x0v + 1e-9, "entry {k}");
    }
    assert!(bounded.objective >= free.stats.objective - 1e-9);
}

#[test]
fn equal_bounds_fix_entries_exactly() {
    let (x0, gamma, s0, d0) = growth_problem(4, 2);
    let mut lo = DenseMatrix::filled(4, 4, 0.0).unwrap();
    let mut hi = DenseMatrix::filled(4, 4, 1e9).unwrap();
    // Pin two entries at prescribed values.
    lo.set(1, 2, 7.5);
    hi.set(1, 2, 7.5);
    lo.set(3, 0, 3.25);
    hi.set(3, 0, 3.25);
    let p = BoundedProblem::new(x0, gamma, lo, hi, s0, d0).unwrap();
    let sol = solve_bounded(&p, 1e-10, 100_000).unwrap();
    assert!(sol.converged);
    assert!((sol.x.get(1, 2) - 7.5).abs() < 1e-9);
    assert!((sol.x.get(3, 0) - 3.25).abs() < 1e-9);
    assert!(sol.residuals.rel_row_inf < 1e-8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bounded_solutions_feasible_within_bounds(
        n in 2usize..6,
        seed in 0u64..200,
        width in 0.3f64..1.0,
    ) {
        let (x0, gamma, s0, d0) = growth_problem(n, seed);
        // Wide enough bounds that margins remain attainable: guaranteed by
        // checking construction feasibility and skipping otherwise.
        let lo = DenseMatrix::from_vec(n, n,
            x0.as_slice().iter().map(|&v| (1.0 - width) * v).collect()).unwrap();
        let hi = DenseMatrix::from_vec(n, n,
            x0.as_slice().iter().map(|&v| (1.0 + width) * 1.6 * v).collect()).unwrap();
        let p = match BoundedProblem::new(x0.clone(), gamma, lo.clone(), hi.clone(), s0.clone(), d0.clone()) {
            Ok(p) => p,
            Err(_) => return Ok(()), // margins outside bound envelope: skip
        };
        let sol = solve_bounded(&p, 1e-8, 100_000).unwrap();
        prop_assume!(sol.converged);
        let scale: f64 = s0.iter().sum();
        let rs = sol.x.row_sums();
        let cs = sol.x.col_sums();
        for i in 0..n {
            prop_assert!((rs[i] - s0[i]).abs() / scale < 1e-6);
        }
        for j in 0..n {
            prop_assert!((cs[j] - d0[j]).abs() / scale < 1e-6);
        }
        for k in 0..n*n {
            prop_assert!(sol.x.as_slice()[k] >= lo.as_slice()[k] - 1e-8);
            prop_assert!(sol.x.as_slice()[k] <= hi.as_slice()[k] + 1e-8);
        }
    }
}
