//! Cross-solver agreement: SEA, RC, B-K, and RAS computed answers must be
//! mutually consistent wherever their problem classes overlap. This is the
//! strongest correctness evidence in the suite — four algorithmically
//! unrelated methods converging to the same matrices.

#![allow(clippy::needless_range_loop)] // parallel-array numeric idiom

mod common;

use sea::baselines::bachem_korte::{solve_diagonal_bk, solve_general_bk, BkOptions};
use sea::baselines::ras::{ras_balance, RasOptions};
use sea::baselines::rc::{solve_general_rc, RcOptions};
use sea::core::{
    solve_diagonal, solve_general, DiagonalProblem, GeneralSeaOptions, SeaOptions, TotalSpec,
};
use sea::data::{table1_instance, table7_instance};
use sea::linalg::DenseMatrix;

#[test]
fn sea_and_bk_agree_on_diagonal_fixed_problems() {
    for seed in [1u64, 2, 3] {
        let p = table1_instance(8, seed);
        let sea = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        // Frank-Wolfe's O(1/k) rate makes very tight gaps impractical;
        // 1e-5 relative gap still pins the objective to ~5 digits.
        let bk = solve_diagonal_bk(&p, &BkOptions::with_epsilon(3e-5)).unwrap();
        assert!(sea.stats.converged && bk.converged);
        let scale = p.x0().as_slice().iter().cloned().fold(1.0_f64, f64::max);
        assert!(
            sea.x.max_abs_diff(&bk.x) / scale < 1e-2,
            "seed {seed}: SEA vs B-K iterates differ by {}",
            sea.x.max_abs_diff(&bk.x)
        );
        let rel_obj = (sea.stats.objective - bk.objective).abs()
            / sea.stats.objective.abs().max(1.0);
        assert!(rel_obj < 1e-4, "seed {seed}: objectives differ by {rel_obj}");
        // B-K's value can never beat the optimum SEA certifies.
        assert!(bk.objective >= sea.stats.objective - 1e-7 * sea.stats.objective.abs());
    }
}

#[test]
fn sea_rc_bk_agree_on_general_problems() {
    for seed in [10u64, 20] {
        let p = table7_instance(6, seed);
        let sea = solve_general(&p, &GeneralSeaOptions::with_epsilon(1e-9)).unwrap();
        let rc = solve_general_rc(&p, &RcOptions::with_epsilon(1e-9)).unwrap();
        let bk = solve_general_bk(&p, &BkOptions::with_epsilon(1e-5)).unwrap();
        assert!(sea.converged && rc.converged && bk.converged);
        let scale = p.x0().as_slice().iter().cloned().fold(1.0_f64, f64::max);
        assert!(sea.x.max_abs_diff(&rc.x) / scale < 1e-5, "seed {seed} SEA/RC");
        assert!(sea.x.max_abs_diff(&bk.x) / scale < 1e-2, "seed {seed} SEA/B-K");
        assert!((sea.objective - bk.objective).abs() / sea.objective.max(1.0) < 1e-4);
        // Objectives agree even more tightly (flat near the optimum).
        assert!((sea.objective - rc.objective).abs() / sea.objective.max(1.0) < 1e-6);
    }
}

#[test]
fn objectives_ranked_by_weight_scheme_consistency() {
    // SEA's chi-square solution and RAS's biproportional solution minimize
    // *different* objectives on the same feasible set: each must win its
    // own contest.
    let p = table1_instance(10, 77);
    let TotalSpec::Fixed { s0, d0 } = p.totals() else {
        panic!()
    };
    let sea = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
    let ras = ras_balance(p.x0(), s0, d0, &RasOptions::default()).unwrap();
    assert!(ras.converged);
    // Chi-square objective: SEA at most RAS.
    let chi = |x: &DenseMatrix| p.objective(x, &[], &[]);
    assert!(
        chi(&sea.x) <= chi(&ras.x) + 1e-9 * chi(&ras.x).max(1.0),
        "SEA should minimize its own objective: {} vs {}",
        chi(&sea.x),
        chi(&ras.x)
    );
    // Entropy objective (RAS's implicit criterion): RAS at most SEA.
    let ent = |x: &DenseMatrix| -> f64 {
        x.as_slice()
            .iter()
            .zip(p.x0().as_slice())
            .filter(|(_, &x0v)| x0v > 0.0)
            .map(|(&xv, &x0v)| {
                if xv > 0.0 {
                    xv * (xv / x0v).ln() - xv + x0v
                } else {
                    x0v
                }
            })
            .sum()
    };
    assert!(
        ent(&ras.x) <= ent(&sea.x) + 1e-6 * ent(&sea.x).abs().max(1.0),
        "RAS should minimize relative entropy: {} vs {}",
        ent(&ras.x),
        ent(&sea.x)
    );
}

#[test]
fn dual_value_brackets_every_solver() {
    // SEA's dual value at its multipliers lower-bounds the primal value of
    // *any* feasible solution — including B-K's and RAS's.
    let p = table1_instance(10, 5);
    let TotalSpec::Fixed { s0, d0 } = p.totals() else {
        panic!()
    };
    let sea = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
    let zeta = sea::core::dual::dual_value(&p, &sea.lambda, &sea.mu);
    let bk = solve_diagonal_bk(&p, &BkOptions::with_epsilon(1e-5)).unwrap();
    let ras = ras_balance(p.x0(), s0, d0, &RasOptions::default()).unwrap();
    for (name, x) in [("B-K", &bk.x), ("RAS", &ras.x)] {
        let primal = p.objective(x, &[], &[]);
        assert!(
            zeta <= primal + 1e-7 * primal.abs().max(1.0),
            "weak duality vs {name}: zeta {zeta} > primal {primal}"
        );
    }
}

#[test]
fn boundary_active_case_agrees_across_solvers() {
    // Force the nonnegativity constraints active: a large entry must
    // shrink to (near) zero to meet a tiny margin.
    let x0 = DenseMatrix::from_rows(&[vec![50.0, 1.0], vec![1.0, 50.0]]).unwrap();
    let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
    let p = DiagonalProblem::new(
        x0,
        gamma,
        TotalSpec::Fixed {
            s0: vec![2.0, 51.0],
            d0: vec![1.0, 52.0],
        },
    )
    .unwrap();
    let sea = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
    let bk = solve_diagonal_bk(&p, &BkOptions::with_epsilon(1e-6)).unwrap();
    assert!(sea.x.max_abs_diff(&bk.x) < 1e-2);
    assert!((sea.stats.objective - bk.objective).abs() < 1e-5 * sea.stats.objective.max(1.0));
    // The equality-only reference is NOT valid here (it goes negative) —
    // confirming the test exercises the active-set machinery.
    let reference = common::equality_qp_reference(
        p.x0(),
        p.gamma(),
        &[2.0, 51.0],
        &[1.0, 52.0],
    )
    .unwrap();
    assert!(reference.as_slice().iter().any(|&v| v < 0.0));
    assert!(sea.x.as_slice().iter().all(|&v| v >= 0.0));
}
