//! Cross-crate pipeline tests: dataset generator → problem → SEA →
//! verification, for every problem class the paper evaluates.

#![allow(clippy::needless_range_loop)] // parallel-array numeric idiom

mod common;

use sea::core::{
    solve_diagonal, solve_general, GeneralSeaOptions, SeaOptions, TotalSpec,
};
use sea::data::io_tables::{io_dataset, IoVariant};
use sea::data::migration::{migration_problem, MigrationVariant, Period};
use sea::data::sam::{sam_problem, SamInstance};
use sea::data::{table1_instance, table7_instance};

#[test]
fn table1_pipeline_reaches_paper_tolerance() {
    let p = table1_instance(60, 99);
    let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(0.01)).unwrap();
    assert!(sol.stats.converged);
    // Paper criterion: relative row balance ≤ .01; columns exact.
    assert!(sol.stats.residuals.rel_row_inf <= 0.01);
    assert!(sol.stats.residuals.col_inf < 1e-6 * p.x0().total());
    assert!(sol.x.as_slice().iter().all(|&v| v >= 0.0));
}

#[test]
fn io_pipeline_all_families() {
    for family in 0..3u8 {
        let v = IoVariant { family, variant: 'a' };
        let p = io_dataset(v, 0);
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(0.01)).unwrap();
        assert!(sol.stats.converged, "{} failed", v.name());
        // Structural zeros preserved across the whole pipeline.
        for (x0v, xv) in p.x0().as_slice().iter().zip(sol.x.as_slice()) {
            if *x0v == 0.0 {
                assert_eq!(*xv, 0.0);
            }
        }
    }
}

#[test]
fn sam_pipeline_balances_every_instance() {
    for inst in [
        SamInstance::Stone,
        SamInstance::Turk,
        SamInstance::Sri,
        SamInstance::Usda82e,
    ] {
        let p = sam_problem(inst, 3);
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(0.001)).unwrap();
        assert!(sol.stats.converged, "{} failed", inst.name());
        let rows = sol.x.row_sums();
        let cols = sol.x.col_sums();
        for i in 0..p.m() {
            let scale = rows[i].abs().max(1.0);
            assert!(
                (rows[i] - cols[i]).abs() / scale < 0.01,
                "{} account {i}: {} vs {}",
                inst.name(),
                rows[i],
                cols[i]
            );
        }
    }
}

#[test]
fn migration_pipeline_interpolates_totals() {
    let p = migration_problem(Period::P6570, MigrationVariant::A);
    let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-4)).unwrap();
    assert!(sol.stats.converged);
    let TotalSpec::Elastic { s0, .. } = p.totals() else {
        panic!("elastic expected")
    };
    // Estimated totals are an elastic compromise between prior margins and
    // targets. The column penalties couple the rows, so a state can
    // overshoot its own bracket slightly — allow a quarter of the gap as
    // slack, and require the aggregate to interpolate strictly.
    let base = p.x0().row_sums();
    for i in 0..48 {
        let slack = 0.25 * (s0[i] - base[i]).abs() + 0.01 * base[i];
        let lo = base[i].min(s0[i]) - slack;
        let hi = base[i].max(s0[i]) + slack;
        assert!(sol.s[i] >= lo && sol.s[i] <= hi, "state {i}: {} not in [{lo}, {hi}]", sol.s[i]);
    }
    let total_base: f64 = base.iter().sum();
    let total_target: f64 = s0.iter().sum();
    let total_est: f64 = sol.s.iter().sum();
    assert!(total_est > total_base && total_est < total_target);
}

#[test]
fn general_pipeline_table7_instance() {
    let p = table7_instance(8, 4);
    let sol = solve_general(&p, &GeneralSeaOptions::with_epsilon(1e-6)).unwrap();
    assert!(sol.converged);
    assert!(sol.residuals.row_inf < 1e-4);
    assert!(sol.residuals.col_inf < 1e-4);
    assert!(sol.x.as_slice().iter().all(|&v| v >= 0.0));
    // Objective must not exceed the feasible proportional-fill start.
    let (xi, si, di) = p.initial_feasible();
    assert!(sol.objective <= p.objective(&xi, &si, &di) + 1e-9);
}

#[test]
fn general_class_matches_dense_kkt_when_interior() {
    // Interior instance: margins equal to the prior's own sums keep the
    // unconstrained-sign optimum at x0 itself... so perturb slightly to
    // exercise the off-diagonal coupling while staying interior.
    use sea::core::GeneralTotalSpec;
    let base = table7_instance(4, 21);
    let x0 = base.x0().clone();
    let g = base.g().clone();
    let s0: Vec<f64> = x0.row_sums().iter().map(|v| v * 1.02).collect();
    let mut d0: Vec<f64> = x0.col_sums().to_vec();
    let f: f64 = s0.iter().sum::<f64>() / d0.iter().sum::<f64>();
    for v in &mut d0 {
        *v *= f;
    }
    let reference = common::general_equality_qp_reference(&x0, &g, &s0, &d0)
        .expect("nonsingular KKT");
    assert!(
        reference.as_slice().iter().all(|&v| v >= 0.0),
        "instance not interior; adjust the perturbation"
    );
    let p = sea::core::GeneralProblem::new(x0.clone(), g, GeneralTotalSpec::Fixed { s0, d0 })
        .unwrap();
    let sol = solve_general(&p, &GeneralSeaOptions::with_epsilon(1e-10)).unwrap();
    assert!(sol.converged);
    let scale = x0.as_slice().iter().cloned().fold(1.0_f64, f64::max);
    assert!(
        sol.x.max_abs_diff(&reference) / scale < 1e-6,
        "general SEA vs dense KKT differ by {}",
        sol.x.max_abs_diff(&reference)
    );
}

#[test]
fn fixed_class_matches_equality_qp_when_interior() {
    // When the equality-only optimum is already nonnegative, SEA must find
    // exactly it — checked against an independent dense KKT solve.
    let p = table1_instance(6, 5);
    let TotalSpec::Fixed { s0, d0 } = p.totals() else {
        panic!("fixed expected")
    };
    let reference = common::equality_qp_reference(p.x0(), p.gamma(), s0, d0)
        .expect("nonsingular KKT");
    assert!(
        reference.as_slice().iter().all(|&v| v >= 0.0),
        "instance not interior; pick a different seed"
    );
    let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
    let diff = sol.x.max_abs_diff(&reference);
    let scale = p.x0().as_slice().iter().cloned().fold(1.0_f64, f64::max);
    assert!(
        diff / scale < 1e-7,
        "SEA vs KKT reference differ by {diff} (scale {scale})"
    );
}
