//! Integration tests for the spatial price equilibrium substrate and the
//! scheduling simulator pipeline (trace → simulated speedups).

#![allow(clippy::needless_range_loop)] // parallel-array numeric idiom

use proptest::prelude::*;
use sea::core::{solve_diagonal, SeaOptions};
use sea::data::table1_instance;
use sea::parsim::{speedup_table, MachineModel};
use sea::spatial::{check_equilibrium, random_spe, solve_spe};

#[test]
fn spe_solutions_satisfy_wardrop_style_conditions() {
    for seed in [1u64, 2, 3] {
        let p = random_spe(12, 9, seed);
        let sol = solve_spe(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        assert!(sol.converged, "seed {seed}");
        let scale = sol.report.total_flow.max(1.0);
        assert!(sol.report.max_price_violation < 1e-5, "seed {seed}");
        assert!(sol.report.max_complementarity_gap / scale < 1e-5, "seed {seed}");
    }
}

#[test]
fn spe_supply_shift_reduces_trade() {
    // Comparative statics: raising every supply intercept (costlier
    // production) must not increase total equilibrium flow.
    let base = random_spe(8, 8, 42);
    let mut costly = base.clone();
    for a in &mut costly.supply_intercept {
        *a += 50.0;
    }
    let sol_base = solve_spe(&base, &SeaOptions::with_epsilon(1e-10)).unwrap();
    let sol_costly = solve_spe(&costly, &SeaOptions::with_epsilon(1e-10)).unwrap();
    assert!(
        sol_costly.report.total_flow <= sol_base.report.total_flow + 1e-6,
        "{} vs {}",
        sol_costly.report.total_flow,
        sol_base.report.total_flow
    );
}

#[test]
fn trace_replay_is_consistent_with_measured_solve() {
    // T1 from the trace (sum of phase work) must approximate the measured
    // serial wall time of the same solve.
    let p = table1_instance(80, 3);
    let mut opts = SeaOptions::with_epsilon(0.01);
    opts.record_trace = true;
    let sol = solve_diagonal(&p, &opts).unwrap();
    let trace = sol.stats.trace.as_ref().unwrap();
    let t1 = trace.serial_time();
    let wall = sol.stats.elapsed.as_secs_f64();
    assert!(t1 > 0.0);
    assert!(
        t1 <= wall * 1.05,
        "trace time {t1} cannot exceed wall time {wall}"
    );
    // Most of the solve is accounted for by the traced phases.
    assert!(t1 >= wall * 0.3, "trace {t1} vs wall {wall}: too much untraced time");
}

#[test]
fn simulated_speedups_have_paper_shape() {
    let p = table1_instance(150, 7);
    let mut opts = SeaOptions::with_epsilon(0.01);
    opts.record_trace = true;
    let sol = solve_diagonal(&p, &opts).unwrap();
    let phases: Vec<sea::parsim::SimPhase> = sol
        .stats
        .trace
        .as_ref()
        .unwrap()
        .phases
        .iter()
        .map(|ph| {
            if ph.kind.is_parallel() {
                sea::parsim::SimPhase::parallel(ph.task_seconds.clone())
            } else {
                sea::parsim::SimPhase::serial(ph.task_seconds.clone())
            }
        })
        .collect();
    let rows = speedup_table(
        &phases,
        &[1, 2, 4, 6],
        MachineModel::DEFAULT_DISPATCH_OVERHEAD,
        MachineModel::DEFAULT_FORK_JOIN_OVERHEAD,
    );
    // N=1 anchor.
    assert!((rows[0].speedup - 1.0).abs() < 1e-9);
    // Monotone increasing speedups, decreasing efficiencies — the paper's
    // Table 6 shape.
    for w in rows.windows(2) {
        assert!(w[1].speedup >= w[0].speedup * 0.99, "speedup not increasing");
        assert!(
            w[1].efficiency <= w[0].efficiency + 1e-9,
            "efficiency not decreasing"
        );
    }
    // Sub-linear but substantial: between 50% and 100% efficiency at N=2.
    assert!(rows[1].efficiency > 0.5 && rows[1].efficiency <= 1.0 + 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn spe_equilibrium_invariants_hold_for_random_instances(
        m in 2usize..8,
        n in 2usize..8,
        seed in 0u64..200,
    ) {
        let p = random_spe(m, n, seed);
        let sol = solve_spe(&p, &SeaOptions::with_epsilon(1e-9)).unwrap();
        prop_assume!(sol.converged);
        let report = check_equilibrium(&p, &sol.x, &sol.s, &sol.d);
        let scale = report.total_flow.max(1.0);
        prop_assert!(report.max_price_violation < 1e-4);
        prop_assert!(report.max_complementarity_gap / scale < 1e-4);
        // Supplies and demands are nonnegative and conserve flow.
        prop_assert!(sol.s.iter().all(|&v| v >= -1e-9));
        prop_assert!(sol.d.iter().all(|&v| v >= -1e-9));
        prop_assert!(report.max_conservation_violation / scale < 1e-6);
    }
}
