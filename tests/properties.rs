//! Property-based tests over randomly generated problems: feasibility,
//! KKT conditions, duality, and agreement with the independent KKT
//! reference, across all three problem classes.

#![allow(clippy::needless_range_loop)] // parallel-array numeric idiom

mod common;

use proptest::prelude::*;
use sea::core::{
    solve_diagonal, verify_solution, ConvergenceCriterion, DiagonalProblem, SeaOptions,
    TotalSpec,
};
use sea::linalg::DenseMatrix;

fn random_prior(m: usize, n: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let x0 = DenseMatrix::from_vec(
        m,
        n,
        (0..m * n).map(|_| rng.random_range(0.1..100.0)).collect(),
    )
    .unwrap();
    let gamma = DenseMatrix::from_vec(
        m,
        n,
        (0..m * n).map(|_| rng.random_range(0.05..5.0)).collect(),
    )
    .unwrap();
    (x0, gamma)
}

fn tight_opts() -> SeaOptions {
    let mut o = SeaOptions::with_epsilon(1e-11);
    o.criterion = Some(ConvergenceCriterion::ConstraintNorm);
    o.max_iterations = 200_000;
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fixed_solutions_satisfy_kkt_and_feasibility(
        m in 2usize..7,
        n in 2usize..7,
        seed in 0u64..500,
        row_scale in 0.3f64..3.0,
    ) {
        let (x0, gamma) = random_prior(m, n, seed);
        let s0: Vec<f64> = x0.row_sums().iter().map(|v| v * row_scale).collect();
        let total: f64 = s0.iter().sum();
        let cs = x0.col_sums();
        let ct: f64 = cs.iter().sum();
        let d0: Vec<f64> = cs.iter().map(|v| v * total / ct).collect();
        let p = DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0: s0.clone(), d0: d0.clone() }).unwrap();
        let sol = solve_diagonal(&p, &tight_opts()).unwrap();
        prop_assert!(sol.stats.converged);

        // Feasibility.
        let scale = total.max(1.0);
        let rs = sol.x.row_sums();
        let csx = sol.x.col_sums();
        for i in 0..m {
            prop_assert!((rs[i] - s0[i]).abs() / scale < 1e-8);
        }
        for j in 0..n {
            prop_assert!((csx[j] - d0[j]).abs() / scale < 1e-8);
        }
        // Nonnegativity.
        prop_assert!(sol.x.as_slice().iter().all(|&v| v >= 0.0));
        // KKT stationarity/sign with the returned multipliers.
        for i in 0..m {
            for j in 0..n {
                let grad = 2.0 * p.gamma().get(i, j) * (sol.x.get(i, j) - p.x0().get(i, j))
                    - sol.lambda[i] - sol.mu[j];
                if sol.x.get(i, j) > 1e-6 * scale {
                    prop_assert!(grad.abs() < 1e-4 * (1.0 + grad.abs()), "grad({i},{j})={grad}");
                } else {
                    prop_assert!(grad > -1e-4, "sign({i},{j})={grad}");
                }
            }
        }
        // Weak duality at the solution (gap closes at optimum).
        let zeta = sea::core::dual::dual_value(&p, &sol.lambda, &sol.mu);
        prop_assert!(zeta <= sol.stats.objective + 1e-6 * sol.stats.objective.abs().max(1.0));
        prop_assert!((zeta - sol.stats.objective).abs() <= 1e-4 * sol.stats.objective.abs().max(1.0),
            "gap too large: {} vs {}", zeta, sol.stats.objective);
    }

    #[test]
    fn elastic_solutions_satisfy_total_stationarity(
        m in 2usize..6,
        n in 2usize..6,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xE1A5);
        let (x0, gamma) = random_prior(m, n, seed);
        let alpha: Vec<f64> = (0..m).map(|_| rng.random_range(0.1..2.0)).collect();
        let beta: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..2.0)).collect();
        let s0: Vec<f64> = x0.row_sums().iter().map(|v| v * rng.random_range(0.5..2.0)).collect();
        let d0: Vec<f64> = x0.col_sums().iter().map(|v| v * rng.random_range(0.5..2.0)).collect();
        let p = DiagonalProblem::new(
            x0, gamma,
            TotalSpec::Elastic { alpha: alpha.clone(), s0: s0.clone(), beta: beta.clone(), d0: d0.clone() },
        ).unwrap();
        let sol = solve_diagonal(&p, &tight_opts()).unwrap();
        prop_assert!(sol.stats.converged);
        // Stationarity of the totals: λᵢ = 2αᵢ(s⁰ᵢ − sᵢ), μⱼ = 2βⱼ(d⁰ⱼ − dⱼ).
        for i in 0..m {
            let expect = 2.0 * alpha[i] * (s0[i] - sol.s[i]);
            prop_assert!((sol.lambda[i] - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
        for j in 0..n {
            let expect = 2.0 * beta[j] * (d0[j] - sol.d[j]);
            prop_assert!((sol.mu[j] - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
        // Flow conservation against estimated totals.
        let rs = sol.x.row_sums();
        let scale = sol.s.iter().cloned().fold(1.0_f64, f64::max);
        for i in 0..m {
            prop_assert!((rs[i] - sol.s[i]).abs() / scale < 1e-7);
        }
    }

    #[test]
    fn balanced_solutions_balance(
        n in 2usize..7,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xBA1A);
        let (x0, gamma) = random_prior(n, n, seed);
        let alpha: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..2.0)).collect();
        let s0: Vec<f64> = x0.row_sums().iter().zip(x0.col_sums())
            .map(|(r, c)| 0.5 * (r + c) * rng.random_range(0.8..1.2)).collect();
        let p = DiagonalProblem::new(x0, gamma, TotalSpec::Balanced { alpha, s0 }).unwrap();
        let sol = solve_diagonal(&p, &tight_opts()).unwrap();
        prop_assert!(sol.stats.converged);
        let rs = sol.x.row_sums();
        let cs = sol.x.col_sums();
        let scale = rs.iter().cloned().fold(1.0_f64, f64::max);
        for i in 0..n {
            prop_assert!((rs[i] - cs[i]).abs() / scale < 1e-7,
                "account {} unbalanced: {} vs {}", i, rs[i], cs[i]);
            prop_assert!((rs[i] - sol.s[i]).abs() / scale < 1e-7);
        }
    }

    #[test]
    fn interior_fixed_solutions_match_kkt_reference(
        m in 2usize..5,
        n in 2usize..5,
        seed in 0u64..300,
    ) {
        // Margins close to the prior's own keep the equality-QP optimum
        // nonnegative, making the independent dense reference valid.
        let (x0, gamma) = random_prior(m, n, seed);
        let s0 = x0.row_sums();
        let d0 = x0.col_sums();
        let reference = common::equality_qp_reference(&x0, &gamma, &s0, &d0).unwrap();
        prop_assume!(reference.as_slice().iter().all(|&v| v >= 0.0));
        let p = DiagonalProblem::new(x0.clone(), gamma, TotalSpec::Fixed { s0, d0 }).unwrap();
        let sol = solve_diagonal(&p, &tight_opts()).unwrap();
        let scale = x0.as_slice().iter().cloned().fold(1.0_f64, f64::max);
        prop_assert!(sol.x.max_abs_diff(&reference) / scale < 1e-7,
            "diff {}", sol.x.max_abs_diff(&reference));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One oracle to rule them all: the public `verify_solution` KKT report
    /// must certify optimality on random instances of every problem class.
    #[test]
    fn kkt_oracle_certifies_all_classes(
        m in 2usize..6,
        n in 2usize..6,
        seed in 0u64..300,
        class in 0u8..3,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x0C1A55);
        let side = if class == 2 { m } else { n }; // balanced needs square
        let (x0, gamma) = random_prior(m, if class == 2 { m } else { side }, seed);
        let spec = match class {
            0 => {
                let s0: Vec<f64> = x0.row_sums().iter().map(|v| v * 1.2).collect();
                let total: f64 = s0.iter().sum();
                let cs = x0.col_sums();
                let ct: f64 = cs.iter().sum();
                let d0: Vec<f64> = cs.iter().map(|v| v * total / ct).collect();
                TotalSpec::Fixed { s0, d0 }
            }
            1 => TotalSpec::Elastic {
                alpha: (0..x0.rows()).map(|_| rng.random_range(0.1..2.0)).collect(),
                s0: x0.row_sums().iter().map(|v| v * rng.random_range(0.5..2.0)).collect(),
                beta: (0..x0.cols()).map(|_| rng.random_range(0.1..2.0)).collect(),
                d0: x0.col_sums().iter().map(|v| v * rng.random_range(0.5..2.0)).collect(),
            },
            _ => TotalSpec::Balanced {
                alpha: (0..x0.rows()).map(|_| rng.random_range(0.1..2.0)).collect(),
                s0: x0.row_sums().iter().zip(x0.col_sums())
                    .map(|(r, c)| 0.5 * (r + c)).collect(),
            },
        };
        let p = DiagonalProblem::new(x0, gamma, spec).unwrap();
        let sol = solve_diagonal(&p, &tight_opts()).unwrap();
        prop_assume!(sol.stats.converged);
        let report = verify_solution(&p, &sol);
        prop_assert!(report.is_optimal(1e-5), "class {}: {:?}", class, report);
    }
}
