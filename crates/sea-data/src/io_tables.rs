//! Synthetic US input/output table series (Table 2).
//!
//! Three dataset families, matching the documented shapes:
//!
//! * `IOC72{a,b,c}` — aggregated 1972 construction-activity table,
//!   205 × 205, **52 %** nonzero;
//! * `IOC77{a,b,c}` — aggregated 1977 table, 205 × 205, **58 %** nonzero;
//! * `IO72{a,b,c}`  — disaggregated 1972 US table, 485 × 485, **16 %**
//!   nonzero.
//!
//! Variant construction follows §4.1.2: `a` applies a growth factor in the
//! 0–10 % range to each row/column total, `b` uses 0–100 %, and `c`
//! perturbs each nonzero entry by an additive term in `[1, 10]` while
//! keeping the original margins (the paper's `c` datapoints average 10 such
//! examples; [`io_dataset`] takes a replication index for that purpose).
//! Weights are chi-square (`γ = 1/x⁰`), zeros are structural, totals fixed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{DiagonalProblem, TotalSpec, ZeroPolicy};
use sea_linalg::DenseMatrix;

/// Which I/O dataset family and variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoVariant {
    /// Family: 0 = IOC72 (205², 52 %), 1 = IOC77 (205², 58 %),
    /// 2 = IO72 (485², 16 %).
    pub family: u8,
    /// Variant: `'a'` (0–10 % growth), `'b'` (0–100 % growth), `'c'`
    /// (additive entry perturbation, original margins).
    pub variant: char,
}

impl IoVariant {
    /// The paper's name for this dataset, e.g. `IOC72a`.
    pub fn name(self) -> String {
        let base = match self.family {
            0 => "IOC72",
            1 => "IOC77",
            _ => "IO72",
        };
        format!("{base}{}", self.variant)
    }

    /// Matrix side length.
    pub fn size(self) -> usize {
        match self.family {
            0 | 1 => 205,
            _ => 485,
        }
    }

    /// Documented nonzero density.
    pub fn density(self) -> f64 {
        match self.family {
            0 => 0.52,
            1 => 0.58,
            _ => 0.16,
        }
    }
}

/// Synthesize a base I/O flow table: `size × size`, the given fraction of
/// nonzero entries, log-uniform positive flows in roughly `[0.5, 5000]`
/// (I/O transactions span several orders of magnitude).
pub fn synthetic_io_matrix(size: usize, density: f64, rng: &mut ChaCha8Rng) -> DenseMatrix {
    let mut data = vec![0.0; size * size];
    let (lo, hi) = (0.5_f64.ln(), 5000.0_f64.ln());
    for v in &mut data {
        if rng.random_range(0.0..1.0) < density {
            *v = rng.random_range(lo..hi).exp();
        }
    }
    // Guarantee every row and column has at least one nonzero entry so the
    // fixed-totals problems stay feasible under structural zeros.
    for i in 0..size {
        let row_empty = data[i * size..(i + 1) * size].iter().all(|&v| v == 0.0);
        if row_empty {
            let j = rng.random_range(0..size);
            data[i * size + j] = rng.random_range(lo..hi).exp();
        }
    }
    for j in 0..size {
        let col_empty = (0..size).all(|i| data[i * size + j] == 0.0);
        if col_empty {
            let i = rng.random_range(0..size);
            data[i * size + j] = rng.random_range(lo..hi).exp();
        }
    }
    DenseMatrix::from_vec(size, size, data).expect("nonempty")
}

/// Build the full fixed-totals updating problem for a dataset variant.
///
/// `replication` distinguishes the 10 samples averaged into each `c`
/// datapoint (ignored for `a`/`b`).
///
/// # Panics
/// Panics on an unknown variant letter.
pub fn io_dataset(v: IoVariant, replication: u64) -> DiagonalProblem {
    let size = v.size();
    // The base table is fixed per family (same economy observed in the
    // paper's base year); variants perturb it.
    let mut base_rng = ChaCha8Rng::seed_from_u64(0x10_7AB1E + u64::from(v.family));
    let x0 = synthetic_io_matrix(size, v.density(), &mut base_rng);
    let mut rng = ChaCha8Rng::seed_from_u64(
        0xD1A1_0000 + (u64::from(v.family) << 8) + (v.variant as u64) + replication * 7919,
    );

    let (x0, s0, d0) = match v.variant {
        'a' | 'b' => {
            let top = if v.variant == 'a' { 0.10 } else { 1.00 };
            let s0: Vec<f64> = x0
                .row_sums()
                .iter()
                .map(|r| r * (1.0 + rng.random_range(0.0..top)))
                .collect();
            let mut d0: Vec<f64> = x0
                .col_sums()
                .iter()
                .map(|c| c * (1.0 + rng.random_range(0.0..top)))
                .collect();
            let scale: f64 = s0.iter().sum::<f64>() / d0.iter().sum::<f64>();
            for v in &mut d0 {
                *v *= scale;
            }
            (x0, s0, d0)
        }
        'c' => {
            // Keep the original margins; perturb each nonzero entry by an
            // additive term in [1, 10].
            let s0 = x0.row_sums();
            let d0 = x0.col_sums();
            let mut pert = x0.clone();
            pert.map_inplace(|v| {
                if v > 0.0 {
                    v + rng.random_range(1.0..10.0)
                } else {
                    0.0
                }
            });
            (pert, s0, d0)
        }
        other => panic!("unknown I/O variant {other:?}"),
    };

    let gamma = DenseMatrix::from_vec(
        size,
        size,
        x0.as_slice()
            .iter()
            .map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 })
            .collect(),
    )
    .expect("same shape");

    DiagonalProblem::with_zero_policy(
        x0,
        gamma,
        TotalSpec::Fixed { s0, d0 },
        ZeroPolicy::Structural,
    )
    .expect("valid by construction")
}

/// All nine Table 2 dataset variants in paper order.
pub fn all_variants() -> Vec<IoVariant> {
    let mut out = Vec::new();
    for family in 0..3u8 {
        for variant in ['a', 'b', 'c'] {
            out.push(IoVariant { family, variant });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn names_and_sizes_match_paper() {
        let v = IoVariant {
            family: 0,
            variant: 'a',
        };
        assert_eq!(v.name(), "IOC72a");
        assert_eq!(v.size(), 205);
        let v = IoVariant {
            family: 2,
            variant: 'c',
        };
        assert_eq!(v.name(), "IO72c");
        assert_eq!(v.size(), 485);
        assert_eq!(all_variants().len(), 9);
    }

    #[test]
    fn density_is_close_to_documented() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let m = synthetic_io_matrix(205, 0.52, &mut rng);
        let d = m.density();
        assert!((d - 0.52).abs() < 0.03, "density {d}");
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let m = synthetic_io_matrix(205, 0.16, &mut rng);
        assert!((m.density() - 0.16).abs() < 0.03);
    }

    #[test]
    fn every_line_has_support() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m = synthetic_io_matrix(60, 0.05, &mut rng);
        for i in 0..60 {
            assert!(m.row(i).iter().any(|&v| v > 0.0), "empty row {i}");
        }
        let t = m.transposed();
        for j in 0..60 {
            assert!(t.row(j).iter().any(|&v| v > 0.0), "empty column {j}");
        }
    }

    #[test]
    fn variant_construction_properties() {
        // Use the real generator (205x205 — construction is cheap).
        let a = io_dataset(
            IoVariant {
                family: 0,
                variant: 'a',
            },
            0,
        );
        match a.totals() {
            TotalSpec::Fixed { s0, d0 } => {
                let rs: f64 = s0.iter().sum();
                let cs: f64 = d0.iter().sum();
                assert!((rs - cs).abs() < 1e-6 * rs);
                // Growth between 0 and ~10% per row before rebalancing.
                let base: f64 = a.x0().total();
                assert!(rs > base * 0.99 && rs < base * 1.12);
            }
            _ => panic!("expected fixed"),
        }
        assert_eq!(a.zero_policy(), ZeroPolicy::Structural);

        let c = io_dataset(
            IoVariant {
                family: 0,
                variant: 'c',
            },
            3,
        );
        match c.totals() {
            TotalSpec::Fixed { s0, .. } => {
                // Margins are the *unperturbed* base margins: row sums of
                // the perturbed prior differ from them.
                let rs = c.x0().row_sums();
                let differs = rs.iter().zip(s0).any(|(a, b)| (a - b).abs() > 1.0);
                assert!(differs);
            }
            _ => panic!("expected fixed"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn synthetic_density_tracks_parameter(
            density in 0.1f64..0.9,
            seed in 0u64..200,
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let m = synthetic_io_matrix(120, density, &mut rng);
            // Within a few points of the requested density (plus the
            // support-repair entries).
            prop_assert!((m.density() - density).abs() < 0.06,
                "requested {}, got {}", density, m.density());
            // Entries positive where nonzero, in the documented range.
            for &v in m.as_slice() {
                prop_assert!(v == 0.0 || (0.4..5_100.0).contains(&v));
            }
        }
    }

    #[test]
    fn replications_differ_for_c_variant() {
        let c0 = io_dataset(
            IoVariant {
                family: 1,
                variant: 'c',
            },
            0,
        );
        let c1 = io_dataset(
            IoVariant {
                family: 1,
                variant: 'c',
            },
            1,
        );
        assert_ne!(c0.x0(), c1.x0());
    }

    #[test]
    fn io_problem_solves() {
        // Solve a scaled-down analogue to keep the test fast: same recipe,
        // smaller matrix.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x0 = synthetic_io_matrix(40, 0.5, &mut rng);
        let gamma = DenseMatrix::from_vec(
            40,
            40,
            x0.as_slice()
                .iter()
                .map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 })
                .collect(),
        )
        .unwrap();
        let s0: Vec<f64> = x0.row_sums().iter().map(|v| v * 1.05).collect();
        let d0: Vec<f64> = x0.col_sums().iter().map(|v| v * 1.05).collect();
        let p = DiagonalProblem::with_zero_policy(
            x0,
            gamma,
            TotalSpec::Fixed { s0, d0 },
            ZeroPolicy::Structural,
        )
        .unwrap();
        let sol = sea_core::solve_diagonal(&p, &sea_core::SeaOptions::with_epsilon(1e-8)).unwrap();
        assert!(sol.stats.converged);
    }
}
