//! US state-to-state migration tables (Tables 4 and 8).
//!
//! 48 × 48 tables (the lower 48 states: Alaska, Hawaii, and Washington DC
//! removed), rows = origin states, columns = destinations, diagonal
//! structurally zero (same-state moves are not interstate migration). Three
//! periods — 1955–60, 1965–70, 1975–80 — each synthesized by a gravity
//! model over stable state populations and coordinates, with per-period
//! drift.
//!
//! Table 4 variants (diagonal problem, unit weights, **elastic totals** —
//! "the row and column totals are also to be estimated"):
//!
//! * `a` — prior totals = base margins grown by a distinct random factor in
//!   0–10 % per row/column;
//! * `b` — same with 0–100 %;
//! * `c` — prior totals = exact base margins; prior entries perturbed by
//!   0–10 % each.
//!
//! Table 8 variants (general problem, dense diagonally dominant `G` of
//! order 48² = 2304, **fixed totals**):
//!
//! * `a` — totals grown 0–10 %, entries unchanged;
//! * `b` — totals grown 0–10 % *and* each entry perturbed by 0–10 %.

use crate::random::dense_dd_weight_matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{DiagonalProblem, GeneralProblem, GeneralTotalSpec, TotalSpec, ZeroPolicy};
use sea_linalg::DenseMatrix;

/// Number of states in the tables (lower 48).
pub const STATES: usize = 48;

/// Census period of the base table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Period {
    /// 1955–1960 state-to-state flows.
    P5560,
    /// 1965–1970 flows.
    P6570,
    /// 1975–1980 flows.
    P7580,
}

impl Period {
    /// Short tag used in dataset names (`5560` etc.).
    pub fn tag(self) -> &'static str {
        match self {
            Period::P5560 => "5560",
            Period::P6570 => "6570",
            Period::P7580 => "7580",
        }
    }

    fn seed(self) -> u64 {
        match self {
            Period::P5560 => 1955,
            Period::P6570 => 1965,
            Period::P7580 => 1975,
        }
    }

    /// All periods in paper order.
    pub fn all() -> [Period; 3] {
        [Period::P5560, Period::P6570, Period::P7580]
    }
}

/// Table 4 / Table 8 variant letters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationVariant {
    /// Totals grown by 0–10 % per line.
    A,
    /// Totals grown by 0–100 % per line (Table 4 only).
    B,
    /// Entries perturbed 0–10 %, totals kept (Table 4 only).
    C,
}

impl MigrationVariant {
    /// The variant letter.
    pub fn letter(self) -> char {
        match self {
            MigrationVariant::A => 'a',
            MigrationVariant::B => 'b',
            MigrationVariant::C => 'c',
        }
    }
}

/// Synthesize the base gravity-model migration table for a period:
/// `flowᵢⱼ ∝ popᵢ^0.8 · popⱼ^0.7 / distᵢⱼ^1.5`, diagonal zero, scaled so
/// flows land in a plausible range (hundreds to hundreds of thousands of
/// migrants).
pub fn base_migration_table(period: Period) -> DenseMatrix {
    // State populations and positions are stable across periods (seeded
    // once); per-period drift multiplies flows.
    let mut geo_rng = ChaCha8Rng::seed_from_u64(0x6E0_6E0);
    let pops: Vec<f64> = (0..STATES)
        .map(|_| geo_rng.random_range(5.0_f64.ln()..12.0_f64.ln()).exp() * 1.0e5)
        .collect();
    let coords: Vec<(f64, f64)> = (0..STATES)
        .map(|_| {
            (
                geo_rng.random_range(0.0..3000.0),
                geo_rng.random_range(0.0..1500.0),
            )
        })
        .collect();
    let mut drift_rng = ChaCha8Rng::seed_from_u64(period.seed());
    let mobility = drift_rng.random_range(0.8..1.2);

    let mut m = DenseMatrix::zeros(STATES, STATES).expect("nonempty");
    for i in 0..STATES {
        for j in 0..STATES {
            if i == j {
                continue;
            }
            let (xi, yi) = coords[i];
            let (xj, yj) = coords[j];
            let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().max(50.0);
            let noise = drift_rng.random_range(0.5..1.5);
            let flow =
                2.0e-4 * mobility * noise * pops[i].powf(0.8) * pops[j].powf(0.7) / dist.powf(1.5);
            m.set(i, j, flow);
        }
    }
    m
}

/// Build a Table 4 problem: elastic totals, unit weights (paper: "All of
/// the weights were set equal to one").
pub fn migration_problem(period: Period, variant: MigrationVariant) -> DiagonalProblem {
    let base = base_migration_table(period);
    let mut rng = ChaCha8Rng::seed_from_u64(period.seed() * 31 + variant.letter() as u64);
    let rows = base.row_sums();
    let cols = base.col_sums();

    let (x0, s0, d0) = match variant {
        MigrationVariant::A | MigrationVariant::B => {
            let top = if variant == MigrationVariant::A {
                0.10
            } else {
                1.00
            };
            let s0: Vec<f64> = rows
                .iter()
                .map(|r| r * (1.0 + rng.random_range(0.0..top)))
                .collect();
            let d0: Vec<f64> = cols
                .iter()
                .map(|c| c * (1.0 + rng.random_range(0.0..top)))
                .collect();
            (base, s0, d0)
        }
        MigrationVariant::C => {
            let mut pert = base.clone();
            pert.map_inplace(|v| {
                if v > 0.0 {
                    v * (1.0 + rng.random_range(0.0..0.10))
                } else {
                    0.0
                }
            });
            (pert, rows, cols)
        }
    };

    let n = x0.cols();
    let gamma = DenseMatrix::filled(x0.rows(), n, 1.0).expect("nonempty");
    DiagonalProblem::with_zero_policy(
        x0,
        gamma,
        TotalSpec::Elastic {
            alpha: vec![1.0; STATES],
            s0,
            beta: vec![1.0; STATES],
            d0,
        },
        ZeroPolicy::Structural,
    )
    .expect("valid by construction")
}

/// Build a Table 8 problem: general objective with a dense diagonally
/// dominant `G` (order 2304), fixed totals.
pub fn migration_general(period: Period, perturb_entries: bool) -> GeneralProblem {
    let base = base_migration_table(period);
    let mut rng = ChaCha8Rng::seed_from_u64(period.seed() * 131 + u64::from(perturb_entries));
    let s0: Vec<f64> = base
        .row_sums()
        .iter()
        .map(|r| r * (1.0 + rng.random_range(0.0..0.10)))
        .collect();
    let mut d0: Vec<f64> = base
        .col_sums()
        .iter()
        .map(|c| c * (1.0 + rng.random_range(0.0..0.10)))
        .collect();
    let scale: f64 = s0.iter().sum::<f64>() / d0.iter().sum::<f64>();
    for v in &mut d0 {
        *v *= scale;
    }
    let x0 = if perturb_entries {
        let mut pert = base;
        pert.map_inplace(|v| {
            if v > 0.0 {
                v * (1.0 + rng.random_range(0.0..0.10))
            } else {
                0.0
            }
        });
        pert
    } else {
        base
    };
    let g = dense_dd_weight_matrix(STATES * STATES, &mut rng);
    GeneralProblem::new(x0, g, GeneralTotalSpec::Fixed { s0, d0 }).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::{solve_diagonal, SeaOptions};

    #[test]
    fn base_table_shape_and_zero_diagonal() {
        let m = base_migration_table(Period::P5560);
        assert_eq!(m.rows(), STATES);
        assert_eq!(m.cols(), STATES);
        for i in 0..STATES {
            assert_eq!(m.get(i, i), 0.0);
        }
        // Off-diagonal flows are positive and widely spread.
        let nz = m.count_nonzero();
        assert_eq!(nz, STATES * STATES - STATES);
    }

    #[test]
    fn periods_differ_but_are_deterministic() {
        let a1 = base_migration_table(Period::P5560);
        let a2 = base_migration_table(Period::P5560);
        assert_eq!(a1, a2);
        let b = base_migration_table(Period::P7580);
        assert_ne!(a1, b);
    }

    #[test]
    fn variant_a_has_small_growth() {
        let p = migration_problem(Period::P5560, MigrationVariant::A);
        let base_rows = base_migration_table(Period::P5560).row_sums();
        match p.totals() {
            TotalSpec::Elastic { s0, .. } => {
                for (t, b) in s0.iter().zip(&base_rows) {
                    let g = t / b;
                    assert!((1.0..1.1001).contains(&g), "growth {g}");
                }
            }
            _ => panic!("expected elastic"),
        }
    }

    #[test]
    fn variant_b_growth_exceeds_variant_a() {
        let a = migration_problem(Period::P6570, MigrationVariant::A);
        let b = migration_problem(Period::P6570, MigrationVariant::B);
        let (TotalSpec::Elastic { s0: sa, .. }, TotalSpec::Elastic { s0: sb, .. }) =
            (a.totals(), b.totals())
        else {
            panic!("expected elastic")
        };
        let base = base_migration_table(Period::P6570).row_sums();
        let ga: f64 = sa.iter().zip(&base).map(|(t, b)| t / b).sum::<f64>() / 48.0;
        let gb: f64 = sb.iter().zip(&base).map(|(t, b)| t / b).sum::<f64>() / 48.0;
        assert!(gb > ga, "mean growth a={ga}, b={gb}");
    }

    #[test]
    fn variant_c_keeps_margins_but_perturbs_entries() {
        let p = migration_problem(Period::P7580, MigrationVariant::C);
        let base = base_migration_table(Period::P7580);
        match p.totals() {
            TotalSpec::Elastic { s0, .. } => {
                let base_rows = base.row_sums();
                for (t, b) in s0.iter().zip(&base_rows) {
                    assert!((t - b).abs() < 1e-9);
                }
            }
            _ => panic!("expected elastic"),
        }
        assert_ne!(p.x0(), &base);
    }

    #[test]
    fn migration_problems_solve_quickly() {
        // The c variant starts closest to feasibility, mirroring the
        // paper's observation that it solves fastest.
        let c = migration_problem(Period::P5560, MigrationVariant::C);
        let sol = solve_diagonal(&c, &SeaOptions::with_epsilon(1e-4)).unwrap();
        assert!(sol.stats.converged);
        // Structural diagonal zero preserved.
        assert_eq!(sol.x.get(0, 0), 0.0);
    }

    #[test]
    fn general_migration_matches_spec() {
        // Use the real generator at full 2304 order — generation is the
        // expensive part, so do it once.
        let p = migration_general(Period::P5560, true);
        assert_eq!(p.m(), STATES);
        assert_eq!(p.g().order(), 2304);
        assert!(p.g().is_strictly_diagonally_dominant());
        match p.totals() {
            GeneralTotalSpec::Fixed { s0, d0 } => {
                let rs: f64 = s0.iter().sum();
                let cs: f64 = d0.iter().sum();
                assert!((rs - cs).abs() < 1e-6 * rs);
            }
            _ => panic!("expected fixed"),
        }
    }
}
