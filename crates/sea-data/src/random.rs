//! Large-scale random instances (Table 1 and Table 7).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{DiagonalProblem, GeneralProblem, GeneralTotalSpec, TotalSpec};
use sea_linalg::{DenseMatrix, SymMatrix};

/// Generate one of the paper's Table 1 instances: an `size × size`
/// fixed-totals diagonal problem, 100 % dense, entries
/// `x⁰ᵢⱼ ~ U[0.1, 10000]` ("to simulate the wide spread of the initial data
/// ... characteristic of both input/output and social accounting
/// matrices"), chi-square weights `γ = 1/x⁰`, and doubled margins
/// `s⁰ᵢ = 2Σⱼx⁰ᵢⱼ`, `d⁰ⱼ = 2Σᵢx⁰ᵢⱼ` (§4.1.1).
///
/// # Panics
/// Panics if `size == 0`.
pub fn table1_instance(size: usize, seed: u64) -> DiagonalProblem {
    assert!(size > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x007A_B1E1);
    let data: Vec<f64> = (0..size * size)
        .map(|_| rng.random_range(0.1..10_000.0))
        .collect();
    let x0 = DenseMatrix::from_vec(size, size, data).expect("nonempty");
    let gamma = DenseMatrix::from_vec(size, size, x0.as_slice().iter().map(|&v| 1.0 / v).collect())
        .expect("same shape");
    let s0: Vec<f64> = x0.row_sums().iter().map(|v| 2.0 * v).collect();
    let d0: Vec<f64> = x0.col_sums().iter().map(|v| 2.0 * v).collect();
    DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 }).expect("valid by construction")
}

/// Generate a symmetric, strictly diagonally dominant, 100 % dense weight
/// matrix with diagonal in `[500, 800]` and (mostly negative) off-diagonal
/// entries "to simulate variance-covariance matrices" (§5.1.1).
pub fn dense_dd_weight_matrix(order: usize, rng: &mut ChaCha8Rng) -> SymMatrix {
    let mut g = DenseMatrix::zeros(order, order).expect("nonempty");
    // Off-diagonal magnitude budget: strict dominance needs
    // Σ_{j≠i}|g_ij| < 500 for every row; with symmetric U[−c, c/4] entries,
    // the worst-case row sum is c·(order−1), so pick c below 500/(order−1)
    // with margin.
    let c = if order > 1 {
        0.9 * 500.0 / (order as f64 - 1.0)
    } else {
        0.0
    };
    for i in 0..order {
        for j in (i + 1)..order {
            let v = rng.random_range(-c..c * 0.25);
            g.set(i, j, v);
            g.set(j, i, v);
        }
    }
    for i in 0..order {
        let v = rng.random_range(500.0..800.0);
        g.set(i, i, v);
    }
    SymMatrix::from_dense_unchecked(g).expect("square by construction")
}

/// Generate one of the paper's Table 7 instances: a general fixed-totals
/// problem whose `X⁰` is `rows × rows` (10…120), with a 100 % dense
/// `G` of order `rows²` from [`dense_dd_weight_matrix`], priors
/// `x⁰ ~ U[1, 10]`, and margins from per-line growth factors
/// `U[0.8, 1.5]` (rebalanced to a common grand total).
///
/// # Panics
/// Panics if `rows == 0`.
pub fn table7_instance(rows: usize, seed: u64) -> GeneralProblem {
    assert!(rows > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x007A_B1E7);
    let n = rows;
    let x0 = DenseMatrix::from_vec(
        n,
        n,
        (0..n * n).map(|_| rng.random_range(1.0..10.0)).collect(),
    )
    .expect("nonempty");
    let g = dense_dd_weight_matrix(n * n, &mut rng);
    let s0: Vec<f64> = x0
        .row_sums()
        .iter()
        .map(|v| v * rng.random_range(0.8..1.5))
        .collect();
    let mut d0: Vec<f64> = x0
        .col_sums()
        .iter()
        .map(|v| v * rng.random_range(0.8..1.5))
        .collect();
    let scale: f64 = s0.iter().sum::<f64>() / d0.iter().sum::<f64>();
    for v in &mut d0 {
        *v *= scale;
    }
    GeneralProblem::new(x0, g, GeneralTotalSpec::Fixed { s0, d0 }).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_documented_statistics() {
        let p = table1_instance(40, 1);
        assert_eq!(p.m(), 40);
        assert_eq!(p.variable_count(), 1600);
        // 100% dense, entries in [0.1, 10000].
        assert!(p
            .x0()
            .as_slice()
            .iter()
            .all(|&v| (0.1..10_000.0).contains(&v)));
        assert!((p.x0().density() - 1.0).abs() < 1e-12);
        // Chi-square weights.
        for (x, g) in p.x0().as_slice().iter().zip(p.gamma().as_slice()) {
            assert!((g - 1.0 / x).abs() < 1e-12);
        }
        // Doubled margins.
        match p.totals() {
            TotalSpec::Fixed { s0, .. } => {
                let rs = p.x0().row_sums();
                assert!((s0[0] - 2.0 * rs[0]).abs() < 1e-9);
            }
            _ => panic!("expected fixed totals"),
        }
    }

    #[test]
    fn table1_is_deterministic() {
        let a = table1_instance(10, 9);
        let b = table1_instance(10, 9);
        assert_eq!(a.x0(), b.x0());
        let c = table1_instance(10, 10);
        assert_ne!(a.x0(), c.x0());
    }

    #[test]
    fn table7_g_matrix_matches_spec() {
        let p = table7_instance(6, 3);
        let g = p.g();
        assert_eq!(g.order(), 36);
        assert!(g.is_strictly_diagonally_dominant());
        let mut has_negative = false;
        for i in 0..g.order() {
            assert!((500.0..800.0).contains(&g.get(i, i)));
            for j in 0..g.order() {
                if i != j && g.get(i, j) < 0.0 {
                    has_negative = true;
                }
            }
        }
        assert!(has_negative, "off-diagonals should include negatives");
    }

    #[test]
    fn table7_totals_consistent() {
        let p = table7_instance(8, 5);
        match p.totals() {
            GeneralTotalSpec::Fixed { s0, d0 } => {
                let rs: f64 = s0.iter().sum();
                let cs: f64 = d0.iter().sum();
                assert!((rs - cs).abs() < 1e-9 * rs);
            }
            _ => panic!("expected fixed"),
        }
    }

    #[test]
    fn table1_instance_is_solvable() {
        let p = table1_instance(15, 2);
        let sol = sea_core::solve_diagonal(&p, &sea_core::SeaOptions::with_epsilon(1e-6)).unwrap();
        assert!(sol.stats.converged);
        assert!(sol.stats.residuals.rel_row_inf < 1e-5);
    }
}
