//! # sea-data — synthetic economic datasets for the SEA experiments
//!
//! The paper evaluates on proprietary economic datasets (US input/output
//! tables from Polenske/Rockler, SAMs including the USDA 1982 matrix,
//! Tobler's US state-to-state migration tables). Those files are not
//! redistributable, so this crate generates **synthetic stand-ins that match
//! every property the paper documents**: dimensions, sparsity, value
//! dispersion, and the exact example-construction recipes of §4.1.2 and
//! §5.1 (growth-factor perturbations, additive noise, dense diagonally
//! dominant `G` matrices). See DESIGN.md substitution S1.
//!
//! * [`random`] — the large-scale random instances of Table 1 and the
//!   general-problem instances of Table 7.
//! * [`io_tables`] — the IOC72/IOC77/IO72 input/output series (Table 2).
//! * [`sam`] — social accounting matrices: STONE, TURK, SRI, USDA82E,
//!   S500/S750/S1000 (Table 3).
//! * [`migration`] — 48×48 US state-to-state migration tables, diagonal
//!   (Table 4) and general with dense `G` (Table 8).
//!
//! Every generator is deterministic in its seed (ChaCha8), so experiment
//! tables are exactly reproducible.

// Numeric-kernel idioms: indexed loops over multiple parallel arrays are
// clearer than zipped iterator chains in the equilibration math, and
// `!(w > 0.0)` deliberately treats NaN as invalid (a positive-weight check
// that `w <= 0.0` would pass NaN through).
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod io_tables;
pub mod migration;
pub mod random;
pub mod sam;

pub use io_tables::{io_dataset, IoVariant};
pub use migration::{migration_general, migration_problem, MigrationVariant, Period};
pub use random::{table1_instance, table7_instance};
pub use sam::{sam_problem, SamInstance};
