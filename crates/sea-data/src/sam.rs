//! Social accounting matrices (Table 3).
//!
//! Seven datasets matching the documented account/transaction counts:
//!
//! | name    | accounts | transactions | provenance stand-in |
//! |---------|----------|--------------|---------------------|
//! | STONE   | 5        | 12           | Stone (1962) / Byron (1978) example |
//! | TURK    | 8        | 19           | perturbed 1973 Turkish SAM |
//! | SRI     | 6        | 20           | perturbed 1970 Sri Lanka SAM |
//! | USDA82E | 133      | 17 689       | perturbed-to-dense USDA 1982 SAM |
//! | S500    | 500      | 250 000      | random large-scale SAM |
//! | S750    | 750      | 562 500      | random |
//! | S1000   | 1000     | 1 000 000    | random |
//!
//! A SAM estimation problem is **balanced** (paper §2, objective 9): every
//! account's receipts (row total) must equal its expenditures (column
//! total), with the common totals estimated alongside the entries. The raw
//! data come from disparate sources, so the observed row/column sums
//! disagree; priors `s⁰` are set to the average of the two, and chi-square
//! weights are used throughout.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{DiagonalProblem, TotalSpec, ZeroPolicy};
use sea_linalg::DenseMatrix;

/// The Table 3 dataset identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamInstance {
    /// Stone's 5-account example (12 transactions).
    Stone,
    /// Perturbed 1973 Turkish SAM (8 accounts, 19 transactions).
    Turk,
    /// Perturbed 1970 Sri Lanka SAM (6 accounts, 20 transactions).
    Sri,
    /// Perturbed USDA 1982 SAM, made fully dense (133 accounts).
    Usda82e,
    /// Random large-scale SAM with 500 accounts.
    S500,
    /// Random large-scale SAM with 750 accounts.
    S750,
    /// Random large-scale SAM with 1000 accounts.
    S1000,
}

impl SamInstance {
    /// Paper name.
    pub fn name(self) -> &'static str {
        match self {
            SamInstance::Stone => "STONE",
            SamInstance::Turk => "TURK",
            SamInstance::Sri => "SRI",
            SamInstance::Usda82e => "USDA82E",
            SamInstance::S500 => "S500",
            SamInstance::S750 => "S750",
            SamInstance::S1000 => "S1000",
        }
    }

    /// Number of accounts (rows = columns).
    pub fn accounts(self) -> usize {
        match self {
            SamInstance::Stone => 5,
            SamInstance::Turk => 8,
            SamInstance::Sri => 6,
            SamInstance::Usda82e => 133,
            SamInstance::S500 => 500,
            SamInstance::S750 => 750,
            SamInstance::S1000 => 1000,
        }
    }

    /// Documented transaction (nonzero) count.
    pub fn transactions(self) -> usize {
        match self {
            SamInstance::Stone => 12,
            SamInstance::Turk => 19,
            SamInstance::Sri => 20,
            SamInstance::Usda82e => 17_689,
            SamInstance::S500 => 250_000,
            SamInstance::S750 => 562_500,
            SamInstance::S1000 => 1_000_000,
        }
    }

    /// All seven instances in paper order.
    pub fn all() -> [SamInstance; 7] {
        [
            SamInstance::Stone,
            SamInstance::Turk,
            SamInstance::Sri,
            SamInstance::Usda82e,
            SamInstance::S500,
            SamInstance::S750,
            SamInstance::S1000,
        ]
    }
}

/// The hand-crafted 5-account SAM with exactly 12 transactions (accounts:
/// production, households, government, capital, rest-of-world), standing in
/// for Stone's classic example. Deliberately *unbalanced* — receipts and
/// expenditures disagree, as raw SAM data do.
fn stone_matrix() -> DenseMatrix {
    DenseMatrix::from_rows(&[
        //        prod   hh    gov   cap   row
        vec![0.0, 62.0, 14.0, 20.0, 9.0], // production sells to others
        vec![75.0, 0.0, 6.0, 0.0, 3.0],   // household income sources
        vec![18.0, 11.0, 0.0, 0.0, 0.0],  // government receipts
        vec![13.0, 12.0, 0.0, 0.0, 0.0],  // savings/capital
        vec![10.0, 0.0, 0.0, 0.0, 0.0],   // rest of world
    ])
    .expect("static data")
}

/// Sparse small SAM with exactly `transactions` nonzeros, strictly no
/// diagonal entries (accounts do not transact with themselves), and every
/// row/column supported.
fn small_sam_matrix(n: usize, transactions: usize, rng: &mut ChaCha8Rng) -> DenseMatrix {
    assert!(transactions >= 2 * n - 1, "too sparse to support all lines");
    let mut m = DenseMatrix::zeros(n, n).expect("nonempty");
    let mut placed = 0usize;
    // First a ring i -> i+1 so every row and column has support.
    for i in 0..n {
        let j = (i + 1) % n;
        m.set(i, j, rng.random_range(5.0..100.0));
        placed += 1;
    }
    while placed < transactions {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i != j && m.get(i, j) == 0.0 {
            m.set(i, j, rng.random_range(1.0..100.0));
            placed += 1;
        }
    }
    m
}

/// Build the balanced estimation problem for a Table 3 instance.
///
/// Deterministic; the large random instances additionally take `seed` into
/// account so replications are possible.
pub fn sam_problem(inst: SamInstance, seed: u64) -> DiagonalProblem {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5A11 ^ seed.wrapping_mul(0x9E37_79B9));
    let n = inst.accounts();
    let (x0, zero_policy) = match inst {
        SamInstance::Stone => (stone_matrix(), ZeroPolicy::Structural),
        SamInstance::Turk => (small_sam_matrix(8, 19, &mut rng), ZeroPolicy::Structural),
        SamInstance::Sri => (small_sam_matrix(6, 20, &mut rng), ZeroPolicy::Structural),
        SamInstance::Usda82e => {
            // "Perturbed in order to make it fully dense, and a 'difficult'
            // problem": dense positive entries over several orders of
            // magnitude.
            let data: Vec<f64> = (0..n * n)
                .map(|_| rng.random_range(0.1_f64.ln()..5_000.0_f64.ln()).exp())
                .collect();
            (
                DenseMatrix::from_vec(n, n, data).expect("nonempty"),
                ZeroPolicy::Free,
            )
        }
        SamInstance::S500 | SamInstance::S750 | SamInstance::S1000 => {
            let data: Vec<f64> = (0..n * n)
                .map(|_| rng.random_range(0.1..10_000.0))
                .collect();
            (
                DenseMatrix::from_vec(n, n, data).expect("nonempty"),
                ZeroPolicy::Free,
            )
        }
    };

    // Receipts and expenditures disagree in raw data; the prior account
    // total is their average, perturbed a little (the "disparate sources").
    let rows = x0.row_sums();
    let cols = x0.col_sums();
    let s0: Vec<f64> = rows
        .iter()
        .zip(&cols)
        .map(|(r, c)| 0.5 * (r + c) * (1.0 + rng.random_range(-0.05..0.05)))
        .collect();
    let alpha: Vec<f64> = s0.iter().map(|&t| 1.0 / t.abs().max(1e-6)).collect();
    let gamma = DenseMatrix::from_vec(
        n,
        n,
        x0.as_slice()
            .iter()
            .map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 })
            .collect(),
    )
    .expect("same shape");

    DiagonalProblem::with_zero_policy(x0, gamma, TotalSpec::Balanced { alpha, s0 }, zero_policy)
        .expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_core::{solve_diagonal, SeaOptions};

    #[test]
    fn stone_has_exactly_twelve_transactions() {
        let m = stone_matrix();
        assert_eq!(m.rows(), 5);
        assert_eq!(m.count_nonzero(), 12);
        // Raw receipts != expenditures (it is an estimation problem).
        let r = m.row_sums();
        let c = m.col_sums();
        assert!(r.iter().zip(&c).any(|(a, b)| (a - b).abs() > 1.0));
    }

    #[test]
    fn small_instances_match_documented_counts() {
        for inst in [SamInstance::Stone, SamInstance::Turk, SamInstance::Sri] {
            let p = sam_problem(inst, 0);
            assert_eq!(p.m(), inst.accounts(), "{}", inst.name());
            assert_eq!(
                p.x0().count_nonzero(),
                inst.transactions(),
                "{}",
                inst.name()
            );
        }
    }

    #[test]
    fn usda_is_fully_dense() {
        let p = sam_problem(SamInstance::Usda82e, 0);
        assert_eq!(p.m(), 133);
        assert_eq!(p.x0().count_nonzero(), 133 * 133);
        assert_eq!(SamInstance::Usda82e.transactions(), 133 * 133);
    }

    #[test]
    fn stone_problem_balances_under_sea() {
        let p = sam_problem(SamInstance::Stone, 0);
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
        assert!(sol.stats.converged);
        let r = sol.x.row_sums();
        let c = sol.x.col_sums();
        for i in 0..5 {
            assert!(
                (r[i] - c[i]).abs() < 1e-6 * r[i].max(1.0),
                "account {i}: {} vs {}",
                r[i],
                c[i]
            );
        }
        // Structural zeros survive.
        assert_eq!(sol.x.get(0, 0), 0.0);
    }

    #[test]
    fn turk_and_sri_balance_under_sea() {
        for inst in [SamInstance::Turk, SamInstance::Sri] {
            let p = sam_problem(inst, 0);
            let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-9)).unwrap();
            assert!(sol.stats.converged, "{} did not converge", inst.name());
            let r = sol.x.row_sums();
            let c = sol.x.col_sums();
            for i in 0..p.m() {
                assert!((r[i] - c[i]).abs() < 1e-5 * r[i].max(1.0));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sam_problem(SamInstance::Turk, 1);
        let b = sam_problem(SamInstance::Turk, 1);
        assert_eq!(a.x0(), b.x0());
    }
}
