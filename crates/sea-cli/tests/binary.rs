//! End-to-end tests through the compiled `sea-solve` binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sea-solve")
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sea-solve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write(dir: &Path, name: &str, content: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p
}

#[test]
fn fixed_solve_round_trips_through_the_binary() {
    let dir = tmpdir("fixed");
    write(&dir, "m.csv", "10,4,6\n3,12,5\n7,2,11\n");
    write(&dir, "s.csv", "24,22,24\n");
    write(&dir, "d.csv", "25,20,25\n");
    let out = dir.join("x.csv");
    let status = Command::new(bin())
        .args([
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .status()
        .expect("binary runs");
    assert!(status.success());
    let text = std::fs::read_to_string(&out).unwrap();
    let rows: Vec<Vec<f64>> = text
        .lines()
        .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
        .collect();
    let row_sum: f64 = rows[0].iter().sum();
    assert!((row_sum - 24.0).abs() < 1e-6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_is_printed_without_arguments() {
    let output = Command::new(bin()).output().expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("sea-solve fixed"));
}

#[test]
fn bad_flags_exit_with_code_2_and_usage() {
    let output = Command::new(bin())
        .args(["fixed", "--nonsense"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("error:"));
    assert!(err.contains("USAGE"));
}

#[test]
fn solver_failures_exit_with_their_documented_code() {
    let dir = tmpdir("fail");
    write(&dir, "m.csv", "1,2\n3,4\n");
    write(&dir, "s.csv", "4,6\n");
    write(&dir, "d.csv", "5,9\n"); // inconsistent grand total
    let output = Command::new(bin())
        .args([
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    // InconsistentTotals has its own documented exit code.
    assert_eq!(output.status.code(), Some(12));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("inconsistent"));

    // An I/O failure (missing file) stays on the generic code 1.
    let output = Command::new(bin())
        .args(["info", "--matrix", "/nonexistent/m.csv"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A small problem driven to a hard (tiny-epsilon) target so supervised
/// stops can be exercised deterministically.
fn hard_problem_args(dir: &Path) -> Vec<String> {
    write(dir, "m.csv", "10,4,6\n3,12,5\n7,2,11\n");
    write(dir, "s.csv", "24,22,24\n");
    write(dir, "d.csv", "25,20,25\n");
    [
        "fixed",
        "--matrix",
        dir.join("m.csv").to_str().unwrap(),
        "--row-totals",
        dir.join("s.csv").to_str().unwrap(),
        "--col-totals",
        dir.join("d.csv").to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn iteration_cap_emits_partial_estimate_with_certificate() {
    let dir = tmpdir("itercap");
    let mut argv = hard_problem_args(&dir);
    // Unattainable tolerance + tiny cap: the solve must stop early.
    argv.extend(["--epsilon", "1e-300", "--max-iterations", "3"].map(String::from));
    let output = Command::new(bin())
        .args(&argv)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(5), "iteration_cap exit code");
    let out = String::from_utf8_lossy(&output.stdout);
    // Partial estimate: three CSV rows plus the honesty trailer.
    assert!(
        out.contains("# stopped: iteration_cap after 3 iterations"),
        "{out}"
    );
    assert!(out.contains("# kkt: stationarity"), "{out}");
    assert!(out.lines().filter(|l| !l.starts_with('#')).count() >= 3);
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("stopped early: iteration_cap"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deadline_expiry_emits_partial_estimate() {
    let dir = tmpdir("deadline");
    let mut argv = hard_problem_args(&dir);
    // An unattainable tolerance with a microscopic wall-clock budget.
    argv.extend(["--epsilon", "1e-300", "--deadline", "1e-6"].map(String::from));
    let output = Command::new(bin())
        .args(&argv)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(6), "deadline_exceeded exit code");
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(out.contains("# stopped: deadline_exceeded"), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_then_resume_completes_the_solve() {
    let dir = tmpdir("resume");
    let ck = dir.join("state.ckpt");

    // Phase 1: stop after 4 iterations, checkpointing every iteration.
    let mut argv = hard_problem_args(&dir);
    argv.extend(
        [
            "--epsilon",
            "1e-10",
            "--max-iterations",
            "4",
            "--checkpoint",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ]
        .map(String::from),
    );
    let output = Command::new(bin())
        .args(&argv)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(5));
    assert!(ck.exists(), "checkpoint file written");
    assert!(!dir.join("state.ckpt.tmp").exists(), "no tmp residue");

    // Phase 2: resume from the checkpoint and run to convergence.
    let out_csv = dir.join("x.csv");
    let mut argv = hard_problem_args(&dir);
    argv.extend(
        [
            "--epsilon",
            "1e-10",
            "--resume",
            ck.to_str().unwrap(),
            "--out",
            out_csv.to_str().unwrap(),
        ]
        .map(String::from),
    );
    let output = Command::new(bin())
        .args(&argv)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(0), "resumed solve converges");
    let text = std::fs::read_to_string(&out_csv).unwrap();
    let rows: Vec<Vec<f64>> = text
        .lines()
        .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
        .collect();
    let row_sum: f64 = rows[0].iter().sum();
    assert!((row_sum - 24.0).abs() < 1e-6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_rejects_garbage_checkpoints() {
    let dir = tmpdir("badck");
    let ck = write(&dir, "bogus.ckpt", "not a checkpoint\n");
    let mut argv = hard_problem_args(&dir);
    argv.extend(["--resume".to_string(), ck.to_str().unwrap().to_string()]);
    let output = Command::new(bin())
        .args(&argv)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("bogus.ckpt"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[cfg(unix)]
#[test]
fn sigint_yields_partial_estimate_and_exit_130() {
    let dir = tmpdir("sigint");
    // A bigger matrix with an unattainable tolerance and a huge iteration
    // budget: the solve runs until interrupted.
    let n = 60;
    let m: String = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| format!("{}", 1.0 + ((i * n + j) % 17) as f64))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n");
    let matrix = write(&dir, "m.csv", &(m + "\n"));
    let child = Command::new(bin())
        .args([
            "sam",
            "--matrix",
            matrix.to_str().unwrap(),
            "--epsilon",
            "1e-300",
            "--max-iterations",
            "500000000",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // Give the solve time to start, then deliver SIGINT.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    // wait_with_output drains the pipes while waiting, so a partial
    // estimate larger than the pipe buffer cannot deadlock the child.
    let output = child.wait_with_output().expect("child exits");
    assert_eq!(output.status.code(), Some(130), "SIGINT exit code");
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(out.contains("# stopped: cancelled"), "{out}");
    assert!(out.contains("# kkt: stationarity"), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A two-instance manifest sharing one warm-start family.
fn batch_manifest(dir: &Path) -> PathBuf {
    write(
        dir,
        "jobs.jsonl",
        "{\"id\":\"q1\",\"family\":\"trade\",\"class\":\"fixed\",\
          \"matrix\":[[10,4,6],[3,12,5],[7,2,11]],\
          \"row_totals\":[24,22,24],\"col_totals\":[25,20,25]}\n\
         {\"id\":\"q2\",\"family\":\"trade\",\"class\":\"fixed\",\
          \"matrix\":[[10,4,6],[3,12,5],[7,2,11]],\
          \"row_totals\":[24,22,24],\"col_totals\":[25,20,25]}\n",
    )
}

#[test]
fn batch_solves_a_manifest_through_the_binary() {
    let dir = tmpdir("batch");
    let manifest = batch_manifest(&dir);
    let output = Command::new(bin())
        .args([
            "batch",
            manifest.to_str().unwrap(),
            "--parallel",
            "outer:2",
            "--epsilon",
            "1e-9",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(0), "batch converges");
    let out = String::from_utf8_lossy(&output.stdout);
    // One result line per instance plus the summary trailer.
    assert_eq!(out.lines().filter(|l| l.starts_with('{')).count(), 2);
    assert!(out.contains("\"id\":\"q1\""), "{out}");
    assert!(out.contains("# batch: 2 instances, 2 converged"), "{out}");
    // Same process, one batch: the shared family resolves against the
    // empty snapshot, so both instances report a miss.
    assert_eq!(out.matches("\"cache\":\"miss\"").count(), 2, "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_stops_exit_with_the_stop_reason_code() {
    let dir = tmpdir("batch-cap");
    let manifest = batch_manifest(&dir);
    let output = Command::new(bin())
        .args([
            "batch",
            manifest.to_str().unwrap(),
            "--epsilon",
            "1e-300",
            "--max-iterations",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(5), "iteration_cap exit code");
    let out = String::from_utf8_lossy(&output.stdout);
    // The per-instance report still lands on stdout as partial output.
    assert_eq!(
        out.matches("\"stop\":\"iteration_cap\"").count(),
        2,
        "{out}"
    );
    assert!(out.contains("# batch: 2 instances, 0 converged"), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_without_a_manifest_is_a_usage_error() {
    let output = Command::new(bin())
        .args(["batch"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("manifest"), "{err}");
}

#[test]
fn stdout_output_when_no_out_flag() {
    let dir = tmpdir("stdout");
    write(&dir, "m.csv", "1,2\n3,4\n");
    write(&dir, "s.csv", "4,6\n");
    write(&dir, "d.csv", "5,5\n");
    let output = Command::new(bin())
        .args([
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
            "--weights",
            "unit",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    // Two CSV rows plus a trailing comment line.
    assert_eq!(text.lines().count(), 3);
    assert!(text.lines().last().unwrap().starts_with('#'));
    std::fs::remove_dir_all(&dir).unwrap();
}
