//! End-to-end tests through the compiled `sea-solve` binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sea-solve")
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sea-solve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write(dir: &Path, name: &str, content: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p
}

#[test]
fn fixed_solve_round_trips_through_the_binary() {
    let dir = tmpdir("fixed");
    write(&dir, "m.csv", "10,4,6\n3,12,5\n7,2,11\n");
    write(&dir, "s.csv", "24,22,24\n");
    write(&dir, "d.csv", "25,20,25\n");
    let out = dir.join("x.csv");
    let status = Command::new(bin())
        .args([
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .status()
        .expect("binary runs");
    assert!(status.success());
    let text = std::fs::read_to_string(&out).unwrap();
    let rows: Vec<Vec<f64>> = text
        .lines()
        .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
        .collect();
    let row_sum: f64 = rows[0].iter().sum();
    assert!((row_sum - 24.0).abs() < 1e-6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_is_printed_without_arguments() {
    let output = Command::new(bin()).output().expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("sea-solve fixed"));
}

#[test]
fn bad_flags_exit_with_code_2_and_usage() {
    let output = Command::new(bin())
        .args(["fixed", "--nonsense"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("error:"));
    assert!(err.contains("USAGE"));
}

#[test]
fn solver_failures_exit_with_code_1() {
    let dir = tmpdir("fail");
    write(&dir, "m.csv", "1,2\n3,4\n");
    write(&dir, "s.csv", "4,6\n");
    write(&dir, "d.csv", "5,9\n"); // inconsistent grand total
    let output = Command::new(bin())
        .args([
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("inconsistent"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stdout_output_when_no_out_flag() {
    let dir = tmpdir("stdout");
    write(&dir, "m.csv", "1,2\n3,4\n");
    write(&dir, "s.csv", "4,6\n");
    write(&dir, "d.csv", "5,5\n");
    let output = Command::new(bin())
        .args([
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
            "--weights",
            "unit",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    // Two CSV rows plus a trailing comment line.
    assert_eq!(text.lines().count(), 3);
    assert!(text.lines().last().unwrap().starts_with('#'));
    std::fs::remove_dir_all(&dir).unwrap();
}
