//! Cooperative Ctrl-C handling for solver subcommands.
//!
//! On Unix a minimal `signal(2)` handler sets a static flag that the
//! supervisor's [`CancelToken`] polls once per iteration, so an
//! interrupted solve unwinds normally: sinks flush, the partial estimate
//! is emitted with its certificate, and the process exits 130. The
//! declaration binds the C `signal` function directly (std already links
//! libc) to keep the CLI dependency-free.

use sea_core::CancelToken;
use std::sync::atomic::AtomicBool;

/// Set by the handler on the first SIGINT.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Only the atomic store: anything else is not async-signal-safe.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub fn install() -> bool {
        // SAFETY: `signal` with a handler that only stores to a static
        // atomic is async-signal-safe; the previous disposition (default
        // terminate) needs no restoration.
        unsafe { signal(SIGINT, on_sigint) };
        true
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Install the SIGINT handler (idempotent) and return a token that fires
/// when the user presses Ctrl-C. `None` on platforms without `signal(2)`,
/// where the default abrupt termination stays in place.
pub fn cancel_token() -> Option<CancelToken> {
    imp::install().then(|| CancelToken::from_static(&INTERRUPTED))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn token_tracks_the_static_flag() {
        let Some(token) = cancel_token() else {
            return; // non-unix: nothing to test
        };
        assert!(!token.is_cancelled());
        INTERRUPTED.store(true, Ordering::SeqCst);
        assert!(token.is_cancelled());
        INTERRUPTED.store(false, Ordering::SeqCst);
        assert!(!token.is_cancelled());
    }
}
