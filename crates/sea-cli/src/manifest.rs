//! Shared request/response serialization for batch manifests and the
//! `sea-serve` daemon.
//!
//! One JSON *instance object* describes one constrained matrix problem
//! plus its solve identity. The same schema is accepted on every surface
//! that takes work in: each line of a `sea-solve batch` JSONL manifest,
//! the body of a `sea-serve` `POST /solve` request, and each line of a
//! `POST /batch` body. [`result_line`] is the matching response encoding:
//! one JSON object per solved instance, identical between the CLI's
//! `--out` results file and the daemon's response bodies, so downstream
//! tooling parses one format regardless of how the solve was submitted.
//!
//! Instance fields (see `docs/OPERATIONS.md` for the full schema):
//! `id` (required string), `family` (optional warm-start key), `class`
//! (`fixed` | `elastic` | `sam`, default `fixed`), `matrix` (array of
//! equal-length numeric rows), `row_totals` / `col_totals` / `totals`
//! (per class), `total_weight` (elastic), `weights`
//! (`unit` | `chi2` | `sqrt`), `zeros` (`structural` | `free`), and
//! `storage` (`dense` | `sparse`). Unknown fields are ignored, which is
//! how serve-level extras (`tenant`, `deadline`, `epsilon`) ride on the
//! same objects.

use crate::exit::CliError;
use sea_batch::{BatchInstance, BatchItemReport, BatchProblem};
use sea_core::{DiagonalProblem, TotalSpec, WeightScheme, ZeroPolicy};
use sea_linalg::{CsrMatrix, DenseMatrix};
use sea_observe::json::{f64_to_json, parse as parse_json, JsonValue};

/// Resolve a weight-scheme name (`unit` | `sqrt` | anything else = chi2).
pub fn weight_scheme(name: &str) -> WeightScheme {
    match name {
        "unit" => WeightScheme::LeastSquares,
        "sqrt" => WeightScheme::InverseSqrt,
        _ => WeightScheme::ChiSquare,
    }
}

/// Entry weights for a prior under a scheme, as a typed CLI error.
pub fn build_gamma(x0: &DenseMatrix, scheme: WeightScheme) -> Result<DenseMatrix, CliError> {
    scheme.entry_weights(x0).map_err(CliError::Solver)
}

/// Pull a numeric vector field out of a manifest instance object.
fn manifest_vector(v: &JsonValue, key: &str, line_no: usize) -> Result<Vec<f64>, CliError> {
    let items = v
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("manifest line {line_no}: missing array field {key:?}"))?;
    items
        .iter()
        .map(|x| x.as_f64())
        .collect::<Option<Vec<f64>>>()
        .ok_or_else(|| format!("manifest line {line_no}: {key:?} holds a non-number").into())
}

/// Pull the prior matrix (array of equal-length numeric rows).
fn manifest_matrix(v: &JsonValue, line_no: usize) -> Result<DenseMatrix, CliError> {
    let rows = v
        .get("matrix")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("manifest line {line_no}: missing array field \"matrix\""))?;
    let mut data = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row
            .as_array()
            .ok_or_else(|| format!("manifest line {line_no}: \"matrix\" rows must be arrays"))?;
        let parsed: Option<Vec<f64>> = cells.iter().map(|x| x.as_f64()).collect();
        data.push(
            parsed
                .ok_or_else(|| format!("manifest line {line_no}: \"matrix\" holds a non-number"))?,
        );
    }
    DenseMatrix::from_rows(&data)
        .map_err(|e| format!("manifest line {line_no}: bad matrix: {e}").into())
}

/// Parse one *already-parsed* instance object into a batch instance.
/// `line_no` is used in error messages only (`manifest line N: …`).
pub fn instance_from_json(v: &JsonValue, line_no: usize) -> Result<BatchInstance, CliError> {
    let str_field = |key: &str| v.get(key).and_then(JsonValue::as_str).map(str::to_string);
    let id = str_field("id")
        .ok_or_else(|| format!("manifest line {line_no}: missing string field \"id\""))?;
    let family = str_field("family");
    let class = str_field("class").unwrap_or_else(|| "fixed".to_string());
    let weights = str_field("weights").unwrap_or_else(|| "chi2".to_string());
    if !["unit", "chi2", "sqrt"].contains(&weights.as_str()) {
        return Err(format!(
            "manifest line {line_no}: unknown weights {weights:?} (unit|chi2|sqrt)"
        )
        .into());
    }
    let policy = match str_field("zeros").as_deref() {
        None | Some("free") => ZeroPolicy::Free,
        Some("structural") => ZeroPolicy::Structural,
        Some(other) => {
            return Err(format!(
                "manifest line {line_no}: unknown zeros {other:?} (structural|free)"
            )
            .into())
        }
    };
    let sparse = match str_field("storage").as_deref() {
        None | Some("dense") => false,
        Some("sparse") => true,
        Some(other) => {
            return Err(format!(
                "manifest line {line_no}: unknown storage {other:?} (dense|sparse)"
            )
            .into())
        }
    };
    let x0 = manifest_matrix(v, line_no)?;
    let gamma = build_gamma(&x0, weight_scheme(&weights))?;
    let (m, n) = (x0.rows(), x0.cols());
    let spec = match class.as_str() {
        "fixed" => TotalSpec::Fixed {
            s0: manifest_vector(v, "row_totals", line_no)?,
            d0: manifest_vector(v, "col_totals", line_no)?,
        },
        "elastic" => {
            let total_weight = match v.get("total_weight") {
                None => 1.0,
                Some(w) => w.as_f64().filter(|w| *w > 0.0).ok_or_else(|| {
                    format!("manifest line {line_no}: total_weight must be a positive number")
                })?,
            };
            TotalSpec::Elastic {
                alpha: vec![total_weight; m],
                s0: manifest_vector(v, "row_totals", line_no)?,
                beta: vec![total_weight; n],
                d0: manifest_vector(v, "col_totals", line_no)?,
            }
        }
        "sam" => {
            if m != n {
                return Err(CliError::Solver(sea_core::SeaError::NotSquareSam {
                    rows: m,
                    cols: n,
                }));
            }
            let s0 = match v.get("totals") {
                Some(_) => manifest_vector(v, "totals", line_no)?,
                None => {
                    let r = x0.row_sums();
                    let c = x0.col_sums();
                    r.iter().zip(&c).map(|(a, b)| 0.5 * (a + b)).collect()
                }
            };
            let alpha = s0.iter().map(|&t| 1.0 / t.abs().max(1e-9)).collect();
            TotalSpec::Balanced { alpha, s0 }
        }
        other => {
            return Err(format!(
                "manifest line {line_no}: unknown class {other:?} (fixed|elastic|sam)"
            )
            .into())
        }
    };
    let problem =
        DiagonalProblem::with_zero_policy(x0, gamma, spec, policy).map_err(CliError::Solver)?;
    let problem = if sparse {
        BatchProblem::SparseDiagonal(
            DiagonalProblem::<CsrMatrix>::from_dense_problem(&problem).map_err(CliError::Solver)?,
        )
    } else {
        BatchProblem::Diagonal(problem)
    };
    Ok(BatchInstance {
        id,
        family,
        problem,
    })
}

/// Parse one manifest line into a batch instance. The `class` field
/// mirrors the solver subcommands: `fixed`, `elastic`, or `sam`.
pub fn manifest_instance(line_no: usize, text: &str) -> Result<BatchInstance, CliError> {
    let v = parse_json(text).map_err(|e| format!("manifest line {line_no}: {e}"))?;
    instance_from_json(&v, line_no)
}

/// One instance's JSONL result line (also the `sea-serve` response body).
pub fn result_line(item: &BatchItemReport) -> String {
    result_line_with(item, &[])
}

/// [`result_line`] with caller-supplied extra fields appended after the
/// standard ones — how `sea-serve` flags serve-level outcomes (e.g.
/// `"degraded":true` on a deadline-stopped answer accepted at the
/// degraded tolerance) without the CLI's lines carrying the fields.
pub fn result_line_with(item: &BatchItemReport, extras: &[(&str, JsonValue)]) -> String {
    let mut fields = vec![
        ("index".to_string(), JsonValue::Number(item.index as f64)),
        ("id".to_string(), JsonValue::String(item.id.clone())),
    ];
    if let Some(f) = &item.family {
        fields.push(("family".to_string(), JsonValue::String(f.clone())));
    }
    fields.push((
        "cache".to_string(),
        JsonValue::String(item.warm_start.name().to_string()),
    ));
    fields.push((
        "kernel_work".to_string(),
        JsonValue::Number(item.kernel_work as f64),
    ));
    fields.push((
        "work_saved".to_string(),
        JsonValue::Number(item.work_saved as f64),
    ));
    match &item.outcome {
        Ok(sol) => {
            fields.push((
                "stop".to_string(),
                JsonValue::String(sol.stop().name().to_string()),
            ));
            fields.push(("converged".to_string(), JsonValue::Bool(sol.converged())));
            fields.push((
                "iterations".to_string(),
                JsonValue::Number(sol.iterations() as f64),
            ));
            fields.push(("objective".to_string(), f64_to_json(sol.objective())));
        }
        Err(e) => fields.push(("error".to_string(), JsonValue::String(e.to_string()))),
    }
    for (key, value) in extras {
        fields.push((key.to_string(), value.clone()));
    }
    JsonValue::Object(fields).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_fields_are_ignored() {
        // Serve-level extras (tenant/deadline/epsilon) ride on the same
        // instance objects without tripping the manifest parser.
        let line = "{\"id\":\"a\",\"class\":\"fixed\",\"tenant\":\"t1\",\"deadline\":2.5,\
                     \"epsilon\":1e-6,\"matrix\":[[1,2],[3,4]],\
                     \"row_totals\":[4,6],\"col_totals\":[5,5]}";
        let inst = manifest_instance(1, line).unwrap();
        assert_eq!(inst.id, "a");
        assert!(inst.family.is_none());
        assert_eq!(inst.problem.class(), "diagonal");
    }

    #[test]
    fn errors_carry_the_line_number() {
        let err = manifest_instance(7, "{\"class\":\"fixed\"}").unwrap_err();
        assert!(err.to_string().contains("manifest line 7"), "{err}");
        let err = manifest_instance(3, "not json").unwrap_err();
        assert!(err.to_string().contains("manifest line 3"), "{err}");
    }
}
