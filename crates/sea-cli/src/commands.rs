//! Subcommand implementations.

use crate::args::{BatchOpts, Command, CommonOpts, USAGE};
use crate::csv;
use crate::exit::CliError;
use crate::manifest::{build_gamma, manifest_instance, result_line, weight_scheme};
use crate::sigint;
use sea_baselines::ras::{ras_balance, RasOptions};
use sea_batch::{BatchEngine, BatchOptions};
use sea_core::{
    solve_diagonal_supervised, trace_from_events, Checkpoint, CheckpointPolicy, DiagonalProblem,
    Event, ExecutionTrace, KernelCounters, KernelKind, Observer, SeaOptions, SpanKind, StopReason,
    Storage, SupervisorOptions, TelemetrySample, TotalSpec, ZeroPolicy,
};
use sea_linalg::{CsrMatrix, DenseMatrix};
use sea_observe::json::parse as parse_json;
use sea_observe::jsonl::{parse_events, JsonlObserver};
use sea_observe::metrics::MetricsObserver;
use sea_observe::{
    chrome_trace, folded_stacks, parse_chrome_trace, ConvergenceEstimator, SpanProfiler,
};
use sea_parsim::SimPhase;
use sea_report::{SolveSummary, SpanBreakdown};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// Rate-limited single-line progress display: overwrites one stderr line
/// (`\r`, no newline) with the latest iteration, residual, and — once the
/// estimator has enough samples — the fitted convergence rate and an ETA.
#[derive(Debug)]
struct ProgressLine {
    /// Residual target the ETA projects to (the solve's epsilon).
    target: f64,
    /// Recent telemetry tail the rate fit runs over.
    samples: Vec<TelemetrySample>,
    last_emit: Option<Instant>,
    /// Whether anything was written (so `finish` knows to emit `\n`).
    dirty: bool,
}

impl ProgressLine {
    /// Minimum wall time between repaints, so tight solves don't turn
    /// the progress line into a stderr firehose.
    const MIN_REPAINT: Duration = Duration::from_millis(100);
    /// Samples kept for the rate fit; the estimator only reads a tail.
    const KEEP: usize = 64;

    fn new(target: f64) -> Self {
        Self {
            target,
            samples: Vec::with_capacity(Self::KEEP),
            last_emit: None,
            dirty: false,
        }
    }

    fn observe(&mut self, sample: &TelemetrySample) {
        if self.samples.len() == Self::KEEP {
            self.samples.drain(..Self::KEEP / 2);
        }
        self.samples.push(*sample);
        let now = Instant::now();
        if self
            .last_emit
            .is_some_and(|t| now.duration_since(t) < Self::MIN_REPAINT)
        {
            return;
        }
        self.last_emit = Some(now);
        let mut line = format!(
            "\r# iter {:>6}  residual {:9.3e}",
            sample.iteration, sample.residual
        );
        if let Some(eta) = ConvergenceEstimator::estimate(&self.samples, self.target) {
            line.push_str(&format!(
                "  rate {:.4}  eta {:.1}s ({:.0} iters)",
                eta.rate, eta.seconds_remaining, eta.iterations_remaining
            ));
        }
        let mut err = std::io::stderr();
        let _ = err.write_all(line.as_bytes());
        let _ = err.flush();
        self.dirty = true;
    }

    /// Terminate the overwritten line so the report prints cleanly below.
    fn finish(&mut self) {
        if self.dirty {
            let _ = writeln!(std::io::stderr());
            self.dirty = false;
        }
    }
}

/// The CLI's composite sink: an optional JSONL stream, an optional
/// metrics aggregator, an optional span profiler, and an optional TTY
/// progress line. With none requested both `enabled` and `spans_enabled`
/// report false, so the solver takes its zero-overhead path.
#[derive(Debug, Default)]
struct CliObserver {
    jsonl: Option<JsonlObserver<BufWriter<File>>>,
    metrics: Option<MetricsObserver>,
    spans: Option<SpanProfiler>,
    progress: Option<ProgressLine>,
}

impl Observer for CliObserver {
    fn enabled(&self) -> bool {
        self.jsonl.is_some() || self.metrics.is_some()
    }

    fn record(&mut self, event: &Event) {
        if let Some(j) = &mut self.jsonl {
            j.record(event);
        }
        if let Some(m) = &mut self.metrics {
            m.record(event);
        }
    }

    fn spans_enabled(&self) -> bool {
        // Progress rides the telemetry stream and metrics histograms ride
        // span leaves, so either one also turns span signalling on.
        self.spans.is_some()
            || self.progress.is_some()
            || self.metrics.as_ref().is_some_and(Observer::spans_enabled)
    }

    fn span_open(&mut self, kind: SpanKind, index: u64, tasks: u64) {
        if let Some(p) = &mut self.spans {
            p.span_open(kind, index, tasks);
        }
        if let Some(m) = &mut self.metrics {
            m.span_open(kind, index, tasks);
        }
    }

    fn span_close(&mut self, self_counters: &KernelCounters) {
        if let Some(p) = &mut self.spans {
            p.span_close(self_counters);
        }
        if let Some(m) = &mut self.metrics {
            m.span_close(self_counters);
        }
    }

    fn span_leaf(
        &mut self,
        kind: SpanKind,
        index: u64,
        rel_start_ns: u64,
        rel_end_ns: u64,
        tasks: u64,
        counters: &KernelCounters,
        detail: &'static str,
    ) {
        if let Some(p) = &mut self.spans {
            p.span_leaf(
                kind,
                index,
                rel_start_ns,
                rel_end_ns,
                tasks,
                counters,
                detail,
            );
        }
        if let Some(m) = &mut self.metrics {
            m.span_leaf(
                kind,
                index,
                rel_start_ns,
                rel_end_ns,
                tasks,
                counters,
                detail,
            );
        }
    }

    fn telemetry(&mut self, sample: &TelemetrySample) {
        if let Some(p) = &mut self.spans {
            p.telemetry(sample);
        }
        if let Some(pr) = &mut self.progress {
            pr.observe(sample);
        }
    }
}

/// Flush the profiler's ring to the requested export files, appending a
/// `# spans:` / `# flamegraph:` trailer line per file written.
fn export_spans(
    profiler: &SpanProfiler,
    trace_spans: Option<&Path>,
    flamegraph: Option<&Path>,
    notes: &mut String,
) -> Result<(), CliError> {
    let spans = profiler.spans();
    if let Some(path) = trace_spans {
        let mut doc = chrome_trace(&spans, profiler.dropped()).render();
        doc.push('\n');
        std::fs::write(path, doc).map_err(|e| format!("{}: {e}", path.display()))?;
        notes.push_str(&format!(
            "# spans: {} ({} spans, {} dropped)\n",
            path.display(),
            spans.len(),
            profiler.dropped()
        ));
    }
    if let Some(path) = flamegraph {
        std::fs::write(path, folded_stacks(&spans))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        notes.push_str(&format!("# flamegraph: {}\n", path.display()));
    }
    Ok(())
}

fn load_matrix(path: &Path) -> Result<DenseMatrix, CliError> {
    csv::read_matrix(path).map_err(|e| format!("{}: {e}", path.display()).into())
}

fn load_vector(path: &Path, expected: usize, what: &str) -> Result<Vec<f64>, CliError> {
    let v = csv::read_vector(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if v.len() != expected {
        return Err(format!(
            "{}: expected {expected} {what}, found {}",
            path.display(),
            v.len()
        )
        .into());
    }
    Ok(v)
}

fn emit(common: &CommonOpts, x: &DenseMatrix) -> Result<String, CliError> {
    match &common.out {
        Some(path) => {
            csv::write_matrix(path, x).map_err(|e| format!("{}: {e}", path.display()))?;
            Ok(format!("wrote {}\n", path.display()))
        }
        None => Ok(csv::matrix_to_csv(x)),
    }
}

/// Translate the CLI's robustness flags into supervisor configuration.
/// Resuming mutates `opts` (warm-start multipliers) as well.
fn supervisor_from(
    common: &CommonOpts,
    opts: &mut SeaOptions,
) -> Result<SupervisorOptions, CliError> {
    let mut sup = SupervisorOptions {
        cancel: sigint::cancel_token(),
        ..SupervisorOptions::default()
    };
    sup.budget.deadline = common.deadline.map(Duration::from_secs_f64);
    if let Some(path) = &common.checkpoint {
        sup.checkpoint = Some(CheckpointPolicy {
            path: path.clone(),
            every: common.checkpoint_every,
        });
    }
    if let Some(path) = &common.resume {
        let ck = Checkpoint::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        if ck.solver != "diagonal" {
            return Err(format!(
                "{}: checkpoint is for the {:?} solver, not the diagonal solver",
                path.display(),
                ck.solver
            )
            .into());
        }
        // The solver validates the multiplier length against the problem.
        opts.initial_mu = Some(ck.mu);
        sup.start_iteration = ck.iteration;
    }
    Ok(sup)
}

/// Route a built dense problem through the storage backend the user asked
/// for. The sparse image shares the dense problem's feasible set (see
/// [`DiagonalProblem::from_dense_problem`]), so both backends print the
/// same estimate.
fn solve_with_storage(common: &CommonOpts, problem: &DiagonalProblem) -> Result<String, CliError> {
    if common.storage == "sparse" {
        let sp =
            DiagonalProblem::<CsrMatrix>::from_dense_problem(problem).map_err(CliError::Solver)?;
        solve_and_emit(common, &sp)
    } else {
        solve_and_emit(common, problem)
    }
}

fn solve_and_emit<S: Storage>(
    common: &CommonOpts,
    problem: &DiagonalProblem<S>,
) -> Result<String, CliError> {
    let mut opts = SeaOptions::with_epsilon(common.epsilon);
    opts.kernel = KernelKind::parse(&common.kernel)
        .ok_or_else(|| format!("unknown kernel {:?}", common.kernel))?;
    opts.simd = sea_core::SimdMode::parse(&common.simd)
        .ok_or_else(|| format!("unknown simd policy {:?}", common.simd))?;
    opts.precision = sea_core::Precision::parse(&common.precision)
        .ok_or_else(|| format!("unknown precision {:?}", common.precision))?;
    opts.record_trace = common.trace.is_some();
    if let Some(n) = common.max_iterations {
        opts.max_iterations = n;
    }
    let sup = supervisor_from(common, &mut opts)?;
    let mut obs = CliObserver {
        jsonl: match &common.observe {
            Some(path) => {
                let f = File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
                Some(JsonlObserver::new(BufWriter::new(f)))
            }
            None => None,
        },
        metrics: common.metrics.as_ref().map(|_| MetricsObserver::new()),
        spans: (common.trace_spans.is_some() || common.flamegraph.is_some())
            .then(SpanProfiler::new),
        progress: common.progress.then(|| ProgressLine::new(common.epsilon)),
    };
    let sup_sol = solve_diagonal_supervised(problem, &opts, &sup, &mut obs);
    if let Some(p) = &mut obs.progress {
        // Terminate the overwritten stderr line before any report prints,
        // whether the solve converged, stopped, or failed.
        p.finish();
    }
    let sup_sol = sup_sol.map_err(CliError::Solver)?;
    let sol = &sup_sol.solution;
    // Flush every sink before judging convergence, so a stopped solve
    // still leaves its log/metrics behind for diagnosis.
    let mut sink_notes = String::new();
    if let Some(jsonl) = obs.jsonl.take() {
        let path = common.observe.as_ref().expect("observe path set");
        jsonl
            .finish()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        sink_notes.push_str(&format!("# events: {}\n", path.display()));
    }
    if let Some(metrics) = obs.metrics.take() {
        let path = common.metrics.as_ref().expect("metrics path set");
        std::fs::write(path, metrics.render()).map_err(|e| format!("{}: {e}", path.display()))?;
        sink_notes.push_str(&format!("# metrics: {}\n", path.display()));
    }
    if let Some(profiler) = obs.spans.take() {
        export_spans(
            &profiler,
            common.trace_spans.as_deref(),
            common.flamegraph.as_deref(),
            &mut sink_notes,
        )?;
    }
    if let Some(path) = &common.trace {
        let trace = sol
            .stats
            .trace
            .as_ref()
            .ok_or("solver recorded no execution trace")?;
        std::fs::write(path, trace.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        sink_notes.push_str(&format!("# trace: {}\n", path.display()));
    }
    if let Some(err) = &sup_sol.checkpoint_error {
        sink_notes.push_str(&format!("# checkpoint write failed: {err}\n"));
    }
    if sup_sol.kernel_fallbacks > 0 {
        sink_notes.push_str(&format!(
            "# kernel fallbacks to sort-scan: {}\n",
            sup_sol.kernel_fallbacks
        ));
    }
    if sup_sol.stop != StopReason::Converged {
        // Emit the partial estimate with an honesty stamp: why the solve
        // stopped plus the KKT residuals of the returned iterate. The
        // process still exits with the stop reason's code.
        let cert = &sup_sol.certificate;
        let x = sol.x.to_dense().map_err(CliError::Solver)?;
        let mut report = emit(common, &x)?;
        report.push_str(&format!(
            "# stopped: {} after {} iterations; residual {:.3e}\n",
            sup_sol.stop.name(),
            sol.stats.iterations,
            sol.stats.residual
        ));
        report.push_str(&format!(
            "# kkt: stationarity {:.3e}; sign {:.3e}; row residual {:.3e}; \
             col residual {:.3e}; duality gap {:.3e}\n",
            cert.max_stationarity,
            cert.max_sign_violation,
            cert.residuals.row_inf,
            cert.residuals.col_inf,
            cert.duality_gap
        ));
        report.push_str(&sink_notes);
        return Err(CliError::Stopped {
            reason: sup_sol.stop,
            report,
        });
    }
    let x = sol.x.to_dense().map_err(CliError::Solver)?;
    let mut report = emit(common, &x)?;
    report.push_str(&format!(
        "# converged in {} iterations; objective {:.6e}; max row residual {:.3e}\n",
        sol.stats.iterations, sol.stats.objective, sol.stats.residuals.row_inf
    ));
    report.push_str(&sink_notes);
    Ok(report)
}

/// The `batch` subcommand: solve a JSONL manifest of instances through
/// one engine, streaming a result line per instance plus a summary.
fn run_batch(manifest: &Path, opts: &BatchOpts) -> Result<String, CliError> {
    let text =
        std::fs::read_to_string(manifest).map_err(|e| format!("{}: {e}", manifest.display()))?;
    let mut instances = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        instances.push(manifest_instance(i + 1, t)?);
    }
    if instances.is_empty() {
        return Err(format!("{}: manifest holds no instances", manifest.display()).into());
    }

    let mut bopts = BatchOptions {
        epsilon: opts.epsilon,
        parallelism: opts.parallel,
        warm_start: opts.warm_start,
        ..BatchOptions::default()
    };
    bopts.kernel = KernelKind::parse(&opts.kernel)
        .ok_or_else(|| format!("unknown kernel {:?}", opts.kernel))?;
    bopts.simd = sea_core::SimdMode::parse(&opts.simd)
        .ok_or_else(|| format!("unknown simd policy {:?}", opts.simd))?;
    bopts.precision = sea_core::Precision::parse(&opts.precision)
        .ok_or_else(|| format!("unknown precision {:?}", opts.precision))?;
    if let Some(cap) = opts.max_iterations {
        bopts.max_iterations = cap;
    }
    bopts.supervisor.cancel = sigint::cancel_token();
    bopts.supervisor.budget.deadline = opts.deadline.map(Duration::from_secs_f64);

    let mut obs = CliObserver {
        jsonl: match &opts.observe {
            Some(path) => {
                let f = File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
                Some(JsonlObserver::new(BufWriter::new(f)))
            }
            None => None,
        },
        metrics: opts.metrics.as_ref().map(|_| MetricsObserver::new()),
        spans: (opts.trace_spans.is_some() || opts.flamegraph.is_some()).then(SpanProfiler::new),
        progress: None,
    };
    let mut engine = BatchEngine::new(bopts);
    let batch = engine.solve_batch(&instances, &mut obs);

    let mut lines = String::new();
    for item in &batch.items {
        lines.push_str(&result_line(item));
        lines.push('\n');
    }
    let mut report = match &opts.out {
        Some(path) => {
            std::fs::write(path, &lines).map_err(|e| format!("{}: {e}", path.display()))?;
            format!("wrote {}\n", path.display())
        }
        None => lines,
    };
    if let Some(jsonl) = obs.jsonl.take() {
        let path = opts.observe.as_ref().expect("observe path set");
        jsonl
            .finish()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        report.push_str(&format!("# events: {}\n", path.display()));
    }
    if let Some(metrics) = obs.metrics.take() {
        let path = opts.metrics.as_ref().expect("metrics path set");
        std::fs::write(path, metrics.render()).map_err(|e| format!("{}: {e}", path.display()))?;
        report.push_str(&format!("# metrics: {}\n", path.display()));
    }
    if let Some(profiler) = obs.spans.take() {
        export_spans(
            &profiler,
            opts.trace_spans.as_deref(),
            opts.flamegraph.as_deref(),
            &mut report,
        )?;
    }
    report.push_str(&format!(
        "# batch: {} instances, {} converged, cache {} hit / {} miss, \
         kernel work {}, saved {}, {:.3}s\n",
        batch.items.len(),
        batch.converged,
        batch.cache_hits,
        batch.cache_misses,
        batch.kernel_work,
        batch.work_saved,
        batch.elapsed.as_secs_f64()
    ));

    // Exit contract: the first errored instance's typed code wins, then
    // the first non-converged stop's code, then 0. Non-converged batches
    // still carry the full per-instance report as partial output.
    if let Some(e) = batch.items.iter().find_map(|i| i.outcome.as_ref().err()) {
        return Err(CliError::Solver(e.clone()));
    }
    if let Some(stop) = batch
        .items
        .iter()
        .filter_map(|i| i.outcome.as_ref().ok())
        .map(|s| s.stop())
        .find(|s| *s != StopReason::Converged)
    {
        return Err(CliError::Stopped {
            reason: stop,
            report,
        });
    }
    Ok(report)
}

/// Convert a replayed trace into simulator phases (mirrors the conversion
/// the bench harness applies to in-process traces).
fn trace_to_sim_phases(trace: &ExecutionTrace) -> Vec<SimPhase> {
    use sea_core::PhaseKind;
    trace
        .phases
        .iter()
        .map(|ph| match ph.kind {
            k if !k.is_parallel() => SimPhase::serial(ph.task_seconds.clone()),
            PhaseKind::Projection => SimPhase::parallel_memory_bound(ph.task_seconds.clone()),
            _ => SimPhase::parallel(ph.task_seconds.clone()),
        })
        .collect()
}

/// Convert measured span phases into simulator phases. Serial phases
/// stay serial; the projection's clamp sweep is memory-bound like the
/// event-trace replay treats it; everything else scales compute-bound.
fn span_phases_to_sim(phases: &[sea_report::SpanPhase]) -> Vec<SimPhase> {
    phases
        .iter()
        .map(|ph| match ph.kind {
            _ if ph.serial => SimPhase::serial(ph.tasks.clone()),
            sea_core::SpanKind::Projection => SimPhase::parallel_memory_bound(ph.tasks.clone()),
            _ => SimPhase::parallel(ph.tasks.clone()),
        })
        .collect()
}

fn report_from_log(
    events_path: Option<&Path>,
    spans_path: Option<&Path>,
    processors: Option<usize>,
) -> Result<String, CliError> {
    let mut out = String::new();
    let mut events = None;
    if let Some(path) = events_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let evs = parse_events(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push_str(&SolveSummary::from_events(&evs).render());
        events = Some(evs);
    }
    let mut measured = None;
    if let Some(path) = spans_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let spans = parse_chrome_trace(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&SpanBreakdown::from_spans(&spans).render());
        measured = Some(spans);
    }
    if let Some(n) = processors {
        // Prefer measured span phases over the coarser event-trace replay:
        // real per-shard timings feed the simulator instead of per-phase
        // wall time split evenly across tasks.
        let (phases, title) = match (&measured, &events) {
            (Some(spans), _) => (
                span_phases_to_sim(&SpanBreakdown::phases(spans)),
                "Simulated replay (measured span phases)",
            ),
            (None, Some(evs)) => (
                trace_to_sim_phases(&trace_from_events(evs)),
                "Simulated replay",
            ),
            (None, None) => unreachable!("report requires --events or --spans"),
        };
        // Powers of two up to N, always ending at N itself.
        let mut counts = vec![1usize];
        let mut p = 2;
        while p < n {
            counts.push(p);
            p *= 2;
        }
        if n > 1 {
            counts.push(n);
        }
        let rows = sea_parsim::speedup_table(&phases, &counts, 0.0, 0.0);
        let mut table = sea_report::Table::new(title, &["N", "T_N (s)", "S_N", "E_N"]);
        for r in &rows {
            table.push_row(vec![
                r.processors.to_string(),
                sea_report::fmt_seconds(r.time),
                format!("{:.2}", r.speedup),
                format!("{:.2}%", 100.0 * r.efficiency),
            ]);
        }
        out.push('\n');
        out.push_str(&table.render());
    }
    Ok(out)
}

/// Execute a parsed command, returning the text to print.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Info { matrix } => {
            let m = load_matrix(matrix)?;
            let rows = m.row_sums();
            let cols = m.col_sums();
            let stats = sea_linalg::stats::summarize(m.as_slice());
            Ok(format!(
                "matrix: {} x {}\nnonzero: {} ({:.1}%)\nentry range: [{}, {}], mean {:.4}\n\
                 grand total: {}\nrow sums: min {} max {}\ncol sums: min {} max {}\n",
                m.rows(),
                m.cols(),
                m.count_nonzero(),
                100.0 * m.density(),
                stats.min,
                stats.max,
                stats.mean,
                m.total(),
                rows.iter().cloned().fold(f64::INFINITY, f64::min),
                rows.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                cols.iter().cloned().fold(f64::INFINITY, f64::min),
                cols.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            ))
        }
        Command::Report {
            events,
            spans,
            processors,
        } => report_from_log(events.as_deref(), spans.as_deref(), *processors),
        Command::Batch { manifest, opts } => run_batch(manifest, opts),
        Command::Fixed {
            common,
            row_totals,
            col_totals,
        } => {
            let x0 = load_matrix(&common.matrix)?;
            let s0 = load_vector(row_totals, x0.rows(), "row totals")?;
            let d0 = load_vector(col_totals, x0.cols(), "column totals")?;
            let gamma = build_gamma(&x0, weight_scheme(&common.weights))?;
            let policy = if common.structural_zeros {
                ZeroPolicy::Structural
            } else {
                ZeroPolicy::Free
            };
            let problem =
                DiagonalProblem::with_zero_policy(x0, gamma, TotalSpec::Fixed { s0, d0 }, policy)
                    .map_err(CliError::Solver)?;
            solve_with_storage(common, &problem)
        }
        Command::Elastic {
            common,
            row_totals,
            col_totals,
            total_weight,
        } => {
            let x0 = load_matrix(&common.matrix)?;
            let s0 = load_vector(row_totals, x0.rows(), "row totals")?;
            let d0 = load_vector(col_totals, x0.cols(), "column totals")?;
            let gamma = build_gamma(&x0, weight_scheme(&common.weights))?;
            let policy = if common.structural_zeros {
                ZeroPolicy::Structural
            } else {
                ZeroPolicy::Free
            };
            let (m, n) = (x0.rows(), x0.cols());
            let problem = DiagonalProblem::with_zero_policy(
                x0,
                gamma,
                TotalSpec::Elastic {
                    alpha: vec![*total_weight; m],
                    s0,
                    beta: vec![*total_weight; n],
                    d0,
                },
                policy,
            )
            .map_err(CliError::Solver)?;
            solve_with_storage(common, &problem)
        }
        Command::Sam { common, totals } => {
            let x0 = load_matrix(&common.matrix)?;
            if x0.rows() != x0.cols() {
                return Err(CliError::Solver(sea_core::SeaError::NotSquareSam {
                    rows: x0.rows(),
                    cols: x0.cols(),
                }));
            }
            let n = x0.rows();
            let s0 = match totals {
                Some(path) => load_vector(path, n, "account totals")?,
                None => {
                    let r = x0.row_sums();
                    let c = x0.col_sums();
                    r.iter().zip(&c).map(|(a, b)| 0.5 * (a + b)).collect()
                }
            };
            let alpha: Vec<f64> = s0.iter().map(|&t| 1.0 / t.abs().max(1e-9)).collect();
            let gamma = build_gamma(&x0, weight_scheme(&common.weights))?;
            let policy = if common.structural_zeros {
                ZeroPolicy::Structural
            } else {
                ZeroPolicy::Free
            };
            let problem = DiagonalProblem::with_zero_policy(
                x0,
                gamma,
                TotalSpec::Balanced { alpha, s0 },
                policy,
            )
            .map_err(CliError::Solver)?;
            solve_with_storage(common, &problem)
        }
        Command::Ras {
            common,
            row_totals,
            col_totals,
        } => {
            let x0 = load_matrix(&common.matrix)?;
            let s0 = load_vector(row_totals, x0.rows(), "row totals")?;
            let d0 = load_vector(col_totals, x0.cols(), "column totals")?;
            let opts = RasOptions {
                epsilon: common.epsilon,
                ..RasOptions::default()
            };
            let out = ras_balance(&x0, &s0, &d0, &opts).map_err(|e| format!("RAS failed: {e}"))?;
            if !out.converged {
                return Err(format!(
                    "RAS did not converge ({:?}); the quadratic solvers may still \
                     handle this problem — try `sea-solve fixed`",
                    out.failure
                )
                .into());
            }
            let mut report = emit(common, &out.x)?;
            report.push_str(&format!(
                "# RAS converged in {} iterations\n",
                out.iterations
            ));
            Ok(report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;
    use sea_observe::json::JsonValue;
    use std::path::PathBuf;

    fn write(dir: &Path, name: &str, content: &str) -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sea-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fixed_end_to_end() {
        let dir = tmpdir("fixed");
        write(&dir, "m.csv", "1,2\n3,4\n");
        write(&dir, "s.csv", "4,6\n");
        write(&dir, "d.csv", "5\n5\n");
        let out = dir.join("x.csv");
        let argv: Vec<String> = [
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
            "--weights",
            "unit",
            "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cmd = parse_args(&argv).unwrap();
        let report = run(&cmd).unwrap();
        assert!(report.contains("converged"));
        let x = csv::read_matrix(&out).unwrap();
        let rs = x.row_sums();
        assert!((rs[0] - 4.0).abs() < 1e-6 && (rs[1] - 6.0).abs() < 1e-6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sparse_storage_matches_dense_output() {
        let dir = tmpdir("sparse");
        write(&dir, "m.csv", "1,0,2\n0,3,0\n4,0,5\n");
        write(&dir, "s.csv", "4,3,8\n");
        write(&dir, "d.csv", "5\n3\n7\n");
        let run_with = |storage: &str| {
            let argv: Vec<String> = [
                "fixed",
                "--matrix",
                dir.join("m.csv").to_str().unwrap(),
                "--row-totals",
                dir.join("s.csv").to_str().unwrap(),
                "--col-totals",
                dir.join("d.csv").to_str().unwrap(),
                "--zeros",
                "structural",
                "--weights",
                "unit",
                "--storage",
                storage,
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            run(&parse_args(&argv).unwrap()).unwrap()
        };
        let dense = run_with("dense");
        let sparse = run_with("sparse");
        // Identical CSV estimate and identical convergence trailer.
        assert_eq!(dense, sparse);
        let x = csv::read_matrix_from_str(&sparse).unwrap();
        assert_eq!(x.get(0, 1), 0.0);
        let rs = x.row_sums();
        assert!((rs[0] - 4.0).abs() < 1e-6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_accepts_sparse_storage_instances() {
        let dir = tmpdir("batch-sparse");
        let manifest = write(
            &dir,
            "jobs.jsonl",
            "{\"id\":\"dense\",\"class\":\"fixed\",\"zeros\":\"structural\",\"weights\":\"unit\",\
              \"matrix\":[[1,0,2],[0,3,0],[4,0,5]],\"row_totals\":[4,3,8],\"col_totals\":[5,3,7]}\n\
             {\"id\":\"sparse\",\"class\":\"fixed\",\"zeros\":\"structural\",\"weights\":\"unit\",\
              \"storage\":\"sparse\",\
              \"matrix\":[[1,0,2],[0,3,0],[4,0,5]],\"row_totals\":[4,3,8],\"col_totals\":[5,3,7]}\n",
        );
        let results = dir.join("r.jsonl");
        let argv: Vec<String> = [
            "batch",
            manifest.to_str().unwrap(),
            "--out",
            results.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(
            report.contains("# batch: 2 instances, 2 converged"),
            "{report}"
        );
        let text = std::fs::read_to_string(&results).unwrap();
        let lines: Vec<JsonValue> = text.lines().map(|l| parse_json(l).unwrap()).collect();
        assert_eq!(lines.len(), 2);
        // Same problem through both backends: identical objective.
        let obj_dense = lines[0].get("objective").unwrap().as_f64().unwrap();
        let obj_sparse = lines[1].get("objective").unwrap().as_f64().unwrap();
        assert_eq!(obj_dense.to_bits(), obj_sparse.to_bits());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sam_end_to_end_defaults_totals() {
        let dir = tmpdir("sam");
        write(&dir, "m.csv", "0,5,1\n2,0,3\n4,1,0\n");
        let argv: Vec<String> = [
            "sam",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--zeros",
            "structural",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        // Output on stdout: parse back the CSV lines (ignore # trailer).
        let x = csv::read_matrix_from_str(&report).unwrap();
        let rs = x.row_sums();
        let cs = x.col_sums();
        for i in 0..3 {
            assert!((rs[i] - cs[i]).abs() < 1e-5 * rs[i].max(1.0));
        }
        assert_eq!(x.get(0, 0), 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ras_end_to_end_and_failure_advice() {
        let dir = tmpdir("ras");
        write(&dir, "m.csv", "1,2\n3,4\n");
        write(&dir, "s.csv", "6,14\n");
        write(&dir, "d.csv", "8,12\n");
        let argv: Vec<String> = [
            "ras",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(report.contains("RAS converged"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn info_reports_shape() {
        let dir = tmpdir("info");
        write(&dir, "m.csv", "1,0\n3,4\n");
        let argv: Vec<String> = ["info", "--matrix", dir.join("m.csv").to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(report.contains("2 x 2"));
        assert!(report.contains("75.0%"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observe_metrics_and_trace_files_are_written() {
        let dir = tmpdir("observe");
        write(&dir, "m.csv", "1,2\n3,4\n");
        write(&dir, "s.csv", "4,6\n");
        write(&dir, "d.csv", "5\n5\n");
        let events = dir.join("events.jsonl");
        let metrics = dir.join("metrics.prom");
        let trace = dir.join("trace.json");
        let argv: Vec<String> = [
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
            "--observe",
            events.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(report.contains("# events:"));
        assert!(report.contains("# metrics:"));
        assert!(report.contains("# trace:"));

        // The JSONL log parses back; rebuilt trace matches the dumped one
        // phase for phase (the --observe/--trace acceptance round trip).
        let log = std::fs::read_to_string(&events).unwrap();
        let evs = parse_events(&log).unwrap();
        assert!(matches!(evs.first(), Some(Event::SolveStart { .. })));
        assert!(matches!(evs.last(), Some(Event::SolveEnd { .. })));
        let from_log = trace_from_events(&evs);
        let dumped = ExecutionTrace::from_json(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert_eq!(from_log, dumped);
        assert!(!dumped.phases.is_empty());

        // Metrics render in Prometheus text format.
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("# TYPE sea_solves_total counter"));
        assert!(prom.contains("sea_converged 1"));

        // And the report subcommand summarizes + replays the log.
        let argv: Vec<String> = [
            "report",
            "--events",
            events.to_str().unwrap(),
            "--processors",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let summary = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(summary.contains("serial fraction"));
        assert!(summary.contains("row_equilibration"));
        assert!(summary.contains("Simulated replay"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn span_exports_and_measured_report_end_to_end() {
        let dir = tmpdir("spans");
        write(&dir, "m.csv", "1,2\n3,4\n");
        write(&dir, "s.csv", "4,6\n");
        write(&dir, "d.csv", "5\n5\n");
        let trace = dir.join("spans.json");
        let folded = dir.join("flame.folded");
        let argv: Vec<String> = [
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
            "--weights",
            "unit",
            "--trace-spans",
            trace.to_str().unwrap(),
            "--flamegraph",
            folded.to_str().unwrap(),
            "--progress",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(report.contains("# spans:"), "{report}");
        assert!(report.contains("# flamegraph:"), "{report}");

        // The chrome-trace document parses back into a span forest rooted
        // at a solve span whose epochs nest inside it.
        let doc = parse_json(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let spans = parse_chrome_trace(&doc).unwrap();
        assert!(!spans.is_empty());
        let root = spans
            .iter()
            .find(|s| s.kind == sea_core::SpanKind::Solve)
            .expect("solve root span");
        assert!(root.parent.is_none());
        assert!(spans
            .iter()
            .any(|s| s.kind == sea_core::SpanKind::Epoch && s.parent == Some(root.id)));

        // The folded-stack export names the solve root on every line.
        let flame = std::fs::read_to_string(&folded).unwrap();
        assert!(!flame.is_empty());
        assert!(flame.lines().all(|l| l.starts_with("solve")), "{flame}");

        // `report --spans` renders the measured per-phase breakdown, and
        // `--processors` replays the measured phases through the simulator.
        let argv: Vec<String> = [
            "report",
            "--spans",
            trace.to_str().unwrap(),
            "--processors",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let summary = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(
            summary.contains("per-phase breakdown (from spans)"),
            "{summary}"
        );
        assert!(summary.contains("serial fraction"), "{summary}");
        assert!(
            summary.contains("Simulated replay (measured span phases)"),
            "{summary}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_span_export_carries_instance_leaves() {
        let dir = tmpdir("batch-spans");
        let manifest = write(
            &dir,
            "jobs.jsonl",
            "{\"id\":\"a\",\"family\":\"f\",\"class\":\"fixed\",\"weights\":\"unit\",\
              \"matrix\":[[1,2],[3,4]],\"row_totals\":[4,6],\"col_totals\":[5,5]}\n\
             {\"id\":\"b\",\"family\":\"f\",\"class\":\"fixed\",\"weights\":\"unit\",\
              \"matrix\":[[1,2],[3,4]],\"row_totals\":[4,6],\"col_totals\":[5,5]}\n",
        );
        let trace = dir.join("spans.json");
        let argv: Vec<String> = [
            "batch",
            manifest.to_str().unwrap(),
            "--trace-spans",
            trace.to_str().unwrap(),
            "--parallel",
            "outer:2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(report.contains("# spans:"), "{report}");
        let doc = parse_json(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let spans = parse_chrome_trace(&doc).unwrap();
        let batch = spans
            .iter()
            .find(|s| s.kind == sea_core::SpanKind::Batch)
            .expect("batch span");
        let instances: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == sea_core::SpanKind::Instance)
            .collect();
        assert_eq!(instances.len(), 2);
        for inst in &instances {
            assert_eq!(inst.parent, Some(batch.id));
            // Instance leaves carry the warm-start outcome as detail.
            assert!(["hit", "miss", "bypass"].contains(&inst.detail.as_str()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_understands_committed_batch_and_sparse_vocab() {
        // Regression for the golden fixtures committed by earlier PRs:
        // `report --events` must summarize both the batch framing and the
        // sparse solve's event stream, not just the original dense vocab.
        let batch_log = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../sea-batch/tests/fixtures/golden_batch.jsonl");
        let argv: Vec<String> = ["report", "--events", batch_log.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let summary = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(summary.contains("batches: 2"), "{summary}");
        assert!(summary.contains("warm-start cache:"), "{summary}");
        assert!(summary.contains("Batch instances"), "{summary}");

        let sparse_log = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../sea-core/tests/fixtures/golden_sparse_solve.jsonl");
        let argv: Vec<String> = [
            "report",
            "--events",
            sparse_log.to_str().unwrap(),
            "--processors",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let summary = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(summary.contains("row_equilibration"), "{summary}");
        assert!(summary.contains("kernel work:"), "{summary}");
        assert!(summary.contains("Simulated replay"), "{summary}");
    }

    #[test]
    fn batch_end_to_end_mixed_classes() {
        let dir = tmpdir("batch");
        let manifest = write(
            &dir,
            "jobs.jsonl",
            "# two instances, one cached family\n\
             {\"id\":\"q1\",\"family\":\"trade\",\"class\":\"fixed\",\
              \"matrix\":[[1,2],[3,4]],\"row_totals\":[4,6],\"col_totals\":[5,5],\
              \"weights\":\"unit\"}\n\
             \n\
             {\"id\":\"accounts\",\"class\":\"sam\",\"zeros\":\"structural\",\
              \"matrix\":[[0,5,1],[2,0,3],[4,1,0]]}\n",
        );
        let results = dir.join("r.jsonl");
        let events = dir.join("e.jsonl");
        let argv: Vec<String> = [
            "batch",
            manifest.to_str().unwrap(),
            "--out",
            results.to_str().unwrap(),
            "--observe",
            events.to_str().unwrap(),
            "--parallel",
            "outer:2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(
            report.contains("# batch: 2 instances, 2 converged"),
            "{report}"
        );
        assert!(report.contains("# events:"));

        // One JSON result line per instance, in submission order.
        let text = std::fs::read_to_string(&results).unwrap();
        let lines: Vec<JsonValue> = text.lines().map(|l| parse_json(l).unwrap()).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].get("id").unwrap().as_str(), Some("q1"));
        assert_eq!(lines[0].get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(lines[1].get("id").unwrap().as_str(), Some("accounts"));
        assert_eq!(lines[1].get("cache").unwrap().as_str(), Some("bypass"));
        for l in &lines {
            assert_eq!(l.get("stop").unwrap().as_str(), Some("converged"));
            assert_eq!(l.get("converged").unwrap().as_bool(), Some(true));
        }

        // The event stream is batch-framed and parses back.
        let evs = parse_events(&std::fs::read_to_string(&events).unwrap()).unwrap();
        assert!(matches!(
            evs.first(),
            Some(Event::BatchStart { instances: 2, .. })
        ));
        assert!(matches!(evs.last(), Some(Event::BatchEnd { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_manifest_errors_are_line_addressed() {
        let dir = tmpdir("batch-bad");
        let manifest = write(&dir, "jobs.jsonl", "{\"id\":\"a\",\"class\":\"fixed\"}\n");
        let argv: Vec<String> = ["batch", manifest.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(err.to_string().contains("manifest line 1"), "{err}");

        let empty = write(&dir, "empty.jsonl", "# nothing here\n");
        let argv: Vec<String> = ["batch", empty.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(err.to_string().contains("no instances"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_rejects_malformed_logs() {
        let dir = tmpdir("badlog");
        let path = write(&dir, "events.jsonl", "{\"type\":\"mystery\"}\n");
        let argv: Vec<String> = ["report", "--events", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let argv: Vec<String> = ["info", "--matrix", "/nonexistent/m.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/m.csv"));
    }

    #[test]
    fn dimension_mismatch_is_a_clean_error() {
        let dir = tmpdir("dims");
        write(&dir, "m.csv", "1,2\n3,4\n");
        write(&dir, "s.csv", "1,2,3\n");
        write(&dir, "d.csv", "5,5\n");
        let argv: Vec<String> = [
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(err.to_string().contains("expected 2 row totals"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
