//! Subcommand implementations.

use crate::args::{Command, CommonOpts, USAGE};
use crate::csv;
use sea_baselines::ras::{ras_balance, RasOptions};
use sea_core::{
    solve_diagonal, DiagonalProblem, KernelKind, SeaOptions, TotalSpec, WeightScheme,
    ZeroPolicy,
};
use sea_linalg::DenseMatrix;
use std::path::Path;

/// Human-facing failure type for the CLI.
pub type CliError = String;

fn weight_scheme(name: &str) -> WeightScheme {
    match name {
        "unit" => WeightScheme::LeastSquares,
        "sqrt" => WeightScheme::InverseSqrt,
        _ => WeightScheme::ChiSquare,
    }
}

fn load_matrix(path: &Path) -> Result<DenseMatrix, CliError> {
    csv::read_matrix(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn load_vector(path: &Path, expected: usize, what: &str) -> Result<Vec<f64>, CliError> {
    let v = csv::read_vector(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if v.len() != expected {
        return Err(format!(
            "{}: expected {expected} {what}, found {}",
            path.display(),
            v.len()
        ));
    }
    Ok(v)
}

fn build_gamma(x0: &DenseMatrix, scheme: WeightScheme) -> Result<DenseMatrix, CliError> {
    scheme
        .entry_weights(x0)
        .map_err(|e| format!("weight construction failed: {e}"))
}

fn emit(common: &CommonOpts, x: &DenseMatrix) -> Result<String, CliError> {
    match &common.out {
        Some(path) => {
            csv::write_matrix(path, x).map_err(|e| format!("{}: {e}", path.display()))?;
            Ok(format!("wrote {}\n", path.display()))
        }
        None => Ok(csv::matrix_to_csv(x)),
    }
}

fn solve_and_emit(
    common: &CommonOpts,
    problem: &DiagonalProblem,
) -> Result<String, CliError> {
    let mut opts = SeaOptions::with_epsilon(common.epsilon);
    opts.kernel = KernelKind::parse(&common.kernel)
        .ok_or_else(|| format!("unknown kernel {:?}", common.kernel))?;
    let sol = solve_diagonal(problem, &opts).map_err(|e| format!("solver failed: {e}"))?;
    if !sol.stats.converged {
        return Err(format!(
            "did not converge within {} iterations (residual {:.3e}); \
             loosen --epsilon or check the inputs",
            sol.stats.iterations, sol.stats.residual
        ));
    }
    let mut report = emit(common, &sol.x)?;
    report.push_str(&format!(
        "# converged in {} iterations; objective {:.6e}; max row residual {:.3e}\n",
        sol.stats.iterations, sol.stats.objective, sol.stats.residuals.row_inf
    ));
    Ok(report)
}

/// Execute a parsed command, returning the text to print.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Info { matrix } => {
            let m = load_matrix(matrix)?;
            let rows = m.row_sums();
            let cols = m.col_sums();
            let stats = sea_linalg::stats::summarize(m.as_slice());
            Ok(format!(
                "matrix: {} x {}\nnonzero: {} ({:.1}%)\nentry range: [{}, {}], mean {:.4}\n\
                 grand total: {}\nrow sums: min {} max {}\ncol sums: min {} max {}\n",
                m.rows(),
                m.cols(),
                m.count_nonzero(),
                100.0 * m.density(),
                stats.min,
                stats.max,
                stats.mean,
                m.total(),
                rows.iter().cloned().fold(f64::INFINITY, f64::min),
                rows.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                cols.iter().cloned().fold(f64::INFINITY, f64::min),
                cols.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            ))
        }
        Command::Fixed {
            common,
            row_totals,
            col_totals,
        } => {
            let x0 = load_matrix(&common.matrix)?;
            let s0 = load_vector(row_totals, x0.rows(), "row totals")?;
            let d0 = load_vector(col_totals, x0.cols(), "column totals")?;
            let gamma = build_gamma(&x0, weight_scheme(&common.weights))?;
            let policy = if common.structural_zeros {
                ZeroPolicy::Structural
            } else {
                ZeroPolicy::Free
            };
            let problem = DiagonalProblem::with_zero_policy(
                x0,
                gamma,
                TotalSpec::Fixed { s0, d0 },
                policy,
            )
            .map_err(|e| format!("invalid problem: {e}"))?;
            solve_and_emit(common, &problem)
        }
        Command::Elastic {
            common,
            row_totals,
            col_totals,
            total_weight,
        } => {
            let x0 = load_matrix(&common.matrix)?;
            let s0 = load_vector(row_totals, x0.rows(), "row totals")?;
            let d0 = load_vector(col_totals, x0.cols(), "column totals")?;
            let gamma = build_gamma(&x0, weight_scheme(&common.weights))?;
            let policy = if common.structural_zeros {
                ZeroPolicy::Structural
            } else {
                ZeroPolicy::Free
            };
            let (m, n) = (x0.rows(), x0.cols());
            let problem = DiagonalProblem::with_zero_policy(
                x0,
                gamma,
                TotalSpec::Elastic {
                    alpha: vec![*total_weight; m],
                    s0,
                    beta: vec![*total_weight; n],
                    d0,
                },
                policy,
            )
            .map_err(|e| format!("invalid problem: {e}"))?;
            solve_and_emit(common, &problem)
        }
        Command::Sam { common, totals } => {
            let x0 = load_matrix(&common.matrix)?;
            if x0.rows() != x0.cols() {
                return Err(format!(
                    "SAM balancing needs a square matrix, got {} x {}",
                    x0.rows(),
                    x0.cols()
                ));
            }
            let n = x0.rows();
            let s0 = match totals {
                Some(path) => load_vector(path, n, "account totals")?,
                None => {
                    let r = x0.row_sums();
                    let c = x0.col_sums();
                    r.iter().zip(&c).map(|(a, b)| 0.5 * (a + b)).collect()
                }
            };
            let alpha: Vec<f64> = s0.iter().map(|&t| 1.0 / t.abs().max(1e-9)).collect();
            let gamma = build_gamma(&x0, weight_scheme(&common.weights))?;
            let policy = if common.structural_zeros {
                ZeroPolicy::Structural
            } else {
                ZeroPolicy::Free
            };
            let problem = DiagonalProblem::with_zero_policy(
                x0,
                gamma,
                TotalSpec::Balanced { alpha, s0 },
                policy,
            )
            .map_err(|e| format!("invalid problem: {e}"))?;
            solve_and_emit(common, &problem)
        }
        Command::Ras {
            common,
            row_totals,
            col_totals,
        } => {
            let x0 = load_matrix(&common.matrix)?;
            let s0 = load_vector(row_totals, x0.rows(), "row totals")?;
            let d0 = load_vector(col_totals, x0.cols(), "column totals")?;
            let opts = RasOptions {
                epsilon: common.epsilon,
                ..RasOptions::default()
            };
            let out = ras_balance(&x0, &s0, &d0, &opts).map_err(|e| format!("RAS failed: {e}"))?;
            if !out.converged {
                return Err(format!(
                    "RAS did not converge ({:?}); the quadratic solvers may still \
                     handle this problem — try `sea-solve fixed`",
                    out.failure
                ));
            }
            let mut report = emit(common, &out.x)?;
            report.push_str(&format!("# RAS converged in {} iterations\n", out.iterations));
            Ok(report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;
    use std::path::PathBuf;

    fn write(dir: &Path, name: &str, content: &str) -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sea-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fixed_end_to_end() {
        let dir = tmpdir("fixed");
        write(&dir, "m.csv", "1,2\n3,4\n");
        write(&dir, "s.csv", "4,6\n");
        write(&dir, "d.csv", "5\n5\n");
        let out = dir.join("x.csv");
        let argv: Vec<String> = [
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
            "--weights",
            "unit",
            "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cmd = parse_args(&argv).unwrap();
        let report = run(&cmd).unwrap();
        assert!(report.contains("converged"));
        let x = csv::read_matrix(&out).unwrap();
        let rs = x.row_sums();
        assert!((rs[0] - 4.0).abs() < 1e-6 && (rs[1] - 6.0).abs() < 1e-6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sam_end_to_end_defaults_totals() {
        let dir = tmpdir("sam");
        write(&dir, "m.csv", "0,5,1\n2,0,3\n4,1,0\n");
        let argv: Vec<String> = [
            "sam",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--zeros",
            "structural",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        // Output on stdout: parse back the CSV lines (ignore # trailer).
        let x = csv::read_matrix_from_str(&report).unwrap();
        let rs = x.row_sums();
        let cs = x.col_sums();
        for i in 0..3 {
            assert!((rs[i] - cs[i]).abs() < 1e-5 * rs[i].max(1.0));
        }
        assert_eq!(x.get(0, 0), 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ras_end_to_end_and_failure_advice() {
        let dir = tmpdir("ras");
        write(&dir, "m.csv", "1,2\n3,4\n");
        write(&dir, "s.csv", "6,14\n");
        write(&dir, "d.csv", "8,12\n");
        let argv: Vec<String> = [
            "ras",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(report.contains("RAS converged"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn info_reports_shape() {
        let dir = tmpdir("info");
        write(&dir, "m.csv", "1,0\n3,4\n");
        let argv: Vec<String> = ["info", "--matrix", dir.join("m.csv").to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let report = run(&parse_args(&argv).unwrap()).unwrap();
        assert!(report.contains("2 x 2"));
        assert!(report.contains("75.0%"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let argv: Vec<String> = ["info", "--matrix", "/nonexistent/m.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(err.contains("/nonexistent/m.csv"));
    }

    #[test]
    fn dimension_mismatch_is_a_clean_error() {
        let dir = tmpdir("dims");
        write(&dir, "m.csv", "1,2\n3,4\n");
        write(&dir, "s.csv", "1,2,3\n");
        write(&dir, "d.csv", "5,5\n");
        let argv: Vec<String> = [
            "fixed",
            "--matrix",
            dir.join("m.csv").to_str().unwrap(),
            "--row-totals",
            dir.join("s.csv").to_str().unwrap(),
            "--col-totals",
            dir.join("d.csv").to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&parse_args(&argv).unwrap()).unwrap_err();
        assert!(err.contains("expected 2 row totals"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
