//! # sea-cli — balance tables from the command line
//!
//! A small production tool over the SEA solvers: read a prior matrix and
//! margin information from CSV files, solve the constrained matrix
//! problem, and write the estimate back as CSV.
//!
//! ```text
//! sea-solve fixed   --matrix X0.csv --row-totals s.csv --col-totals d.csv \
//!                   [--weights unit|chi2|sqrt] [--epsilon 1e-8] [--zeros structural] \
//!                   [--out X.csv]
//! sea-solve elastic --matrix X0.csv --row-totals s.csv --col-totals d.csv \
//!                   [--total-weight 1.0] [--weights …] [--out X.csv]
//! sea-solve sam     --matrix X0.csv [--totals s.csv] [--weights …] [--out X.csv]
//! sea-solve ras     --matrix X0.csv --row-totals s.csv --col-totals d.csv [--out X.csv]
//! sea-solve info    --matrix X0.csv
//! ```
//!
//! All machinery lives in this library crate so it is unit-testable; the
//! binary is a thin wrapper.

// `!(w > 0.0)` deliberately treats NaN as invalid input.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod args;
pub mod client;
pub mod commands;
pub mod csv;
pub mod exit;
pub mod manifest;
pub mod sigint;

pub use args::{parse_args, Command, CommonOpts};
pub use client::{ClientError, HttpReply, RetryPolicy, RetryingClient};
pub use commands::run;
pub use exit::{CliError, EXIT_USAGE};
pub use manifest::{instance_from_json, manifest_instance, result_line, result_line_with};
