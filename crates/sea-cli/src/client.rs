//! A small retrying HTTP client for the `sea-serve` daemon.
//!
//! The service's overload answers are *advisory*: 429 (shed, quota, or
//! queue full) and 503 (draining) mean "try again shortly", and carry a
//! `Retry-After` header saying when. A well-behaved client honors that
//! hint, backs off exponentially with jitter when there is none, and
//! treats transport errors (connection refused while a daemon restarts)
//! the same way. This module is that client: used by `bench_serve`'s
//! load generators and chaos soak, and reusable by any tooling that
//! talks to the daemon.
//!
//! Retries are capped by [`RetryPolicy::max_attempts`]; terminal
//! statuses (2xx, 4xx other than 429, 500, 504) are returned to the
//! caller as-is — a quarantined family's 422 or a panic's 500 is an
//! *answer*, not a transient.
//!
//! Jitter is deterministic (a seeded SplitMix64 stream), so a seeded
//! bench run replays the same backoff schedule.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How a request ultimately failed after all retries.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure on the last attempt.
    Io(std::io::Error),
    /// The response head was not parseable HTTP.
    BadResponse(String),
    /// Every attempt answered a retryable status; the last one is here.
    RetriesExhausted {
        /// Status of the final attempt.
        status: u16,
        /// Body of the final attempt.
        body: String,
        /// Attempts made (== `max_attempts`).
        attempts: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::BadResponse(msg) => write!(f, "bad response: {msg}"),
            ClientError::RetriesExhausted {
                status, attempts, ..
            } => {
                write!(
                    f,
                    "gave up after {attempts} attempts (last status {status})"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// One parsed response.
#[derive(Debug)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// `Retry-After` header in seconds, when the server sent one.
    pub retry_after: Option<f64>,
    /// Response body.
    pub body: String,
}

/// Backoff configuration.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries); min 1.
    pub max_attempts: usize,
    /// First backoff step; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on any single sleep, including server-provided `Retry-After`
    /// (a bench must not sleep for a production-sized cooldown).
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0x5EA_C11E47,
        }
    }
}

/// A retrying client bound to one server address. One TCP connection per
/// request (`Connection: close`): robust across worker restarts and
/// drains, which is exactly when this client earns its keep.
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    /// SplitMix64 state for jitter.
    rng: u64,
    /// Retries performed over the client's lifetime (bench accounting).
    pub retries: u64,
}

impl RetryingClient {
    /// A client for `addr` under `policy`.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Self {
        RetryingClient {
            addr,
            rng: policy.jitter_seed,
            policy,
            retries: 0,
        }
    }

    /// Next jitter fraction in `[0.5, 1.5)` (SplitMix64).
    fn jitter(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        0.5 + (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Sleep before retry `attempt` (0-based), honoring the server's
    /// `Retry-After` when present, else exponential backoff with jitter.
    fn backoff(&mut self, attempt: usize, retry_after: Option<f64>) {
        let secs = match retry_after {
            Some(s) if s.is_finite() && s > 0.0 => s,
            _ => {
                let exp = self.policy.base_backoff.as_secs_f64() * (1u64 << attempt.min(20)) as f64;
                exp * self.jitter()
            }
        };
        let capped = secs.min(self.policy.max_backoff.as_secs_f64());
        std::thread::sleep(Duration::from_secs_f64(capped));
    }

    /// POST `body` to `path`, retrying on transport errors, 429, and
    /// 503 until a terminal answer or the attempt cap.
    pub fn post(&mut self, path: &str, body: &str) -> Result<HttpReply, ClientError> {
        self.request("POST", path, body)
    }

    /// GET `path` with the same retry behavior as [`RetryingClient::post`].
    pub fn get(&mut self, path: &str) -> Result<HttpReply, ClientError> {
        self.request("GET", path, "")
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<HttpReply, ClientError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last: Option<HttpReply> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
                let hint = last.as_ref().and_then(|r| r.retry_after);
                self.backoff(attempt - 1, hint);
            }
            match one_exchange(self.addr, method, path, body) {
                Ok(reply) if reply.status == 429 || reply.status == 503 => {
                    last = Some(reply);
                }
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // Transport errors retry like a 503 (daemon mid-restart);
                    // surfaced only if the last attempt also fails.
                    if attempt + 1 == attempts {
                        return Err(ClientError::Io(e));
                    }
                    last = None;
                }
            }
        }
        match last {
            Some(reply) => Err(ClientError::RetriesExhausted {
                status: reply.status,
                body: reply.body,
                attempts,
            }),
            None => Err(ClientError::BadResponse(
                "no response after retries".to_string(),
            )),
        }
    }
}

/// One `Connection: close` HTTP/1.1 exchange.
fn one_exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<HttpReply> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let frame = format!(
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    writer.write_all(frame.as_bytes())?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => content_length = value.parse().unwrap_or(0),
                "retry-after" => retry_after = value.parse().ok(),
                _ => {}
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf)?;
    Ok(HttpReply {
        status,
        retry_after,
        body: String::from_utf8_lossy(&buf).into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A scripted one-thread server: answers each connection with the
    /// next canned (status, extra-header, body) frame.
    fn scripted_server(frames: Vec<(u16, Option<&'static str>, &'static str)>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = Arc::new(AtomicUsize::new(0));
        std::thread::spawn(move || {
            for (status, extra, body) in frames {
                let (mut stream, _) = match listener.accept() {
                    Ok(s) => s,
                    Err(_) => return,
                };
                // Drain the request head + body enough to not reset early.
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                let extra = extra.map(|e| format!("{e}\r\n")).unwrap_or_default();
                let frame = format!(
                    "HTTP/1.1 {status} X\r\nContent-Length: {}\r\nConnection: close\r\n{extra}\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(frame.as_bytes());
                served.fetch_add(1, Ordering::SeqCst);
            }
        });
        addr
    }

    fn quick_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 7,
        }
    }

    #[test]
    fn retries_429_until_success_honoring_retry_after() {
        let addr = scripted_server(vec![
            (429, Some("Retry-After: 0.01"), "{\"error\":\"shed\"}"),
            (429, Some("Retry-After: 0.01"), "{\"error\":\"shed\"}"),
            (200, None, "{\"ok\":true}"),
        ]);
        let mut client = RetryingClient::new(addr, quick_policy());
        let reply = client.post("/solve", "{}").unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(client.retries, 2);
    }

    #[test]
    fn terminal_statuses_are_not_retried() {
        let addr = scripted_server(vec![(422, Some("Retry-After: 5"), "{\"error\":\"q\"}")]);
        let mut client = RetryingClient::new(addr, quick_policy());
        let reply = client.post("/solve", "{}").unwrap();
        assert_eq!(reply.status, 422);
        assert_eq!(reply.retry_after, Some(5.0));
        assert_eq!(client.retries, 0);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let addr = scripted_server(vec![
            (503, None, "draining"),
            (503, None, "draining"),
            (503, None, "draining"),
            (503, None, "draining"),
        ]);
        let mut client = RetryingClient::new(addr, quick_policy());
        match client.post("/solve", "{}") {
            Err(ClientError::RetriesExhausted {
                status, attempts, ..
            }) => {
                assert_eq!(status, 503);
                assert_eq!(attempts, 4);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn jitter_stream_is_deterministic() {
        let mk = || RetryingClient::new("127.0.0.1:1".parse().unwrap(), quick_policy());
        let (mut a, mut b) = (mk(), mk());
        let ja: Vec<f64> = (0..8).map(|_| a.jitter()).collect();
        let jb: Vec<f64> = (0..8).map(|_| b.jitter()).collect();
        assert_eq!(ja, jb);
        assert!(ja.iter().all(|j| (0.5..1.5).contains(j)));
    }
}
