//! Typed CLI failure and the documented exit-code contract.
//!
//! Every [`SeaError`] variant and every non-converged [`StopReason`] maps
//! to its own exit code so scripts can branch on *why* a solve ended
//! without parsing stderr. The two `match` expressions below are
//! deliberately wildcard-free: adding a variant upstream breaks this
//! crate's compilation until the new code is assigned and documented in
//! [`crate::args::USAGE`].

use sea_core::{SeaError, StopReason};
use std::fmt;

/// Exit code for usage errors (bad flags); kept in `main`'s parse branch.
pub const EXIT_USAGE: i32 = 2;

/// A CLI failure carrying enough structure to pick its exit code.
#[derive(Debug)]
pub enum CliError {
    /// Plain operational failure (I/O, malformed files): exit 1.
    Message(String),
    /// A typed problem-validation or solver failure.
    Solver(SeaError),
    /// A supervised solve stopped before convergence. `report` is the
    /// partial estimate plus its stop/certificate trailer, ready for
    /// stdout; the process still exits nonzero so scripts notice.
    Stopped {
        /// Why the solve stopped (never `Converged` here).
        reason: StopReason,
        /// Partial estimate + `# stopped:` / `# kkt:` trailer.
        report: String,
    },
}

impl CliError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Message(_) => 1,
            CliError::Solver(e) => error_exit_code(e),
            CliError::Stopped { reason, .. } => stop_exit_code(*reason),
        }
    }

    /// The partial-output payload for stdout, when there is one.
    pub fn partial_output(&self) -> Option<&str> {
        match self {
            CliError::Stopped { report, .. } => Some(report),
            _ => None,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Message(m) => f.write_str(m),
            CliError::Solver(e) => write!(f, "{e}"),
            CliError::Stopped { reason, .. } => {
                write!(f, "solve stopped early: {}", reason.name())
            }
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Message(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Message(m.to_string())
    }
}

impl From<SeaError> for CliError {
    fn from(e: SeaError) -> Self {
        CliError::Solver(e)
    }
}

/// Exit code for a typed solver/validation failure. Exhaustive on
/// purpose — see the module docs.
pub fn error_exit_code(e: &SeaError) -> i32 {
    match e {
        SeaError::Shape { .. } => 10,
        SeaError::NonPositiveWeight { .. } => 11,
        SeaError::InconsistentTotals { .. } => 12,
        SeaError::NegativeTotal { .. } => 13,
        SeaError::NonFinite { .. } => 14,
        SeaError::NotSquareSam { .. } => 15,
        SeaError::InfeasibleSubproblem { .. } => 16,
        SeaError::NumericalBreakdown { .. } => 17,
        SeaError::Linalg(_) => 18,
        SeaError::InconsistentBounds { .. } => 19,
        SeaError::WorkerPanic { .. } => 20,
        SeaError::PatternMismatch { .. } => 21,
        SeaError::SimdUnsupported => 22,
    }
}

/// Exit code for a supervised stop. `Converged` is 0 (success);
/// `Cancelled` follows the shell convention 128 + SIGINT. Exhaustive on
/// purpose — see the module docs.
pub fn stop_exit_code(s: StopReason) -> i32 {
    match s {
        StopReason::Converged => 0,
        StopReason::IterationCap => 5,
        StopReason::DeadlineExceeded => 6,
        StopReason::WorkCapExceeded => 7,
        StopReason::Stagnated => 8,
        StopReason::Breakdown => 9,
        StopReason::Cancelled => 130,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_linalg::LinalgError;

    /// One value of every `SeaError` variant; a new variant upstream
    /// already fails to compile in `error_exit_code`, and this list keeps
    /// the distinctness check honest.
    fn all_errors() -> Vec<SeaError> {
        vec![
            SeaError::Shape {
                context: "t",
                expected: 1,
                actual: 2,
            },
            SeaError::NonPositiveWeight {
                which: "gamma",
                index: 0,
                value: 0.0,
            },
            SeaError::InconsistentTotals {
                row_total: 1.0,
                col_total: 2.0,
            },
            SeaError::NegativeTotal {
                side: "row",
                index: 0,
                value: -1.0,
            },
            SeaError::NonFinite { context: "t" },
            SeaError::NotSquareSam { rows: 2, cols: 3 },
            SeaError::InfeasibleSubproblem {
                side: "row",
                index: 0,
            },
            SeaError::NumericalBreakdown { iteration: 1 },
            SeaError::Linalg(LinalgError::Empty { context: "t" }),
            SeaError::InconsistentBounds {
                index: 0,
                lower: 1.0,
                upper: 0.0,
            },
            SeaError::WorkerPanic {
                side: "row",
                index: 0,
                message: String::new(),
            },
            SeaError::PatternMismatch { context: "t" },
            SeaError::SimdUnsupported,
        ]
    }

    #[test]
    fn every_code_is_distinct_and_documented() {
        let mut codes = vec![0, 1, EXIT_USAGE];
        codes.extend(all_errors().iter().map(error_exit_code));
        codes.extend(
            StopReason::ALL
                .iter()
                .filter(|s| **s != StopReason::Converged)
                .map(|s| stop_exit_code(*s)),
        );
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len(), "exit codes collide: {codes:?}");
        // Every nonzero code appears in the user-facing usage text.
        for c in &codes {
            assert!(
                crate::args::USAGE.contains(&c.to_string()),
                "exit code {c} is not documented in USAGE"
            );
        }
    }

    #[test]
    fn every_code_has_a_row_in_the_operations_guide() {
        // The operator guide documents each exit code as a markdown table
        // row whose first cell is the bare number: `| 6 | deadline … |`.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/OPERATIONS.md");
        let guide = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let mut codes = vec![0, 1, EXIT_USAGE];
        codes.extend(all_errors().iter().map(error_exit_code));
        codes.extend(StopReason::ALL.iter().map(|s| stop_exit_code(*s)));
        for c in codes {
            assert!(
                guide.contains(&format!("| {c} |")),
                "exit code {c} has no table row in docs/OPERATIONS.md"
            );
        }
    }

    #[test]
    fn stopped_carries_partial_output_and_code() {
        let e = CliError::Stopped {
            reason: StopReason::DeadlineExceeded,
            report: "1,2\n# stopped: deadline_exceeded\n".to_string(),
        };
        assert_eq!(e.exit_code(), 6);
        assert!(e.partial_output().unwrap().contains("# stopped:"));
        assert!(e.to_string().contains("deadline_exceeded"));

        let e: CliError = "plain".to_string().into();
        assert_eq!(e.exit_code(), 1);
        assert!(e.partial_output().is_none());
    }

    #[test]
    fn cancelled_follows_shell_convention() {
        assert_eq!(stop_exit_code(StopReason::Cancelled), 130);
        assert_eq!(stop_exit_code(StopReason::Converged), 0);
    }
}
