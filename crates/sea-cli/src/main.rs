//! Thin binary wrapper over the `sea-cli` library.
//!
//! Exit codes are the library's documented contract (see `sea-solve help`):
//! 0 converged, 2 usage, 1 generic I/O failure, and a distinct code per
//! solver error and early-stop reason. Supervised solves that stop early
//! still print their partial estimate (with its stop reason and KKT
//! certificate) to stdout before exiting nonzero.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sea_cli::parse_args(&args) {
        Ok(cmd) => match sea_cli::run(&cmd) {
            Ok(output) => print!("{output}"),
            Err(e) => {
                if let Some(partial) = e.partial_output() {
                    print!("{partial}");
                }
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", sea_cli::args::USAGE);
            std::process::exit(sea_cli::EXIT_USAGE);
        }
    }
}
