//! Thin binary wrapper over the `sea-cli` library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sea_cli::parse_args(&args) {
        Ok(cmd) => match sea_cli::run(&cmd) {
            Ok(output) => print!("{output}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", sea_cli::args::USAGE);
            std::process::exit(2);
        }
    }
}
