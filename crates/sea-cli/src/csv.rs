//! Minimal CSV reading/writing for numeric matrices and vectors.
//!
//! Deliberately dependency-free: comma-separated `f64` values, one matrix
//! row per line; blank lines and `#` comment lines are skipped. Vectors
//! may be a single row, a single column, or any rectangle read in row-major
//! order.

use sea_linalg::DenseMatrix;
use std::fmt;
use std::path::Path;

/// CSV parsing/IO errors with file/line context.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as `f64`.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending cell text.
        cell: String,
    },
    /// Rows have differing lengths.
    Ragged {
        /// 1-based line number of the first offending row.
        line: usize,
        /// Expected width.
        expected: usize,
        /// Actual width.
        actual: usize,
    },
    /// The file contained no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::BadNumber { line, cell } => {
                write!(f, "line {line}: cannot parse {cell:?} as a number")
            }
            CsvError::Ragged {
                line,
                expected,
                actual,
            } => write!(
                f,
                "line {line}: expected {expected} columns, found {actual}"
            ),
            CsvError::Empty => write!(f, "file contains no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse CSV text into rows of numbers.
pub fn parse_rows(text: &str) -> Result<Vec<Vec<f64>>, CsvError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row = Vec::new();
        for cell in line.split(',') {
            let cell = cell.trim();
            if cell.is_empty() {
                continue;
            }
            let v: f64 = cell.parse().map_err(|_| CsvError::BadNumber {
                line: idx + 1,
                cell: cell.to_string(),
            })?;
            row.push(v);
        }
        if row.is_empty() {
            continue;
        }
        match width {
            None => width = Some(row.len()),
            Some(w) if w != row.len() => {
                return Err(CsvError::Ragged {
                    line: idx + 1,
                    expected: w,
                    actual: row.len(),
                })
            }
            _ => {}
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(rows)
}

/// Read a matrix from a CSV file.
pub fn read_matrix(path: &Path) -> Result<DenseMatrix, CsvError> {
    let text = std::fs::read_to_string(path)?;
    let rows = parse_rows(&text)?;
    DenseMatrix::from_rows(&rows).map_err(|_| CsvError::Ragged {
        line: 1,
        expected: rows[0].len(),
        actual: 0,
    })
}

/// Parse a matrix directly from CSV text (used for stdout round-trips in
/// tests).
pub fn read_matrix_from_str(text: &str) -> Result<DenseMatrix, CsvError> {
    let rows = parse_rows(text)?;
    DenseMatrix::from_rows(&rows).map_err(|_| CsvError::Empty)
}

/// Read a vector (any rectangle, flattened row-major) from a CSV file.
pub fn read_vector(path: &Path) -> Result<Vec<f64>, CsvError> {
    let text = std::fs::read_to_string(path)?;
    let rows = parse_rows(&text)?;
    Ok(rows.into_iter().flatten().collect())
}

/// Write a matrix as CSV (full precision round-trippable floats).
pub fn write_matrix(path: &Path, m: &DenseMatrix) -> Result<(), CsvError> {
    let mut out = String::new();
    for i in 0..m.rows() {
        let cells: Vec<String> = m.row(i).iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Render a matrix as CSV to a string (used for stdout output).
pub fn matrix_to_csv(m: &DenseMatrix) -> String {
    let mut out = String::new();
    for i in 0..m.rows() {
        let cells: Vec<String> = m.row(i).iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_numbers() {
        let text = "# header\n1, 2.5, 3\n\n4,5e1,-6\n";
        let rows = parse_rows(text).unwrap();
        assert_eq!(rows, vec![vec![1.0, 2.5, 3.0], vec![4.0, 50.0, -6.0]]);
    }

    #[test]
    fn rejects_bad_cells_and_ragged_rows() {
        assert!(matches!(
            parse_rows("1,banana\n"),
            Err(CsvError::BadNumber { line: 1, .. })
        ));
        assert!(matches!(
            parse_rows("1,2\n3\n"),
            Err(CsvError::Ragged {
                line: 2,
                expected: 2,
                actual: 1
            })
        ));
        assert!(matches!(parse_rows("# nothing\n"), Err(CsvError::Empty)));
    }

    #[test]
    fn matrix_round_trip() {
        let dir = std::env::temp_dir().join(format!("sea-cli-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csv");
        let m = DenseMatrix::from_rows(&[vec![1.5, 2.0], vec![0.125, 4.0]]).unwrap();
        write_matrix(&path, &m).unwrap();
        let back = read_matrix(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vector_reads_rows_or_columns() {
        let row = parse_rows("1,2,3\n").unwrap();
        let col = parse_rows("1\n2\n3\n").unwrap();
        let vr: Vec<f64> = row.into_iter().flatten().collect();
        let vc: Vec<f64> = col.into_iter().flatten().collect();
        assert_eq!(vr, vc);
    }

    #[test]
    fn display_messages_have_context() {
        let e = CsvError::BadNumber {
            line: 7,
            cell: "x".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
