//! Hand-rolled argument parsing (kept dependency-free).

use sea_batch::BatchParallelism;
use std::collections::HashMap;
use std::path::PathBuf;

/// Options shared by every subcommand.
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// Prior matrix file.
    pub matrix: PathBuf,
    /// Output file (`None` = stdout).
    pub out: Option<PathBuf>,
    /// Weight scheme name: `unit`, `chi2`, or `sqrt`.
    pub weights: String,
    /// Stopping tolerance.
    pub epsilon: f64,
    /// Treat zeros of the prior as structural.
    pub structural_zeros: bool,
    /// Problem storage backend: `dense` or `sparse` (CSR over the prior's
    /// support; with `--zeros structural` only nonzero cells are stored).
    pub storage: String,
    /// Equilibration kernel name: `sortscan` or `quickselect`.
    pub kernel: String,
    /// SIMD policy: `auto` (runtime dispatch, the default), `off`
    /// (scalar oracle), or `force` (require AVX2, else exit 22).
    pub simd: String,
    /// Arithmetic precision: `f64` (default), `f32`, or `f32-mixed`
    /// (f32 iterates with a final f64 polish epoch).
    pub precision: String,
    /// Write a JSONL solve log (one event per line) to this file.
    pub observe: Option<PathBuf>,
    /// Write Prometheus text-exposition metrics to this file.
    pub metrics: Option<PathBuf>,
    /// Write the recorded execution trace (JSON) to this file.
    pub trace: Option<PathBuf>,
    /// Write a chrome-trace span profile (JSON) to this file.
    pub trace_spans: Option<PathBuf>,
    /// Write a folded-stack flamegraph text file to this path.
    pub flamegraph: Option<PathBuf>,
    /// Render a live convergence progress line (with an ETA) on stderr.
    pub progress: bool,
    /// Wall-clock budget in seconds; on expiry the partial estimate is
    /// emitted with a `deadline_exceeded` stop reason.
    pub deadline: Option<f64>,
    /// Hard iteration cap override (default: the solver's built-in cap).
    pub max_iterations: Option<usize>,
    /// Write crash-safe solver checkpoints to this path.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint cadence in iterations (with `--checkpoint`; default 64).
    pub checkpoint_every: usize,
    /// Resume a solve from a checkpoint written by `--checkpoint`.
    pub resume: Option<PathBuf>,
}

/// Options for the `batch` subcommand (one set for every instance).
#[derive(Debug, Clone)]
pub struct BatchOpts {
    /// Results file (`None` = stdout), one JSONL line per instance.
    pub out: Option<PathBuf>,
    /// Stopping tolerance.
    pub epsilon: f64,
    /// Equilibration kernel name: `sortscan` or `quickselect`.
    pub kernel: String,
    /// SIMD policy: `auto`, `off`, or `force`.
    pub simd: String,
    /// Arithmetic precision: `f64`, `f32`, or `f32-mixed`.
    pub precision: String,
    /// Hard iteration cap override (default: the engine's built-in cap).
    pub max_iterations: Option<usize>,
    /// Thread-budget policy: instance-level vs in-solve parallelism.
    pub parallel: BatchParallelism,
    /// Seed repeated families with their cached dual multipliers.
    pub warm_start: bool,
    /// Write the batch JSONL event stream to this file.
    pub observe: Option<PathBuf>,
    /// Write Prometheus text-exposition metrics to this file.
    pub metrics: Option<PathBuf>,
    /// Write a chrome-trace span profile (JSON) to this file.
    pub trace_spans: Option<PathBuf>,
    /// Write a folded-stack flamegraph text file to this path.
    pub flamegraph: Option<PathBuf>,
    /// Per-instance wall-clock budget in seconds.
    pub deadline: Option<f64>,
}

/// Parsed subcommand.
#[derive(Debug, Clone)]
pub enum Command {
    /// Fixed row/column totals.
    Fixed {
        /// Common options.
        common: CommonOpts,
        /// Row totals file.
        row_totals: PathBuf,
        /// Column totals file.
        col_totals: PathBuf,
    },
    /// Elastic (estimated) totals.
    Elastic {
        /// Common options.
        common: CommonOpts,
        /// Prior row totals file.
        row_totals: PathBuf,
        /// Prior column totals file.
        col_totals: PathBuf,
        /// Weight on the total deviations.
        total_weight: f64,
    },
    /// SAM balancing (row total i = column total i, estimated).
    Sam {
        /// Common options.
        common: CommonOpts,
        /// Optional prior totals file (default: average of the prior's
        /// row/column sums).
        totals: Option<PathBuf>,
    },
    /// RAS / iterative proportional fitting.
    Ras {
        /// Common options (weights ignored).
        common: CommonOpts,
        /// Row totals file.
        row_totals: PathBuf,
        /// Column totals file.
        col_totals: PathBuf,
    },
    /// Print matrix statistics.
    Info {
        /// Matrix file.
        matrix: PathBuf,
    },
    /// Solve many instances from a JSONL manifest in one batch.
    Batch {
        /// Manifest file: one JSON instance object per line.
        manifest: PathBuf,
        /// Batch-wide options.
        opts: BatchOpts,
    },
    /// Summarize a recorded JSONL solve log and/or a span profile.
    Report {
        /// Events file written by `--observe`.
        events: Option<PathBuf>,
        /// Chrome-trace span profile written by `--trace-spans`.
        spans: Option<PathBuf>,
        /// Replay the log on a simulated machine with this many processors.
        processors: Option<usize>,
    },
    /// Print usage.
    Help,
}

/// Parse errors are plain strings shown to the user.
pub type ParseError = String;

fn take_flags(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), ParseError> {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "structural-zeros" || name == "zeros" && it.peek().is_none() {
                flags.insert("structural-zeros".to_string(), "true".to_string());
                continue;
            }
            if name == "progress" {
                flags.insert("progress".to_string(), "true".to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} requires a value"))?;
            flags.insert(name.to_string(), value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    Ok((flags, positional))
}

fn common_from(flags: &mut HashMap<String, String>) -> Result<CommonOpts, ParseError> {
    let matrix = flags
        .remove("matrix")
        .ok_or("missing required --matrix <file>")?;
    let out = flags.remove("out").map(PathBuf::from);
    let weights = flags
        .remove("weights")
        .unwrap_or_else(|| "chi2".to_string());
    if !["unit", "chi2", "sqrt"].contains(&weights.as_str()) {
        return Err(format!(
            "unknown --weights {weights:?} (expected unit, chi2, or sqrt)"
        ));
    }
    let epsilon: f64 = match flags.remove("epsilon") {
        None => 1e-8,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--epsilon {v:?} is not a number"))?,
    };
    let structural_zeros = match flags.remove("zeros").as_deref() {
        None => flags.remove("structural-zeros").is_some(),
        Some("structural") => true,
        Some("free") => false,
        Some(other) => return Err(format!("unknown --zeros {other:?} (structural|free)")),
    };
    let kernel = flags
        .remove("kernel")
        .unwrap_or_else(|| "sortscan".to_string());
    if !["sortscan", "quickselect"].contains(&kernel.as_str()) {
        return Err(format!(
            "unknown --kernel {kernel:?} (expected sortscan or quickselect)"
        ));
    }
    let simd = flags.remove("simd").unwrap_or_else(|| "auto".to_string());
    if sea_core::SimdMode::parse(&simd).is_none() {
        return Err(format!(
            "unknown --simd {simd:?} (expected auto, off, or force)"
        ));
    }
    let precision = flags
        .remove("precision")
        .unwrap_or_else(|| "f64".to_string());
    if sea_core::Precision::parse(&precision).is_none() {
        return Err(format!(
            "unknown --precision {precision:?} (expected f64, f32, or f32-mixed)"
        ));
    }
    let storage = flags
        .remove("storage")
        .unwrap_or_else(|| "dense".to_string());
    if !["dense", "sparse"].contains(&storage.as_str()) {
        return Err(format!(
            "unknown --storage {storage:?} (expected dense or sparse)"
        ));
    }
    let observe = flags.remove("observe").map(PathBuf::from);
    let metrics = flags.remove("metrics").map(PathBuf::from);
    let trace = flags.remove("trace").map(PathBuf::from);
    let trace_spans = flags.remove("trace-spans").map(PathBuf::from);
    let flamegraph = flags.remove("flamegraph").map(PathBuf::from);
    let progress = flags.remove("progress").is_some();
    let deadline = match flags.remove("deadline") {
        None => None,
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| format!("--deadline {v:?} is not a number of seconds"))?;
            if !(secs > 0.0) {
                return Err("--deadline must be strictly positive".to_string());
            }
            Some(secs)
        }
    };
    let max_iterations = match flags.remove("max-iterations") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("--max-iterations {v:?} is not a positive integer"))?,
        ),
    };
    let checkpoint = flags.remove("checkpoint").map(PathBuf::from);
    let checkpoint_every = match flags.remove("checkpoint-every") {
        None => 64,
        Some(v) => {
            if checkpoint.is_none() {
                return Err("--checkpoint-every requires --checkpoint <path>".to_string());
            }
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("--checkpoint-every {v:?} is not a positive integer"))?
        }
    };
    let resume = flags.remove("resume").map(PathBuf::from);
    Ok(CommonOpts {
        matrix: PathBuf::from(matrix),
        out,
        weights,
        epsilon,
        structural_zeros,
        storage,
        kernel,
        simd,
        precision,
        observe,
        metrics,
        trace,
        trace_spans,
        flamegraph,
        progress,
        deadline,
        max_iterations,
        checkpoint,
        checkpoint_every,
        resume,
    })
}

fn batch_opts_from(flags: &mut HashMap<String, String>) -> Result<BatchOpts, ParseError> {
    let out = flags.remove("out").map(PathBuf::from);
    let epsilon: f64 = match flags.remove("epsilon") {
        None => 1e-8,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--epsilon {v:?} is not a number"))?,
    };
    let kernel = flags
        .remove("kernel")
        .unwrap_or_else(|| "sortscan".to_string());
    if !["sortscan", "quickselect"].contains(&kernel.as_str()) {
        return Err(format!(
            "unknown --kernel {kernel:?} (expected sortscan or quickselect)"
        ));
    }
    let simd = flags.remove("simd").unwrap_or_else(|| "auto".to_string());
    if sea_core::SimdMode::parse(&simd).is_none() {
        return Err(format!(
            "unknown --simd {simd:?} (expected auto, off, or force)"
        ));
    }
    let precision = flags
        .remove("precision")
        .unwrap_or_else(|| "f64".to_string());
    if sea_core::Precision::parse(&precision).is_none() {
        return Err(format!(
            "unknown --precision {precision:?} (expected f64, f32, or f32-mixed)"
        ));
    }
    let max_iterations = match flags.remove("max-iterations") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("--max-iterations {v:?} is not a positive integer"))?,
        ),
    };
    let parallel = match flags.remove("parallel") {
        None => BatchParallelism::Serial,
        Some(v) => BatchParallelism::parse(&v).ok_or_else(|| {
            format!("unknown --parallel {v:?} (expected serial, outer[:K], or inner[:K])")
        })?,
    };
    let warm_start = match flags.remove("warm-start").as_deref() {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("unknown --warm-start {other:?} (on|off)")),
    };
    let observe = flags.remove("observe").map(PathBuf::from);
    let metrics = flags.remove("metrics").map(PathBuf::from);
    let trace_spans = flags.remove("trace-spans").map(PathBuf::from);
    let flamegraph = flags.remove("flamegraph").map(PathBuf::from);
    let deadline = match flags.remove("deadline") {
        None => None,
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| format!("--deadline {v:?} is not a number of seconds"))?;
            if !(secs > 0.0) {
                return Err("--deadline must be strictly positive".to_string());
            }
            Some(secs)
        }
    };
    Ok(BatchOpts {
        out,
        epsilon,
        kernel,
        simd,
        precision,
        max_iterations,
        parallel,
        warm_start,
        observe,
        metrics,
        trace_spans,
        flamegraph,
        deadline,
    })
}

fn required_path(flags: &mut HashMap<String, String>, name: &str) -> Result<PathBuf, ParseError> {
    flags
        .remove(name)
        .map(PathBuf::from)
        .ok_or_else(|| format!("missing required --{name} <file>"))
}

/// Parse a full argv (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    let (mut flags, positional) = take_flags(rest)?;
    // Only `batch` takes a positional argument (its manifest file).
    if sub != "batch" && !positional.is_empty() {
        return Err(format!("unexpected argument {:?}", positional[0]));
    }
    let cmd = match sub.as_str() {
        "batch" => {
            let manifest = match positional.as_slice() {
                [one] => PathBuf::from(one),
                [] => return Err("missing manifest file (sea-solve batch <manifest>)".to_string()),
                [_, extra, ..] => return Err(format!("unexpected argument {extra:?}")),
            };
            Command::Batch {
                manifest,
                opts: batch_opts_from(&mut flags)?,
            }
        }
        "fixed" => {
            let row_totals = required_path(&mut flags, "row-totals")?;
            let col_totals = required_path(&mut flags, "col-totals")?;
            Command::Fixed {
                common: common_from(&mut flags)?,
                row_totals,
                col_totals,
            }
        }
        "elastic" => {
            let row_totals = required_path(&mut flags, "row-totals")?;
            let col_totals = required_path(&mut flags, "col-totals")?;
            let total_weight: f64 = match flags.remove("total-weight") {
                None => 1.0,
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--total-weight {v:?} is not a number"))?,
            };
            if !(total_weight > 0.0) {
                return Err("--total-weight must be strictly positive".to_string());
            }
            Command::Elastic {
                common: common_from(&mut flags)?,
                row_totals,
                col_totals,
                total_weight,
            }
        }
        "sam" => {
            let totals = flags.remove("totals").map(PathBuf::from);
            Command::Sam {
                common: common_from(&mut flags)?,
                totals,
            }
        }
        "ras" => {
            let row_totals = required_path(&mut flags, "row-totals")?;
            let col_totals = required_path(&mut flags, "col-totals")?;
            Command::Ras {
                common: common_from(&mut flags)?,
                row_totals,
                col_totals,
            }
        }
        "info" => {
            let matrix = required_path(&mut flags, "matrix")?;
            Command::Info { matrix }
        }
        "report" => {
            let events = flags.remove("events").map(PathBuf::from);
            let spans = flags.remove("spans").map(PathBuf::from);
            if events.is_none() && spans.is_none() {
                return Err("report needs --events <file> and/or --spans <file>".to_string());
            }
            let processors = match flags.remove("processors") {
                None => None,
                Some(v) => Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--processors {v:?} is not a positive integer"))?,
                ),
            };
            Command::Report {
                events,
                spans,
                processors,
            }
        }
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(format!("unknown subcommand {other:?}")),
    };
    if let Some(extra) = flags.keys().next() {
        return Err(format!("unknown flag --{extra}"));
    }
    Ok(cmd)
}

/// The usage text.
pub const USAGE: &str = "\
sea-solve — balance matrices with the splitting equilibration algorithm

USAGE:
  sea-solve fixed   --matrix X0.csv --row-totals s.csv --col-totals d.csv [opts]
  sea-solve elastic --matrix X0.csv --row-totals s.csv --col-totals d.csv
                    [--total-weight W] [opts]
  sea-solve sam     --matrix X0.csv [--totals s.csv] [opts]
  sea-solve ras     --matrix X0.csv --row-totals s.csv --col-totals d.csv [--out F]
  sea-solve batch   manifest.jsonl [--parallel serial|outer[:K]|inner[:K]]
                    [--warm-start on|off] [--epsilon E] [--max-iterations N]
                    [--deadline S] [--kernel K] [--observe F] [--metrics F]
                    [--trace-spans F] [--flamegraph F] [--progress]
                    [--out results.jsonl]
  sea-solve info    --matrix X0.csv
  sea-solve report  [--events events.jsonl] [--spans trace.json] [--processors N]

OPTIONS (solver subcommands):
  --weights unit|chi2|sqrt   deviation weights (default chi2 = 1/x0)
  --epsilon <f64>            stopping tolerance (default 1e-8)
  --zeros structural|free    zero handling (default free)
  --kernel sortscan|quickselect
                             equilibration kernel (default sortscan; both
                             produce the same solution, quickselect skips
                             the breakpoint sort)
  --storage dense|sparse     problem storage (default dense). sparse keeps
                             only the prior's support in CSR form — with
                             --zeros structural only nonzero cells are
                             stored; results match the dense path bitwise
                             on the shared support
  --simd auto|off|force      SIMD policy for the equilibration kernels
                             (default auto: runtime CPU dispatch, bitwise
                             identical to the scalar oracle; off runs the
                             scalar oracle; force requires AVX2 and exits
                             22 when the CPU lacks it); also accepted by
                             `batch`
  --precision f64|f32|f32-mixed
                             kernel arithmetic (default f64). f32-mixed
                             iterates in f32 with f64 accumulation and
                             finishes with an f64 polish epoch that must
                             pass the f64 KKT certificate; f32 is a
                             diagnostic mode without the polish. Also
                             accepted by `batch`
  --out <file>               write the estimate as CSV (default stdout)

OBSERVABILITY (quadratic solver subcommands):
  --observe <file>           stream typed solver events as JSONL
  --metrics <file>           write Prometheus text-format metrics
  --trace <file>             dump the recorded execution trace as JSON
  --trace-spans <file>       profile the solve as hierarchical spans and
                             write a chrome-trace JSON (load in
                             chrome://tracing or Perfetto; feed back to
                             `report --spans`). Bounded overhead: spans go
                             to a preallocated ring with adaptive sampling
  --flamegraph <file>        write the span profile as folded stacks
                             (one `path;to;frame <self-us>` line each) for
                             flamegraph.pl / inferno
  --progress                 live one-line convergence progress on stderr
                             (iteration, residual, convergence-rate ETA);
                             also accepted by `batch`

ROBUSTNESS (quadratic solver subcommands):
  --deadline <secs>          wall-clock budget; on expiry the partial
                             estimate is emitted with a stop reason and a
                             KKT-residual certificate
  --max-iterations <n>       hard iteration cap (partial estimate on hit)
  --checkpoint <file>        write crash-safe solver checkpoints
                             (tmp-then-rename; safe to kill at any time)
  --checkpoint-every <k>     checkpoint cadence in iterations (default 64)
  --resume <file>            resume a solve from a checkpoint

BATCH (`sea-solve batch manifest.jsonl`):
  The manifest holds one JSON instance per line (blank and # lines are
  skipped). Each instance gives an id, an optional warm-start family, a
  class mirroring the solver subcommands, and inline data:
    {\"id\":\"q1\",\"family\":\"trade\",\"class\":\"fixed\",\"matrix\":[[1,2],[3,4]],
     \"row_totals\":[4,6],\"col_totals\":[5,5],\"weights\":\"unit\"}
  classes: fixed (row_totals + col_totals), elastic (also total_weight),
  sam (square matrix, optional totals); optional per-instance fields
  weights (unit|chi2|sqrt), zeros (structural|free), and
  storage (dense|sparse — sparse solves over CSR support-only storage).
  Instances sharing a family are seeded with the family's last converged
  dual multipliers (--warm-start off disables). --parallel splits the
  thread budget across instances (outer[:K]) or inside each equilibration
  (inner[:K]); every policy returns bitwise-identical results. One JSONL
  result line per instance goes to --out (default stdout), then a
  `# batch:` summary. Exit 0 iff every instance converged; otherwise the
  first non-converged instance's stop-reason code below.

SIGINT (Ctrl-C) cancels a running solve cooperatively: the partial
estimate is emitted with stop reason `cancelled` and exit code 130.

EXIT CODES:
  0   converged                  1   I/O or internal error
  2   usage error
  stopped early (partial estimate on stdout):
  5   iteration cap              6   deadline exceeded
  7   kernel work cap            8   residual stagnated
  9   numerical breakdown (recovered snapshot)
  130 cancelled (SIGINT)
  invalid problem or solver failure:
  10  shape mismatch             11  non-positive weight
  12  inconsistent fixed totals  13  negative total
  14  non-finite input           15  SAM prior not square
  16  infeasible subproblem      17  numerical breakdown
  18  linear-algebra error       19  inconsistent bounds
  20  worker panic (contained)   21  sparse pattern mismatch
  22  SIMD forced but CPU lacks AVX2

`report` summarizes a JSONL log recorded with --observe: per-phase wall
time, serial fraction, and iterations to convergence; with --processors N
it also replays the log on a simulated N-processor machine. With
--spans trace.json it additionally breaks the solve down per span kind
(self vs inclusive time, kernel work), computes the measured critical
path, serial fraction, and speedup ceiling from the real spans, and —
with --processors — simulates the replay over the *measured* phase
durations instead of the event log's synthetic ones.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_fixed_command() {
        let cmd = parse_args(&argv(
            "fixed --matrix m.csv --row-totals s.csv --col-totals d.csv --weights unit --epsilon 1e-6 --zeros structural --out x.csv",
        ))
        .unwrap();
        match cmd {
            Command::Fixed {
                common,
                row_totals,
                col_totals,
            } => {
                assert_eq!(common.matrix, PathBuf::from("m.csv"));
                assert_eq!(common.weights, "unit");
                assert_eq!(common.epsilon, 1e-6);
                assert!(common.structural_zeros);
                assert_eq!(common.out, Some(PathBuf::from("x.csv")));
                assert_eq!(row_totals, PathBuf::from("s.csv"));
                assert_eq!(col_totals, PathBuf::from("d.csv"));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn defaults_are_sensible() {
        let cmd = parse_args(&argv("sam --matrix m.csv")).unwrap();
        match cmd {
            Command::Sam { common, totals } => {
                assert_eq!(common.weights, "chi2");
                assert_eq!(common.epsilon, 1e-8);
                assert!(!common.structural_zeros);
                assert!(totals.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_kernel_flag() {
        let cmd = parse_args(&argv("sam --matrix m.csv --kernel quickselect")).unwrap();
        match cmd {
            Command::Sam { common, .. } => assert_eq!(common.kernel, "quickselect"),
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse_args(&argv("sam --matrix m.csv")).unwrap();
        match cmd {
            Command::Sam { common, .. } => assert_eq!(common.kernel, "sortscan"),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&argv("sam --matrix m.csv --kernel mergesort")).is_err());
    }

    #[test]
    fn parses_storage_flag() {
        match parse_args(&argv("sam --matrix m.csv --storage sparse")).unwrap() {
            Command::Sam { common, .. } => assert_eq!(common.storage, "sparse"),
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&argv("sam --matrix m.csv")).unwrap() {
            Command::Sam { common, .. } => assert_eq!(common.storage, "dense"),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&argv("sam --matrix m.csv --storage coo")).is_err());
    }

    #[test]
    fn parses_observability_flags() {
        let cmd = parse_args(&argv(
            "sam --matrix m.csv --observe e.jsonl --metrics m.prom --trace t.json",
        ))
        .unwrap();
        match cmd {
            Command::Sam { common, .. } => {
                assert_eq!(common.observe, Some(PathBuf::from("e.jsonl")));
                assert_eq!(common.metrics, Some(PathBuf::from("m.prom")));
                assert_eq!(common.trace, Some(PathBuf::from("t.json")));
            }
            other => panic!("wrong command {other:?}"),
        }
        // All three default to off.
        match parse_args(&argv("sam --matrix m.csv")).unwrap() {
            Command::Sam { common, .. } => {
                assert!(common.observe.is_none() && common.metrics.is_none());
                assert!(common.trace.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_robustness_flags() {
        let cmd = parse_args(&argv(
            "sam --matrix m.csv --deadline 1.5 --max-iterations 500 \
             --checkpoint ck.txt --checkpoint-every 8 --resume old.txt",
        ))
        .unwrap();
        match cmd {
            Command::Sam { common, .. } => {
                assert_eq!(common.deadline, Some(1.5));
                assert_eq!(common.max_iterations, Some(500));
                assert_eq!(common.checkpoint, Some(PathBuf::from("ck.txt")));
                assert_eq!(common.checkpoint_every, 8);
                assert_eq!(common.resume, Some(PathBuf::from("old.txt")));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: supervision off, cadence 64.
        match parse_args(&argv("sam --matrix m.csv")).unwrap() {
            Command::Sam { common, .. } => {
                assert!(common.deadline.is_none() && common.max_iterations.is_none());
                assert!(common.checkpoint.is_none() && common.resume.is_none());
                assert_eq!(common.checkpoint_every, 64);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&argv("sam --matrix m.csv --deadline -1")).is_err());
        assert!(parse_args(&argv("sam --matrix m.csv --deadline soon")).is_err());
        assert!(parse_args(&argv("sam --matrix m.csv --max-iterations 0")).is_err());
        // Cadence without a checkpoint destination is a usage error.
        assert!(parse_args(&argv("sam --matrix m.csv --checkpoint-every 8")).is_err());
    }

    #[test]
    fn parses_report_command() {
        match parse_args(&argv("report --events e.jsonl")).unwrap() {
            Command::Report {
                events,
                spans,
                processors,
            } => {
                assert_eq!(events, Some(PathBuf::from("e.jsonl")));
                assert!(spans.is_none());
                assert!(processors.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&argv("report --events e.jsonl --processors 8")).unwrap() {
            Command::Report { processors, .. } => assert_eq!(processors, Some(8)),
            other => panic!("wrong command {other:?}"),
        }
        // --spans alone is enough; either source satisfies the command.
        match parse_args(&argv("report --spans t.json")).unwrap() {
            Command::Report { events, spans, .. } => {
                assert!(events.is_none());
                assert_eq!(spans, Some(PathBuf::from("t.json")));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&argv("report")).is_err());
        assert!(parse_args(&argv("report --events e.jsonl --processors 0")).is_err());
        assert!(parse_args(&argv("report --events e.jsonl --processors many")).is_err());
    }

    #[test]
    fn parses_span_profiling_flags() {
        let cmd = parse_args(&argv(
            "sam --matrix m.csv --trace-spans t.json --flamegraph f.folded --progress",
        ))
        .unwrap();
        match cmd {
            Command::Sam { common, .. } => {
                assert_eq!(common.trace_spans, Some(PathBuf::from("t.json")));
                assert_eq!(common.flamegraph, Some(PathBuf::from("f.folded")));
                assert!(common.progress);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: all off.
        match parse_args(&argv("sam --matrix m.csv")).unwrap() {
            Command::Sam { common, .. } => {
                assert!(common.trace_spans.is_none() && common.flamegraph.is_none());
                assert!(!common.progress);
            }
            other => panic!("wrong command {other:?}"),
        }
        // `--progress` is a bare boolean: the next token is not swallowed.
        match parse_args(&argv("sam --progress --matrix m.csv")).unwrap() {
            Command::Sam { common, .. } => {
                assert!(common.progress);
                assert_eq!(common.matrix, PathBuf::from("m.csv"));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Batch takes span exports too.
        match parse_args(&argv(
            "batch jobs.jsonl --trace-spans t.json --flamegraph f.txt",
        ))
        .unwrap()
        {
            Command::Batch { opts, .. } => {
                assert_eq!(opts.trace_spans, Some(PathBuf::from("t.json")));
                assert_eq!(opts.flamegraph, Some(PathBuf::from("f.txt")));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("fixed --matrix m.csv")).is_err()); // missing totals
        assert!(parse_args(&argv(
            "fixed --matrix m.csv --row-totals s --col-totals d --weights bogus"
        ))
        .is_err());
        assert!(parse_args(&argv("nonsense")).is_err());
        assert!(parse_args(&argv(
            "fixed --matrix m.csv --row-totals s --col-totals d --mystery 1"
        ))
        .is_err());
        assert!(parse_args(&argv(
            "elastic --matrix m.csv --row-totals s --col-totals d --total-weight -2"
        ))
        .is_err());
        assert!(parse_args(&argv(
            "fixed --matrix m.csv --row-totals s --col-totals d --simd sometimes"
        ))
        .is_err());
        assert!(parse_args(&argv(
            "fixed --matrix m.csv --row-totals s --col-totals d --precision f16"
        ))
        .is_err());
        assert!(parse_args(&argv("batch jobs.jsonl --simd sometimes")).is_err());
        assert!(parse_args(&argv("batch jobs.jsonl --precision f16")).is_err());
    }

    #[test]
    fn parses_simd_and_precision_flags() {
        // Defaults: runtime dispatch, full precision.
        match parse_args(&argv("fixed --matrix m.csv --row-totals s --col-totals d")).unwrap() {
            Command::Fixed { common, .. } => {
                assert_eq!(common.simd, "auto");
                assert_eq!(common.precision, "f64");
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&argv(
            "fixed --matrix m.csv --row-totals s --col-totals d --simd force --precision f32-mixed",
        ))
        .unwrap()
        {
            Command::Fixed { common, .. } => {
                assert_eq!(common.simd, "force");
                assert_eq!(common.precision, "f32-mixed");
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse_args(&argv("batch jobs.jsonl --simd off --precision f32")).unwrap() {
            Command::Batch { opts, .. } => {
                assert_eq!(opts.simd, "off");
                assert_eq!(opts.precision, "f32");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_batch_command() {
        let cmd = parse_args(&argv(
            "batch jobs.jsonl --parallel outer:4 --warm-start off --epsilon 1e-9 \
             --max-iterations 500 --kernel quickselect --out r.jsonl --observe e.jsonl \
             --metrics m.prom --deadline 2.5",
        ))
        .unwrap();
        match cmd {
            Command::Batch { manifest, opts } => {
                assert_eq!(manifest, PathBuf::from("jobs.jsonl"));
                assert_eq!(opts.parallel, BatchParallelism::OuterThreads(4));
                assert!(!opts.warm_start);
                assert_eq!(opts.epsilon, 1e-9);
                assert_eq!(opts.max_iterations, Some(500));
                assert_eq!(opts.kernel, "quickselect");
                assert_eq!(opts.out, Some(PathBuf::from("r.jsonl")));
                assert_eq!(opts.observe, Some(PathBuf::from("e.jsonl")));
                assert_eq!(opts.metrics, Some(PathBuf::from("m.prom")));
                assert_eq!(opts.deadline, Some(2.5));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: serial scheduling, warm starts on, no sinks.
        match parse_args(&argv("batch jobs.jsonl")).unwrap() {
            Command::Batch { opts, .. } => {
                assert_eq!(opts.parallel, BatchParallelism::Serial);
                assert!(opts.warm_start);
                assert_eq!(opts.epsilon, 1e-8);
                assert_eq!(opts.kernel, "sortscan");
                assert!(opts.out.is_none() && opts.observe.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn batch_rejects_bad_input() {
        assert!(parse_args(&argv("batch")).is_err()); // missing manifest
        assert!(parse_args(&argv("batch a.jsonl b.jsonl")).is_err());
        assert!(parse_args(&argv("batch jobs.jsonl --parallel sideways")).is_err());
        assert!(parse_args(&argv("batch jobs.jsonl --parallel outer:0")).is_err());
        assert!(parse_args(&argv("batch jobs.jsonl --warm-start maybe")).is_err());
        assert!(parse_args(&argv("batch jobs.jsonl --mystery 1")).is_err());
        // Positional manifests stay exclusive to `batch`.
        assert!(parse_args(&argv("info stray.csv --matrix m.csv")).is_err());
    }

    #[test]
    fn no_args_prints_help() {
        assert!(matches!(parse_args(&[]), Ok(Command::Help)));
        assert!(matches!(parse_args(&argv("help")), Ok(Command::Help)));
    }
}
