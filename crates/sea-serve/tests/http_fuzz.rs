//! Adversarial HTTP framing tests: property-generated malformed input —
//! truncated heads, oversized `Content-Length` declarations, keep-alive
//! garbage, arbitrary bytes — must never panic the parser, and a live
//! server fed the same garbage must answer a clean 4xx (or just close)
//! and keep serving.

use proptest::prelude::*;
use sea_serve::http::{read_request, ReadError, Request};
use sea_serve::{ServeConfig, Server};
use std::io::{BufReader, Cursor, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::OnceLock;

const MAX_BODY: usize = 1024;

/// The vendored proptest implements `Strategy` on exclusive integer
/// ranges only, and `Range<u8>` cannot spell 255 — draw wider and wrap.
fn bytes(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u16>> {
    proptest::collection::vec(0u16..256, len)
}

fn narrow(wide: &[u16]) -> Vec<u8> {
    wide.iter().map(|&b| b as u8).collect()
}

fn parse_bytes(raw: &[u8]) -> Result<Request, ReadError> {
    read_request(&mut BufReader::new(Cursor::new(raw.to_vec())), MAX_BODY)
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_the_parser(raw in bytes(0..2048)) {
        // The only contract on garbage is a typed error or a parse —
        // never a panic, never an unbounded allocation.
        let _ = parse_bytes(&narrow(&raw));
    }

    #[test]
    fn declared_length_over_cap_fails_before_reading_the_body(
        extra in 1usize..10_000
    ) {
        let declared = MAX_BODY + extra;
        let raw = format!("POST /solve HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        match parse_bytes(raw.as_bytes()) {
            Err(ReadError::BodyTooLarge { declared: d, limit }) => {
                prop_assert_eq!(d, declared);
                prop_assert_eq!(limit, MAX_BODY);
            }
            other => prop_assert!(false, "expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_requests_error_cleanly(cut in 0usize..66) {
        let full = "POST /solve HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd";
        let cut = cut.min(full.len() - 1);
        // Every proper prefix is missing bytes somewhere — head, blank
        // line, or body — so parsing must fail, and fail typed.
        prop_assert!(parse_bytes(full[..cut].as_bytes()).is_err());
    }

    #[test]
    fn keep_alive_garbage_after_a_valid_request_is_contained(
        garbage in bytes(1..512)
    ) {
        let mut raw = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nok".to_vec();
        raw.extend_from_slice(&narrow(&garbage));
        let mut reader = BufReader::new(Cursor::new(raw));
        let first = read_request(&mut reader, MAX_BODY);
        prop_assert!(first.is_ok(), "the valid frame parses: {first:?}");
        prop_assert_eq!(first.ok().map(|r| r.body), Some(b"ok".to_vec()));
        // The trailing garbage on the same connection parses or errors,
        // but never panics and never bleeds into the first request.
        let _ = read_request(&mut reader, MAX_BODY);
    }
}

/// One shared live server for the socket-level cases (leaked so its
/// threads outlive the proptest loop).
fn live_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = Server::bind(ServeConfig {
            max_body_bytes: MAX_BODY,
            ..ServeConfig::default()
        })
        .expect("bind fuzz server");
        let addr = server.addr();
        std::mem::forget(server);
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn live_server_answers_garbage_with_4xx_or_close_and_keeps_serving(
        raw in bytes(0..1024)
    ) {
        let addr = live_addr();
        if let Ok(mut conn) = TcpStream::connect(addr) {
            let _ = conn.write_all(&narrow(&raw));
            let _ = conn.shutdown(Shutdown::Write);
            let mut out = Vec::new();
            let _ = conn.take(8192).read_to_end(&mut out);
            if !out.is_empty() {
                // Random bytes cannot spell a well-formed solve request;
                // any answer the server gives must be a clean 4xx.
                let head = String::from_utf8_lossy(&out);
                prop_assert!(head.starts_with("HTTP/1.1 4"), "unexpected: {head}");
            }
        }
        // And the server is still healthy for the next client.
        let mut conn = TcpStream::connect(addr).expect("server still accepts");
        conn.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("send healthz");
        let mut reply = String::new();
        BufReader::new(conn)
            .read_to_string(&mut reply)
            .expect("read healthz");
        prop_assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }
}
