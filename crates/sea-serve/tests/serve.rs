//! Request-lifecycle tests against an in-process server, plus
//! SIGTERM-drain E2Es through the real binary. The resilience half
//! drives the chaos plan: scripted worker crashes and panics, poison
//! families, load shedding, tenant quotas, and degraded answers.

use sea_serve::{ChaosPlan, QuarantinePolicy, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A 2x2 solvable instance body; `extra` splices in serve-level fields.
fn instance_body(id: &str, family: Option<&str>, extra: &str) -> String {
    let family = family
        .map(|f| format!("\"family\":\"{f}\","))
        .unwrap_or_default();
    format!(
        "{{\"id\":\"{id}\",{family}{extra}\"matrix\":[[1.0,2.0],[3.0,4.0]],\
         \"row_totals\":[4.0,6.0],\"col_totals\":[5.0,5.0]}}"
    )
}

/// Minimal HTTP client: one request, whole response, connection closed.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    BufReader::new(conn).read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Like [`request`], also returning the raw response head (for header
/// assertions like `Retry-After`).
fn request_full(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    BufReader::new(conn).read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) => (status, head.to_string(), body.to_string()),
        None => (status, raw, String::new()),
    }
}

fn quick_server(cfg: ServeConfig) -> Server {
    Server::bind(cfg).expect("bind on an ephemeral port")
}

/// Value of an unlabeled metric line (`name value`) from a scrape.
fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(f64::NAN)
}

/// Poll `/metrics` until `pred` holds (or panic after ~2s): the
/// supervisor respawns workers asynchronously.
fn wait_for_metric(addr: std::net::SocketAddr, name: &str, pred: impl Fn(f64) -> bool) -> f64 {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let (_, metrics) = request(addr, "GET", "/metrics", "");
        let v = metric_value(&metrics, name);
        if pred(v) {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {name}; last value {v}:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn health_ready_and_unknown_routes() {
    let server = quick_server(ServeConfig::default());
    let addr = server.addr();
    assert_eq!(request(addr, "GET", "/healthz", "").0, 200);
    assert_eq!(request(addr, "GET", "/readyz", "").0, 200);
    assert_eq!(request(addr, "GET", "/nope", "").0, 404);
    assert_eq!(request(addr, "GET", "/solve", "").0, 405);
    server.shutdown();
    server.join();
}

#[test]
fn malformed_bodies_answer_400() {
    let server = quick_server(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = request(addr, "POST", "/solve", "this is not json");
    assert_eq!(status, 400);
    assert!(body.contains("\"error\""), "{body}");

    // Valid JSON, invalid instance: missing id.
    let (status, body) = request(addr, "POST", "/solve", "{\"class\":\"fixed\"}");
    assert_eq!(status, 400);
    assert!(
        body.contains("missing string field \\\"id\\\"") || body.contains("missing"),
        "{body}"
    );

    // Batch bodies report the failing line.
    let good = instance_body("a", None, "");
    let (status, body) = request(addr, "POST", "/batch", &format!("{good}\nnot json\n"));
    assert_eq!(status, 400);
    assert!(body.contains("line 2"), "{body}");

    server.shutdown();
    server.join();
}

#[test]
fn oversized_body_answers_413() {
    let server = quick_server(ServeConfig {
        max_body_bytes: 64,
        ..ServeConfig::default()
    });
    let big = instance_body("big", None, "");
    let (status, body) = request(server.addr(), "POST", "/solve", &big);
    assert_eq!(status, 413);
    assert!(body.contains("exceeds limit 64"), "{body}");
    server.shutdown();
    server.join();
}

#[test]
fn solve_solves_and_warm_start_hits_across_requests() {
    let server = quick_server(ServeConfig::default());
    let addr = server.addr();

    let body = instance_body("r1", Some("fam"), "");
    let (status, text) = request(addr, "POST", "/solve", &body);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"stop\":\"converged\""), "{text}");
    assert!(text.contains("\"cache\":\"miss\""), "{text}");

    let body = instance_body("r2", Some("fam"), "");
    let (status, text) = request(addr, "POST", "/solve", &body);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"cache\":\"hit\""), "{text}");

    // Sparse storage rides the same schema.
    let body = instance_body("r3", None, "\"storage\":\"sparse\",");
    let (status, text) = request(addr, "POST", "/solve", &body);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"stop\":\"converged\""), "{text}");

    // Batch: two lines, same family, warmed by the earlier solves.
    let manifest = format!(
        "{}\n{}\n",
        instance_body("b1", Some("fam"), ""),
        instance_body("b2", Some("fam"), "")
    );
    let (status, text) = request(addr, "POST", "/batch", &manifest);
    assert_eq!(status, 200, "{text}");
    assert_eq!(text.lines().count(), 2, "{text}");
    assert!(text.contains("\"id\":\"b1\""), "{text}");

    // Metrics reflect the traffic: well-formed families with queue depth,
    // request latency histogram, warm-start outcomes, solver metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for needle in [
        "# TYPE sea_serve_requests_total counter",
        "# TYPE sea_serve_queue_depth gauge",
        "# TYPE sea_serve_request_seconds histogram",
        "sea_serve_request_seconds_bucket",
        "sea_serve_warm_total{result=\"hit\"}",
        "sea_serve_cache_families",
        "# TYPE sea_solves_total counter",
    ] {
        assert!(
            metrics.contains(needle),
            "missing {needle:?} in:\n{metrics}"
        );
    }

    server.shutdown();
    server.join();
}

#[test]
fn over_deadline_request_answers_504_with_partial_result() {
    // A huge iteration cap so the deadline is the binding budget.
    let server = quick_server(ServeConfig {
        max_iterations: 1_000_000_000,
        ..ServeConfig::default()
    });
    // epsilon: -1 never converges (residuals are nonnegative), so the
    // request runs exactly to its deadline budget.
    let body = instance_body("slow", None, "\"deadline\":0.2,\"epsilon\":-1.0,");
    let (status, text) = request(server.addr(), "POST", "/solve", &body);
    assert_eq!(status, 504, "{text}");
    assert!(text.contains("\"stop\":\"deadline_exceeded\""), "{text}");
    assert!(text.contains("\"converged\":false"), "{text}");
    server.shutdown();
    server.join();
}

#[test]
fn queue_full_answers_429() {
    // One worker, one queue slot: the first slow request occupies the
    // worker, the second queues, the third bounces with 429.
    let server = quick_server(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        max_iterations: 1_000_000_000,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let slow = instance_body("slow", None, "\"deadline\":1.0,\"epsilon\":-1.0,");
    let mut in_flight = Vec::new();
    for _ in 0..2 {
        let slow = slow.clone();
        in_flight.push(std::thread::spawn(move || {
            request(addr, "POST", "/solve", &slow)
        }));
        // Let the request reach the queue before the next one.
        std::thread::sleep(Duration::from_millis(150));
    }
    let (status, text) = request(addr, "POST", "/solve", &slow);
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("queue full"), "{text}");
    for h in in_flight {
        let (status, _) = h.join().expect("in-flight request completes");
        assert_eq!(status, 504, "slow requests stop at their deadline");
    }
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_rejects_new_work_and_drains() {
    let server = quick_server(ServeConfig::default());
    let addr = server.addr();
    server.shutdown();
    // Admission after drain start answers 503 (the accept loop may also
    // already be closed, in which case connect fails — both are a clean
    // rejection).
    if let Ok(mut conn) = TcpStream::connect(addr) {
        let body = instance_body("late", None, "");
        let sent = write!(
            conn,
            "POST /solve HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        if sent.is_ok() {
            let mut raw = String::new();
            if BufReader::new(conn).read_to_string(&mut raw).is_ok() && !raw.is_empty() {
                assert!(raw.contains("503"), "{raw}");
            }
        }
    }
    server.join();
}

#[test]
fn contained_panic_answers_typed_500_and_worker_survives() {
    // A scripted panic *inside* the per-request boundary: the request
    // answers a typed 500 and the same worker keeps serving.
    let server = quick_server(ServeConfig {
        workers: 1,
        chaos: ChaosPlan::parse("panic@1").expect("valid plan"),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let (status, text) = request(addr, "POST", "/solve", &instance_body("p1", None, ""));
    assert_eq!(status, 500, "{text}");
    assert!(text.contains("\"panic\":true"), "{text}");
    assert!(text.contains("worker panicked"), "{text}");

    let (status, text) = request(addr, "POST", "/solve", &instance_body("p2", None, ""));
    assert_eq!(status, 200, "{text}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric_value(&metrics, "sea_serve_worker_panics_total"), 1.0);
    // No thread died: the pool never needed a respawn.
    assert_eq!(
        metric_value(&metrics, "sea_serve_worker_restarts_total"),
        0.0
    );
    assert_eq!(metric_value(&metrics, "sea_serve_workers_alive"), 1.0);
    server.shutdown();
    server.join();
}

#[test]
fn worker_crash_respawns_and_the_pool_recovers() {
    // A scripted panic *outside* the boundary kills the worker thread:
    // the in-flight request still answers a typed 500 (via the dropped
    // response channel) and the supervisor refills the slot.
    let server = quick_server(ServeConfig {
        workers: 1,
        chaos: ChaosPlan::parse("crash@1").expect("valid plan"),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let (status, text) = request(addr, "POST", "/solve", &instance_body("c1", None, ""));
    assert_eq!(status, 500, "{text}");
    assert!(text.contains("\"panic\":true"), "{text}");
    assert!(text.contains("worker crashed"), "{text}");

    wait_for_metric(addr, "sea_serve_worker_restarts_total", |v| v >= 1.0);
    wait_for_metric(addr, "sea_serve_workers_alive", |v| v == 1.0);
    let (status, text) = request(addr, "POST", "/solve", &instance_body("c2", None, ""));
    assert_eq!(status, 200, "service recovered after respawn: {text}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&metrics, "sea_serve_worker_crashes_total"),
        1.0
    );
    // One respawn is far below the default breaker threshold.
    assert_eq!(request(addr, "GET", "/readyz", "").0, 200);
    assert_eq!(metric_value(&metrics, "sea_serve_inflight"), 0.0);
    server.shutdown();
    server.join();
}

#[test]
fn restart_storm_flips_readyz_unhealthy() {
    let server = quick_server(ServeConfig {
        workers: 1,
        chaos: ChaosPlan::parse("crash@1").expect("valid plan"),
        breaker: sea_serve::BreakerPolicy {
            max_restarts: 1,
            window: Duration::from_secs(60),
        },
        ..ServeConfig::default()
    });
    let addr = server.addr();
    assert_eq!(request(addr, "GET", "/readyz", "").0, 200);
    let (status, _) = request(addr, "POST", "/solve", &instance_body("s1", None, ""));
    assert_eq!(status, 500);
    wait_for_metric(addr, "sea_serve_worker_restarts_total", |v| v >= 1.0);
    let (status, _, body) = request_full(addr, "GET", "/readyz", "");
    assert_eq!(status, 503);
    assert!(body.contains("restart-storm"), "{body}");
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&metrics, "sea_serve_restart_breaker_open"),
        1.0
    );
    server.shutdown();
    server.join();
}

#[test]
fn quarantine_opens_refuses_probes_and_closes() {
    // Two scripted NaN injections poison the family twice; the circuit
    // opens, refuses with a typed 422 + Retry-After, then heals through
    // a half-open probe once the chaos script is exhausted.
    let server = quick_server(ServeConfig {
        workers: 1,
        chaos: ChaosPlan::parse("nan@1-2").expect("valid plan"),
        quarantine: Some(QuarantinePolicy {
            strikes: 2,
            cooldown: Duration::from_millis(300),
        }),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let poison = instance_body("q", Some("toxic"), "");

    for n in 1..=2 {
        let (status, text) = request(addr, "POST", "/solve", &poison);
        assert_eq!(status, 200, "strike {n}: poison is typed, not 5xx: {text}");
        assert!(
            text.contains("breakdown") || text.contains("\"error\""),
            "strike {n} shows the watchdog outcome: {text}"
        );
    }

    let (status, head, text) = request_full(addr, "POST", "/solve", &poison);
    assert_eq!(status, 422, "{text}");
    assert!(text.contains("\"quarantined\":true"), "{text}");
    assert!(head.contains("Retry-After:"), "{head}");

    // Other families are unaffected while "toxic" is circuit-broken.
    let (status, _) = request(
        addr,
        "POST",
        "/solve",
        &instance_body("ok", Some("fine"), ""),
    );
    assert_eq!(status, 200);

    // Past the cooldown the probe is admitted; the chaos plan is spent,
    // so it solves cleanly and the circuit closes.
    std::thread::sleep(Duration::from_millis(350));
    let (status, text) = request(addr, "POST", "/solve", &poison);
    assert_eq!(status, 200, "probe heals the family: {text}");
    assert!(text.contains("\"stop\":\"converged\""), "{text}");
    let (status, _) = request(addr, "POST", "/solve", &poison);
    assert_eq!(status, 200, "circuit closed");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(metric_value(&metrics, "sea_serve_quarantine_opens_total") >= 1.0);
    assert!(metric_value(&metrics, "sea_serve_quarantine_refusals_total") >= 1.0);
    assert!(metric_value(&metrics, "sea_serve_quarantine_closes_total") >= 1.0);
    assert_eq!(
        metric_value(&metrics, "sea_serve_quarantined_families"),
        0.0
    );
    server.shutdown();
    server.join();
}

#[test]
fn doomed_requests_are_shed_at_admission_with_retry_after() {
    let server = quick_server(ServeConfig {
        workers: 1,
        max_iterations: 1_000_000_000,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Seed the wait estimator: one solve that runs to its 0.3s deadline.
    let warm = instance_body("warm", None, "\"deadline\":0.3,\"epsilon\":-1.0,");
    assert_eq!(request(addr, "POST", "/solve", &warm).0, 504);

    // Occupy the worker and put one job in the queue.
    let slow = instance_body("slow", None, "\"deadline\":1.2,\"epsilon\":-1.0,");
    let mut in_flight = Vec::new();
    for _ in 0..2 {
        let slow = slow.clone();
        in_flight.push(std::thread::spawn(move || {
            request(addr, "POST", "/solve", &slow)
        }));
        std::thread::sleep(Duration::from_millis(150));
    }

    // ~0.3s of estimated wait ahead of it, 50ms of deadline: shed now,
    // not 504 later.
    let doomed = instance_body("doomed", None, "\"deadline\":0.05,\"epsilon\":-1.0,");
    let started = Instant::now();
    let (status, head, text) = request_full(addr, "POST", "/solve", &doomed);
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("\"shed\":true"), "{text}");
    assert!(text.contains("estimated queue wait"), "{text}");
    assert!(head.contains("Retry-After:"), "{head}");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "shedding is an admission-time answer, not a timeout"
    );

    for h in in_flight {
        let (status, _) = h.join().expect("in-flight request completes");
        assert_eq!(status, 504);
    }
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(metric_value(&metrics, "sea_serve_shed_total{reason=\"wait\"}") >= 1.0);
    server.shutdown();
    server.join();
}

#[test]
fn degraded_epsilon_turns_deadline_miss_into_flagged_200() {
    // Same never-converging request as the 504 test, but the server is
    // configured to accept any residual ≤ 1.0 when the deadline fires —
    // and this 2x2 instance is far below that within 0.2s.
    let server = quick_server(ServeConfig {
        max_iterations: 1_000_000_000,
        degraded_epsilon: Some(1.0),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body = instance_body("deg", None, "\"deadline\":0.2,\"epsilon\":-1.0,");
    let (status, text) = request(addr, "POST", "/solve", &body);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"degraded\":true"), "{text}");
    assert!(text.contains("\"stop\":\"deadline_exceeded\""), "{text}");
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric_value(&metrics, "sea_serve_degraded_total"), 1.0);
    server.shutdown();
    server.join();
}

#[test]
fn tenant_quota_caps_a_flooding_tenant_not_others() {
    let server = quick_server(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        tenant_quota: Some(1),
        max_iterations: 1_000_000_000,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let flood = instance_body(
        "flood",
        None,
        "\"tenant\":\"flood\",\"deadline\":1.0,\"epsilon\":-1.0,",
    );
    let mut in_flight = Vec::new();
    // First occupies the worker; second fills the tenant's one-slot lane.
    for _ in 0..2 {
        let flood = flood.clone();
        in_flight.push(std::thread::spawn(move || {
            request(addr, "POST", "/solve", &flood)
        }));
        std::thread::sleep(Duration::from_millis(150));
    }
    let (status, head, text) = request_full(addr, "POST", "/solve", &flood);
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("admission quota"), "{text}");
    assert!(head.contains("Retry-After:"), "{head}");

    // A quiet tenant still gets in (and solved once the worker frees).
    let quiet = instance_body("quiet", None, "\"tenant\":\"quiet\",");
    let (status, text) = request(addr, "POST", "/solve", &quiet);
    assert_eq!(status, 200, "{text}");

    for h in in_flight {
        let (status, _) = h.join().expect("flood requests complete");
        assert_eq!(status, 504);
    }
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(metric_value(&metrics, "sea_serve_shed_total{reason=\"quota\"}") >= 1.0);
    server.shutdown();
    server.join();
}

#[test]
fn disconnecting_client_does_not_wedge_worker_or_gauges() {
    let server = quick_server(ServeConfig {
        workers: 1,
        max_iterations: 1_000_000_000,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    // Send a solve, then hang up before the response: the worker still
    // finishes (bounded by the deadline) and the write just fails.
    {
        let mut conn = TcpStream::connect(addr).expect("connect");
        let body = instance_body("gone", None, "\"deadline\":0.3,\"epsilon\":-1.0,");
        write!(
            conn,
            "POST /solve HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .expect("send");
        // Dropping the stream here resets the connection mid-solve.
    }
    // The next (patient) client is served normally by the same worker.
    let (status, text) = request(addr, "POST", "/solve", &instance_body("here", None, ""));
    assert_eq!(status, 200, "{text}");
    wait_for_metric(addr, "sea_serve_inflight", |v| v == 0.0);
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(metric_value(&metrics, "sea_serve_workers_alive"), 1.0);
    server.shutdown();
    server.join();
}

/// SIGTERM-drain E2E through the real binary: an in-flight solve
/// completes, the response arrives, and the process exits 0 (the code
/// documented in docs/OPERATIONS.md).
#[test]
#[cfg(unix)]
fn sigterm_drains_the_binary_cleanly() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_sea-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--max-iterations",
            "1000000000",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sea-serve");
    // The daemon prints `sea-serve: listening on ADDR` once bound.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read listen line");
    let addr: std::net::SocketAddr = line
        .rsplit(' ')
        .next()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("no address in {line:?}"));

    // Park a slow solve in the worker, then deliver SIGTERM mid-flight.
    let slow = instance_body("inflight", None, "\"deadline\":1.0,\"epsilon\":-1.0,");
    let in_flight = std::thread::spawn(move || request(addr, "POST", "/solve", &slow));
    std::thread::sleep(Duration::from_millis(250));
    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("deliver SIGTERM");
    assert!(killed.success());

    // The admitted solve still completes (bounded by its deadline) and
    // its response is written before the process exits.
    let (status, text) = in_flight.join().expect("in-flight response arrives");
    assert_eq!(status, 504, "{text}");
    assert!(text.contains("\"stop\":\"deadline_exceeded\""), "{text}");

    let exit = child.wait().expect("daemon exits");
    assert_eq!(exit.code(), Some(0), "clean drain exits 0");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain log");
    assert!(rest.contains("drained cleanly"), "{rest}");
}

/// Chaos + drain E2E through the real binary: a scripted worker crash
/// mid-solve still answers a typed 500, the supervisor respawns the
/// worker, a follow-up solve succeeds, and SIGTERM drains to exit 0.
#[test]
#[cfg(unix)]
fn chaos_crash_in_the_binary_still_drains_cleanly() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_sea-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--chaos",
            "crash@1",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sea-serve");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read listen line");
    let addr: std::net::SocketAddr = line
        .rsplit(' ')
        .next()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("no address in {line:?}"));

    // First solve hits the scripted crash: typed 500, worker respawned.
    let (status, text) = request(addr, "POST", "/solve", &instance_body("boom", None, ""));
    assert_eq!(status, 500, "{text}");
    assert!(text.contains("\"panic\":true"), "{text}");
    wait_for_metric(addr, "sea_serve_worker_restarts_total", |v| v >= 1.0);

    // Second solve proves the pool healed inside the real process.
    let (status, text) = request(addr, "POST", "/solve", &instance_body("after", None, ""));
    assert_eq!(status, 200, "{text}");

    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("deliver SIGTERM");
    assert!(killed.success());
    let exit = child.wait().expect("daemon exits");
    assert_eq!(exit.code(), Some(0), "clean drain exits 0 after chaos");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain log");
    assert!(rest.contains("drained cleanly"), "{rest}");
}
