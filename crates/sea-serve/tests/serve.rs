//! Request-lifecycle tests against an in-process server, plus a
//! SIGTERM-drain E2E through the real binary.

use sea_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A 2x2 solvable instance body; `extra` splices in serve-level fields.
fn instance_body(id: &str, family: Option<&str>, extra: &str) -> String {
    let family = family
        .map(|f| format!("\"family\":\"{f}\","))
        .unwrap_or_default();
    format!(
        "{{\"id\":\"{id}\",{family}{extra}\"matrix\":[[1.0,2.0],[3.0,4.0]],\
         \"row_totals\":[4.0,6.0],\"col_totals\":[5.0,5.0]}}"
    )
}

/// Minimal HTTP client: one request, whole response, connection closed.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    BufReader::new(conn).read_to_string(&mut raw).expect("recv");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn quick_server(cfg: ServeConfig) -> Server {
    Server::bind(cfg).expect("bind on an ephemeral port")
}

#[test]
fn health_ready_and_unknown_routes() {
    let server = quick_server(ServeConfig::default());
    let addr = server.addr();
    assert_eq!(request(addr, "GET", "/healthz", "").0, 200);
    assert_eq!(request(addr, "GET", "/readyz", "").0, 200);
    assert_eq!(request(addr, "GET", "/nope", "").0, 404);
    assert_eq!(request(addr, "GET", "/solve", "").0, 405);
    server.shutdown();
    server.join();
}

#[test]
fn malformed_bodies_answer_400() {
    let server = quick_server(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = request(addr, "POST", "/solve", "this is not json");
    assert_eq!(status, 400);
    assert!(body.contains("\"error\""), "{body}");

    // Valid JSON, invalid instance: missing id.
    let (status, body) = request(addr, "POST", "/solve", "{\"class\":\"fixed\"}");
    assert_eq!(status, 400);
    assert!(
        body.contains("missing string field \\\"id\\\"") || body.contains("missing"),
        "{body}"
    );

    // Batch bodies report the failing line.
    let good = instance_body("a", None, "");
    let (status, body) = request(addr, "POST", "/batch", &format!("{good}\nnot json\n"));
    assert_eq!(status, 400);
    assert!(body.contains("line 2"), "{body}");

    server.shutdown();
    server.join();
}

#[test]
fn oversized_body_answers_413() {
    let server = quick_server(ServeConfig {
        max_body_bytes: 64,
        ..ServeConfig::default()
    });
    let big = instance_body("big", None, "");
    let (status, body) = request(server.addr(), "POST", "/solve", &big);
    assert_eq!(status, 413);
    assert!(body.contains("exceeds limit 64"), "{body}");
    server.shutdown();
    server.join();
}

#[test]
fn solve_solves_and_warm_start_hits_across_requests() {
    let server = quick_server(ServeConfig::default());
    let addr = server.addr();

    let body = instance_body("r1", Some("fam"), "");
    let (status, text) = request(addr, "POST", "/solve", &body);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"stop\":\"converged\""), "{text}");
    assert!(text.contains("\"cache\":\"miss\""), "{text}");

    let body = instance_body("r2", Some("fam"), "");
    let (status, text) = request(addr, "POST", "/solve", &body);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"cache\":\"hit\""), "{text}");

    // Sparse storage rides the same schema.
    let body = instance_body("r3", None, "\"storage\":\"sparse\",");
    let (status, text) = request(addr, "POST", "/solve", &body);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"stop\":\"converged\""), "{text}");

    // Batch: two lines, same family, warmed by the earlier solves.
    let manifest = format!(
        "{}\n{}\n",
        instance_body("b1", Some("fam"), ""),
        instance_body("b2", Some("fam"), "")
    );
    let (status, text) = request(addr, "POST", "/batch", &manifest);
    assert_eq!(status, 200, "{text}");
    assert_eq!(text.lines().count(), 2, "{text}");
    assert!(text.contains("\"id\":\"b1\""), "{text}");

    // Metrics reflect the traffic: well-formed families with queue depth,
    // request latency histogram, warm-start outcomes, solver metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for needle in [
        "# TYPE sea_serve_requests_total counter",
        "# TYPE sea_serve_queue_depth gauge",
        "# TYPE sea_serve_request_seconds histogram",
        "sea_serve_request_seconds_bucket",
        "sea_serve_warm_total{result=\"hit\"}",
        "sea_serve_cache_families",
        "# TYPE sea_solves_total counter",
    ] {
        assert!(
            metrics.contains(needle),
            "missing {needle:?} in:\n{metrics}"
        );
    }

    server.shutdown();
    server.join();
}

#[test]
fn over_deadline_request_answers_504_with_partial_result() {
    // A huge iteration cap so the deadline is the binding budget.
    let server = quick_server(ServeConfig {
        max_iterations: 1_000_000_000,
        ..ServeConfig::default()
    });
    // epsilon: -1 never converges (residuals are nonnegative), so the
    // request runs exactly to its deadline budget.
    let body = instance_body("slow", None, "\"deadline\":0.2,\"epsilon\":-1.0,");
    let (status, text) = request(server.addr(), "POST", "/solve", &body);
    assert_eq!(status, 504, "{text}");
    assert!(text.contains("\"stop\":\"deadline_exceeded\""), "{text}");
    assert!(text.contains("\"converged\":false"), "{text}");
    server.shutdown();
    server.join();
}

#[test]
fn queue_full_answers_429() {
    // One worker, one queue slot: the first slow request occupies the
    // worker, the second queues, the third bounces with 429.
    let server = quick_server(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        max_iterations: 1_000_000_000,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let slow = instance_body("slow", None, "\"deadline\":1.0,\"epsilon\":-1.0,");
    let mut in_flight = Vec::new();
    for _ in 0..2 {
        let slow = slow.clone();
        in_flight.push(std::thread::spawn(move || {
            request(addr, "POST", "/solve", &slow)
        }));
        // Let the request reach the queue before the next one.
        std::thread::sleep(Duration::from_millis(150));
    }
    let (status, text) = request(addr, "POST", "/solve", &slow);
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("queue full"), "{text}");
    for h in in_flight {
        let (status, _) = h.join().expect("in-flight request completes");
        assert_eq!(status, 504, "slow requests stop at their deadline");
    }
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_rejects_new_work_and_drains() {
    let server = quick_server(ServeConfig::default());
    let addr = server.addr();
    server.shutdown();
    // Admission after drain start answers 503 (the accept loop may also
    // already be closed, in which case connect fails — both are a clean
    // rejection).
    if let Ok(mut conn) = TcpStream::connect(addr) {
        let body = instance_body("late", None, "");
        let sent = write!(
            conn,
            "POST /solve HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        if sent.is_ok() {
            let mut raw = String::new();
            if BufReader::new(conn).read_to_string(&mut raw).is_ok() && !raw.is_empty() {
                assert!(raw.contains("503"), "{raw}");
            }
        }
    }
    server.join();
}

/// SIGTERM-drain E2E through the real binary: an in-flight solve
/// completes, the response arrives, and the process exits 0 (the code
/// documented in docs/OPERATIONS.md).
#[test]
#[cfg(unix)]
fn sigterm_drains_the_binary_cleanly() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_sea-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--max-iterations",
            "1000000000",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sea-serve");
    // The daemon prints `sea-serve: listening on ADDR` once bound.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read listen line");
    let addr: std::net::SocketAddr = line
        .rsplit(' ')
        .next()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("no address in {line:?}"));

    // Park a slow solve in the worker, then deliver SIGTERM mid-flight.
    let slow = instance_body("inflight", None, "\"deadline\":1.0,\"epsilon\":-1.0,");
    let in_flight = std::thread::spawn(move || request(addr, "POST", "/solve", &slow));
    std::thread::sleep(Duration::from_millis(250));
    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("deliver SIGTERM");
    assert!(killed.success());

    // The admitted solve still completes (bounded by its deadline) and
    // its response is written before the process exits.
    let (status, text) = in_flight.join().expect("in-flight response arrives");
    assert_eq!(status, 504, "{text}");
    assert!(text.contains("\"stop\":\"deadline_exceeded\""), "{text}");

    let exit = child.wait().expect("daemon exits");
    assert_eq!(exit.code(), Some(0), "clean drain exits 0");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain log");
    assert!(rest.contains("drained cleanly"), "{rest}");
}
