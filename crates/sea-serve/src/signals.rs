//! SIGTERM/SIGINT → graceful drain for the daemon.
//!
//! Same dependency-free `signal(2)` binding the CLI uses for Ctrl-C
//! (std already links libc): the handler only stores to a static atomic,
//! which the binary's supervision loop polls to trigger
//! [`crate::Server::shutdown`]. Both signals mean "drain and exit 0" — an
//! orchestrator's stop (SIGTERM) and an operator's Ctrl-C (SIGINT) want
//! the same behavior from a service.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on the first SIGTERM or SIGINT.
static STOP_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::STOP_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_stop(_signum: i32) {
        // Only the atomic store: anything else is not async-signal-safe.
        STOP_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() -> bool {
        // SAFETY: `signal` with a handler that only stores to a static
        // atomic is async-signal-safe; the previous dispositions (default
        // terminate) need no restoration.
        unsafe {
            signal(SIGTERM, on_stop);
            signal(SIGINT, on_stop);
        }
        true
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Install the drain handlers (idempotent). Returns false on platforms
/// without `signal(2)`, where default abrupt termination stays in place.
pub fn install() -> bool {
    imp::install()
}

/// True once SIGTERM or SIGINT arrived.
pub fn stop_requested() -> bool {
    STOP_REQUESTED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_tracks_the_static() {
        if !install() {
            return; // non-unix
        }
        assert!(!stop_requested());
        STOP_REQUESTED.store(true, Ordering::SeqCst);
        assert!(stop_requested());
        STOP_REQUESTED.store(false, Ordering::SeqCst);
    }
}
