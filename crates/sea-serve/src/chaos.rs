//! Deterministic service-level fault injection.
//!
//! PR 3's [`sea_core::FaultPlan`] scripts faults *inside* one solve
//! (NaN iterates, equilibration-worker panics) at exact iteration
//! numbers. This module lifts the same idiom one layer up: a
//! [`ChaosPlan`] scripts faults against the *service* at exact solve
//! sequence numbers — the order in which solver workers dequeue jobs —
//! so a soak run with the same plan exercises the same failure paths
//! every time. Plans are empty in production; the `--chaos` flag and
//! the `bench_serve --chaos` harness are the only writers.
//!
//! The spec grammar is `KIND@SEQ` (or `KIND@FROM-TO` for a range of
//! consecutive sequence numbers), comma-separated:
//!
//! ```text
//! crash@3,panic@6-8,nan@12,cachecorrupt@15
//! ```

use std::fmt;

/// One scripted service-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// Panic *outside* the per-request containment, killing the worker
    /// thread mid-job: the in-flight request answers a typed 500 and
    /// the supervisor must respawn the worker.
    Crash,
    /// Panic *inside* the per-request containment: the request answers
    /// a typed 500, the worker survives, and the job's family takes a
    /// quarantine strike.
    Panic,
    /// Inject a NaN multiplier at iteration 1 of the solve (the PR 3
    /// `NanLambda` fault): the breakdown watchdog stops the solve with
    /// a typed result and the family takes a quarantine strike.
    Nan,
    /// Overwrite the family's cached warm-start `μ` with NaN before the
    /// solve reads it: the watchdog must contain the poisoned seed and
    /// the next solve of the family must recover.
    CacheCorrupt,
}

impl ServiceFault {
    /// Stable spec/wire name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceFault::Crash => "crash",
            ServiceFault::Panic => "panic",
            ServiceFault::Nan => "nan",
            ServiceFault::CacheCorrupt => "cachecorrupt",
        }
    }

    /// Inverse of [`ServiceFault::name`].
    pub fn parse(s: &str) -> Option<ServiceFault> {
        match s {
            "crash" => Some(ServiceFault::Crash),
            "panic" => Some(ServiceFault::Panic),
            "nan" => Some(ServiceFault::Nan),
            "cachecorrupt" => Some(ServiceFault::CacheCorrupt),
            _ => None,
        }
    }
}

/// A deterministic service-fault schedule: each entry fires when a
/// worker dequeues the job with that 1-based solve sequence number.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    faults: Vec<(u64, ServiceFault)>,
}

impl ChaosPlan {
    /// An empty plan (injects nothing — the production state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `fault` at solve sequence `seq` (builder style).
    #[must_use]
    pub fn at(mut self, seq: u64, fault: ServiceFault) -> Self {
        self.faults.push((seq, fault));
        self
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Faults scheduled at solve sequence `seq`.
    pub fn at_seq(&self, seq: u64) -> impl Iterator<Item = ServiceFault> + '_ {
        self.faults
            .iter()
            .filter(move |(s, _)| *s == seq)
            .map(|(_, f)| *f)
    }

    /// Count of scheduled faults of one kind (the soak's expected-count
    /// oracle).
    pub fn count(&self, kind: ServiceFault) -> usize {
        self.faults.iter().filter(|(_, f)| *f == kind).count()
    }

    /// Largest scheduled sequence number (0 when empty): a soak must
    /// push at least this many solves for the whole script to fire.
    pub fn max_seq(&self) -> u64 {
        self.faults.iter().map(|(s, _)| *s).max().unwrap_or(0)
    }

    /// Parse a spec like `crash@3,panic@6-8,nan@12`. Whitespace around
    /// entries is ignored; an empty spec is an empty plan.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind, at) = entry
                .split_once('@')
                .ok_or_else(|| format!("chaos entry {entry:?} is not KIND@SEQ"))?;
            let fault = ServiceFault::parse(kind.trim()).ok_or_else(|| {
                format!("unknown chaos fault {kind:?} (crash|panic|nan|cachecorrupt)")
            })?;
            let at = at.trim();
            let (from, to) = match at.split_once('-') {
                Some((a, b)) => (a.trim(), b.trim()),
                None => (at, at),
            };
            let from: u64 = from
                .parse()
                .ok()
                .filter(|&s| s >= 1)
                .ok_or_else(|| format!("chaos entry {entry:?}: bad sequence {from:?}"))?;
            let to: u64 = to
                .parse()
                .ok()
                .filter(|&s| s >= from)
                .ok_or_else(|| format!("chaos entry {entry:?}: bad range end {to:?}"))?;
            for seq in from..=to {
                plan = plan.at(seq, fault);
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for ChaosPlan {
    /// Render back to the spec grammar (one entry per fault, no range
    /// compression) — `parse(render)` round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (seq, fault)) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}@{}", fault.name(), seq)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_ranges() {
        let plan = ChaosPlan::parse("crash@3, panic@6-8 ,nan@12,cachecorrupt@15").unwrap();
        assert_eq!(plan.count(ServiceFault::Crash), 1);
        assert_eq!(plan.count(ServiceFault::Panic), 3);
        assert_eq!(plan.count(ServiceFault::Nan), 1);
        assert_eq!(plan.count(ServiceFault::CacheCorrupt), 1);
        assert_eq!(plan.max_seq(), 15);
        assert_eq!(
            plan.at_seq(7).collect::<Vec<_>>(),
            vec![ServiceFault::Panic]
        );
        assert_eq!(plan.at_seq(4).count(), 0);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(ChaosPlan::parse("crash").is_err());
        assert!(ChaosPlan::parse("meteor@3").is_err());
        assert!(ChaosPlan::parse("crash@0").is_err());
        assert!(ChaosPlan::parse("crash@x").is_err());
        assert!(ChaosPlan::parse("panic@8-6").is_err());
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = ChaosPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.max_seq(), 0);
    }

    #[test]
    fn render_round_trips() {
        let plan = ChaosPlan::parse("crash@3,panic@6-8,nan@12").unwrap();
        let rendered = plan.to_string();
        assert_eq!(ChaosPlan::parse(&rendered).unwrap(), plan);
    }

    #[test]
    fn same_plan_fires_identically() {
        // Determinism is the whole point: two walks over the same plan
        // observe the same faults at the same sequence numbers.
        let plan = ChaosPlan::parse("crash@2,panic@5,nan@5").unwrap();
        let walk = |p: &ChaosPlan| {
            (1..=6)
                .map(|s| p.at_seq(s).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(walk(&plan), walk(&plan.clone()));
        assert_eq!(walk(&plan)[4], vec![ServiceFault::Panic, ServiceFault::Nan]);
    }
}
