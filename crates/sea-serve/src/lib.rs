//! # sea-serve — a long-running solve service over the SEA stack
//!
//! The paper positions the splitting equilibration algorithm as the
//! practical route to *large-scale* constrained matrix problems; this
//! crate is the layer that turns the library stack into a service:
//! a daemon that accepts solve requests over HTTP/1.1 (hand-rolled,
//! std-only — the vendored-crates build has no tokio/hyper) and composes
//! the existing pieces per request:
//!
//! * **Admission control** — a bounded [`FairQueue`] with FIFO-per-tenant
//!   fairness feeding a fixed pool of solver workers; a full queue
//!   answers 429 instead of buffering unboundedly.
//! * **Deadlines** — each request's `deadline` (seconds, measured from
//!   admission so queue wait counts) maps onto
//!   [`sea_core::SolveBudget::deadline`]; a deadline-stopped solve
//!   answers 504 with the partial result and its stop reason.
//! * **Warm starts** — a process-wide per-family
//!   [`sea_batch::WarmStartCache`] with a byte budget and LRU eviction,
//!   so repeated solves of a drifting family reuse dual multipliers
//!   across requests.
//! * **Observability** — `GET /metrics` renders Prometheus text: serve
//!   metrics (requests by route/code, queue depth, request/queue-wait
//!   latency histograms, cache occupancy) plus the solver metrics
//!   aggregated from every solve's event stream. `GET /healthz` and
//!   `GET /readyz` gate orchestration.
//! * **Graceful drain** — SIGTERM/SIGINT stop the accept loop, close the
//!   queue, finish every admitted solve, flush every response, and exit 0.
//! * **Resilience** — solves run behind a per-request panic boundary
//!   (typed 500, worker survives); a supervisor respawns workers whose
//!   panic escaped anyway, with a restart-storm breaker flipping
//!   `/readyz` unhealthy; repeated-poison families are circuit-broken by
//!   a [`Quarantine`] (fast 422, half-open probe after cooldown); a
//!   queue-wait [`WaitEstimator`] sheds doomed requests at admission
//!   with 429 + `Retry-After`; and a deterministic [`ChaosPlan`] scripts
//!   worker crashes, contained panics, solver NaNs, and cache corruption
//!   for replayable failure drills (see `crate::chaos`).
//!
//! Request and response bodies are exactly the CLI's batch formats
//! ([`sea_cli::manifest`]): `POST /solve` takes one JSON instance
//! object, `POST /batch` a JSONL manifest, and both answer with the same
//! result lines `sea-solve batch` writes. See `docs/OPERATIONS.md` for
//! the full schema and operational contract.
//!
//! ## In-process use
//!
//! The daemon is a thin wrapper; tests and benches run the server
//! in-process:
//!
//! ```
//! use sea_serve::{Server, ServeConfig};
//! use std::io::{BufReader, Write};
//!
//! let server = Server::bind(ServeConfig::default()).unwrap();
//! let addr = server.addr();
//!
//! let mut conn = std::net::TcpStream::connect(addr).unwrap();
//! let body = r#"{"id":"q","family":"docs","matrix":[[1.0,2.0],[3.0,4.0]],
//!                "row_totals":[4.0,6.0],"col_totals":[5.0,5.0]}"#;
//! write!(
//!     conn,
//!     "POST /solve HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut reply = String::new();
//! std::io::Read::read_to_string(&mut BufReader::new(conn), &mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert!(reply.contains("\"stop\":\"converged\""));
//!
//! server.shutdown();
//! server.join();
//! ```

// Service code must not take the process down on bad input: failures
// surface as HTTP status codes. Justified sites carry explicit allows.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod http;
pub mod overload;
pub mod quarantine;
pub mod queue;
pub mod server;
pub mod signals;

pub use chaos::{ChaosPlan, ServiceFault};
pub use overload::{BreakerPolicy, RestartBreaker, WaitEstimator};
pub use quarantine::{Admission, Quarantine, QuarantinePolicy, QuarantineStats};
pub use queue::{FairQueue, PushError};
pub use server::{ServeConfig, Server};

/// Exit code for a clean drain (SIGTERM/SIGINT honored, all admitted
/// solves finished, all responses written).
pub const EXIT_CLEAN: i32 = 0;
/// Exit code for runtime failures (bind error, worker pool failure).
pub const EXIT_RUNTIME: i32 = 1;
/// Exit code for bad command-line usage.
pub const EXIT_USAGE: i32 = 2;
