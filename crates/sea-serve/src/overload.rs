//! Adaptive overload control: queue-wait estimation and the
//! restart-storm breaker.
//!
//! ## Load shedding
//!
//! The queue-full 429 is a *capacity* backstop; it fires only once the
//! queue holds `queue_capacity` jobs, by which time every queued request
//! may already be doomed to miss its deadline. [`WaitEstimator`] keeps
//! an exponentially weighted moving average of recent solve times and
//! estimates the queue wait a new arrival would see
//! (`depth / workers × EWMA`). When that estimate exceeds the request's
//! own deadline the handler rejects it *at admission* with 429 +
//! `Retry-After` — the request could not have been answered in time, so
//! shedding it early is strictly better for everyone behind it.
//!
//! ## Restart-storm breaker
//!
//! Worker respawn turns a one-off crash into a non-event, but a fault
//! that kills every worker that touches it would otherwise respawn in a
//! tight loop forever. [`RestartBreaker`] counts respawns in a sliding
//! window; at the threshold `/readyz` flips unhealthy so an orchestrator
//! stops routing traffic here, and recovers by itself once the window
//! slides past the storm.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// EWMA of solve wall-times → queue-wait estimates.
///
/// Not a lock-free structure: the server keeps it behind its metrics
/// mutex; updates are one multiply-add per completed solve.
#[derive(Debug, Clone, Default)]
pub struct WaitEstimator {
    /// EWMA of solve seconds; `None` until the first sample (estimates
    /// are 0 until then — never shed on no data).
    ewma: Option<f64>,
}

/// Smoothing factor: ~10 solves of memory, quick to track load shifts.
const EWMA_ALPHA: f64 = 0.2;

impl WaitEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed solve's wall time.
    pub fn record(&mut self, solve_seconds: f64) {
        if !solve_seconds.is_finite() || solve_seconds < 0.0 {
            return;
        }
        self.ewma = Some(match self.ewma {
            None => solve_seconds,
            Some(prev) => EWMA_ALPHA * solve_seconds + (1.0 - EWMA_ALPHA) * prev,
        });
    }

    /// Estimated queue wait (seconds) for a new arrival behind `depth`
    /// queued jobs on `workers` workers. Zero before any sample: the
    /// estimator never sheds without evidence.
    pub fn estimated_wait(&self, depth: usize, workers: usize) -> f64 {
        match self.ewma {
            None => 0.0,
            Some(ewma) => depth as f64 / workers.max(1) as f64 * ewma,
        }
    }

    /// Current EWMA of solve seconds (0 before any sample).
    pub fn solve_seconds(&self) -> f64 {
        self.ewma.unwrap_or(0.0)
    }
}

/// Sliding-window respawn counter (see module docs).
#[derive(Debug)]
pub struct RestartBreaker {
    /// Respawns within `window` that trip the breaker.
    max_restarts: usize,
    /// Sliding window length.
    window: Duration,
    /// Respawn timestamps, oldest first, pruned to the window.
    restarts: VecDeque<Instant>,
    /// Total respawns ever (the `/metrics` counter).
    total: u64,
}

/// Breaker configuration (flag surface `--restart-breaker N:SECONDS`).
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Respawns within the window that flip `/readyz` unhealthy.
    pub max_restarts: usize,
    /// Sliding window length.
    pub window: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            max_restarts: 5,
            window: Duration::from_secs(60),
        }
    }
}

impl RestartBreaker {
    /// A breaker enforcing `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        RestartBreaker {
            max_restarts: policy.max_restarts.max(1),
            window: policy.window,
            restarts: VecDeque::new(),
            total: 0,
        }
    }

    fn prune(&mut self) {
        let now = Instant::now();
        while let Some(&front) = self.restarts.front() {
            if now.duration_since(front) > self.window {
                self.restarts.pop_front();
            } else {
                break;
            }
        }
    }

    /// Record one worker respawn.
    pub fn record_restart(&mut self) {
        self.total += 1;
        self.restarts.push_back(Instant::now());
        self.prune();
    }

    /// True while respawns-in-window are at the threshold: `/readyz`
    /// answers 503. Self-recovers as the window slides.
    pub fn open(&mut self) -> bool {
        self.prune();
        self.restarts.len() >= self.max_restarts
    }

    /// Total respawns ever.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_is_silent_without_samples() {
        let e = WaitEstimator::new();
        assert_eq!(e.estimated_wait(100, 1), 0.0);
    }

    #[test]
    fn estimator_tracks_and_scales() {
        let mut e = WaitEstimator::new();
        e.record(1.0);
        assert!((e.solve_seconds() - 1.0).abs() < 1e-12);
        // 4 queued jobs over 2 workers at ~1s each → ~2s wait.
        assert!((e.estimated_wait(4, 2) - 2.0).abs() < 1e-12);
        // The EWMA moves toward new samples.
        for _ in 0..50 {
            e.record(0.1);
        }
        assert!(e.solve_seconds() < 0.15, "{}", e.solve_seconds());
        // Garbage samples are ignored.
        e.record(f64::NAN);
        e.record(-3.0);
        assert!(e.solve_seconds().is_finite());
    }

    #[test]
    fn breaker_opens_at_threshold_and_recovers() {
        let mut b = RestartBreaker::new(BreakerPolicy {
            max_restarts: 2,
            window: Duration::from_millis(60),
        });
        assert!(!b.open());
        b.record_restart();
        assert!(!b.open());
        b.record_restart();
        assert!(b.open());
        assert_eq!(b.total(), 2);
        // The window slides past the storm: ready again, counter keeps
        // the history.
        std::thread::sleep(Duration::from_millis(80));
        assert!(!b.open());
        assert_eq!(b.total(), 2);
    }
}
