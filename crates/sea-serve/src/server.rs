//! The serve loop: accept, admit, solve, respond, drain — and survive.
//!
//! ## Threading model
//!
//! One nonblocking accept thread hands each connection to its own
//! handler thread (keep-alive HTTP/1.1, read timeout so idle connections
//! notice a drain). Handlers *parse and admit only* — every solve runs on
//! one of `workers` solver threads feeding from the shared
//! [`FairQueue`], so concurrency of actual solving is bounded by the
//! worker pool no matter how many connections are open, and
//! [`BatchParallelism::InnerThreads`] can additionally split one large
//! solve across the process-wide rayon pool.
//!
//! ## Request lifecycle
//!
//! admission (quarantine check, load shed, bounded queue) → queue wait
//! (fair FIFO per tenant, optional per-tenant quota) → solve
//! (per-request deadline mapped to [`sea_core::SolveBudget`],
//! warm-started from the per-family cache) → response (the same JSON
//! result line the CLI's batch mode writes).
//!
//! ## Resilience
//!
//! Solves run inside `catch_unwind`: a panicking solve answers a typed
//! 500 and the worker survives. A worker thread that dies anyway (the
//! panic escaped containment) drops its job's response channel — the
//! waiting handler answers the typed 500 — and a supervisor thread
//! respawns the slot so the pool never shrinks. Respawns feed the
//! [`RestartBreaker`]; a restart storm flips `/readyz` to 503 so an
//! orchestrator stops routing here, and readiness self-recovers as the
//! window slides. Families whose solves repeatedly panic or NaN-trip
//! are circuit-broken by the [`Quarantine`] (fast 422 + `Retry-After`,
//! half-open probe after cooldown), and the [`WaitEstimator`] sheds
//! requests at admission (429 + `Retry-After`) when the queue wait they
//! would see already exceeds their deadline. With `degraded_epsilon`
//! set, a deadline-stopped solve whose residual is already below that
//! looser tolerance answers 200 with `"degraded":true` instead of 504.
//! All of it is observable in `/metrics` and scriptable by a
//! [`ChaosPlan`] for deterministic fault drills.
//!
//! ## Drain
//!
//! [`Server::shutdown`] (the binary wires SIGTERM/SIGINT to it) stops
//! the accept loop, closes the queue (new requests answer 503), lets the
//! workers finish every already-admitted solve — each bounded by its own
//! deadline budget — and [`Server::join`] returns once all responses are
//! written. The binary then exits 0: a clean drain is indistinguishable
//! from a clean stop by design.

use crate::chaos::{ChaosPlan, ServiceFault};
use crate::http::{read_request, write_response_with, ReadError, Request};
use crate::overload::{BreakerPolicy, RestartBreaker, WaitEstimator};
use crate::quarantine::{Admission, Quarantine, QuarantinePolicy};
use crate::queue::{FairQueue, PushError};
use sea_batch::{
    solve_instance, BatchInstance, BatchItemReport, BatchOptions, BatchParallelism, CacheEntry,
    CacheUpdate, WarmStart, WarmStartCache,
};
use sea_cli::manifest::{instance_from_json, result_line_with};
use sea_core::{FaultKind, FaultPlan, KernelKind, SeaError, StopReason, SupervisorOptions};
use sea_observe::json::{parse as parse_json, JsonValue};
use sea_observe::metrics::PHASE_SECONDS_BUCKETS;
use sea_observe::{Event, MetricsObserver, MetricsRegistry, Observer};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bucket bounds (seconds) for end-to-end request latency: sub-millisecond
/// cache hits through deadline-bounded multi-second solves.
const REQUEST_SECONDS_BUCKETS: [f64; 10] =
    [1e-4, 1e-3, 5e-3, 0.02, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];

/// How long a handler blocks in `read` before re-checking for drain.
const READ_POLL: Duration = Duration::from_millis(200);

/// How often the supervisor scans worker slots for dead threads.
const SUPERVISOR_POLL: Duration = Duration::from_millis(20);

/// Server configuration (flag surface of the `sea-serve` binary).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 = ephemeral).
    pub addr: String,
    /// Solver worker threads (the solve-concurrency bound).
    pub workers: usize,
    /// Admission queue capacity across all tenants (full → 429).
    pub queue_capacity: usize,
    /// Per-tenant cap on queued jobs (`None` = lanes bounded only by
    /// total capacity); at quota → 429 while other tenants still admit.
    pub tenant_quota: Option<usize>,
    /// Warm-start cache byte budget; `None` = unbounded.
    pub cache_bytes: Option<usize>,
    /// Default stopping tolerance (per-request `epsilon` overrides).
    pub epsilon: f64,
    /// Looser tolerance for graceful degradation: a deadline-stopped
    /// solve whose residual is already ≤ this answers 200 with
    /// `"degraded":true` instead of 504. `None` disables (the default —
    /// a deadline miss is a 504).
    pub degraded_epsilon: Option<f64>,
    /// Iteration cap per solve.
    pub max_iterations: usize,
    /// Equilibration kernel for every solve.
    pub kernel: KernelKind,
    /// SIMD policy for every solve's kernels.
    pub simd: sea_core::SimdMode,
    /// Thread placement for each solve (`Serial` or `Inner[:K]`;
    /// instance-level parallelism comes from the worker pool itself).
    pub parallelism: BatchParallelism,
    /// Default per-request deadline, measured from *admission* (so it
    /// covers queue wait); per-request `deadline` overrides.
    pub default_deadline: Option<Duration>,
    /// Request body cap in bytes (over → 413).
    pub max_body_bytes: usize,
    /// Poison-family circuit breaker; `None` disables quarantine.
    pub quarantine: Option<QuarantinePolicy>,
    /// Restart-storm breaker driving `/readyz`.
    pub breaker: BreakerPolicy,
    /// Scripted service faults (empty in production; see [`ChaosPlan`]).
    pub chaos: ChaosPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            queue_capacity: 64,
            tenant_quota: None,
            cache_bytes: Some(64 << 20),
            epsilon: 1e-8,
            degraded_epsilon: None,
            max_iterations: 10_000,
            kernel: KernelKind::SortScan,
            simd: sea_core::SimdMode::Auto,
            parallelism: BatchParallelism::Serial,
            default_deadline: Some(Duration::from_secs(30)),
            max_body_bytes: 8 << 20,
            quarantine: Some(QuarantinePolicy::default()),
            breaker: BreakerPolicy::default(),
            chaos: ChaosPlan::new(),
        }
    }
}

/// What a handler enqueues and a worker solves.
enum JobKind {
    /// `POST /solve`: one instance.
    Solve(Box<BatchInstance>),
    /// `POST /batch`: a JSONL manifest, solved sequentially in order.
    Batch(Vec<BatchInstance>),
}

struct Job {
    kind: JobKind,
    /// Deadline for the whole job, measured from admission.
    deadline: Option<Duration>,
    /// Per-request tolerance override.
    epsilon: Option<f64>,
    admitted: Instant,
    respond: mpsc::Sender<(u16, String)>,
}

/// Server + solver metrics behind one lock, rendered together.
struct Metrics {
    server: MetricsRegistry,
    solver: MetricsObserver,
    /// Last cache-eviction count folded into the counter (so the counter
    /// advances by deltas of the cache's cumulative figure).
    evictions_seen: u64,
    /// Last quarantine counters folded in, same delta scheme.
    quarantine_seen: (u64, u64, u64),
}

struct Shared {
    cfg: ServeConfig,
    queue: FairQueue<Job>,
    cache: Mutex<WarmStartCache>,
    metrics: Mutex<Metrics>,
    /// Set once by `shutdown`; accept loop and idle handlers exit on it.
    draining: AtomicBool,
    /// Jobs admitted and not yet responded to (readiness + drain gauge).
    inflight: AtomicUsize,
    /// Poison-family circuit breaker (`None` = disabled by config).
    quarantine: Option<Quarantine>,
    /// EWMA queue-wait estimator feeding the load shedder.
    estimator: Mutex<WaitEstimator>,
    /// Restart-storm breaker feeding `/readyz`.
    breaker: Mutex<RestartBreaker>,
    /// 1-based solve sequence counter driving the chaos plan.
    solve_seq: AtomicU64,
    /// Worker threads currently running (gauge; respawn keeps it at
    /// `cfg.workers` outside the instant between death and respawn).
    workers_alive: AtomicUsize,
}

/// Lock a mutex, recovering the guard from poisoning: state behind these
/// locks (cache, metrics) stays usable even if some other holder panicked.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    fn counter(&self, name: &str, help: &str, labels: Vec<(String, String)>, v: f64) {
        lock(&self.metrics)
            .server
            .counter_add(name, help, labels, v);
    }

    fn count_shed(&self, reason: &str, n: f64) {
        self.counter(
            "sea_serve_shed_total",
            "Requests rejected at admission, by reason (wait|quota|full).",
            vec![("reason".to_string(), reason.to_string())],
            n,
        );
    }

    fn count_panic(&self, n: f64) {
        self.counter(
            "sea_serve_worker_panics_total",
            "Solve panics contained by the per-request boundary (answered 500).",
            vec![],
            n,
        );
    }

    fn set_queue_gauges(&self) {
        let depth = self.queue.depth() as f64;
        let inflight = self.inflight.load(Ordering::SeqCst) as f64;
        let alive = self.workers_alive.load(Ordering::SeqCst) as f64;
        let mut m = lock(&self.metrics);
        m.server.gauge_set(
            "sea_serve_queue_depth",
            "Jobs admitted and waiting for a solver worker.",
            vec![],
            depth,
        );
        m.server.gauge_set(
            "sea_serve_inflight",
            "Jobs admitted and not yet responded to (queued or solving).",
            vec![],
            inflight,
        );
        m.server.gauge_set(
            "sea_serve_workers_alive",
            "Solver worker threads currently running.",
            vec![],
            alive,
        );
    }

    fn count_request(&self, route: &str, code: u16, started: Instant) {
        let mut m = lock(&self.metrics);
        m.server.counter_add(
            "sea_serve_requests_total",
            "HTTP requests served, by route and status code.",
            vec![
                ("route".to_string(), route.to_string()),
                ("code".to_string(), code.to_string()),
            ],
            1.0,
        );
        m.server.histogram_observe(
            "sea_serve_request_seconds",
            "End-to-end request latency (read to response write), by route.",
            vec![("route".to_string(), route.to_string())],
            &REQUEST_SECONDS_BUCKETS,
            started.elapsed().as_secs_f64(),
        );
    }

    /// `Retry-After` hint when the queue itself pushed back: roughly one
    /// solve's worth of seconds, floored at 1.
    fn retry_hint(&self) -> u64 {
        let est = lock(&self.estimator).solve_seconds();
        est.ceil().max(1.0) as u64
    }
}

/// One routed response; `retry_after` becomes a `Retry-After` header.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after: Option<u64>,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    fn text(status: u16, body: &str) -> Reply {
        Reply {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.to_string(),
            retry_after: None,
        }
    }

    fn retry_after(mut self, secs: u64) -> Reply {
        self.retry_after = Some(secs);
        self
    }
}

/// A running server: accept thread, worker pool, and the supervisor
/// that keeps the pool at full strength.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr`, spawn the worker pool, its supervisor, and the
    /// accept thread, and return the running server. Fails only on bind
    /// or spawn errors.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache: Mutex::new(match cfg.cache_bytes {
                Some(b) => WarmStartCache::with_limit(b),
                None => WarmStartCache::new(),
            }),
            queue: FairQueue::with_tenant_quota(cfg.queue_capacity, cfg.tenant_quota),
            metrics: Mutex::new(Metrics {
                server: MetricsRegistry::new(),
                solver: MetricsObserver::new(),
                evictions_seen: 0,
                quarantine_seen: (0, 0, 0),
            }),
            draining: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            quarantine: cfg.quarantine.map(Quarantine::new),
            estimator: Mutex::new(WaitEstimator::new()),
            breaker: Mutex::new(RestartBreaker::new(cfg.breaker)),
            solve_seq: AtomicU64::new(0),
            workers_alive: AtomicUsize::new(0),
            cfg,
        });

        let slots = (0..workers_n)
            .map(|i| spawn_worker(&shared, i).map(Some))
            .collect::<std::io::Result<Vec<_>>>()?;
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sea-serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared, slots))?
        };

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sea-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain: stop accepting, fail new admissions with
    /// 503, let admitted solves finish. Idempotent; `join` waits it out.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// True once a drain has started.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Wait for the drain to complete: every admitted solve finished and
    /// every response written. Call after [`Server::shutdown`] (or it
    /// blocks until someone else triggers one).
    pub fn join(mut self) {
        let handlers = match self.accept.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => Vec::new(),
        };
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// RAII decrement of `workers_alive`: runs even when the worker thread
/// unwinds from an uncontained panic.
struct AliveGuard(Arc<Shared>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.workers_alive.fetch_sub(1, Ordering::SeqCst);
    }
}

fn spawn_worker(shared: &Arc<Shared>, slot: usize) -> std::io::Result<JoinHandle<()>> {
    shared.workers_alive.fetch_add(1, Ordering::SeqCst);
    let sh = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("sea-serve-worker-{slot}"))
        .spawn(move || {
            let _alive = AliveGuard(Arc::clone(&sh));
            worker_loop(&sh);
        });
    if handle.is_err() {
        shared.workers_alive.fetch_sub(1, Ordering::SeqCst);
    }
    handle
}

/// Scan worker slots; respawn any thread that died by panic so the pool
/// never shrinks. Respawns feed the restart breaker. Exits once a drain
/// has started and every worker has finished — except that a crash
/// *during* a drain with jobs still queued is respawned anyway, so every
/// admitted request gets its response before the process exits.
fn supervisor_loop(shared: &Arc<Shared>, mut slots: Vec<Option<JoinHandle<()>>>) {
    loop {
        let draining = shared.draining.load(Ordering::SeqCst);
        let mut alive = 0usize;
        for (slot, entry) in slots.iter_mut().enumerate() {
            if entry.as_ref().is_some_and(|h| h.is_finished()) {
                let crashed = match entry.take() {
                    Some(h) => h.join().is_err(),
                    None => false,
                };
                if crashed {
                    shared.counter(
                        "sea_serve_worker_crashes_total",
                        "Worker threads that died to an uncontained panic.",
                        vec![],
                        1.0,
                    );
                    if !draining || shared.queue.depth() > 0 {
                        lock(&shared.breaker).record_restart();
                        shared.counter(
                            "sea_serve_worker_restarts_total",
                            "Worker threads respawned by the supervisor.",
                            vec![],
                            1.0,
                        );
                        if let Ok(h) = spawn_worker(shared, slot) {
                            *entry = Some(h);
                            alive += 1;
                        }
                    }
                    shared.set_queue_gauges();
                }
            } else if entry.is_some() {
                alive += 1;
            }
        }
        if draining && alive == 0 {
            return;
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return handlers;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                if let Ok(h) = std::thread::Builder::new()
                    .name("sea-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared))
                {
                    handlers.push(h);
                }
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Responses are written whole; waiting for ACKs between keep-alive
    // exchanges only adds Nagle latency.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let started = Instant::now();
        let req = match read_request(&mut reader, shared.cfg.max_body_bytes) {
            Ok(req) => req,
            Err(ReadError::Eof) => return,
            Err(ReadError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle keep-alive poll tick: close only when draining.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(msg)) => {
                let reply = Reply::json(400, error_body(&msg));
                let _ = write_reply(&mut writer, &reply, true);
                shared.count_request("malformed", 400, started);
                return;
            }
            Err(ReadError::BodyTooLarge { declared, limit }) => {
                let reply = Reply::json(
                    413,
                    error_body(&format!("body of {declared} bytes exceeds limit {limit}")),
                );
                let _ = write_reply(&mut writer, &reply, true);
                shared.count_request("oversized", 413, started);
                return;
            }
        };
        let reply = route(&req, shared);
        // During a drain, answer the in-hand request and close so the
        // handler thread exits; otherwise honor keep-alive.
        let close = req.close || shared.draining.load(Ordering::SeqCst);
        shared.count_request(&req.path, reply.status, started);
        if write_reply(&mut writer, &reply, close).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

fn write_reply<W: std::io::Write>(w: &mut W, reply: &Reply, close: bool) -> std::io::Result<()> {
    let extra: Vec<(&str, String)> = match reply.retry_after {
        Some(secs) => vec![("Retry-After", secs.to_string())],
        None => Vec::new(),
    };
    write_response_with(
        w,
        reply.status,
        reply.content_type,
        &extra,
        reply.body.as_bytes(),
        close,
    )
}

/// Dispatch one request.
fn route(req: &Request, shared: &Arc<Shared>) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Reply::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if shared.draining.load(Ordering::SeqCst) {
                Reply::text(503, "draining\n").retry_after(1)
            } else if lock(&shared.breaker).open() {
                // A restart storm: stop routing traffic here until the
                // breaker window slides past it.
                Reply::text(503, "restart-storm\n").retry_after(1)
            } else {
                Reply::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => Reply::text(200, &render_metrics(shared)),
        ("POST", "/solve") => handle_solve(&req.body, shared, false),
        ("POST", "/batch") => handle_solve(&req.body, shared, true),
        (_, "/healthz" | "/readyz" | "/metrics" | "/solve" | "/batch") => {
            Reply::json(405, error_body("method not allowed"))
        }
        _ => Reply::json(404, error_body("no such route")),
    }
}

fn render_metrics(shared: &Arc<Shared>) -> String {
    shared.set_queue_gauges();
    {
        // Fold current cache occupancy into the registry at scrape time.
        let (bytes, families, evictions) = {
            let c = lock(&shared.cache);
            (c.bytes() as f64, c.len() as f64, c.evictions())
        };
        let breaker = {
            let mut b = lock(&shared.breaker);
            (b.open(), b.total())
        };
        let mut m = lock(&shared.metrics);
        m.server.gauge_set(
            "sea_serve_cache_bytes",
            "Approximate resident bytes of the warm-start cache.",
            vec![],
            bytes,
        );
        m.server.gauge_set(
            "sea_serve_cache_families",
            "Families resident in the warm-start cache.",
            vec![],
            families,
        );
        let delta = evictions.saturating_sub(m.evictions_seen);
        m.evictions_seen = evictions;
        m.server.counter_add(
            "sea_serve_cache_evictions_total",
            "Warm-start cache families evicted by the byte budget.",
            vec![],
            delta as f64,
        );
        m.server.gauge_set(
            "sea_serve_restart_breaker_open",
            "1 while the restart-storm breaker holds /readyz at 503.",
            vec![],
            if breaker.0 { 1.0 } else { 0.0 },
        );
    }
    if let Some(q) = &shared.quarantine {
        let stats = q.stats();
        let quarantined = q.quarantined() as f64;
        let mut m = lock(&shared.metrics);
        m.server.gauge_set(
            "sea_serve_quarantined_families",
            "Families currently refusing requests (open or half-open circuit).",
            vec![],
            quarantined,
        );
        let (opens, refusals, closes) = m.quarantine_seen;
        m.quarantine_seen = (stats.opens, stats.refusals, stats.closes);
        m.server.counter_add(
            "sea_serve_quarantine_opens_total",
            "Family circuits opened after repeated poison outcomes.",
            vec![],
            stats.opens.saturating_sub(opens) as f64,
        );
        m.server.counter_add(
            "sea_serve_quarantine_refusals_total",
            "Requests refused with 422 by an open family circuit.",
            vec![],
            stats.refusals.saturating_sub(refusals) as f64,
        );
        m.server.counter_add(
            "sea_serve_quarantine_closes_total",
            "Family circuits closed by a successful half-open probe.",
            vec![],
            stats.closes.saturating_sub(closes) as f64,
        );
    }
    // Register the event counters at 0 so dashboards (and the chaos
    // soak's assertions) see them before the first event.
    shared.count_panic(0.0);
    for reason in ["wait", "quota", "full"] {
        shared.count_shed(reason, 0.0);
    }
    shared.counter(
        "sea_serve_worker_crashes_total",
        "Worker threads that died to an uncontained panic.",
        vec![],
        0.0,
    );
    shared.counter(
        "sea_serve_worker_restarts_total",
        "Worker threads respawned by the supervisor.",
        vec![],
        0.0,
    );
    shared.counter(
        "sea_serve_degraded_total",
        "Deadline-stopped solves accepted at the degraded tolerance.",
        vec![],
        0.0,
    );
    let m = lock(&shared.metrics);
    let mut out = m.server.render();
    out.push_str(&m.solver.render());
    out
}

fn error_body(msg: &str) -> String {
    let mut body = JsonValue::Object(vec![(
        "error".to_string(),
        JsonValue::String(msg.to_string()),
    )])
    .render();
    body.push('\n');
    body
}

/// [`error_body`] with one extra boolean flag (`"panic":true`,
/// `"quarantined":true`, `"shed":true`) so clients can branch on the
/// failure class without parsing prose.
fn error_body_tagged(msg: &str, tag: &str) -> String {
    let mut body = JsonValue::Object(vec![
        ("error".to_string(), JsonValue::String(msg.to_string())),
        (tag.to_string(), JsonValue::Bool(true)),
    ])
    .render();
    body.push('\n');
    body
}

/// Distinct families across a job's instances (quarantine bookkeeping).
fn job_families(kind: &JobKind) -> Vec<String> {
    let mut families: Vec<String> = Vec::new();
    let mut add = |inst: &BatchInstance| {
        if let Some(f) = &inst.family {
            if !families.iter().any(|g| g == f) {
                families.push(f.clone());
            }
        }
    };
    match kind {
        JobKind::Solve(inst) => add(inst),
        JobKind::Batch(list) => list.iter().for_each(add),
    }
    families
}

/// Parse, admit, and await one `/solve` or `/batch` request.
fn handle_solve(body: &[u8], shared: &Arc<Shared>, batch: bool) -> Reply {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return Reply::json(400, error_body("body is not UTF-8")),
    };

    // Serve-level extras ride on the first JSON object of the body.
    let mut tenant = "default".to_string();
    let mut deadline = shared.cfg.default_deadline;
    let mut epsilon = None;

    let kind = if batch {
        let mut instances = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let v = match parse_json(t) {
                Ok(v) => v,
                Err(e) => {
                    return Reply::json(400, error_body(&format!("manifest line {}: {e}", i + 1)))
                }
            };
            if instances.is_empty() {
                read_extras(&v, &mut tenant, &mut deadline, &mut epsilon);
            }
            match instance_from_json(&v, i + 1) {
                Ok(inst) => instances.push(inst),
                Err(e) => return Reply::json(400, error_body(&e.to_string())),
            }
        }
        if instances.is_empty() {
            return Reply::json(400, error_body("batch body holds no instances"));
        }
        JobKind::Batch(instances)
    } else {
        let v = match parse_json(text.trim()) {
            Ok(v) => v,
            Err(e) => return Reply::json(400, error_body(&format!("bad request body: {e}"))),
        };
        read_extras(&v, &mut tenant, &mut deadline, &mut epsilon);
        match instance_from_json(&v, 1) {
            Ok(inst) => JobKind::Solve(Box::new(inst)),
            Err(e) => return Reply::json(400, error_body(&e.to_string())),
        }
    };

    // Quarantine gate: circuit-broken families answer a fast, typed 422
    // without costing a queue slot or a worker.
    let families = job_families(&kind);
    let mut probes: Vec<String> = Vec::new();
    if let Some(q) = &shared.quarantine {
        for family in &families {
            match q.admit(family) {
                Admission::Admit => {}
                Admission::Probe => probes.push(family.clone()),
                Admission::Refuse { retry_after } => {
                    for p in &probes {
                        q.abort_probe(p);
                    }
                    return Reply::json(
                        422,
                        error_body_tagged(
                            &format!(
                                "family {family:?} is quarantined after repeated solver faults"
                            ),
                            "quarantined",
                        ),
                    )
                    .retry_after(retry_after);
                }
            }
        }
    }
    // Any early rejection below must resolve half-open probes admitted
    // above, or the probed circuits wedge.
    let release_probes = || {
        if let Some(q) = &shared.quarantine {
            for p in &probes {
                q.abort_probe(p);
            }
        }
    };

    if shared.draining.load(Ordering::SeqCst) {
        release_probes();
        return Reply::json(503, error_body("draining")).retry_after(1);
    }

    // Load shed: refuse at admission when the queue wait this request
    // would see already exceeds its whole deadline — it could not have
    // been answered in time, and shedding it keeps the queue honest for
    // the requests behind it.
    if let Some(d) = deadline {
        let est =
            lock(&shared.estimator).estimated_wait(shared.queue.depth(), shared.cfg.workers.max(1));
        if est > d.as_secs_f64() {
            release_probes();
            shared.count_shed("wait", 1.0);
            return Reply::json(
                429,
                error_body_tagged(
                    &format!(
                        "estimated queue wait {est:.2}s exceeds the {:.2}s deadline",
                        d.as_secs_f64()
                    ),
                    "shed",
                ),
            )
            .retry_after(est.ceil().max(1.0) as u64);
        }
    }

    let (tx, rx) = mpsc::channel();
    let job = Job {
        kind,
        deadline,
        epsilon,
        admitted: Instant::now(),
        respond: tx,
    };
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    match shared.queue.push(&tenant, job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            release_probes();
            shared.count_shed("full", 1.0);
            return Reply::json(429, error_body("queue full, retry later"))
                .retry_after(shared.retry_hint());
        }
        Err(PushError::TenantQuota) => {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            release_probes();
            shared.count_shed("quota", 1.0);
            return Reply::json(
                429,
                error_body_tagged(
                    &format!("tenant {tenant:?} is at its admission quota"),
                    "shed",
                ),
            )
            .retry_after(shared.retry_hint());
        }
        Err(PushError::Closed) => {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            release_probes();
            return Reply::json(503, error_body("draining")).retry_after(1);
        }
    }
    shared.set_queue_gauges();
    match rx.recv() {
        Ok((status, body)) => {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            Reply::json(status, body)
        }
        Err(_) => {
            // The worker died with our job: its panic escaped the
            // per-request containment (or was scripted to). The response
            // is still typed — and the job's families take the strike,
            // since the worker was no longer around to record it.
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            shared.set_queue_gauges();
            if let Some(q) = &shared.quarantine {
                for f in &families {
                    q.record(f, true);
                }
            }
            Reply::json(
                500,
                error_body_tagged("worker crashed mid-solve; the pool is respawning", "panic"),
            )
        }
    }
}

/// Read serve-level extras (`tenant`, `deadline`, `epsilon`) off a
/// request object; invalid values fall back to server defaults rather
/// than failing the request (they are hints, not the problem statement).
fn read_extras(
    v: &JsonValue,
    tenant: &mut String,
    deadline: &mut Option<Duration>,
    epsilon: &mut Option<f64>,
) {
    if let Some(t) = v.get("tenant").and_then(JsonValue::as_str) {
        if !t.is_empty() {
            *tenant = t.to_string();
        }
    }
    if let Some(d) = v.get("deadline").and_then(|d| d.as_f64()) {
        if d > 0.0 && d.is_finite() {
            *deadline = Some(Duration::from_secs_f64(d));
        }
    }
    if let Some(e) = v.get("epsilon").and_then(|e| e.as_f64()) {
        if e.is_finite() {
            *epsilon = Some(e);
        }
    }
}

/// Human-readable panic payload (matches what the panic would print).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let wait = job.admitted.elapsed().as_secs_f64();
        {
            let mut m = lock(&shared.metrics);
            m.server.histogram_observe(
                "sea_serve_queue_wait_seconds",
                "Time jobs spent queued before a worker picked them up.",
                vec![],
                &PHASE_SECONDS_BUCKETS,
                wait,
            );
        }
        shared.set_queue_gauges();
        let seq = shared.solve_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let faults: Vec<ServiceFault> = shared.cfg.chaos.at_seq(seq).collect();
        if faults.contains(&ServiceFault::Crash) {
            // Deliberately OUTSIDE the per-request containment: the
            // worker thread dies mid-job, the waiting handler answers
            // the typed 500 through the dropped channel, and the
            // supervisor respawns this slot.
            panic!("chaos: scripted worker crash at solve {seq}");
        }
        let solve_started = Instant::now();
        let response = match catch_unwind(AssertUnwindSafe(|| run_job(&job, shared, &faults))) {
            Ok(resp) => {
                lock(&shared.estimator).record(solve_started.elapsed().as_secs_f64());
                resp
            }
            Err(payload) => {
                // Contained: the request answers a typed 500, the worker
                // survives, and the job's families take a poison strike.
                shared.count_panic(1.0);
                if let Some(q) = &shared.quarantine {
                    for f in job_families(&job.kind) {
                        q.record(&f, true);
                    }
                }
                let msg = panic_message(&*payload);
                (
                    500,
                    error_body_tagged(&format!("worker panicked while solving: {msg}"), "panic"),
                )
            }
        };
        let _ = job.respond.send(response);
        shared.set_queue_gauges();
    }
}

/// True when a solve outcome should count as a quarantine strike: the
/// solver panicked (contained by its own supervisor), or the NaN/∞
/// watchdog tripped.
fn is_poison(report: &BatchItemReport) -> bool {
    match &report.outcome {
        Ok(sol) => sol.stop() == StopReason::Breakdown,
        Err(SeaError::WorkerPanic { .. } | SeaError::NumericalBreakdown { .. }) => true,
        Err(_) => false,
    }
}

/// Solve a job's instances in order, sharing the warm-start cache across
/// them, and render the response body (one result line per instance).
fn run_job(job: &Job, shared: &Arc<Shared>, faults: &[ServiceFault]) -> (u16, String) {
    if faults.contains(&ServiceFault::Panic) {
        // Scripted *contained* panic: caught by the worker's
        // catch_unwind, answered as a typed 500.
        panic!("chaos: scripted contained panic");
    }
    let instances: Vec<&BatchInstance> = match &job.kind {
        JobKind::Solve(inst) => vec![inst],
        JobKind::Batch(list) => list.iter().collect(),
    };
    let mut body = String::new();
    let mut deadline_hit = false;
    let mut solver_panic = false;
    for (index, inst) in instances.iter().enumerate() {
        let mut report = solve_with_cache(inst, job, shared, faults);
        report.index = index;
        if let Some(q) = &shared.quarantine {
            if let Some(family) = &inst.family {
                q.record(family, is_poison(&report));
            }
        }
        let mut extras: Vec<(&str, JsonValue)> = Vec::new();
        match &report.outcome {
            Ok(sol) if sol.stop() == StopReason::DeadlineExceeded => {
                let degraded = shared
                    .cfg
                    .degraded_epsilon
                    .is_some_and(|de| sol.residual() <= de);
                if degraded {
                    // Graceful degradation: the partial answer already
                    // meets the looser tolerance, so it is an answer —
                    // flagged, not failed.
                    extras.push(("degraded", JsonValue::Bool(true)));
                    shared.counter(
                        "sea_serve_degraded_total",
                        "Deadline-stopped solves accepted at the degraded tolerance.",
                        vec![],
                        1.0,
                    );
                } else {
                    deadline_hit = true;
                }
            }
            Err(SeaError::WorkerPanic { .. }) => {
                // The solver's own supervisor contained an equilibration
                // worker panic; surface it on the same metric as
                // serve-level containment.
                solver_panic = true;
                shared.count_panic(1.0);
            }
            _ => {}
        }
        body.push_str(&result_line_with(&report, &extras));
        body.push('\n');
    }
    // A deadline miss is the one stop the client cannot see from a 200
    // alone, so it gets the gateway-timeout status; the body still carries
    // the partial result lines with their stop reasons. A panic anywhere
    // in the job outranks it.
    let status = if solver_panic {
        500
    } else if deadline_hit {
        504
    } else {
        200
    };
    (status, body)
}

fn solve_with_cache(
    inst: &BatchInstance,
    job: &Job,
    shared: &Arc<Shared>,
    faults: &[ServiceFault],
) -> BatchItemReport {
    let cfg = &shared.cfg;
    let mut opts = BatchOptions {
        epsilon: job.epsilon.unwrap_or(cfg.epsilon),
        max_iterations: cfg.max_iterations,
        kernel: cfg.kernel,
        simd: cfg.simd,
        precision: sea_core::Precision::F64,
        parallelism: cfg.parallelism,
        warm_start: inst.family.is_some(),
        measure_kernel_work: true,
        supervisor: SupervisorOptions::default(),
    };
    // The deadline is measured from admission, so queue wait counts
    // against it; a job that waited past its whole deadline still enters
    // the solver, which stops at the first budget check.
    if let Some(total) = job.deadline {
        opts.supervisor.budget.deadline = Some(total.saturating_sub(job.admitted.elapsed()));
    }
    if faults.contains(&ServiceFault::Nan) {
        // Scripted solver fault (the PR 3 idiom): NaN multiplier at
        // iteration 1; the breakdown watchdog must contain it.
        opts.supervisor.faults = FaultPlan::new().at(1, FaultKind::NanLambda { index: 0 });
    }
    if faults.contains(&ServiceFault::CacheCorrupt) {
        // Scripted cache corruption: poison the family's warm seed
        // before the snapshot below reads it.
        if let Some(family) = &inst.family {
            let mut cache = lock(&shared.cache);
            if let Some(entry) = cache.lookup(family) {
                let poisoned = CacheEntry {
                    mu: vec![f64::NAN; entry.mu.len()],
                    cold_kernel_work: entry.cold_kernel_work,
                };
                cache.apply([CacheUpdate {
                    family: family.clone(),
                    entry: poisoned,
                }]);
            }
        }
    }

    // Snapshot the family's entry so the solve itself runs without
    // holding the cache lock.
    let mut local = WarmStartCache::new();
    if let Some(family) = &inst.family {
        let snap = lock(&shared.cache).lookup(family).cloned();
        if let Some(entry) = snap {
            local.apply([CacheUpdate {
                family: family.clone(),
                entry,
            }]);
        }
    }

    let mut events = CappedObserver::default();
    let (report, update) = solve_instance(inst, &opts, &local, &mut events);

    {
        let mut cache = lock(&shared.cache);
        if let Some(family) = &inst.family {
            if matches!(report.warm_start, WarmStart::Hit) && is_poison(&report) {
                // A warm seed that just broke a solve is dropped so the
                // next attempt runs cold instead of re-tripping the
                // watchdog from the same poisoned μ forever.
                cache.remove(family);
            } else {
                cache.touch(family);
            }
        }
        cache.apply(update);
    }
    {
        let mut m = lock(&shared.metrics);
        for e in &events.events {
            m.solver.record(e);
        }
        if events.dropped > 0 {
            m.server.counter_add(
                "sea_serve_solver_events_dropped_total",
                "Per-iteration solver events past the per-solve replay cap.",
                vec![],
                events.dropped as f64,
            );
        }
        m.server.counter_add(
            "sea_serve_warm_total",
            "Solves by warm-start cache outcome (hit/miss/bypass).",
            vec![("result".to_string(), report.warm_start.name().to_string())],
            1.0,
        );
    }
    report
}

/// Per-solve chatty-event budget for [`CappedObserver`]. A converging
/// solve emits a few per-iteration events per iteration and stays far
/// below this; only pathological drills (deadline-capped `epsilon: -1`
/// solves run hundreds of thousands of iterations) hit it.
const CHATTY_EVENT_CAP: usize = 4096;

/// A [`VecObserver`](sea_observe::VecObserver) with a ceiling on
/// per-iteration chatter.
///
/// The worker buffers solver events during the solve and replays them
/// into the metrics registry afterwards (so the solve never holds the
/// metrics lock). Unbounded, that replay is O(iterations): a solve that
/// legitimately stops at its deadline after ~500k iterations would then
/// hold its worker for several more *seconds* grinding the lock — a
/// deadline overshoot that starves the queue exactly when the service is
/// overloaded. Boundary events (start/end/stop/fallbacks) always land;
/// per-iteration chatter past the cap is counted and dropped.
#[derive(Default)]
struct CappedObserver {
    events: Vec<Event>,
    chatty: usize,
    dropped: u64,
}

impl Observer for CappedObserver {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &Event) {
        let chatty = matches!(
            event,
            Event::ConvergenceCheck { .. }
                | Event::PhaseStart { .. }
                | Event::PhaseEnd { .. }
                | Event::MultiplierBound { .. }
                | Event::OuterIteration { .. }
        );
        if chatty {
            self.chatty += 1;
            if self.chatty > CHATTY_EVENT_CAP {
                self.dropped += 1;
                return;
            }
        }
        self.events.push(event.clone());
    }
}
