//! The serve loop: accept, admit, solve, respond, drain.
//!
//! ## Threading model
//!
//! One nonblocking accept thread hands each connection to its own
//! handler thread (keep-alive HTTP/1.1, read timeout so idle connections
//! notice a drain). Handlers *parse and admit only* — every solve runs on
//! one of `workers` solver threads feeding from the shared
//! [`FairQueue`], so concurrency of actual solving is bounded by the
//! worker pool no matter how many connections are open, and
//! [`BatchParallelism::InnerThreads`] can additionally split one large
//! solve across the process-wide rayon pool.
//!
//! ## Request lifecycle
//!
//! admission (bounded queue, 429 when full) → queue wait (fair FIFO per
//! tenant) → solve (per-request deadline mapped to
//! [`sea_core::SolveBudget`], warm-started from the per-family cache) →
//! response (the same JSON result line the CLI's batch mode writes).
//!
//! ## Drain
//!
//! [`Server::shutdown`] (the binary wires SIGTERM/SIGINT to it) stops
//! the accept loop, closes the queue (new requests answer 503), lets the
//! workers finish every already-admitted solve — each bounded by its own
//! deadline budget — and [`Server::join`] returns once all responses are
//! written. The binary then exits 0: a clean drain is indistinguishable
//! from a clean stop by design.

use crate::http::{read_request, write_response, ReadError, Request};
use crate::queue::{FairQueue, PushError};
use sea_batch::{
    solve_instance, BatchInstance, BatchItemReport, BatchOptions, BatchParallelism, CacheUpdate,
    WarmStartCache,
};
use sea_cli::manifest::{instance_from_json, result_line};
use sea_core::{KernelKind, StopReason, SupervisorOptions};
use sea_observe::json::{parse as parse_json, JsonValue};
use sea_observe::metrics::PHASE_SECONDS_BUCKETS;
use sea_observe::{MetricsObserver, MetricsRegistry, Observer, VecObserver};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bucket bounds (seconds) for end-to-end request latency: sub-millisecond
/// cache hits through deadline-bounded multi-second solves.
const REQUEST_SECONDS_BUCKETS: [f64; 10] =
    [1e-4, 1e-3, 5e-3, 0.02, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];

/// How long a handler blocks in `read` before re-checking for drain.
const READ_POLL: Duration = Duration::from_millis(200);

/// Server configuration (flag surface of the `sea-serve` binary).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 = ephemeral).
    pub addr: String,
    /// Solver worker threads (the solve-concurrency bound).
    pub workers: usize,
    /// Admission queue capacity across all tenants (full → 429).
    pub queue_capacity: usize,
    /// Warm-start cache byte budget; `None` = unbounded.
    pub cache_bytes: Option<usize>,
    /// Default stopping tolerance (per-request `epsilon` overrides).
    pub epsilon: f64,
    /// Iteration cap per solve.
    pub max_iterations: usize,
    /// Equilibration kernel for every solve.
    pub kernel: KernelKind,
    /// Thread placement for each solve (`Serial` or `Inner[:K]`;
    /// instance-level parallelism comes from the worker pool itself).
    pub parallelism: BatchParallelism,
    /// Default per-request deadline, measured from *admission* (so it
    /// covers queue wait); per-request `deadline` overrides.
    pub default_deadline: Option<Duration>,
    /// Request body cap in bytes (over → 413).
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            queue_capacity: 64,
            cache_bytes: Some(64 << 20),
            epsilon: 1e-8,
            max_iterations: 10_000,
            kernel: KernelKind::SortScan,
            parallelism: BatchParallelism::Serial,
            default_deadline: Some(Duration::from_secs(30)),
            max_body_bytes: 8 << 20,
        }
    }
}

/// What a handler enqueues and a worker solves.
enum JobKind {
    /// `POST /solve`: one instance.
    Solve(Box<BatchInstance>),
    /// `POST /batch`: a JSONL manifest, solved sequentially in order.
    Batch(Vec<BatchInstance>),
}

struct Job {
    kind: JobKind,
    /// Deadline for the whole job, measured from admission.
    deadline: Option<Duration>,
    /// Per-request tolerance override.
    epsilon: Option<f64>,
    admitted: Instant,
    respond: mpsc::Sender<(u16, String)>,
}

/// Server + solver metrics behind one lock, rendered together.
struct Metrics {
    server: MetricsRegistry,
    solver: MetricsObserver,
    /// Last cache-eviction count folded into the counter (so the counter
    /// advances by deltas of the cache's cumulative figure).
    evictions_seen: u64,
}

struct Shared {
    cfg: ServeConfig,
    queue: FairQueue<Job>,
    cache: Mutex<WarmStartCache>,
    metrics: Mutex<Metrics>,
    /// Set once by `shutdown`; accept loop and idle handlers exit on it.
    draining: AtomicBool,
    /// Jobs admitted and not yet responded to (readiness + drain gauge).
    inflight: AtomicUsize,
}

/// Lock a mutex, recovering the guard from poisoning: state behind these
/// locks (cache, metrics) stays usable even if some other holder panicked.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    fn set_queue_gauges(&self) {
        let depth = self.queue.depth() as f64;
        let inflight = self.inflight.load(Ordering::SeqCst) as f64;
        let mut m = lock(&self.metrics);
        m.server.gauge_set(
            "sea_serve_queue_depth",
            "Jobs admitted and waiting for a solver worker.",
            vec![],
            depth,
        );
        m.server.gauge_set(
            "sea_serve_inflight",
            "Jobs admitted and not yet responded to (queued or solving).",
            vec![],
            inflight,
        );
    }

    fn count_request(&self, route: &str, code: u16, started: Instant) {
        let mut m = lock(&self.metrics);
        m.server.counter_add(
            "sea_serve_requests_total",
            "HTTP requests served, by route and status code.",
            vec![
                ("route".to_string(), route.to_string()),
                ("code".to_string(), code.to_string()),
            ],
            1.0,
        );
        m.server.histogram_observe(
            "sea_serve_request_seconds",
            "End-to-end request latency (read to response write), by route.",
            vec![("route".to_string(), route.to_string())],
            &REQUEST_SECONDS_BUCKETS,
            started.elapsed().as_secs_f64(),
        );
    }
}

/// A running server: accept thread + worker pool bound to one listener.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr`, spawn the worker pool and accept thread, and
    /// return the running server. Fails only on bind errors.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache: Mutex::new(match cfg.cache_bytes {
                Some(b) => WarmStartCache::with_limit(b),
                None => WarmStartCache::new(),
            }),
            queue: FairQueue::new(cfg.queue_capacity),
            metrics: Mutex::new(Metrics {
                server: MetricsRegistry::new(),
                solver: MetricsObserver::new(),
                evictions_seen: 0,
            }),
            draining: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            cfg,
        });

        let workers = (0..workers_n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sea-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sea-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain: stop accepting, fail new admissions with
    /// 503, let admitted solves finish. Idempotent; `join` waits it out.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// True once a drain has started.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Wait for the drain to complete: every admitted solve finished and
    /// every response written. Call after [`Server::shutdown`] (or it
    /// blocks until someone else triggers one).
    pub fn join(mut self) {
        let handlers = match self.accept.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => Vec::new(),
        };
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for h in handlers {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return handlers;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                if let Ok(h) = std::thread::Builder::new()
                    .name("sea-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared))
                {
                    handlers.push(h);
                }
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Responses are written whole; waiting for ACKs between keep-alive
    // exchanges only adds Nagle latency.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let started = Instant::now();
        let req = match read_request(&mut reader, shared.cfg.max_body_bytes) {
            Ok(req) => req,
            Err(ReadError::Eof) => return,
            Err(ReadError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle keep-alive poll tick: close only when draining.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(msg)) => {
                let body = error_body(&msg);
                let _ = write_response(&mut writer, 400, "application/json", body.as_bytes(), true);
                shared.count_request("malformed", 400, started);
                return;
            }
            Err(ReadError::BodyTooLarge { declared, limit }) => {
                let body = error_body(&format!("body of {declared} bytes exceeds limit {limit}"));
                let _ = write_response(&mut writer, 413, "application/json", body.as_bytes(), true);
                shared.count_request("oversized", 413, started);
                return;
            }
        };
        let (status, content_type, body) = route(&req, shared);
        // During a drain, answer the in-hand request and close so the
        // handler thread exits; otherwise honor keep-alive.
        let close = req.close || shared.draining.load(Ordering::SeqCst);
        shared.count_request(&req.path, status, started);
        if write_response(&mut writer, status, content_type, body.as_bytes(), close).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

/// Dispatch one request; returns (status, content type, body).
fn route(req: &Request, shared: &Arc<Shared>) -> (u16, &'static str, String) {
    const JSON: &str = "application/json";
    const TEXT: &str = "text/plain; version=0.0.4";
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, TEXT, "ok\n".to_string()),
        ("GET", "/readyz") => {
            if shared.draining.load(Ordering::SeqCst) {
                (503, TEXT, "draining\n".to_string())
            } else {
                (200, TEXT, "ready\n".to_string())
            }
        }
        ("GET", "/metrics") => (200, TEXT, render_metrics(shared)),
        ("POST", "/solve") => handle_solve(&req.body, shared, false),
        ("POST", "/batch") => handle_solve(&req.body, shared, true),
        (_, "/healthz" | "/readyz" | "/metrics" | "/solve" | "/batch") => {
            (405, JSON, error_body("method not allowed"))
        }
        _ => (404, JSON, error_body("no such route")),
    }
}

fn render_metrics(shared: &Arc<Shared>) -> String {
    shared.set_queue_gauges();
    {
        // Fold current cache occupancy into the registry at scrape time.
        let (bytes, families, evictions) = {
            let c = lock(&shared.cache);
            (c.bytes() as f64, c.len() as f64, c.evictions())
        };
        let mut m = lock(&shared.metrics);
        m.server.gauge_set(
            "sea_serve_cache_bytes",
            "Approximate resident bytes of the warm-start cache.",
            vec![],
            bytes,
        );
        m.server.gauge_set(
            "sea_serve_cache_families",
            "Families resident in the warm-start cache.",
            vec![],
            families,
        );
        let delta = evictions.saturating_sub(m.evictions_seen);
        m.evictions_seen = evictions;
        m.server.counter_add(
            "sea_serve_cache_evictions_total",
            "Warm-start cache families evicted by the byte budget.",
            vec![],
            delta as f64,
        );
    }
    let m = lock(&shared.metrics);
    let mut out = m.server.render();
    out.push_str(&m.solver.render());
    out
}

fn error_body(msg: &str) -> String {
    let mut body = JsonValue::Object(vec![(
        "error".to_string(),
        JsonValue::String(msg.to_string()),
    )])
    .render();
    body.push('\n');
    body
}

/// Parse, admit, and await one `/solve` or `/batch` request.
fn handle_solve(body: &[u8], shared: &Arc<Shared>, batch: bool) -> (u16, &'static str, String) {
    const JSON: &str = "application/json";
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, JSON, error_body("body is not UTF-8")),
    };

    // Serve-level extras ride on the first JSON object of the body.
    let mut tenant = "default".to_string();
    let mut deadline = shared.cfg.default_deadline;
    let mut epsilon = None;

    let kind = if batch {
        let mut instances = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let v = match parse_json(t) {
                Ok(v) => v,
                Err(e) => {
                    return (
                        400,
                        JSON,
                        error_body(&format!("manifest line {}: {e}", i + 1)),
                    )
                }
            };
            if instances.is_empty() {
                read_extras(&v, &mut tenant, &mut deadline, &mut epsilon);
            }
            match instance_from_json(&v, i + 1) {
                Ok(inst) => instances.push(inst),
                Err(e) => return (400, JSON, error_body(&e.to_string())),
            }
        }
        if instances.is_empty() {
            return (400, JSON, error_body("batch body holds no instances"));
        }
        JobKind::Batch(instances)
    } else {
        let v = match parse_json(text.trim()) {
            Ok(v) => v,
            Err(e) => return (400, JSON, error_body(&format!("bad request body: {e}"))),
        };
        read_extras(&v, &mut tenant, &mut deadline, &mut epsilon);
        match instance_from_json(&v, 1) {
            Ok(inst) => JobKind::Solve(Box::new(inst)),
            Err(e) => return (400, JSON, error_body(&e.to_string())),
        }
    };

    if shared.draining.load(Ordering::SeqCst) {
        return (503, JSON, error_body("draining"));
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        kind,
        deadline,
        epsilon,
        admitted: Instant::now(),
        respond: tx,
    };
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    match shared.queue.push(&tenant, job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            return (429, JSON, error_body("queue full, retry later"));
        }
        Err(PushError::Closed) => {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            return (503, JSON, error_body("draining"));
        }
    }
    shared.set_queue_gauges();
    match rx.recv() {
        Ok((status, body)) => (status, JSON, body),
        // Worker pool gone mid-job: only reachable if a worker panicked.
        Err(_) => (503, JSON, error_body("worker pool unavailable")),
    }
}

/// Read serve-level extras (`tenant`, `deadline`, `epsilon`) off a
/// request object; invalid values fall back to server defaults rather
/// than failing the request (they are hints, not the problem statement).
fn read_extras(
    v: &JsonValue,
    tenant: &mut String,
    deadline: &mut Option<Duration>,
    epsilon: &mut Option<f64>,
) {
    if let Some(t) = v.get("tenant").and_then(JsonValue::as_str) {
        if !t.is_empty() {
            *tenant = t.to_string();
        }
    }
    if let Some(d) = v.get("deadline").and_then(|d| d.as_f64()) {
        if d > 0.0 && d.is_finite() {
            *deadline = Some(Duration::from_secs_f64(d));
        }
    }
    if let Some(e) = v.get("epsilon").and_then(|e| e.as_f64()) {
        if e.is_finite() {
            *epsilon = Some(e);
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let wait = job.admitted.elapsed().as_secs_f64();
        {
            let mut m = lock(&shared.metrics);
            m.server.histogram_observe(
                "sea_serve_queue_wait_seconds",
                "Time jobs spent queued before a worker picked them up.",
                vec![],
                &PHASE_SECONDS_BUCKETS,
                wait,
            );
        }
        shared.set_queue_gauges();
        let response = run_job(&job, shared);
        let _ = job.respond.send(response);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.set_queue_gauges();
    }
}

/// Solve a job's instances in order, sharing the warm-start cache across
/// them, and render the response body (one result line per instance).
fn run_job(job: &Job, shared: &Arc<Shared>) -> (u16, String) {
    let instances: Vec<&BatchInstance> = match &job.kind {
        JobKind::Solve(inst) => vec![inst],
        JobKind::Batch(list) => list.iter().collect(),
    };
    let mut body = String::new();
    let mut deadline_hit = false;
    for (index, inst) in instances.iter().enumerate() {
        let mut report = solve_with_cache(inst, job, shared);
        report.index = index;
        if report
            .outcome
            .as_ref()
            .is_ok_and(|sol| sol.stop() == StopReason::DeadlineExceeded)
        {
            deadline_hit = true;
        }
        body.push_str(&result_line(&report));
        body.push('\n');
    }
    // A deadline miss is the one stop the client cannot see from a 200
    // alone, so it gets the gateway-timeout status; the body still carries
    // the partial result lines with their stop reasons.
    let status = if deadline_hit { 504 } else { 200 };
    (status, body)
}

fn solve_with_cache(inst: &BatchInstance, job: &Job, shared: &Arc<Shared>) -> BatchItemReport {
    let cfg = &shared.cfg;
    let mut opts = BatchOptions {
        epsilon: job.epsilon.unwrap_or(cfg.epsilon),
        max_iterations: cfg.max_iterations,
        kernel: cfg.kernel,
        parallelism: cfg.parallelism,
        warm_start: inst.family.is_some(),
        measure_kernel_work: true,
        supervisor: SupervisorOptions::default(),
    };
    // The deadline is measured from admission, so queue wait counts
    // against it; a job that waited past its whole deadline still enters
    // the solver, which stops at the first budget check.
    if let Some(total) = job.deadline {
        opts.supervisor.budget.deadline = Some(total.saturating_sub(job.admitted.elapsed()));
    }

    // Snapshot the family's entry so the solve itself runs without
    // holding the cache lock.
    let mut local = WarmStartCache::new();
    if let Some(family) = &inst.family {
        let snap = lock(&shared.cache).lookup(family).cloned();
        if let Some(entry) = snap {
            local.apply([CacheUpdate {
                family: family.clone(),
                entry,
            }]);
        }
    }

    let mut events = VecObserver::new();
    let (report, update) = solve_instance(inst, &opts, &local, &mut events);

    {
        let mut cache = lock(&shared.cache);
        if let Some(family) = &inst.family {
            cache.touch(family);
        }
        cache.apply(update);
    }
    {
        let mut m = lock(&shared.metrics);
        for e in &events.events {
            m.solver.record(e);
        }
        m.server.counter_add(
            "sea_serve_warm_total",
            "Solves by warm-start cache outcome (hit/miss/bypass).",
            vec![("result".to_string(), report.warm_start.name().to_string())],
            1.0,
        );
    }
    report
}
