//! The `sea-serve` daemon: parse flags, bind, supervise, drain on signal.

// `!(x > 0.0)` deliberately treats NaN as invalid input (same as sea-cli).
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use sea_batch::BatchParallelism;
use sea_core::KernelKind;
use sea_serve::{
    signals, BreakerPolicy, ChaosPlan, QuarantinePolicy, ServeConfig, Server, EXIT_CLEAN,
    EXIT_RUNTIME, EXIT_USAGE,
};
use std::time::Duration;

/// Parse `N:SECONDS` (count, window) — the shared grammar of
/// `--quarantine` and `--restart-breaker`.
fn parse_threshold(value: &str) -> Option<(usize, f64)> {
    let (n, secs) = value.split_once(':')?;
    let n = n.parse::<usize>().ok().filter(|&n| n >= 1)?;
    let secs = secs
        .parse::<f64>()
        .ok()
        .filter(|&s| s > 0.0 && s.is_finite())?;
    Some((n, secs))
}

const USAGE: &str = "\
sea-serve: long-running HTTP solve service over the SEA solvers

USAGE:
  sea-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
            [--tenant-quota N|off] [--cache-bytes N|off] [--epsilon F]
            [--degraded-epsilon F|off] [--max-iterations N]
            [--kernel sortscan|quickselect] [--simd auto|off|force]
            [--parallel serial|inner[:K]]
            [--deadline SECONDS|off] [--max-body-bytes N]
            [--quarantine N:SECONDS|off] [--restart-breaker N:SECONDS]
            [--chaos SPEC]

FLAGS:
  --addr HOST:PORT     bind address              (default 127.0.0.1:7878)
  --workers N          solver worker threads     (default: cpu count, max 8)
  --queue-depth N      admission queue capacity  (default 64; full => 429)
  --tenant-quota N|off per-tenant queued-job cap (default off; at quota => 429)
  --cache-bytes N|off  warm-start cache budget   (default 67108864; off = unbounded)
  --epsilon F          default stop tolerance    (default 1e-8)
  --degraded-epsilon F|off
                       looser tolerance accepted when the deadline fires:
                       answers 200 with \"degraded\":true instead of 504
                       (default off)
  --max-iterations N   iteration cap per solve   (default 10000)
  --kernel NAME        equilibration kernel      (default sortscan)
  --simd POLICY        kernel SIMD policy        (default auto; off = scalar
                       oracle, force = fail fast when the CPU lacks AVX2)
  --parallel POLICY    per-solve threads         (default serial)
  --deadline S|off     default request deadline  (default 30; off = unbounded)
  --max-body-bytes N   request body cap          (default 8388608; over => 413)
  --quarantine N:SECONDS|off
                       circuit-break a family after N consecutive poison
                       solves for SECONDS (default 3:10; off disables)
  --restart-breaker N:SECONDS
                       /readyz goes 503 after N worker respawns within
                       SECONDS (default 5:60)
  --chaos SPEC         scripted service faults, e.g. crash@3,panic@6-8,
                       nan@12,cachecorrupt@15 (default: none; drills only)

ROUTES:
  POST /solve    one JSON instance object -> one JSON result line
  POST /batch    JSONL manifest           -> JSONL result lines
  GET  /metrics  Prometheus text exposition
  GET  /healthz  liveness   GET /readyz  readiness (503 while draining
                 or during a worker restart storm)

EXIT CODES:
  0  clean drain after SIGTERM/SIGINT (all admitted solves finished)
  1  runtime failure (bind error, worker pool failure)
  2  usage error
";

fn parse_config(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument {flag:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        match name {
            "addr" => cfg.addr = value.clone(),
            "workers" => {
                cfg.workers = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--workers {value:?} is not a positive integer"))?;
            }
            "queue-depth" => {
                cfg.queue_capacity = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--queue-depth {value:?} is not a positive integer"))?;
            }
            "cache-bytes" => {
                cfg.cache_bytes = if value == "off" {
                    None
                } else {
                    Some(value.parse::<usize>().map_err(|_| {
                        format!("--cache-bytes {value:?} is not a byte count or \"off\"")
                    })?)
                };
            }
            "epsilon" => {
                let eps: f64 = value
                    .parse()
                    .map_err(|_| format!("--epsilon {value:?} is not a number"))?;
                if !(eps > 0.0) {
                    return Err("--epsilon must be strictly positive".to_string());
                }
                cfg.epsilon = eps;
            }
            "max-iterations" => {
                cfg.max_iterations =
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            format!("--max-iterations {value:?} is not a positive integer")
                        })?;
            }
            "kernel" => {
                cfg.kernel = KernelKind::parse(value).ok_or_else(|| {
                    format!("unknown --kernel {value:?} (expected sortscan or quickselect)")
                })?;
            }
            "simd" => {
                cfg.simd = sea_core::SimdMode::parse(value).ok_or_else(|| {
                    format!("unknown --simd {value:?} (expected auto, off, or force)")
                })?;
            }
            "parallel" => {
                let policy = BatchParallelism::parse(value).ok_or_else(|| {
                    format!("unknown --parallel {value:?} (expected serial or inner[:K])")
                })?;
                if matches!(policy, BatchParallelism::OuterThreads(_)) {
                    return Err("--parallel outer is not meaningful here: instance-level \
                         concurrency comes from --workers"
                        .to_string());
                }
                cfg.parallelism = policy;
            }
            "deadline" => {
                cfg.default_deadline = if value == "off" {
                    None
                } else {
                    let secs: f64 = value
                        .parse()
                        .map_err(|_| format!("--deadline {value:?} is not seconds or \"off\""))?;
                    if !(secs > 0.0) {
                        return Err("--deadline must be strictly positive".to_string());
                    }
                    Some(Duration::from_secs_f64(secs))
                };
            }
            "max-body-bytes" => {
                cfg.max_body_bytes = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--max-body-bytes {value:?} is not a byte count"))?;
            }
            "tenant-quota" => {
                cfg.tenant_quota =
                    if value == "off" {
                        None
                    } else {
                        Some(value.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(
                        || format!("--tenant-quota {value:?} is not a positive integer or \"off\""),
                    )?)
                    };
            }
            "degraded-epsilon" => {
                cfg.degraded_epsilon = if value == "off" {
                    None
                } else {
                    let eps: f64 = value
                        .parse()
                        .map_err(|_| format!("--degraded-epsilon {value:?} is not a number"))?;
                    if !(eps > 0.0) {
                        return Err("--degraded-epsilon must be strictly positive".to_string());
                    }
                    Some(eps)
                };
            }
            "quarantine" => {
                cfg.quarantine = if value == "off" {
                    None
                } else {
                    let (strikes, secs) = parse_threshold(value).ok_or_else(|| {
                        format!("--quarantine {value:?} is not N:SECONDS or \"off\"")
                    })?;
                    Some(QuarantinePolicy {
                        strikes,
                        cooldown: Duration::from_secs_f64(secs),
                    })
                };
            }
            "restart-breaker" => {
                let (max_restarts, secs) = parse_threshold(value)
                    .ok_or_else(|| format!("--restart-breaker {value:?} is not N:SECONDS"))?;
                cfg.breaker = BreakerPolicy {
                    max_restarts,
                    window: Duration::from_secs_f64(secs),
                };
            }
            "chaos" => {
                cfg.chaos = ChaosPlan::parse(value).map_err(|e| format!("--chaos: {e}"))?;
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_config(&args) {
        Ok(cfg) => cfg,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            std::process::exit(EXIT_CLEAN);
        }
        Err(msg) => {
            eprintln!("sea-serve: {msg}");
            eprint!("{USAGE}");
            std::process::exit(EXIT_USAGE);
        }
    };

    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sea-serve: bind failed: {e}");
            std::process::exit(EXIT_RUNTIME);
        }
    };
    eprintln!("sea-serve: listening on {}", server.addr());
    signals::install();

    while !signals::stop_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("sea-serve: draining");
    server.shutdown();
    server.join();
    eprintln!("sea-serve: drained cleanly");
    std::process::exit(EXIT_CLEAN);
}
