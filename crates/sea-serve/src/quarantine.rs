//! Poison-request quarantine: a per-family circuit breaker.
//!
//! A *poison* request is one whose solve panics or NaN-trips the
//! breakdown watchdog — outcomes that burn a worker's time (or the
//! worker itself) without producing a useful answer. One bad instance
//! resubmitted in a loop would otherwise occupy the pool indefinitely.
//! Families accumulate *strikes* on consecutive poison outcomes; at the
//! threshold the family's circuit **opens** and further requests are
//! refused immediately (the handler answers a fast, typed 422) without
//! touching the pool. After a cooldown the circuit goes **half-open**:
//! exactly one probe request is admitted, and its outcome decides
//! whether the circuit closes (healthy again) or re-opens for another
//! cooldown.
//!
//! Strikes reset on any healthy outcome, so intermittent faults (one
//! flaky NaN in a stream of good solves) never quarantine a family.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// When to open a family's circuit and how long to hold it open.
#[derive(Debug, Clone, Copy)]
pub struct QuarantinePolicy {
    /// Consecutive poison outcomes that open the circuit.
    pub strikes: usize,
    /// How long an open circuit refuses requests before admitting one
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            strikes: 3,
            cooldown: Duration::from_secs(10),
        }
    }
}

/// One family's circuit state.
#[derive(Debug)]
enum Circuit {
    /// Healthy; `strikes` consecutive poison outcomes so far.
    Closed { strikes: usize },
    /// Refusing requests since `since`.
    Open { since: Instant },
    /// One probe is in flight; everyone else is refused until it
    /// resolves.
    HalfOpen,
}

/// Verdict for one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Not quarantined: solve it.
    Admit,
    /// Admitted as the single half-open probe. The caller must resolve
    /// the probe — [`Quarantine::record`] once the solve finishes, or
    /// [`Quarantine::abort_probe`] if the request never reaches a worker
    /// (queue full, drain) — or the circuit wedges half-open.
    Probe,
    /// Quarantined: answer 422 without queueing.
    Refuse {
        /// Seconds until the next half-open probe would be admitted
        /// (the response's `Retry-After`).
        retry_after: u64,
    },
}

/// Cumulative quarantine counters (rendered into `/metrics`).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuarantineStats {
    /// Circuits opened (first open and re-opens after a failed probe).
    pub opens: u64,
    /// Requests refused with 422.
    pub refusals: u64,
    /// Circuits closed by a successful probe.
    pub closes: u64,
}

/// The per-family circuit breaker (see module docs). All methods take
/// `&self`; one internal lock guards the family map.
#[derive(Debug)]
pub struct Quarantine {
    policy: QuarantinePolicy,
    state: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    families: HashMap<String, Circuit>,
    stats: QuarantineStats,
}

impl Quarantine {
    /// A quarantine enforcing `policy`.
    pub fn new(policy: QuarantinePolicy) -> Self {
        Quarantine {
            policy,
            state: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Decide whether a request for `family` may enter the queue. An
    /// open circuit past its cooldown transitions to half-open and
    /// admits this caller as the probe.
    pub fn admit(&self, family: &str) -> Admission {
        let mut s = self.lock();
        let refuse_secs = |remaining: Duration| remaining.as_secs_f64().ceil().max(1.0) as u64;
        let verdict = match s.families.get_mut(family) {
            None | Some(Circuit::Closed { .. }) => Admission::Admit,
            Some(c @ Circuit::Open { .. }) => {
                let since = match c {
                    Circuit::Open { since } => *since,
                    // Unreachable: the outer match arm pinned the variant.
                    _ => Instant::now(),
                };
                if since.elapsed() >= self.policy.cooldown {
                    *c = Circuit::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::Refuse {
                        retry_after: refuse_secs(self.policy.cooldown - since.elapsed()),
                    }
                }
            }
            Some(Circuit::HalfOpen) => Admission::Refuse {
                retry_after: refuse_secs(self.policy.cooldown),
            },
        };
        if let Admission::Refuse { .. } = verdict {
            s.stats.refusals += 1;
        }
        verdict
    }

    /// Record one solve outcome for `family`. `poison` means the solve
    /// panicked or NaN-tripped (see the server's classification); any
    /// healthy outcome resets the strike count or closes a half-open
    /// circuit.
    pub fn record(&self, family: &str, poison: bool) {
        let mut s = self.lock();
        let circuit = s
            .families
            .entry(family.to_string())
            .or_insert(Circuit::Closed { strikes: 0 });
        match circuit {
            Circuit::Closed { strikes } => {
                if poison {
                    *strikes += 1;
                    if *strikes >= self.policy.strikes {
                        *circuit = Circuit::Open {
                            since: Instant::now(),
                        };
                        s.stats.opens += 1;
                    }
                } else {
                    *strikes = 0;
                }
            }
            Circuit::HalfOpen => {
                if poison {
                    *circuit = Circuit::Open {
                        since: Instant::now(),
                    };
                    s.stats.opens += 1;
                } else {
                    *circuit = Circuit::Closed { strikes: 0 };
                    s.stats.closes += 1;
                }
            }
            // A result for a job admitted before the circuit opened:
            // the open circuit's cooldown stands either way.
            Circuit::Open { .. } => {}
        }
    }

    /// Un-wedge a half-open circuit whose probe was admitted but never
    /// dispatched (queue full, tenant quota, drain started). The circuit
    /// returns to open *with its cooldown already served*, so the next
    /// request becomes the probe instead of waiting a full cooldown.
    pub fn abort_probe(&self, family: &str) {
        let mut s = self.lock();
        if let Some(c @ Circuit::HalfOpen) = s.families.get_mut(family) {
            let since = Instant::now()
                .checked_sub(self.policy.cooldown)
                .unwrap_or_else(Instant::now);
            *c = Circuit::Open { since };
        }
    }

    /// Families currently refusing requests (open or half-open).
    pub fn quarantined(&self) -> usize {
        self.lock()
            .families
            .values()
            .filter(|c| !matches!(c, Circuit::Closed { .. }))
            .count()
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> QuarantineStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy() -> QuarantinePolicy {
        QuarantinePolicy {
            strikes: 3,
            cooldown: Duration::from_millis(40),
        }
    }

    #[test]
    fn opens_after_consecutive_strikes_only() {
        let q = Quarantine::new(fast_policy());
        q.record("f", true);
        q.record("f", true);
        // A healthy outcome resets the count: no quarantine from
        // intermittent faults.
        q.record("f", false);
        q.record("f", true);
        q.record("f", true);
        assert_eq!(q.admit("f"), Admission::Admit);
        q.record("f", true);
        assert!(matches!(q.admit("f"), Admission::Refuse { .. }));
        assert_eq!(q.quarantined(), 1);
        assert_eq!(q.stats().opens, 1);
        assert!(q.stats().refusals >= 1);
    }

    #[test]
    fn refusal_reports_retry_after_and_other_families_unaffected() {
        let q = Quarantine::new(fast_policy());
        for _ in 0..3 {
            q.record("bad", true);
        }
        match q.admit("bad") {
            Admission::Refuse { retry_after } => assert!(retry_after >= 1),
            other => panic!("expected refusal, got {other:?}"),
        }
        assert_eq!(q.admit("good"), Admission::Admit);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let q = Quarantine::new(fast_policy());
        for _ in 0..3 {
            q.record("f", true);
        }
        assert!(matches!(q.admit("f"), Admission::Refuse { .. }));
        std::thread::sleep(Duration::from_millis(50));
        // Past the cooldown: exactly one probe admitted, others refused.
        assert_eq!(q.admit("f"), Admission::Probe);
        assert!(matches!(q.admit("f"), Admission::Refuse { .. }));
        q.record("f", false);
        assert_eq!(q.admit("f"), Admission::Admit);
        assert_eq!(q.quarantined(), 0);
        assert_eq!(q.stats().closes, 1);
    }

    #[test]
    fn aborted_probe_does_not_wedge_the_circuit() {
        let q = Quarantine::new(fast_policy());
        for _ in 0..3 {
            q.record("f", true);
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.admit("f"), Admission::Probe);
        // Probe never dispatched (say the queue was full); without an
        // abort the circuit would refuse everyone forever.
        q.abort_probe("f");
        assert_eq!(q.admit("f"), Admission::Probe);
    }

    #[test]
    fn half_open_probe_reopens_on_poison() {
        let q = Quarantine::new(fast_policy());
        for _ in 0..3 {
            q.record("f", true);
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.admit("f"), Admission::Probe);
        q.record("f", true);
        assert!(matches!(q.admit("f"), Admission::Refuse { .. }));
        assert_eq!(q.stats().opens, 2);
    }
}
