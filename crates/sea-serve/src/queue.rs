//! Bounded admission queue with per-tenant FIFO fairness and quotas.
//!
//! Admission control is the service's backpressure: the queue holds at
//! most `capacity` jobs across all tenants, and an arrival beyond that is
//! rejected immediately (the connection handler answers 429) instead of
//! buffering without bound. Scheduling is *fair FIFO per tenant*: each
//! tenant keeps its own FIFO lane and workers take the next job from the
//! next non-empty lane in round-robin order, so one tenant flooding the
//! queue delays its own later jobs, not other tenants' first ones.
//!
//! An optional *per-tenant quota* caps one lane's depth below the shared
//! capacity, so a flooding tenant is told to back off (429 +
//! `Retry-After`) while slots remain for everyone else — round-robin
//! popping keeps latency fair, quotas keep *admission* fair.
//!
//! The queue is a plain `Mutex` + `Condvar` pair — jobs are coarse
//! (whole solves), so lock hold times are nanoseconds against solve times
//! of milliseconds and up.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should answer 429.
    Full,
    /// This tenant's lane is at its quota; the caller should answer 429
    /// (other tenants may still be admitted).
    TenantQuota,
    /// The queue is closed (server draining); the caller should answer 503.
    Closed,
}

struct State<T> {
    /// One FIFO lane per tenant, in first-appearance order. Lanes persist
    /// after emptying (tenant cardinality is operator-bounded) so the
    /// round-robin cursor stays stable.
    lanes: Vec<(String, VecDeque<T>)>,
    /// Round-robin cursor: index of the lane to inspect first on pop.
    cursor: usize,
    /// Total queued jobs across lanes.
    len: usize,
    closed: bool,
}

/// A bounded multi-tenant FIFO queue (see module docs).
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    readable: Condvar,
    capacity: usize,
    /// Per-tenant lane cap; `None` = only the shared capacity applies.
    tenant_quota: Option<usize>,
}

impl<T> FairQueue<T> {
    /// An open queue admitting at most `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        Self::with_tenant_quota(capacity, None)
    }

    /// Like [`FairQueue::new`], additionally capping each tenant's lane
    /// at `quota` queued jobs (min 1 when set).
    pub fn with_tenant_quota(capacity: usize, quota: Option<usize>) -> Self {
        FairQueue {
            state: Mutex::new(State {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                closed: false,
            }),
            readable: Condvar::new(),
            capacity: capacity.max(1),
            tenant_quota: quota.map(|q| q.max(1)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // Allowed: none of the critical sections below panic, so the mutex
        // cannot be poisoned; recovering the guard keeps drain working even
        // if that invariant is ever broken under test.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueue a job for `tenant`, failing fast when full or closed.
    pub fn push(&self, tenant: &str, job: T) -> Result<(), PushError> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.len >= self.capacity {
            return Err(PushError::Full);
        }
        if let Some(quota) = self.tenant_quota {
            let lane_depth = s
                .lanes
                .iter()
                .find(|(name, _)| name == tenant)
                .map_or(0, |(_, lane)| lane.len());
            if lane_depth >= quota {
                return Err(PushError::TenantQuota);
            }
        }
        match s.lanes.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, lane)) => lane.push_back(job),
            None => {
                let mut lane = VecDeque::new();
                lane.push_back(job);
                s.lanes.push((tenant.to_string(), lane));
            }
        }
        s.len += 1;
        drop(s);
        self.readable.notify_one();
        Ok(())
    }

    /// Dequeue the next job in round-robin tenant order, blocking while
    /// the queue is open and empty. Returns `None` once the queue is
    /// closed *and* drained — the worker-thread exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if s.len > 0 {
                let n = s.lanes.len();
                for i in 0..n {
                    let idx = (s.cursor + i) % n;
                    if let Some(job) = s.lanes[idx].1.pop_front() {
                        s.cursor = (idx + 1) % n;
                        s.len -= 1;
                        return Some(job);
                    }
                }
                unreachable!("len > 0 but all lanes empty");
            }
            if s.closed {
                return None;
            }
            s = match self.readable.wait(s) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Close the queue: future pushes fail with [`PushError::Closed`],
    /// already-admitted jobs still drain through [`FairQueue::pop`], and
    /// blocked workers wake (receiving jobs until empty, then `None`).
    pub fn close(&self) {
        self.lock().closed = true;
        self.readable.notify_all();
    }

    /// Jobs currently queued (not yet popped).
    pub fn depth(&self) -> usize {
        self.lock().len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_tenant() {
        let q = FairQueue::new(8);
        for i in 0..4 {
            q.push("t", i).unwrap();
        }
        assert_eq!(q.depth(), 4);
        let got: Vec<i32> = (0..4).map(|_| q.pop().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_across_tenants() {
        let q = FairQueue::new(16);
        // Tenant a floods first; b and c each submit one job afterwards.
        for i in 0..4 {
            q.push("a", format!("a{i}")).unwrap();
        }
        q.push("b", "b0".to_string()).unwrap();
        q.push("c", "c0".to_string()).unwrap();
        let order: Vec<String> = (0..6).map(|_| q.pop().unwrap()).collect();
        // b0 and c0 ride the second and third round-robin turns instead of
        // waiting out a's whole backlog.
        assert_eq!(order, vec!["a0", "b0", "c0", "a1", "a2", "a3"]);
    }

    #[test]
    fn capacity_rejects_and_close_drains() {
        let q = FairQueue::new(2);
        q.push("t", 1).unwrap();
        q.push("t", 2).unwrap();
        assert_eq!(q.push("t", 3), Err(PushError::Full));
        q.close();
        assert_eq!(q.push("t", 4), Err(PushError::Closed));
        // Admitted jobs still drain after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn tenant_quota_caps_one_lane_without_starving_others() {
        let q = FairQueue::with_tenant_quota(8, Some(2));
        q.push("flood", 1).unwrap();
        q.push("flood", 2).unwrap();
        // The flooding tenant is told to back off at its quota…
        assert_eq!(q.push("flood", 3), Err(PushError::TenantQuota));
        // …while other tenants still have both capacity and fairness.
        q.push("quiet", 10).unwrap();
        assert_eq!(q.depth(), 3);
        // Popping a flood job frees quota for the tenant again.
        assert_eq!(q.pop(), Some(1));
        q.push("flood", 3).unwrap();
    }

    #[test]
    fn quota_never_exceeds_capacity_semantics() {
        // Quota above capacity: the shared cap still wins.
        let q = FairQueue::with_tenant_quota(2, Some(10));
        q.push("t", 1).unwrap();
        q.push("t", 2).unwrap();
        assert_eq!(q.push("t", 3), Err(PushError::Full));
    }

    #[test]
    fn flooding_tenant_cannot_starve_a_late_arrival() {
        // A misbehaving tenant fills the queue up to its quota *before*
        // a well-behaved tenant submits anything; the late arrival's
        // first job still pops on the next round-robin turn, not after
        // the flood drains.
        let q = FairQueue::with_tenant_quota(16, Some(8));
        for i in 0..8 {
            q.push("flood", format!("f{i}")).unwrap();
        }
        q.push("late", "l0".to_string()).unwrap();
        assert_eq!(q.pop(), Some("f0".to_string()));
        assert_eq!(q.pop(), Some("l0".to_string()));
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(FairQueue::<i32>::new(2));
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }
}
