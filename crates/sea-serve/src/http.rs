//! Minimal HTTP/1.1 framing over a blocking stream.
//!
//! The vendored-crates constraint rules out tokio/hyper, and the service
//! needs only a sliver of the protocol: parse one request head, read a
//! `Content-Length` body, write one response, optionally keep the
//! connection alive. This module implements exactly that sliver over any
//! `Read + Write` stream — chunked bodies, continuations, and multiline
//! headers are out of scope and rejected with a clean error.

use std::io::{BufRead, BufReader, Read, Write};

/// Hard cap on the request head (request line + headers) in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request: method, path, and the (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased by the client.
    pub method: String,
    /// Request path including any query string, e.g. `/solve`.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// True when the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub close: bool,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// Clean end of stream before a request line: the peer hung up.
    Eof,
    /// Transport error (includes read timeouts on idle keep-alive).
    Io(std::io::Error),
    /// The bytes did not form a request this server accepts; the message
    /// is safe to echo in a 400 body.
    Malformed(String),
    /// The declared `Content-Length` exceeds the server's body cap.
    BodyTooLarge {
        /// Declared length.
        declared: usize,
        /// Server cap it exceeded.
        limit: usize,
    },
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one request from a buffered stream. `max_body` bounds the body
/// allocation; an over-limit `Content-Length` fails *before* reading the
/// body so the caller can answer 413 and close.
pub fn read_request<S: Read>(
    reader: &mut BufReader<S>,
    max_body: usize,
) -> Result<Request, ReadError> {
    let Some(line) = read_head_line(reader)? else {
        return Err(ReadError::Eof);
    };
    if line.is_empty() {
        return Err(ReadError::Malformed("empty request line".to_string()));
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(ReadError::Malformed(format!("bad request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad version {version:?}")));
    }

    let mut content_length = 0usize;
    let mut close = false;
    let mut head_bytes = line.len();
    loop {
        let Some(line) = read_head_line(reader)? else {
            // EOF before the blank end-of-head line: a truncated head,
            // not a complete body-less request.
            return Err(ReadError::Malformed(
                "unexpected eof in request head".to_string(),
            ));
        };
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("request head too large".to_string()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Malformed(format!("bad content-length {value:?}")))?;
            }
            "connection" => close = value.eq_ignore_ascii_case("close"),
            "transfer-encoding" => {
                return Err(ReadError::Malformed(
                    "transfer-encoding is not supported; send content-length".to_string(),
                ));
            }
            _ => {}
        }
    }

    if content_length > max_body {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        body,
        close,
    })
}

/// Read one CRLF-terminated head line (request line or header), returning
/// it without the terminator. `None` is EOF — distinct from an empty line,
/// so a head truncated mid-stream cannot masquerade as a complete one.
fn read_head_line<S: Read>(reader: &mut BufReader<S>) -> Result<Option<String>, ReadError> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_HEAD_BYTES as u64)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        // `read_line` returned without a terminator: the stream ended (or
        // the head cap cut it off) in the middle of this line.
        let preview: String = line.chars().take(64).collect();
        return Err(ReadError::Malformed(format!(
            "unterminated head line {preview:?}"
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reason phrases for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one response. `content_type` is typically `application/json` or
/// Prometheus' `text/plain; version=0.0.4`. The whole response goes out
/// in a single `write_all` — head and body split across separate small
/// writes triggers Nagle/delayed-ACK stalls (~40ms per exchange) on
/// keep-alive connections.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    write_response_with(w, status, content_type, &[], body, close)
}

/// [`write_response`] with extra response headers (name, value) — the
/// backpressure statuses (429/503/422) attach `Retry-After` this way.
pub fn write_response_with<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut frame = Vec::with_capacity(head.len() + body.len());
    frame.extend_from_slice(head.as_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes())), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /solve HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.body, b"abcd");
        assert!(!req.close);
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let req = parse("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, b"");
        assert!(req.close);
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        match parse("POST /solve HTTP/1.1\r\nContent-Length: 9999\r\n\r\n") {
            Err(ReadError::BodyTooLarge { declared, limit }) => {
                assert_eq!((declared, limit), (9999, 1024));
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(ReadError::Eof)));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_ride_in_the_head() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "3".to_string())],
            b"{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("Retry-After: 3"), "{head}");
        assert_eq!(body, "{}");
    }
}
