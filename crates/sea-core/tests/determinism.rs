//! Bitwise determinism across execution modes.
//!
//! The SEA row/column subproblems are independent, and every per-subproblem
//! code path (including the quickselect pivot choice) is sequential and
//! input-deterministic, so Serial, global-pool Rayon, and dedicated pools of
//! any width must produce *identical* bits — same solutions, same iteration
//! counts — on all three problem classes.

mod common;
#[path = "common/generator.rs"]
mod generator;

use common::{all_fixtures, solve_with};
use sea_core::{
    solve_diagonal_supervised, solve_general_supervised, GeneralSeaOptions, KernelKind,
    NullObserver, Parallelism, SeaOptions, SupervisorOptions,
};

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn all_execution_modes_are_bitwise_identical() {
    let modes = [
        Parallelism::Rayon,
        Parallelism::RayonThreads(1),
        Parallelism::RayonThreads(2),
        Parallelism::RayonThreads(4),
    ];
    for (tag, problem) in all_fixtures() {
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            let reference = solve_with(&problem, kernel, Parallelism::Serial);
            for mode in modes {
                let sol = solve_with(&problem, kernel, mode);
                assert_eq!(
                    sol.stats.iterations, reference.stats.iterations,
                    "{tag}/{kernel}/{mode:?}: iteration count diverged"
                );
                assert_eq!(
                    bits(sol.x.as_slice()),
                    bits(reference.x.as_slice()),
                    "{tag}/{kernel}/{mode:?}: solution bits diverged"
                );
                assert_eq!(
                    bits(&sol.lambda),
                    bits(&reference.lambda),
                    "{tag}/{kernel}/{mode:?}: row multipliers diverged"
                );
                assert_eq!(
                    bits(&sol.mu),
                    bits(&reference.mu),
                    "{tag}/{kernel}/{mode:?}: column multipliers diverged"
                );
                assert_eq!(
                    bits(&sol.s),
                    bits(&reference.s),
                    "{tag}/{kernel}/{mode:?}: row totals diverged"
                );
                assert_eq!(
                    bits(&sol.d),
                    bits(&reference.d),
                    "{tag}/{kernel}/{mode:?}: column totals diverged"
                );
            }
        }
    }
}

#[test]
fn supervised_diagonal_driver_is_bitwise_identical_across_modes() {
    // The supervisor wraps the same iteration loop (budget checks and
    // watchdogs read state, they never perturb it), so supervised solves
    // inherit the bitwise-determinism contract of the bare driver.
    let p = generator::heterogeneous(0x5EA_D, 5, 5);
    let sup = SupervisorOptions::default();
    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        let mut opts = SeaOptions::with_epsilon(1e-10);
        opts.kernel = kernel;
        opts.parallelism = Parallelism::Serial;
        let reference =
            solve_diagonal_supervised(&p, &opts, &sup, &mut NullObserver).expect("serial solve");
        for mode in [
            Parallelism::Rayon,
            Parallelism::RayonThreads(1),
            Parallelism::RayonThreads(2),
            Parallelism::RayonThreads(4),
        ] {
            let mut opts = SeaOptions::with_epsilon(1e-10);
            opts.kernel = kernel;
            opts.parallelism = mode;
            let sol = solve_diagonal_supervised(&p, &opts, &sup, &mut NullObserver).expect("solve");
            assert_eq!(
                sol.stop, reference.stop,
                "{kernel}/{mode:?}: stop reason diverged"
            );
            assert_eq!(
                sol.solution.stats.iterations, reference.solution.stats.iterations,
                "{kernel}/{mode:?}: supervised iteration count diverged"
            );
            assert_eq!(
                bits(sol.solution.x.as_slice()),
                bits(reference.solution.x.as_slice()),
                "{kernel}/{mode:?}: supervised solution bits diverged"
            );
            assert_eq!(
                bits(&sol.solution.lambda),
                bits(&reference.solution.lambda),
                "{kernel}/{mode:?}: supervised row multipliers diverged"
            );
            assert_eq!(
                bits(&sol.solution.mu),
                bits(&reference.solution.mu),
                "{kernel}/{mode:?}: supervised column multipliers diverged"
            );
            assert_eq!(
                bits(&sol.solution.s),
                bits(&reference.solution.s),
                "{kernel}/{mode:?}: supervised row totals diverged"
            );
            assert_eq!(
                bits(&sol.solution.d),
                bits(&reference.solution.d),
                "{kernel}/{mode:?}: supervised column totals diverged"
            );
        }
    }
}

#[test]
fn supervised_general_driver_is_bitwise_identical_across_modes() {
    let p = generator::try_general(0x9E_4E, 3, 3, 3).expect("general instance");
    let sup = SupervisorOptions::default();
    let mut opts = GeneralSeaOptions::with_epsilon(1e-8);
    opts.max_outer = 20;
    opts.inner.parallelism = Parallelism::Serial;
    let reference =
        solve_general_supervised(&p, &opts, &sup, &mut NullObserver).expect("serial solve");
    for mode in [Parallelism::Rayon, Parallelism::RayonThreads(2)] {
        let mut opts = GeneralSeaOptions::with_epsilon(1e-8);
        opts.max_outer = 20;
        opts.inner.parallelism = mode;
        let sol = solve_general_supervised(&p, &opts, &sup, &mut NullObserver).expect("solve");
        assert_eq!(sol.stop, reference.stop, "{mode:?}: stop reason diverged");
        assert_eq!(
            bits(sol.solution.x.as_slice()),
            bits(reference.solution.x.as_slice()),
            "{mode:?}: supervised general solution bits diverged"
        );
        assert_eq!(
            bits(&sol.solution.mu),
            bits(&reference.solution.mu),
            "{mode:?}: supervised general column multipliers diverged"
        );
    }
}

#[test]
fn kernels_have_independent_trajectories_but_equal_iteration_counts() {
    // The two kernels compute the same λ per subproblem (up to rounding), so
    // the dual ascent should walk the same path: equal iteration counts on
    // every fixture is a cheap canary for kernel-induced drift.
    for (tag, problem) in all_fixtures() {
        let a = solve_with(&problem, KernelKind::SortScan, Parallelism::Serial);
        let b = solve_with(&problem, KernelKind::Quickselect, Parallelism::Serial);
        assert_eq!(
            a.stats.iterations, b.stats.iterations,
            "{tag}: kernels took different iteration counts"
        );
    }
}

/// Sparse storage preserves the determinism contract: for every sparse
/// family, both kernels, any pool width, and any shard size — including
/// single-row shards, which exercise the component-aligned sharding
/// boundaries hardest — the solve is bitwise identical to the Serial,
/// default-shard reference.
#[test]
fn sparse_solves_are_bitwise_identical_across_modes_and_shards() {
    use sea_core::Storage;

    let modes = [
        Parallelism::Rayon,
        Parallelism::RayonThreads(2),
        Parallelism::RayonThreads(4),
    ];
    let shard_sizes = [Some(1), Some(3), Some(64)];
    for (tag, problem) in generator::sparse_families(0x5EA_DE7) {
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            let mut ref_opts = SeaOptions::with_epsilon(1e-8);
            ref_opts.kernel = kernel;
            let reference =
                sea_core::solve_diagonal(&problem, &ref_opts).expect("reference sparse solve");
            for mode in modes {
                for block in shard_sizes {
                    let mut opts = ref_opts.clone();
                    opts.parallelism = mode;
                    opts.block_size = block;
                    let sol =
                        sea_core::solve_diagonal(&problem, &opts).expect("sharded sparse solve");
                    assert_eq!(
                        sol.stats.iterations, reference.stats.iterations,
                        "{tag}/{kernel}/{mode:?}/{block:?}: iteration count diverged"
                    );
                    assert_eq!(
                        bits(sol.x.values()),
                        bits(reference.x.values()),
                        "{tag}/{kernel}/{mode:?}/{block:?}: solution bits diverged"
                    );
                    assert_eq!(
                        bits(&sol.lambda),
                        bits(&reference.lambda),
                        "{tag}/{kernel}/{mode:?}/{block:?}: row multipliers diverged"
                    );
                    assert_eq!(
                        bits(&sol.mu),
                        bits(&reference.mu),
                        "{tag}/{kernel}/{mode:?}/{block:?}: column multipliers diverged"
                    );
                }
            }
        }
    }
}

/// Constructing the same logically-dense problem two ways — native dense
/// storage vs lifted to CSR with `from_dense_problem` — yields bitwise
/// identical solves, for both zero policies (Free keeps every cell in the
/// pattern; Structural prunes to the support).
#[test]
fn dense_and_csr_construction_agree_bitwise() {
    use sea_core::{DiagonalProblem, Storage};
    use sea_linalg::CsrMatrix;

    let mut problems = vec![("heterogeneous", generator::heterogeneous(0xD0_5EA, 8, 10))];
    if let Ok(p) = generator::try_fixed_diagonal(0xD1_5EA, 9, 7, 2, 1.0) {
        problems.push(("fixed-diagonal", p));
    }
    for (tag, dense_p) in problems {
        let sparse_p =
            DiagonalProblem::<CsrMatrix>::from_dense_problem(&dense_p).expect("lift to CSR");
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            let mut opts = SeaOptions::with_epsilon(1e-8);
            opts.kernel = kernel;
            let dsol = sea_core::solve_diagonal(&dense_p, &opts).expect("dense solve");
            let ssol = sea_core::solve_diagonal(&sparse_p, &opts).expect("sparse solve");
            let sx = ssol.x.to_dense().expect("densify sparse solution");
            assert_eq!(
                bits(sx.as_slice()),
                bits(dsol.x.as_slice()),
                "{tag}/{kernel}: storage backends diverged"
            );
            assert_eq!(
                ssol.stats.iterations, dsol.stats.iterations,
                "{tag}/{kernel}: iteration counts diverged"
            );
        }
    }
}
