//! Bitwise determinism across execution modes.
//!
//! The SEA row/column subproblems are independent, and every per-subproblem
//! code path (including the quickselect pivot choice) is sequential and
//! input-deterministic, so Serial, global-pool Rayon, and dedicated pools of
//! any width must produce *identical* bits — same solutions, same iteration
//! counts — on all three problem classes.

mod common;

use common::{all_fixtures, solve_with};
use sea_core::{KernelKind, Parallelism};

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn all_execution_modes_are_bitwise_identical() {
    let modes = [
        Parallelism::Rayon,
        Parallelism::RayonThreads(1),
        Parallelism::RayonThreads(2),
        Parallelism::RayonThreads(4),
    ];
    for (tag, problem) in all_fixtures() {
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            let reference = solve_with(&problem, kernel, Parallelism::Serial);
            for mode in modes {
                let sol = solve_with(&problem, kernel, mode);
                assert_eq!(
                    sol.stats.iterations, reference.stats.iterations,
                    "{tag}/{kernel}/{mode:?}: iteration count diverged"
                );
                assert_eq!(
                    bits(sol.x.as_slice()),
                    bits(reference.x.as_slice()),
                    "{tag}/{kernel}/{mode:?}: solution bits diverged"
                );
                assert_eq!(
                    bits(&sol.lambda),
                    bits(&reference.lambda),
                    "{tag}/{kernel}/{mode:?}: row multipliers diverged"
                );
                assert_eq!(
                    bits(&sol.mu),
                    bits(&reference.mu),
                    "{tag}/{kernel}/{mode:?}: column multipliers diverged"
                );
                assert_eq!(
                    bits(&sol.s),
                    bits(&reference.s),
                    "{tag}/{kernel}/{mode:?}: row totals diverged"
                );
                assert_eq!(
                    bits(&sol.d),
                    bits(&reference.d),
                    "{tag}/{kernel}/{mode:?}: column totals diverged"
                );
            }
        }
    }
}

#[test]
fn kernels_have_independent_trajectories_but_equal_iteration_counts() {
    // The two kernels compute the same λ per subproblem (up to rounding), so
    // the dual ascent should walk the same path: equal iteration counts on
    // every fixture is a cheap canary for kernel-induced drift.
    for (tag, problem) in all_fixtures() {
        let a = solve_with(&problem, KernelKind::SortScan, Parallelism::Serial);
        let b = solve_with(&problem, KernelKind::Quickselect, Parallelism::Serial);
        assert_eq!(
            a.stats.iterations, b.stats.iterations,
            "{tag}: kernels took different iteration counts"
        );
    }
}
