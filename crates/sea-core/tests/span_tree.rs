//! Property-based well-formedness of recorded span forests.
//!
//! Any solve run under a [`SpanProfiler`] must yield a structurally sound
//! span tree, regardless of kernel, parallel mode, or storage backend:
//!
//! * unique span ids, every non-root parent id present in the forest;
//! * monotone timestamps (`start <= end`) and proper nesting — a child's
//!   interval is contained in its parent's interval, including leaves
//!   timed off-thread on workers and replayed serially;
//! * kind discipline: epochs hang off the solve root, passes and checks
//!   off epochs, shard leaves off passes;
//! * counter conservation: a parent's subtree counters dominate the sum
//!   of its children's subtree counters (the profiler folds child work
//!   into parents, so the inequality must hold exactly).

#[path = "common/generator.rs"]
mod generator;

use proptest::prelude::*;
use sea_core::{
    solve_diagonal_observed, DiagonalProblem, KernelCounters, KernelKind, Parallelism, SeaOptions,
    SpanKind, SpanProfiler, SpanRecord,
};
use sea_linalg::CsrMatrix;

fn kernel_of(k: u8) -> KernelKind {
    if k == 0 {
        KernelKind::SortScan
    } else {
        KernelKind::Quickselect
    }
}

fn par_of(p: u8) -> Parallelism {
    if p == 0 {
        Parallelism::Serial
    } else {
        Parallelism::RayonThreads(2)
    }
}

/// Sum two counter sets field-wise (KernelCounters::merged is additive).
fn merge(a: KernelCounters, b: &KernelCounters) -> KernelCounters {
    a.merged(*b)
}

fn check_well_formed(spans: &[SpanRecord], tag: &str) -> Result<(), String> {
    prop_assert!(!spans.is_empty(), "{tag}: no spans recorded");
    let mut ids = std::collections::HashSet::with_capacity(spans.len());
    for s in spans {
        prop_assert!(ids.insert(s.id), "{tag}: duplicate span id {}", s.id);
        prop_assert!(
            s.start_ns <= s.end_ns,
            "{tag}: span {} ({:?}) runs backwards: {}..{}",
            s.id,
            s.kind,
            s.start_ns,
            s.end_ns
        );
    }
    let by_id: std::collections::HashMap<u32, &SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();

    let mut roots = 0usize;
    let mut child_sums: std::collections::HashMap<u32, KernelCounters> =
        std::collections::HashMap::new();
    for s in spans {
        if s.parent == SpanRecord::NO_PARENT {
            roots += 1;
            prop_assert_eq!(
                s.kind,
                SpanKind::Solve,
                "{}: root span must be the solve",
                tag
            );
            continue;
        }
        let p = by_id.get(&s.parent);
        prop_assert!(
            p.is_some(),
            "{tag}: span {} ({:?}) has unknown parent {}",
            s.id,
            s.kind,
            s.parent
        );
        let p = p.expect("checked above");
        prop_assert!(
            p.start_ns <= s.start_ns && s.end_ns <= p.end_ns,
            "{tag}: span {} ({:?}) [{}, {}] escapes parent {} ({:?}) [{}, {}]",
            s.id,
            s.kind,
            s.start_ns,
            s.end_ns,
            p.id,
            p.kind,
            p.start_ns,
            p.end_ns
        );
        let parent_ok = match s.kind {
            SpanKind::Epoch => p.kind == SpanKind::Solve,
            SpanKind::RowPass | SpanKind::ColPass | SpanKind::Check | SpanKind::Projection => {
                p.kind == SpanKind::Epoch
            }
            SpanKind::Shard => matches!(p.kind, SpanKind::RowPass | SpanKind::ColPass),
            // Batch framing never appears in a plain diagonal solve; the
            // solve root was handled before the parent lookup.
            SpanKind::Solve | SpanKind::Batch | SpanKind::Instance => false,
        };
        prop_assert!(
            parent_ok,
            "{tag}: {:?} span nested under {:?}",
            s.kind,
            p.kind
        );
        let entry = child_sums.entry(s.parent).or_default();
        *entry = merge(*entry, &s.counters);
    }
    prop_assert_eq!(roots, 1, "{}: expected exactly one solve root", tag);

    // Counter conservation: subtree totals dominate the children's sum.
    for (parent_id, sum) in &child_sums {
        let p = by_id[parent_id];
        prop_assert!(
            p.counters.dominates(*sum),
            "{tag}: parent {} ({:?}) counters {:?} dominated by children sum {:?}",
            p.id,
            p.kind,
            p.counters,
            sum
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn span_forests_are_well_formed(
        seed in 0u64..1 << 48,
        m in 2usize..6,
        n in 2usize..6,
        k in 0u8..2,
        par in 0u8..2,
        sparse_sel in 0u8..2,
    ) {
        let sparse = sparse_sel == 1;
        let p = match generator::try_fixed_diagonal(seed, m, n, 3, 1.0) {
            Ok(p) => p,
            Err(_) => return Ok(()), // typed construction error: no tree to check
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.epsilon = -1.0; // unattainable: force a multi-epoch tree
        o.max_iterations = 12;
        o.kernel = kernel_of(k);
        o.parallelism = par_of(par);
        let tag = format!("seed={seed} {m}x{n} k={k} par={par} sparse={sparse}");

        let mut profiler = SpanProfiler::new();
        let solved = if sparse {
            let sp = DiagonalProblem::<CsrMatrix>::from_dense_problem(&p)
                .expect("CSR lift of a valid dense problem");
            solve_diagonal_observed(&sp, &o, &mut profiler).is_ok()
        } else {
            solve_diagonal_observed(&p, &o, &mut profiler).is_ok()
        };
        if !solved {
            return Ok(()); // typed numerical breakdown: tree may be truncated
        }
        prop_assert_eq!(profiler.dropped(), 0, "{}: tiny solve overflowed the ring", &tag);
        check_well_formed(&profiler.spans(), &tag)?;
    }
}
