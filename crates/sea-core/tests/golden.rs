//! Golden regression fixtures: one KKT-verified solution per diagonal
//! problem class, asserted under both equilibration kernels.
//!
//! Regenerate the CSVs (after an intentional solver change) with
//! `cargo test -p sea-core --test golden -- --ignored regenerate`.

mod common;

use common::{all_fixtures, parse_golden, solve_with};
use sea_core::{verify_solution, KernelKind, Parallelism};

const GOLDEN: [(&str, &str); 3] = [
    ("fixed", include_str!("common/golden_fixed.csv")),
    ("elastic", include_str!("common/golden_elastic.csv")),
    ("balanced", include_str!("common/golden_balanced.csv")),
];

#[test]
fn golden_solutions_reproduce_under_both_kernels() {
    for (tag, problem) in all_fixtures() {
        let golden = parse_golden(
            GOLDEN
                .iter()
                .find(|(t, _)| *t == tag)
                .unwrap_or_else(|| panic!("no golden for {tag}"))
                .1,
        );
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            let sol = solve_with(&problem, kernel, Parallelism::Serial);
            assert_eq!(
                sol.x.as_slice().len(),
                golden.len(),
                "{tag}/{kernel}: golden shape drifted"
            );
            for (k, (&got, &want)) in sol.x.as_slice().iter().zip(&golden).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-8 * (1.0 + want.abs()),
                    "{tag}/{kernel}: x[{k}] = {got} deviates from golden {want}"
                );
            }
            let report = verify_solution(&problem, &sol);
            assert!(
                report.is_optimal(1e-6),
                "{tag}/{kernel}: KKT violated: {report:?}"
            );
        }
    }
}

#[test]
fn golden_kernels_agree_tightly() {
    // Beyond matching the stored golden at 1e-8, the two kernels must agree
    // with each other to full differential tolerance on the final solve.
    for (tag, problem) in all_fixtures() {
        let a = solve_with(&problem, KernelKind::SortScan, Parallelism::Serial);
        let b = solve_with(&problem, KernelKind::Quickselect, Parallelism::Serial);
        for (k, (&xa, &xb)) in a.x.as_slice().iter().zip(b.x.as_slice()).enumerate() {
            assert!(
                (xa - xb).abs() <= 1e-10 * (1.0 + xa.abs()),
                "{tag}: x[{k}] sortscan {xa} vs quickselect {xb}"
            );
        }
    }
}

/// Writes fresh golden CSVs from the sort-scan reference kernel. Ignored by
/// default; run explicitly when a solver change intentionally moves the
/// fixture solutions.
#[test]
#[ignore]
fn regenerate() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/common");
    for (tag, problem) in all_fixtures() {
        let sol = solve_with(&problem, KernelKind::SortScan, Parallelism::Serial);
        let report = verify_solution(&problem, &sol);
        assert!(
            report.is_optimal(1e-6),
            "{tag}: refusing to store non-KKT golden"
        );
        let mut out =
            format!("# golden solution for the `{tag}` fixture (sort-scan, serial, eps 1e-10)\n");
        let cols = sol.x.cols();
        for (k, v) in sol.x.as_slice().iter().enumerate() {
            out.push_str(&format!("{v:.17e}"));
            out.push(if (k + 1) % cols == 0 { '\n' } else { ',' });
        }
        std::fs::write(dir.join(format!("golden_{tag}.csv")), out).unwrap();
    }
}
