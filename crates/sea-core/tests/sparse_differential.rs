//! Dense-vs-sparse differential suite.
//!
//! Every seeded sparse family from `common/generator.rs` is solved twice:
//! once over CSR storage and once over its dense image
//! (`to_dense_problem`, which carries `ZeroPolicy::Structural` so both
//! sides describe the same feasible set). The contract under test is the
//! storage-abstraction invariant from DESIGN.md §12: storage changes the
//! *layout* of a solve, never its *mathematics*. Concretely, the sparse
//! solve must reproduce the dense oracle's per-cell values bitwise on the
//! support (and zero off it), carry the same first-principles KKT
//! certificate, and perform bitwise-identical kernel work (the cumulative
//! [`Event::KernelCounters`] stream) — across Serial and Rayon execution
//! and all three drivers (diagonal, bounded, general).

#[path = "common/generator.rs"]
mod generator;

use sea_core::{
    solve_bounded_supervised, solve_bounded_with, solve_diagonal_observed,
    solve_diagonal_supervised, solve_general, solve_general_in, verify_solution, BoundedProblem,
    DiagonalProblem, Event, KernelCounters, KernelKind, NullObserver, Parallelism, SeaOptions,
    StopReason, Storage, SupervisorOptions, VecObserver,
};
use sea_linalg::{CsrMatrix, DenseMatrix};

const SEED: u64 = 0x5EA_D1FF;

/// The cumulative kernel counters a solve reported (at most one such event
/// is emitted, immediately before `SolveEnd`).
fn counters_of(obs: &VecObserver) -> Option<KernelCounters> {
    obs.events.iter().find_map(|e| match e {
        Event::KernelCounters { counters } => Some(*counters),
        _ => None,
    })
}

/// Bitwise image of a float slice (NaN-safe equality for assertions).
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn parallel_modes() -> [Parallelism; 2] {
    [Parallelism::Serial, Parallelism::Rayon]
}

/// Sparse solve vs dense oracle: bitwise cell values on the support, exact
/// zeros off it, matching KKT certificates, and bitwise-identical kernel
/// work counts — for every family, both kernels, Serial and Rayon.
#[test]
fn sparse_families_match_dense_oracle() {
    for (name, sp) in generator::sparse_families(SEED) {
        let dp = sp.to_dense_problem().expect("dense image fits");
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            for par in parallel_modes() {
                let tag = format!("{name}/{kernel:?}/{par:?}");
                // 1e-8 keeps the slow-mixing power-law families inside the
                // iteration cap; every parity assertion below is bitwise,
                // so the stopping tolerance does not weaken the test.
                let mut opts = SeaOptions::with_epsilon(1e-8);
                opts.kernel = kernel;
                opts.parallelism = par;

                let mut sparse_obs = VecObserver::new();
                let ssol = solve_diagonal_observed(&sp, &opts, &mut sparse_obs)
                    .unwrap_or_else(|e| panic!("{tag}: sparse solve failed: {e}"));
                let mut dense_obs = VecObserver::new();
                let dsol = solve_diagonal_observed(&dp, &opts, &mut dense_obs)
                    .unwrap_or_else(|e| panic!("{tag}: dense solve failed: {e}"));
                assert!(ssol.stats.converged, "{tag}: sparse did not converge");
                assert!(dsol.stats.converged, "{tag}: dense did not converge");

                // Same trajectory: iteration counts and multipliers agree
                // bitwise, not just to tolerance.
                assert_eq!(
                    ssol.stats.iterations, dsol.stats.iterations,
                    "{tag}: iteration counts diverged"
                );
                assert_eq!(bits(&ssol.lambda), bits(&dsol.lambda), "{tag}: lambda");
                assert_eq!(bits(&ssol.mu), bits(&dsol.mu), "{tag}: mu");

                // Per-cell parity: bitwise on the support, exact zero off it.
                let sx = ssol.x.to_dense().expect("densify sparse solution");
                for i in 0..sp.m() {
                    for j in 0..sp.n() {
                        let (a, b) = (sx.get(i, j), dsol.x.get(i, j));
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{tag}: cell ({i},{j}) sparse={a} dense={b}"
                        );
                    }
                }

                // Same first-principles certificate on both sides (1e-5:
                // the duality-gap check is absolute, and stopping at 1e-8
                // leaves a gap of a few 1e-6 on the larger instances).
                let sparse_cert = verify_solution(&sp, &ssol);
                let dense_cert = verify_solution(&dp, &dsol);
                assert!(sparse_cert.is_optimal(1e-5), "{tag}: {sparse_cert:?}");
                assert!(dense_cert.is_optimal(1e-5), "{tag}: {dense_cert:?}");

                // Bitwise-identical kernel work on the support.
                let sc = counters_of(&sparse_obs)
                    .unwrap_or_else(|| panic!("{tag}: sparse solve emitted no kernel counters"));
                let dc = counters_of(&dense_obs)
                    .unwrap_or_else(|| panic!("{tag}: dense solve emitted no kernel counters"));
                assert_eq!(sc, dc, "{tag}: kernel work counts diverged");
            }
        }
    }
}

/// The supervised diagonal driver reports the same stop reason and
/// certificate over sparse storage as over the dense oracle.
#[test]
fn supervised_driver_matches_dense_oracle() {
    for (name, sp) in generator::sparse_families(SEED ^ 0x5F) {
        let dp = sp.to_dense_problem().expect("dense image fits");
        for par in parallel_modes() {
            let tag = format!("{name}/{par:?}");
            let mut opts = SeaOptions::with_epsilon(1e-8);
            opts.parallelism = par;
            let sup = SupervisorOptions::default();
            let s = solve_diagonal_supervised(&sp, &opts, &sup, &mut NullObserver)
                .unwrap_or_else(|e| panic!("{tag}: sparse supervised failed: {e}"));
            let d = solve_diagonal_supervised(&dp, &opts, &sup, &mut NullObserver)
                .unwrap_or_else(|e| panic!("{tag}: dense supervised failed: {e}"));
            assert_eq!(s.stop, StopReason::Converged, "{tag}");
            assert_eq!(d.stop, StopReason::Converged, "{tag}");
            assert!(s.certificate.is_optimal(1e-5), "{tag}: {:?}", s.certificate);
            assert!(d.certificate.is_optimal(1e-5), "{tag}: {:?}", d.certificate);
            let sx = s.solution.x.to_dense().expect("densify");
            assert_eq!(
                bits(sx.as_slice()),
                bits(d.solution.x.as_slice()),
                "{tag}: supervised iterates diverged"
            );
        }
    }
}

/// Dense image of a sparse bounded problem: off-support cells get a unit
/// placeholder weight and are pinned to zero by `lo = hi = 0`, so both
/// sides describe the same feasible set and objective.
fn dense_bounded_oracle(p: &BoundedProblem<CsrMatrix>) -> BoundedProblem<DenseMatrix> {
    let x0 = p.x0().to_dense().expect("densify x0");
    let mut gamma = p.gamma().to_dense().expect("densify gamma");
    for v in gamma.values_mut() {
        if *v == 0.0 {
            *v = 1.0;
        }
    }
    let lo = p.lo().to_dense().expect("densify lo");
    let hi = p.hi().to_dense().expect("densify hi");
    BoundedProblem::new(x0, gamma, lo, hi, p.s0().to_vec(), p.d0().to_vec())
        .expect("dense bounded oracle is feasible")
}

/// The bounded driver over sparse storage agrees with its dense image to
/// well below the convergence tolerance. The dense side carries extra
/// pinned zero-width cells, so work counts (and float summation order)
/// legitimately differ — this checks values, not bits.
#[test]
fn sparse_bounded_matches_dense_oracle() {
    for seed in [SEED, SEED ^ 0xB0B] {
        let sp = generator::sparse_bounded(seed, 9, 11, 2);
        let dp = dense_bounded_oracle(&sp);
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            let tag = format!("bounded/{seed:#x}/{kernel:?}");
            let ssol = solve_bounded_with(&sp, 1e-10, 10_000, kernel)
                .unwrap_or_else(|e| panic!("{tag}: sparse solve failed: {e}"));
            let dsol = solve_bounded_with(&dp, 1e-10, 10_000, kernel)
                .unwrap_or_else(|e| panic!("{tag}: dense solve failed: {e}"));
            assert!(ssol.converged && dsol.converged, "{tag}: not converged");
            let sx = ssol.x.to_dense().expect("densify");
            assert!(
                sx.max_abs_diff(&dsol.x) <= 1e-8,
                "{tag}: max diff {}",
                sx.max_abs_diff(&dsol.x)
            );
        }

        // The supervised bounded driver agrees with itself across storage.
        let sup = SupervisorOptions::default();
        let s = solve_bounded_supervised(
            &sp,
            1e-10,
            10_000,
            KernelKind::SortScan,
            &sup,
            &mut NullObserver,
        )
        .expect("sparse supervised bounded");
        assert_eq!(s.stop, StopReason::Converged, "bounded/{seed:#x}");
    }
}

/// The general (non-diagonal) driver produces bitwise-identical iterates
/// whether its inner diagonal sub-problems run over dense or CSR storage.
#[test]
fn sparse_general_matches_dense_bitwise() {
    for seed in [SEED, SEED ^ 0x6E6] {
        let Ok(p) = generator::try_general(seed, 5, 4, 2) else {
            panic!("general fixture {seed:#x} must be constructible");
        };
        let opts = sea_core::GeneralSeaOptions::default();
        let dense = solve_general(&p, &opts).expect("dense general");
        let sparse = solve_general_in::<CsrMatrix>(&p, &opts).expect("sparse general");
        assert_eq!(
            bits(dense.x.as_slice()),
            bits(sparse.x.values()),
            "general/{seed:#x}: iterates diverged"
        );
        assert_eq!(dense.outer_iterations, sparse.outer_iterations);
        assert_eq!(
            dense.objective.to_bits(),
            sparse.objective.to_bits(),
            "general/{seed:#x}: objectives diverged"
        );
    }
}

/// Round-trip: a dense problem lifted to CSR (`from_dense_problem`) and
/// solved sparse reproduces the dense solve bitwise — the companion
/// direction to the sparse-first families above.
#[test]
fn dense_problem_lifted_to_csr_replays_bitwise() {
    let dp = generator::heterogeneous(SEED ^ 0xC5, 7, 9);
    let sp = DiagonalProblem::<CsrMatrix>::from_dense_problem(&dp).expect("lift to CSR");
    let opts = SeaOptions::with_epsilon(1e-10);
    let dsol = sea_core::solve_diagonal(&dp, &opts).expect("dense solve");
    let ssol = sea_core::solve_diagonal(&sp, &opts).expect("sparse solve");
    let sx = ssol.x.to_dense().expect("densify");
    assert_eq!(bits(sx.as_slice()), bits(dsol.x.as_slice()));
    assert_eq!(ssol.stats.iterations, dsol.stats.iterations);
}
