//! Deterministic fault-injection harness for the solve supervisor.
//!
//! Every scripted fault — poisoned multipliers, pathological kernel
//! results, worker panics, deadline expiry, cancellation — must leave the
//! supervisor in one of exactly two states: `Ok` with an honest
//! KKT-residual certificate on the returned (possibly partial) iterate, or
//! a typed [`SeaError`]. Never a process panic, never a silently wrong
//! answer. The checkpoint tests additionally prove that interrupting a
//! solve and resuming from the written snapshot reproduces the
//! uninterrupted run's final multipliers bitwise.

use sea_core::{
    solve_bounded_supervised, solve_diagonal_supervised, solve_general_supervised, BoundedProblem,
    Checkpoint, CheckpointPolicy, DiagonalProblem, Event, FaultKind, FaultPlan, GeneralProblem,
    GeneralSeaOptions, GeneralTotalSpec, KernelKind, NullObserver, Parallelism, SeaError,
    SeaOptions, StopReason, SupervisorOptions, TotalSpec, VecObserver,
};
use sea_linalg::{DenseMatrix, SymMatrix};
use std::path::PathBuf;
use std::time::Duration;

fn fixed_problem() -> DiagonalProblem {
    DiagonalProblem::new(
        DenseMatrix::from_rows(&[
            vec![10.0, 4.0, 6.0],
            vec![3.0, 12.0, 5.0],
            vec![7.0, 2.0, 11.0],
        ])
        .unwrap(),
        DenseMatrix::filled(3, 3, 1.0).unwrap(),
        TotalSpec::Fixed {
            s0: vec![24.0, 22.0, 24.0],
            d0: vec![25.0, 20.0, 25.0],
        },
    )
    .unwrap()
}

/// A genuinely slow solve: heterogeneous weights spanning six orders of
/// magnitude stretch the alternating equilibration into a long geometric
/// tail (~7000 iterations to 1e-10). Partial iterates captured in the
/// first few iterations are honestly far from optimal, which the
/// certificate-honesty assertions below rely on. Contrast with
/// [`fixed_problem`], whose unit weights converge in a single iteration.
fn hard_problem() -> DiagonalProblem {
    let m = 5;
    let n = 5;
    let mut x0 = DenseMatrix::zeros(m, n).unwrap();
    let mut gamma = DenseMatrix::zeros(m, n).unwrap();
    for i in 0..m {
        for j in 0..n {
            x0.set(i, j, 1.0 + ((i * n + j) % 7) as f64);
            gamma.set(i, j, 10f64.powi(((i * n + j) % 7) as i32 - 3));
        }
    }
    let s0: Vec<f64> = (0..m).map(|i| 20.0 + 3.0 * i as f64).collect();
    let total: f64 = s0.iter().sum();
    let mut d0: Vec<f64> = (0..n).map(|j| 30.0 - 4.0 * j as f64).collect();
    let dsum: f64 = d0.iter().sum();
    for v in &mut d0 {
        *v *= total / dsum;
    }
    DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 }).unwrap()
}

fn bounded_problem() -> BoundedProblem {
    BoundedProblem::new(
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(),
        DenseMatrix::filled(2, 2, 1.0).unwrap(),
        DenseMatrix::filled(2, 2, 0.0).unwrap(),
        DenseMatrix::filled(2, 2, 10.0).unwrap(),
        vec![4.0, 6.0],
        vec![5.0, 5.0],
    )
    .unwrap()
}

fn general_problem() -> GeneralProblem {
    // Strictly diagonally dominant SPD weight matrix: dense coupling, so
    // the outer projection loop actually iterates.
    let order = 4;
    let mut g = DenseMatrix::zeros(order, order).unwrap();
    for i in 0..order {
        for j in 0..order {
            g.set(i, j, if i == j { 10.0 } else { -1.0 });
        }
    }
    GeneralProblem::new(
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(),
        SymMatrix::from_dense(g, 1e-12).unwrap(),
        GeneralTotalSpec::Fixed {
            s0: vec![4.0, 6.0],
            d0: vec![5.0, 5.0],
        },
    )
    .unwrap()
}

fn opts(epsilon: f64, parallelism: Parallelism, kernel: KernelKind) -> SeaOptions {
    let mut o = SeaOptions::with_epsilon(epsilon);
    o.parallelism = parallelism;
    o.kernel = kernel;
    o
}

fn supervised(
    sup: &SupervisorOptions,
    o: &SeaOptions,
) -> Result<sea_core::SupervisedSolution, SeaError> {
    solve_diagonal_supervised(&fixed_problem(), o, sup, &mut NullObserver)
}

fn supervised_hard(
    sup: &SupervisorOptions,
    o: &SeaOptions,
) -> Result<sea_core::SupervisedSolution, SeaError> {
    solve_diagonal_supervised(&hard_problem(), o, sup, &mut NullObserver)
}

fn assert_finite_solution(sol: &sea_core::SupervisedSolution) {
    assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
    assert!(sol.solution.lambda.iter().all(|v| v.is_finite()));
    assert!(sol.solution.mu.iter().all(|v| v.is_finite()));
    assert!(sol.certificate.residuals.row_inf.is_finite());
    assert!(sol.certificate.residuals.col_inf.is_finite());
}

#[test]
fn clean_supervised_solve_converges_with_optimal_certificate() {
    let sup = SupervisorOptions::default();
    let sol = supervised(
        &sup,
        &opts(1e-10, Parallelism::Serial, KernelKind::SortScan),
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::Converged);
    assert!(sol.solution.stats.converged);
    assert!(sol.certificate.is_optimal(1e-6), "{:?}", sol.certificate);
    assert_eq!(sol.kernel_fallbacks, 0);
    assert!(sol.checkpoint_error.is_none());
}

#[test]
fn nan_lambda_with_a_snapshot_recovers_the_previous_iterate() {
    let sup = SupervisorOptions {
        faults: FaultPlan::new().at(3, FaultKind::NanLambda { index: 1 }),
        ..SupervisorOptions::default()
    };
    // Unattainable tolerance so the solve is still running at iteration 3.
    let sol =
        supervised_hard(&sup, &opts(-1.0, Parallelism::Serial, KernelKind::SortScan)).unwrap();
    assert_eq!(sol.stop, StopReason::Breakdown);
    assert!(!sol.solution.stats.converged);
    // The returned iterate is the last healthy snapshot, not the poison.
    assert_eq!(sol.solution.stats.iterations, 2);
    assert_finite_solution(&sol);
    // Honesty: a partial iterate must not certify as optimal.
    assert!(!sol.certificate.is_optimal(1e-10));
}

#[test]
fn nan_lambda_on_the_first_iteration_is_a_typed_breakdown() {
    // No healthy snapshot exists yet, so recovery is impossible — the
    // supervisor must fail with the typed error, not a panic or NaN x.
    let sup = SupervisorOptions {
        faults: FaultPlan::new().at(1, FaultKind::NanLambda { index: 0 }),
        ..SupervisorOptions::default()
    };
    let err = supervised(
        &sup,
        &opts(1e-300, Parallelism::Serial, KernelKind::SortScan),
    )
    .unwrap_err();
    assert_eq!(err, SeaError::NumericalBreakdown { iteration: 1 });
}

#[test]
fn kernel_fault_falls_back_to_sort_scan_and_still_converges() {
    for parallelism in [Parallelism::Serial, Parallelism::RayonThreads(2)] {
        let sup = SupervisorOptions {
            faults: FaultPlan::new()
                .at(
                    1,
                    FaultKind::KernelNan {
                        side: "row",
                        index: 1,
                    },
                )
                .at(
                    2,
                    FaultKind::KernelNan {
                        side: "column",
                        index: 0,
                    },
                ),
            ..SupervisorOptions::default()
        };
        // The hard problem runs thousands of iterations, so both scripted
        // faults (iterations 1 and 2) actually fire before convergence.
        let sol =
            supervised_hard(&sup, &opts(1e-10, parallelism, KernelKind::Quickselect)).unwrap();
        assert_eq!(sol.stop, StopReason::Converged, "{parallelism:?}");
        assert!(sol.kernel_fallbacks >= 2, "{parallelism:?}");
        assert!(sol.certificate.is_optimal(1e-6));
    }
}

#[test]
fn kernel_fault_is_inert_under_the_sort_scan_kernel() {
    let sup = SupervisorOptions {
        faults: FaultPlan::new().at(
            1,
            FaultKind::KernelNan {
                side: "row",
                index: 0,
            },
        ),
        ..SupervisorOptions::default()
    };
    let sol = supervised(
        &sup,
        &opts(1e-10, Parallelism::Serial, KernelKind::SortScan),
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::Converged);
    assert_eq!(sol.kernel_fallbacks, 0);
}

#[test]
fn worker_panic_is_a_typed_error_not_an_abort() {
    for parallelism in [Parallelism::Serial, Parallelism::RayonThreads(2)] {
        let sup = SupervisorOptions {
            faults: FaultPlan::new().at(
                2,
                FaultKind::WorkerPanic {
                    side: "column",
                    index: 1,
                },
            ),
            ..SupervisorOptions::default()
        };
        let err = supervised(&sup, &opts(1e-300, parallelism, KernelKind::SortScan)).unwrap_err();
        match err {
            SeaError::WorkerPanic {
                side,
                index,
                message,
            } => {
                assert_eq!((side, index), ("column", 1), "{parallelism:?}");
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
}

#[test]
fn scripted_deadline_and_cancel_stop_with_partial_solutions() {
    for (fault, stop) in [
        (FaultKind::DeadlineNow, StopReason::DeadlineExceeded),
        (FaultKind::CancelNow, StopReason::Cancelled),
    ] {
        let sup = SupervisorOptions {
            faults: FaultPlan::new().at(2, fault.clone()),
            ..SupervisorOptions::default()
        };
        let sol = supervised_hard(&sup, &opts(-1.0, Parallelism::Serial, KernelKind::SortScan))
            .unwrap_or_else(|e| panic!("{fault:?}: {e}"));
        assert_eq!(sol.stop, stop, "{fault:?}");
        assert_eq!(sol.solution.stats.iterations, 2);
        assert_finite_solution(&sol);
        assert!(!sol.certificate.is_optimal(1e-10));
    }
}

#[test]
fn real_budget_limits_fire_with_their_stop_reasons() {
    // Iteration budget.
    let mut sup = SupervisorOptions::default();
    sup.budget.max_iterations = Some(3);
    let sol = supervised(
        &sup,
        &opts(1e-300, Parallelism::Serial, KernelKind::SortScan),
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::IterationCap);
    assert_eq!(sol.solution.stats.iterations, 3);

    // Expired wall-clock deadline.
    let mut sup = SupervisorOptions::default();
    sup.budget.deadline = Some(Duration::ZERO);
    let sol = supervised(
        &sup,
        &opts(1e-300, Parallelism::Serial, KernelKind::SortScan),
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::DeadlineExceeded);
    assert_eq!(sol.solution.stats.iterations, 1);

    // Kernel-work cap (any first iteration scans at least one breakpoint).
    let mut sup = SupervisorOptions::default();
    sup.budget.max_kernel_work = Some(1);
    let sol = supervised(
        &sup,
        &opts(1e-300, Parallelism::Serial, KernelKind::SortScan),
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::WorkCapExceeded);
    assert_eq!(sol.solution.stats.iterations, 1);

    // Pre-cancelled token.
    let mut sup = SupervisorOptions::default();
    let token = sea_core::CancelToken::new();
    token.cancel();
    sup.cancel = Some(token);
    let sol = supervised(
        &sup,
        &opts(1e-300, Parallelism::Serial, KernelKind::SortScan),
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::Cancelled);
    assert_eq!(sol.solution.stats.iterations, 1);
}

#[test]
fn residual_stagnation_is_detected_at_the_convergence_floor() {
    // Unattainable tolerance: the residual bottoms out at the floating
    // floor, stops halving, and the watchdog declares stagnation long
    // before the iteration cap.
    let sup = SupervisorOptions {
        stagnation: Some(sea_core::StagnationPolicy {
            window: 4,
            min_rel_improvement: 0.5,
        }),
        ..SupervisorOptions::default()
    };
    let sol = supervised(
        &sup,
        &opts(1e-300, Parallelism::Serial, KernelKind::SortScan),
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::Stagnated);
    assert!(sol.solution.stats.iterations < 10_000);
    assert_finite_solution(&sol);
    // The iterate is excellent — just not at the impossible tolerance —
    // and the certificate says exactly that.
    assert!(sol.certificate.residuals.row_inf < 1e-6);
}

#[test]
fn supervisor_stop_events_are_recorded() {
    let mut sup = SupervisorOptions::default();
    sup.budget.max_iterations = Some(2);
    let mut obs = VecObserver::new();
    let sol = solve_diagonal_supervised(
        &fixed_problem(),
        &opts(1e-300, Parallelism::Serial, KernelKind::SortScan),
        &sup,
        &mut obs,
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::IterationCap);
    assert!(
        obs.events.iter().any(|e| matches!(
            e,
            Event::SupervisorStop {
                iteration: 2,
                reason: "iteration_cap"
            }
        )),
        "missing SupervisorStop event"
    );
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

fn ckpt_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sea-fault-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run_iterations(
    total_budget: usize,
    checkpoint: Option<(PathBuf, usize)>,
    initial_mu: Option<Vec<f64>>,
    start_iteration: usize,
) -> sea_core::SupervisedSolution {
    let mut o = opts(-1.0, Parallelism::Serial, KernelKind::SortScan);
    o.max_iterations = total_budget;
    o.initial_mu = initial_mu;
    let sup = SupervisorOptions {
        checkpoint: checkpoint.map(|(path, every)| CheckpointPolicy { path, every }),
        start_iteration,
        ..SupervisorOptions::default()
    };
    solve_diagonal_supervised(&fixed_problem(), &o, &sup, &mut NullObserver).unwrap()
}

#[test]
fn resume_from_checkpoint_is_bitwise_identical() {
    let dir = ckpt_dir("bitwise");
    let ck_path = dir.join("state.ckpt");

    // Reference: 12 uninterrupted iterations (ε < 0 never converges).
    let full = run_iterations(12, None, None, 0);
    assert_eq!(full.stop, StopReason::IterationCap);

    // Interrupted: 5 iterations with a checkpoint every iteration…
    let partial = run_iterations(5, Some((ck_path.clone(), 1)), None, 0);
    assert_eq!(partial.stop, StopReason::IterationCap);
    assert!(partial.checkpoint_error.is_none());
    let ck = Checkpoint::load(&ck_path).unwrap();
    assert_eq!(ck.solver, "diagonal");
    assert_eq!(ck.iteration, 5);
    // The checkpoint captures the interrupted run's multipliers exactly.
    assert_eq!(
        ck.mu.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        partial
            .solution
            .mu
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    );

    // …then 7 more from the loaded snapshot.
    let resumed = run_iterations(7, None, Some(ck.mu), ck.iteration);

    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&full.solution.mu),
        bits(&resumed.solution.mu),
        "resumed μ diverges from the uninterrupted run"
    );
    assert_eq!(
        bits(&full.solution.lambda),
        bits(&resumed.solution.lambda),
        "resumed λ diverges from the uninterrupted run"
    );
    assert_eq!(
        bits(full.solution.x.as_slice()),
        bits(resumed.solution.x.as_slice()),
        "resumed x diverges from the uninterrupted run"
    );
    // Atomic writes leave no tmp residue behind.
    assert!(!dir.join("state.ckpt.tmp").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resumed_checkpoints_continue_the_cumulative_iteration_count() {
    let dir = ckpt_dir("cumulative");
    let ck_path = dir.join("state.ckpt");
    let first = run_iterations(4, Some((ck_path.clone(), 1)), None, 0);
    assert_eq!(first.stop, StopReason::IterationCap);
    let ck = Checkpoint::load(&ck_path).unwrap();
    assert_eq!(ck.iteration, 4);
    // Resume for 3 more, checkpointing into the same file: the stamp keeps
    // counting from the loaded iteration.
    let _ = run_iterations(3, Some((ck_path.clone(), 1)), Some(ck.mu), ck.iteration);
    let ck2 = Checkpoint::load(&ck_path).unwrap();
    assert_eq!(ck2.iteration, 7);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_write_failure_never_aborts_the_solve() {
    // An unwritable destination (directory path) must surface as
    // `checkpoint_error`, not kill the solve.
    let sol = run_iterations(3, Some((std::env::temp_dir(), 1)), None, 0);
    assert_eq!(sol.stop, StopReason::IterationCap);
    assert!(sol.checkpoint_error.is_some());
    assert_finite_solution(&sol);
}

// ---------------------------------------------------------------------------
// Bounded and general drivers under supervision
// ---------------------------------------------------------------------------

#[test]
fn bounded_driver_honors_budgets_and_faults() {
    // Deadline fault.
    let sup = SupervisorOptions {
        faults: FaultPlan::new().at(1, FaultKind::DeadlineNow),
        ..SupervisorOptions::default()
    };
    let sol = solve_bounded_supervised(
        &bounded_problem(),
        -1.0,
        10_000,
        KernelKind::SortScan,
        &sup,
        &mut NullObserver,
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::DeadlineExceeded);
    assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));

    // Iteration budget.
    let mut sup = SupervisorOptions::default();
    sup.budget.max_iterations = Some(2);
    let sol = solve_bounded_supervised(
        &bounded_problem(),
        -1.0,
        10_000,
        KernelKind::SortScan,
        &sup,
        &mut NullObserver,
    )
    .unwrap();
    assert_eq!(sol.stop, StopReason::IterationCap);
    assert_eq!(sol.solution.iterations, 2);

    // Poisoned multiplier: recovered from a snapshot or typed breakdown.
    let sup = SupervisorOptions {
        faults: FaultPlan::new().at(3, FaultKind::NanLambda { index: 0 }),
        ..SupervisorOptions::default()
    };
    match solve_bounded_supervised(
        &bounded_problem(),
        -1.0,
        10_000,
        KernelKind::SortScan,
        &sup,
        &mut NullObserver,
    ) {
        Ok(sol) => {
            assert_eq!(sol.stop, StopReason::Breakdown);
            assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
        }
        Err(e) => assert!(matches!(e, SeaError::NumericalBreakdown { .. })),
    }
}

#[test]
fn general_driver_honors_budgets_at_outer_granularity() {
    let sup = SupervisorOptions {
        faults: FaultPlan::new().at(1, FaultKind::DeadlineNow),
        ..SupervisorOptions::default()
    };
    // Unattainable *outer* tolerance (the outer change is >= 0, never
    // <= -1) with ordinarily convergent inner solves: the outer loop spins
    // until a budget or fault stops it.
    let mut o = GeneralSeaOptions::with_epsilon(1e-10);
    o.outer_epsilon = -1.0;
    o.max_outer = 50;
    let sol = solve_general_supervised(&general_problem(), &o, &sup, &mut NullObserver).unwrap();
    assert_eq!(sol.stop, StopReason::DeadlineExceeded);
    assert_eq!(sol.solution.outer_iterations, 1);
    assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));

    let mut sup = SupervisorOptions::default();
    sup.budget.max_iterations = Some(2);
    let sol = solve_general_supervised(&general_problem(), &o, &sup, &mut NullObserver).unwrap();
    assert_eq!(sol.stop, StopReason::IterationCap);
    assert_eq!(sol.solution.outer_iterations, 2);
}

// ---------------------------------------------------------------------------
// Sweep: every fault kind, every kernel, both parallel modes
// ---------------------------------------------------------------------------

/// The blanket guarantee: under every scripted fault the supervisor
/// returns `Ok` with a finite, honestly-certified iterate, or a typed
/// `SeaError`. A panic fails this test; a non-finite "solution" fails the
/// finiteness assertions.
#[test]
fn every_fault_yields_ok_with_certificate_or_typed_error() {
    let faults = [
        FaultKind::NanLambda { index: 0 },
        FaultKind::NanLambda { index: 2 },
        FaultKind::KernelNan {
            side: "row",
            index: 0,
        },
        FaultKind::KernelNan {
            side: "column",
            index: 2,
        },
        FaultKind::WorkerPanic {
            side: "row",
            index: 0,
        },
        FaultKind::WorkerPanic {
            side: "column",
            index: 2,
        },
        FaultKind::DeadlineNow,
        FaultKind::CancelNow,
    ];
    for fault in &faults {
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            for parallelism in [Parallelism::Serial, Parallelism::RayonThreads(2)] {
                for iteration in [1, 3] {
                    let sup = SupervisorOptions {
                        faults: FaultPlan::new().at(iteration, fault.clone()),
                        ..SupervisorOptions::default()
                    };
                    // ε < 0 never converges; the tiny iteration cap keeps
                    // non-stopping faults (KernelNan) from running the hard
                    // problem down to its convergence floor, so every
                    // returned iterate is honestly sub-optimal.
                    let mut o = opts(-1.0, parallelism, kernel);
                    o.max_iterations = 6;
                    match supervised_hard(&sup, &o) {
                        Ok(sol) => {
                            assert_ne!(
                                sol.stop,
                                StopReason::Converged,
                                "ε < 0 cannot converge ({fault:?})"
                            );
                            assert_finite_solution(&sol);
                            assert!(
                                !sol.certificate.is_optimal(1e-12),
                                "partial solution certified optimal ({fault:?})"
                            );
                        }
                        Err(SeaError::NumericalBreakdown { .. } | SeaError::WorkerPanic { .. }) => {
                        }
                        Err(other) => {
                            panic!("unexpected error under {fault:?}/{kernel:?}: {other:?}")
                        }
                    }
                }
            }
        }
    }
}
