//! Golden-fixture audit of the solver event stream.
//!
//! A tiny deterministic solve (2×2, fixed totals, `Serial` parallelism,
//! sort-scan kernel) is recorded through the JSONL sink and compared,
//! line by line, against `tests/fixtures/golden_solve.jsonl`. Wall-clock
//! and numeric-result fields are zeroed before comparison (timings are
//! nondeterministic, and float formatting should not pin the fixture);
//! everything structural — the event sequence, phase labels, task counts,
//! iteration numbers, convergence flags, and the exact kernel work
//! counters — must match the committed golden file.

use sea_core::{solve_diagonal_observed, DiagonalProblem, Parallelism, SeaOptions, TotalSpec};
use sea_linalg::DenseMatrix;
use sea_observe::jsonl::{encode_event, parse_events, JsonlObserver};
use sea_observe::Event;

/// Zero every wall-clock / numeric-result field, keeping structure.
fn normalized(event: &Event) -> Event {
    let mut e = event.clone();
    match &mut e {
        Event::PhaseEnd {
            seconds,
            task_seconds,
            ..
        } => {
            *seconds = 0.0;
            task_seconds.iter_mut().for_each(|t| *t = 0.0);
        }
        Event::ConvergenceCheck {
            residual,
            dual_value,
            ..
        } => {
            *residual = 0.0;
            *dual_value = dual_value.map(|_| 0.0);
        }
        Event::MultiplierBound { bound, .. } => *bound = 0.0,
        Event::OuterIteration { outer_residual, .. } => *outer_residual = 0.0,
        Event::SolveEnd {
            residual,
            objective,
            dual_value,
            seconds,
            ..
        } => {
            *residual = 0.0;
            *objective = 0.0;
            *dual_value = dual_value.map(|_| 0.0);
            *seconds = 0.0;
        }
        Event::BatchEnd { seconds, .. } => *seconds = 0.0,
        Event::Meta { .. }
        | Event::SolveStart { .. }
        | Event::PhaseStart { .. }
        | Event::KernelCounters { .. }
        | Event::FallbackTriggered { .. }
        | Event::CheckpointWritten { .. }
        | Event::SupervisorStop { .. }
        | Event::BatchStart { .. }
        | Event::BatchInstance { .. } => {}
    }
    e
}

fn golden_problem() -> DiagonalProblem {
    DiagonalProblem::new(
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(),
        DenseMatrix::filled(2, 2, 1.0).unwrap(),
        TotalSpec::Fixed {
            s0: vec![4.0, 6.0],
            d0: vec![5.0, 5.0],
        },
    )
    .unwrap()
}

#[test]
fn event_stream_matches_golden_fixture() {
    let p = golden_problem();
    let mut opts = SeaOptions::with_epsilon(1e-10);
    opts.parallelism = Parallelism::Serial;

    let mut obs = JsonlObserver::new(Vec::new());
    let sol = solve_diagonal_observed(&p, &opts, &mut obs).unwrap();
    assert!(sol.stats.converged);

    let bytes = obs.finish().unwrap();
    let recorded = parse_events(std::str::from_utf8(&bytes).unwrap()).unwrap();
    let mut actual = String::new();
    for event in &recorded {
        actual.push_str(&encode_event(&normalized(event)));
        actual.push('\n');
    }

    // `UPDATE_GOLDEN=1 cargo test -p sea-core --test observe_events`
    // rewrites the fixture after an intentional event-schema change.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/golden_solve.jsonl"
        );
        std::fs::write(path, &actual).unwrap();
        return;
    }

    let golden = include_str!("fixtures/golden_solve.jsonl");
    // Compare line by line for actionable failure messages, then exactly.
    for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
        assert_eq!(a, g, "event {} diverges from the golden fixture", i + 1);
    }
    assert_eq!(
        actual, golden,
        "event count diverges from the golden fixture"
    );
}

/// A tiny deterministic sparse (CSR) solve, pinned the same way: the event
/// stream — including the kernel work counters over the stored support —
/// must match `tests/fixtures/golden_sparse_solve.jsonl` exactly.
#[test]
fn sparse_event_stream_matches_golden_fixture() {
    use sea_core::ZeroPolicy;
    use sea_linalg::CsrMatrix;

    // 3×3 with a 5-cell support (cells (0,2), (1,2), (2,0), (2,1) are
    // structural zeros); totals grow the margins non-uniformly so the
    // solve takes several alternating passes.
    let x0 = CsrMatrix::from_triplets(
        3,
        3,
        &[
            (0, 0, 1.0),
            (0, 1, 2.0),
            (1, 0, 3.0),
            (1, 1, 4.0),
            (2, 2, 5.0),
        ],
    )
    .unwrap();
    let gamma = x0.with_values(vec![1.0, 2.0, 1.0, 4.0, 1.0]).unwrap();
    let p = DiagonalProblem::with_zero_policy(
        x0,
        gamma,
        TotalSpec::Fixed {
            s0: vec![3.2, 7.9, 5.5],
            d0: vec![4.5, 6.6, 5.5],
        },
        ZeroPolicy::Structural,
    )
    .unwrap();
    let mut opts = SeaOptions::with_epsilon(1e-10);
    opts.parallelism = Parallelism::Serial;

    let mut obs = JsonlObserver::new(Vec::new());
    let sol = solve_diagonal_observed(&p, &opts, &mut obs).unwrap();
    assert!(sol.stats.converged);

    let bytes = obs.finish().unwrap();
    let recorded = parse_events(std::str::from_utf8(&bytes).unwrap()).unwrap();
    let mut actual = String::new();
    for event in &recorded {
        actual.push_str(&encode_event(&normalized(event)));
        actual.push('\n');
    }

    // `UPDATE_GOLDEN=1 cargo test -p sea-core --test observe_events`
    // rewrites the fixture after an intentional event-schema change.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/golden_sparse_solve.jsonl"
        );
        std::fs::write(path, &actual).unwrap();
        return;
    }

    let golden = include_str!("fixtures/golden_sparse_solve.jsonl");
    for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            a,
            g,
            "event {} diverges from the golden sparse fixture",
            i + 1
        );
    }
    assert_eq!(
        actual, golden,
        "event count diverges from the golden sparse fixture"
    );
}
