//! Mixed-precision certificate suite.
//!
//! `Precision::F32Mixed` runs the λ-search in `f32` (with `f64` residual
//! and dual accumulation) and finishes with a full-`f64` polish epoch; a
//! solve may only report `Converged` from the polish. The contract under
//! test: **every** converged mixed-precision solve passes the same
//! first-principles `f64` KKT certificate a pure-`f64` solve must pass —
//! the fast path buys time, never certainty.
//!
//! The suite also pins the rescue story on a crafted ill-conditioned
//! fixture (weight spreads of 1e±6): pure `f32` stalls at its noise floor
//! and honestly reports non-convergence (its residual is measured on
//! `f64`-materialized iterates, so it stalls rather than lies), while
//! `f32-mixed` polishes through to a certified optimum.

#[path = "common/generator.rs"]
mod generator;

use proptest::prelude::*;
use sea_core::{
    solve_bounded_configured, solve_diagonal, verify_solution, BoundedOptions, DiagonalProblem,
    GapCheck, KernelKind, Parallelism, Precision, SeaOptions, SimdMode, TotalSpec,
};
use sea_linalg::DenseMatrix;

const SEED: u64 = 0xF32_F1C5;

/// SIMD policy under test, honouring the `SEA_SIMD` CI matrix variable
/// (`off` / `auto` / `force`); `force` degrades to `auto` on CPUs without
/// AVX2 so the certificate contract is still exercised there.
fn simd_under_test() -> SimdMode {
    match std::env::var("SEA_SIMD").ok().as_deref() {
        Some("off") => SimdMode::Off,
        Some("force") if sea_core::SimdLevel::detect() == sea_core::SimdLevel::Avx2 => {
            SimdMode::Force
        }
        _ => SimdMode::Auto,
    }
}

fn opts(epsilon: f64, precision: Precision) -> SeaOptions {
    let mut o = SeaOptions::with_epsilon(epsilon);
    o.simd = simd_under_test();
    o.precision = precision;
    o.max_iterations = 50_000;
    o
}

/// Weight spreads of 1e±6 inside every row: the `f32` λ-search cannot
/// resolve the small-weight entries' contributions against the large ones
/// (f32 carries ~7 significant digits), so an ε = 1e-9 residual target
/// sits below its noise floor.
fn ill_conditioned(m: usize, n: usize) -> DiagonalProblem {
    let mut x0 = DenseMatrix::zeros(m, n).expect("valid dims");
    let mut gamma = DenseMatrix::zeros(m, n).expect("valid dims");
    for i in 0..m {
        for j in 0..n {
            let k = i * n + j;
            x0.set(i, j, 1.0 + (k % 5) as f64);
            gamma.set(i, j, if k % 2 == 0 { 1e-6 } else { 1e6 });
        }
    }
    let s0: Vec<f64> = (0..m).map(|i| 3.2 * n as f64 + (i % 3) as f64).collect();
    let total: f64 = s0.iter().sum();
    let mut d0: Vec<f64> = (0..n).map(|j| 2.0 + (j % 4) as f64).collect();
    let dsum: f64 = d0.iter().sum();
    for v in &mut d0 {
        *v *= total / dsum;
    }
    let resid = total - d0.iter().sum::<f64>();
    d0[0] += resid;
    DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 })
        .expect("ill-conditioned fixture is constructible")
}

/// The headline rescue: pure `f32` fails the tight tolerance on the
/// 1e±6 fixture, `f32-mixed` converges and passes the `f64` certificate.
#[test]
fn f32_fails_where_mixed_polish_rescues() {
    let p = ill_conditioned(12, 18);
    let eps = 1e-9;

    let f32_only = solve_diagonal(&p, &opts(eps, Precision::F32)).expect("f32 solve runs");
    assert!(
        !f32_only.stats.converged,
        "pure f32 should stall at its noise floor on a 1e±6 spread \
         (residual {:.3e} vs ε {eps:.0e})",
        f32_only.stats.residuals.rel_row_inf
    );

    let mixed = solve_diagonal(&p, &opts(eps, Precision::F32Mixed)).expect("mixed solve runs");
    assert!(
        mixed.stats.converged,
        "the f64 polish epoch must rescue the f32 iterates"
    );
    let report = verify_solution(&p, &mixed);
    assert!(
        report.is_optimal_with(1e-6, GapCheck::RelativeToObjective),
        "converged mixed solve must pass the f64 KKT certificate: {report:?}"
    );

    // And the pure-f64 reference agrees the problem is solvable.
    let f64_ref = solve_diagonal(&p, &opts(eps, Precision::F64)).expect("f64 solve runs");
    assert!(f64_ref.stats.converged);
}

/// The f32 diagnostic mode must not lie: its reported residual is the
/// honest f64 measurement of its iterates, so on the ill-conditioned
/// fixture the final residual really is above the requested ε.
#[test]
fn f32_reports_its_true_residual() {
    let p = ill_conditioned(10, 14);
    let eps = 1e-10;
    let sol = solve_diagonal(&p, &opts(eps, Precision::F32)).expect("f32 solve runs");
    assert!(!sol.stats.converged);
    assert!(
        sol.stats.residuals.rel_row_inf > eps,
        "reported residual {:.3e} must reflect the stall",
        sol.stats.residuals.rel_row_inf
    );
}

/// On well-conditioned problems all three precisions converge and the
/// mixed path's certificate matches full f64 quality.
#[test]
fn mixed_matches_f64_certificate_quality_when_well_conditioned() {
    let p = generator::heterogeneous(SEED, 11, 13);
    let eps = 1e-10;
    let f64_sol = solve_diagonal(&p, &opts(eps, Precision::F64)).expect("f64");
    let mixed = solve_diagonal(&p, &opts(eps, Precision::F32Mixed)).expect("mixed");
    assert!(f64_sol.stats.converged && mixed.stats.converged);
    let r64 = verify_solution(&p, &f64_sol);
    let rmx = verify_solution(&p, &mixed);
    assert!(
        r64.is_optimal_with(1e-6, GapCheck::RelativeToObjective),
        "{r64:?}"
    );
    assert!(
        rmx.is_optimal_with(1e-6, GapCheck::RelativeToObjective),
        "{rmx:?}"
    );
}

/// Box-bounded driver: mixed precision through `solve_bounded_configured`
/// converges to a feasible, in-bounds estimate.
#[test]
fn bounded_mixed_precision_converges_in_bounds() {
    let p = generator::try_bounded(SEED ^ 2, 9, 12, 3, 1.0).expect("constructible");
    let cfg = BoundedOptions {
        kernel: KernelKind::SortScan,
        simd: simd_under_test(),
        precision: Precision::F32Mixed,
    };
    let sol = solve_bounded_configured(&p, 1e-8, 50_000, &cfg).expect("bounded mixed solve");
    assert!(sol.converged, "residual {:?}", sol.residuals);
    assert!(sol.residuals.rel_row_inf <= 1e-8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The certificate property: every seeded instance whose mixed-precision
    /// solve reports `Converged` passes the f64 KKT certificate. Instances
    /// that fail to construct or converge are vacuously fine — the property
    /// polices converged claims, not solvability.
    #[test]
    fn every_converged_mixed_solve_passes_the_f64_certificate(
        seed in 0u64..1 << 48,
        m in 2usize..14,
        n in 2usize..14,
        decades in 0i32..6,
        scale_sel in 0u8..3,
        kernel_sel in 0u8..2,
        par_sel in 0u8..2,
    ) {
        let scale = generator::scale_of(scale_sel);
        let kernel = [KernelKind::SortScan, KernelKind::Quickselect][kernel_sel as usize];
        let par = if par_sel == 0 { Parallelism::Serial } else { Parallelism::RayonThreads(2) };
        if let Ok(p) = generator::try_fixed_diagonal(seed, m, n, decades, scale) {
            let mut o = opts(1e-8, Precision::F32Mixed);
            o.kernel = kernel;
            o.parallelism = par;
            if let Ok(sol) = solve_diagonal(&p, &o) {
                if sol.stats.converged {
                    let report = verify_solution(&p, &sol);
                    prop_assert!(
                        report.is_optimal_with(1e-5, GapCheck::RelativeToObjective),
                        "converged mixed solve failed its certificate: {report:?}"
                    );
                }
            }
        }
    }
}
