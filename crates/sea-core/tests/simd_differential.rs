//! SIMD-vs-scalar differential suite.
//!
//! The vectorized kernels in `sea_core::kernel_simd` promise **bitwise**
//! parity with the untouched scalar oracle in `sea_core::knapsack`: same
//! iterates, same multipliers, same kernel work counters. This suite
//! enforces that promise at two levels:
//!
//! 1. **Kernel level** — property-generated single subproblems (plain and
//!    boxed, fixed and elastic totals, both kernels) solved by the scalar
//!    and SIMD paths must agree bitwise on λ, the realized total, every
//!    entry of `x`, the active count, and the cumulative
//!    [`KernelCounters`].
//! 2. **Solver level** — whole solves over the seeded generator families
//!    (dense and CSR, Serial and Rayon, both kernels, several shard sizes)
//!    with `SeaOptions::simd` off vs on must agree bitwise on iterates,
//!    multipliers, iteration counts, and counters.
//!
//! The SIMD levels exercised are chosen by the `SEA_SIMD` environment
//! variable (`off` / `auto` / `force`), so CI can run the same suite under
//! all three modes; `force` skips gracefully on CPUs without AVX2. Unset,
//! the suite tests every level the CPU supports.
//!
//! Remainder/edge lanes get dedicated coverage: subproblem lengths 0, 1,
//! `LANES-1`, `LANES`, `LANES+1`, and boxed rows with every entry pinned at
//! its bounds — the historical home of λ-clamping bugs.

#[path = "common/generator.rs"]
mod generator;

use proptest::prelude::*;
use sea_core::kernel_simd::{exact_equilibration_boxed_simd, exact_equilibration_simd, SimdMode};
use sea_core::knapsack::{exact_equilibration_boxed_with, exact_equilibration_with};
use sea_core::{
    solve_diagonal_observed, EquilibrationScratch, Event, KernelCounters, KernelKind, Parallelism,
    SeaOptions, SimdLevel, Storage, TotalMode, VecObserver,
};
use sea_linalg::simd::{avx2_available, LANES};

const SEED: u64 = 0x51D_D1FF;

/// SIMD levels to exercise, honouring the `SEA_SIMD` CI matrix variable.
/// Returns an empty list (test skipped) for `force` on a CPU without AVX2.
fn levels_under_test() -> Vec<SimdLevel> {
    match std::env::var("SEA_SIMD").ok().as_deref() {
        Some("off") => vec![SimdLevel::Scalar],
        Some("auto") => vec![SimdMode::Auto.resolve().expect("auto always resolves")],
        Some("force") => {
            if avx2_available() {
                vec![SimdLevel::Avx2]
            } else {
                eprintln!("skipping forced-SIMD differential run: no AVX2 on this CPU");
                vec![]
            }
        }
        _ => {
            let mut out = vec![SimdLevel::Lanes];
            if avx2_available() {
                out.push(SimdLevel::Avx2);
            }
            out
        }
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn counters_of(obs: &VecObserver) -> Option<KernelCounters> {
    obs.events.iter().find_map(|e| match e {
        Event::KernelCounters { counters } => Some(*counters),
        _ => None,
    })
}

fn kernels() -> [KernelKind; 2] {
    [KernelKind::SortScan, KernelKind::Quickselect]
}

/// Assert scalar-vs-SIMD bitwise parity on one plain subproblem.
fn check_plain(
    tag: &str,
    level: SimdLevel,
    kernel: KernelKind,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
) {
    let n = q.len();
    let mut x_ref = vec![0.0; n];
    let mut sc_ref = EquilibrationScratch::new();
    let r_ref = exact_equilibration_with(kernel, q, gamma, shift, mode, &mut x_ref, &mut sc_ref);

    let mut x_simd = vec![0.0; n];
    let mut sc_simd = EquilibrationScratch::new();
    let r_simd = exact_equilibration_simd(
        level,
        kernel,
        q,
        gamma,
        shift,
        mode,
        &mut x_simd,
        &mut sc_simd,
    );

    match (r_ref, r_simd) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.lambda.to_bits(), b.lambda.to_bits(), "{tag}: lambda");
            assert_eq!(a.total.to_bits(), b.total.to_bits(), "{tag}: total");
            assert_eq!(a.active, b.active, "{tag}: active");
            assert_eq!(bits(&x_ref), bits(&x_simd), "{tag}: x");
            assert_eq!(sc_ref.stats, sc_simd.stats, "{tag}: counters");
        }
        (Err(a), Err(b)) => {
            assert_eq!(format!("{a}"), format!("{b}"), "{tag}: error mismatch");
        }
        (a, b) => panic!("{tag}: outcome mismatch: scalar={a:?} simd={b:?}"),
    }
}

/// Assert scalar-vs-SIMD bitwise parity on one boxed subproblem.
#[allow(clippy::too_many_arguments)]
fn check_boxed(
    tag: &str,
    level: SimdLevel,
    kernel: KernelKind,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    mode: TotalMode,
) {
    let n = q.len();
    let mut x_ref = vec![0.0; n];
    let mut sc_ref = EquilibrationScratch::new();
    let r_ref = exact_equilibration_boxed_with(
        kernel,
        q,
        gamma,
        shift,
        lo,
        hi,
        mode,
        &mut x_ref,
        &mut sc_ref,
    );

    let mut x_simd = vec![0.0; n];
    let mut sc_simd = EquilibrationScratch::new();
    let r_simd = exact_equilibration_boxed_simd(
        level,
        kernel,
        q,
        gamma,
        shift,
        lo,
        hi,
        mode,
        &mut x_simd,
        &mut sc_simd,
    );

    match (r_ref, r_simd) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.lambda.to_bits(), b.lambda.to_bits(), "{tag}: lambda");
            assert_eq!(a.total.to_bits(), b.total.to_bits(), "{tag}: total");
            assert_eq!(a.active, b.active, "{tag}: active");
            assert_eq!(bits(&x_ref), bits(&x_simd), "{tag}: x");
            assert_eq!(sc_ref.stats, sc_simd.stats, "{tag}: counters");
        }
        (Err(a), Err(b)) => {
            assert_eq!(format!("{a}"), format!("{b}"), "{tag}: error mismatch");
        }
        (a, b) => panic!("{tag}: outcome mismatch: scalar={a:?} simd={b:?}"),
    }
}

/// Deterministic pseudo-random inputs for the edge-lane sweeps.
fn det_inputs(n: usize, salt: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let q: Vec<f64> = (0..n)
        .map(|j| (((j as u64 * 37 + salt * 11) % 101) as f64) / 7.0 - 4.0)
        .collect();
    let gamma: Vec<f64> = (0..n)
        .map(|j| 0.02 + (((j as u64 * 13 + salt * 5) % 89) as f64) / 9.0)
        .collect();
    let shift: Vec<f64> = (0..n)
        .map(|j| (((j as u64 * 7 + salt * 3) % 61) as f64) / 8.0 - 2.0)
        .collect();
    (q, gamma, shift)
}

/// Subproblem lengths 0, 1, LANES−1, LANES, LANES+1, and longer tails: the
/// remainder-loop edges of every SIMD fill.
#[test]
fn edge_lane_lengths_match_scalar_bitwise() {
    for level in levels_under_test() {
        for kernel in kernels() {
            for n in [0usize, 1, LANES - 1, LANES, LANES + 1, 2 * LANES + 3, 129] {
                for salt in 0..4u64 {
                    let (q, g, sh) = det_inputs(n, salt);
                    let total: f64 = q.iter().map(|v| v.abs()).sum::<f64>() * 0.8;
                    let tag = format!("{level:?}/{kernel:?}/n={n}/salt={salt}");
                    check_plain(&tag, level, kernel, &q, &g, &sh, TotalMode::Fixed { total });
                    check_plain(
                        &tag,
                        level,
                        kernel,
                        &q,
                        &g,
                        &sh,
                        TotalMode::Elastic {
                            alpha: 0.5 + salt as f64,
                            prior: total,
                            cross: salt as f64 - 1.0,
                        },
                    );
                    let lo: Vec<f64> = q.iter().map(|v| v - 0.5).collect();
                    let hi: Vec<f64> = q.iter().map(|v| v + 1.5).collect();
                    let btotal = q.iter().sum::<f64>();
                    check_boxed(
                        &tag,
                        level,
                        kernel,
                        &q,
                        &g,
                        &sh,
                        &lo,
                        &hi,
                        TotalMode::Fixed { total: btotal },
                    );
                }
            }
        }
    }
}

/// Boxed rows with *every* entry pinned at its bounds (lo == hi), including
/// the flat-segment λ resolution — the PR 1 λ-clamping bug habitat.
#[test]
fn all_entries_pinned_boxed_rows_match_scalar_bitwise() {
    for level in levels_under_test() {
        for kernel in kernels() {
            for n in [1usize, LANES - 1, LANES, LANES + 1, 33] {
                let (q, g, sh) = det_inputs(n, 9);
                // Degenerate box: lo == hi pins every entry; the only
                // feasible total is Σ lo and the segment is flat.
                let lo: Vec<f64> = q.iter().map(|v| v.abs() + 0.25).collect();
                let hi = lo.clone();
                let total: f64 = lo.iter().sum();
                let tag = format!("pinned/{level:?}/{kernel:?}/n={n}");
                check_boxed(
                    &tag,
                    level,
                    kernel,
                    &q,
                    &g,
                    &sh,
                    &lo,
                    &hi,
                    TotalMode::Fixed { total },
                );
                // Saturating totals: everything pinned at hi (or lo) by an
                // extreme fixed total.
                let lo2: Vec<f64> = q.iter().map(|v| v - 0.25).collect();
                let hi2: Vec<f64> = q.iter().map(|v| v + 0.25).collect();
                check_boxed(
                    &tag,
                    level,
                    kernel,
                    &q,
                    &g,
                    &sh,
                    &lo2,
                    &hi2,
                    TotalMode::Fixed {
                        total: hi2.iter().sum(),
                    },
                );
                check_boxed(
                    &tag,
                    level,
                    kernel,
                    &q,
                    &g,
                    &sh,
                    &lo2,
                    &hi2,
                    TotalMode::Fixed {
                        total: lo2.iter().sum(),
                    },
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random plain subproblems: scalar and SIMD paths agree bitwise.
    #[test]
    fn plain_kernels_match_scalar_bitwise(
        q in proptest::collection::vec(-10.0f64..10.0, 0..40),
        gseed in 0u64..1 << 32,
        fixed in 0u8..2,
        total in -5.0f64..50.0,
    ) {
        let n = q.len();
        let fixed = fixed == 0;
        let gamma: Vec<f64> = (0..n)
            .map(|j| 0.01 + (((j as u64 * 2654435761 + gseed) % 997) as f64) / 100.0)
            .collect();
        let shift: Vec<f64> = (0..n)
            .map(|j| (((j as u64 * 40503 + gseed) % 613) as f64) / 61.0 - 5.0)
            .collect();
        let mode = if fixed {
            TotalMode::Fixed { total }
        } else {
            TotalMode::Elastic { alpha: 0.3, prior: total.abs(), cross: 0.1 }
        };
        for level in levels_under_test() {
            for kernel in kernels() {
                check_plain(&format!("{level:?}/{kernel:?}"), level, kernel, &q, &gamma, &shift, mode);
            }
        }
    }

    /// Random boxed subproblems: scalar and SIMD paths agree bitwise.
    #[test]
    fn boxed_kernels_match_scalar_bitwise(
        q in proptest::collection::vec(-8.0f64..8.0, 0..32),
        gseed in 0u64..1 << 32,
        width in 0.0f64..4.0,
        frac in 0.0f64..1.0,
    ) {
        let n = q.len();
        let gamma: Vec<f64> = (0..n)
            .map(|j| 0.02 + (((j as u64 * 1103515245 + gseed) % 769) as f64) / 80.0)
            .collect();
        let shift: Vec<f64> = (0..n)
            .map(|j| (((j as u64 * 69069 + gseed) % 521) as f64) / 52.0 - 5.0)
            .collect();
        let lo: Vec<f64> = q.iter().map(|v| v - 0.5).collect();
        let hi: Vec<f64> = lo.iter().map(|&l| l + width).collect();
        let sum_lo: f64 = lo.iter().sum();
        let sum_hi: f64 = hi.iter().sum();
        // A total inside [Σlo, Σhi] (feasible) — infeasible totals are
        // covered by the deterministic error-parity cases.
        let total = sum_lo + frac * (sum_hi - sum_lo);
        for level in levels_under_test() {
            for kernel in kernels() {
                let tag = format!("{level:?}/{kernel:?}");
                check_boxed(&tag, level, kernel, &q, &gamma, &shift, &lo, &hi,
                    TotalMode::Fixed { total });
                check_boxed(&tag, level, kernel, &q, &gamma, &shift, &lo, &hi,
                    TotalMode::Elastic { alpha: 0.4, prior: total, cross: -0.2 });
            }
        }
    }
}

/// Error parity: shape mismatches, infeasible totals, and non-positive
/// weights must fail identically through both paths.
#[test]
fn error_cases_match_scalar() {
    for level in levels_under_test() {
        for kernel in kernels() {
            let tag = format!("err/{level:?}/{kernel:?}");
            // Infeasible empty subproblem.
            check_plain(
                &tag,
                level,
                kernel,
                &[],
                &[],
                &[],
                TotalMode::Fixed { total: 1.0 },
            );
            // Non-positive elastic alpha.
            check_plain(
                &tag,
                level,
                kernel,
                &[1.0, 2.0, 3.0, 4.0, 5.0],
                &[1.0; 5],
                &[0.0; 5],
                TotalMode::Elastic {
                    alpha: 0.0,
                    prior: 1.0,
                    cross: 0.0,
                },
            );
            // Inconsistent bounds.
            check_boxed(
                &tag,
                level,
                kernel,
                &[1.0, 2.0, 3.0, 4.0, 5.0],
                &[1.0; 5],
                &[0.0; 5],
                &[2.0; 5],
                &[1.0; 5],
                TotalMode::Fixed { total: 5.0 },
            );
            // Infeasible boxed total.
            check_boxed(
                &tag,
                level,
                kernel,
                &[1.0, 2.0, 3.0, 4.0, 5.0],
                &[1.0; 5],
                &[0.0; 5],
                &[0.0; 5],
                &[1.0; 5],
                TotalMode::Fixed { total: 50.0 },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Solver level: whole solves, SIMD on vs off, bitwise.
// ---------------------------------------------------------------------------

/// SIMD modes to pit against [`SimdMode::Off`] in whole-solve runs,
/// honouring the `SEA_SIMD` CI matrix variable (the solver API takes a
/// *mode*, resolved once per solve, rather than a raw level).
fn modes_under_test() -> Vec<SimdMode> {
    match std::env::var("SEA_SIMD").ok().as_deref() {
        Some("off") => vec![SimdMode::Off],
        Some("auto") => vec![SimdMode::Auto],
        Some("force") => {
            if avx2_available() {
                vec![SimdMode::Force]
            } else {
                eprintln!("skipping forced-SIMD solver differential: no AVX2 on this CPU");
                vec![]
            }
        }
        _ => {
            let mut out = vec![SimdMode::Auto];
            if avx2_available() {
                out.push(SimdMode::Force);
            }
            out
        }
    }
}

fn opts_for(
    kernel: KernelKind,
    par: Parallelism,
    block: Option<usize>,
    simd: SimdMode,
) -> SeaOptions {
    let mut o = SeaOptions::with_epsilon(1e-7);
    o.kernel = kernel;
    o.parallelism = par;
    o.block_size = block;
    o.simd = simd;
    o.max_iterations = 20_000;
    o
}

/// Solve and harvest (solution, cumulative kernel counters).
fn solve_with<S: sea_core::Storage>(
    p: &sea_core::DiagonalProblem<S>,
    opts: &SeaOptions,
) -> (sea_core::solver::Solution<S>, Option<KernelCounters>) {
    let mut obs = VecObserver::new();
    let sol = solve_diagonal_observed(p, opts, &mut obs).expect("differential solve");
    let counters = counters_of(&obs);
    (sol, counters)
}

/// Assert two solves agree bitwise on everything observable.
fn assert_solutions_bitwise<S: sea_core::Storage>(
    tag: &str,
    a: &(sea_core::solver::Solution<S>, Option<KernelCounters>),
    b: &(sea_core::solver::Solution<S>, Option<KernelCounters>),
) {
    assert_eq!(bits(a.0.x.values()), bits(b.0.x.values()), "{tag}: x");
    assert_eq!(bits(&a.0.lambda), bits(&b.0.lambda), "{tag}: lambda");
    assert_eq!(bits(&a.0.mu), bits(&b.0.mu), "{tag}: mu");
    assert_eq!(bits(&a.0.s), bits(&b.0.s), "{tag}: s");
    assert_eq!(bits(&a.0.d), bits(&b.0.d), "{tag}: d");
    assert_eq!(
        a.0.stats.iterations, b.0.stats.iterations,
        "{tag}: iterations"
    );
    assert_eq!(a.0.stats.converged, b.0.stats.converged, "{tag}: converged");
    assert_eq!(a.1, b.1, "{tag}: kernel counters");
}

/// Dense solves: SIMD on vs off must be bitwise-identical across kernels,
/// parallelism, and shard sizes.
#[test]
fn dense_solves_match_scalar_bitwise() {
    let problems = [
        ("heterogeneous", generator::heterogeneous(SEED, 13, 9)),
        (
            "spread",
            generator::try_fixed_diagonal(SEED ^ 1, 9, 17, 6, 1.0).expect("constructible"),
        ),
        (
            "degenerate_row",
            generator::degenerate_row(SEED ^ 2, 11).expect("constructible"),
        ),
    ];
    for (name, p) in &problems {
        for kernel in kernels() {
            for (pname, par) in [
                ("serial", Parallelism::Serial),
                ("rayon3", Parallelism::RayonThreads(3)),
            ] {
                for block in [None, Some(3)] {
                    let reference = solve_with(p, &opts_for(kernel, par, block, SimdMode::Off));
                    for mode in modes_under_test() {
                        let simd = solve_with(p, &opts_for(kernel, par, block, mode));
                        let tag = format!("{name}/{kernel:?}/{pname}/block={block:?}/{mode:?}");
                        assert_solutions_bitwise(&tag, &reference, &simd);
                    }
                }
            }
        }
    }
}

/// CSR solves drive the gather path; same bitwise contract.
#[test]
fn sparse_solves_match_scalar_bitwise() {
    for (name, p) in generator::sparse_families(SEED ^ 3) {
        for kernel in kernels() {
            for (pname, par) in [
                ("serial", Parallelism::Serial),
                ("rayon2", Parallelism::RayonThreads(2)),
            ] {
                let reference = solve_with(&p, &opts_for(kernel, par, None, SimdMode::Off));
                for mode in modes_under_test() {
                    let simd = solve_with(&p, &opts_for(kernel, par, None, mode));
                    let tag = format!("sparse/{name}/{kernel:?}/{pname}/{mode:?}");
                    assert_solutions_bitwise(&tag, &reference, &simd);
                }
            }
        }
    }
}

/// Box-bounded solves through the configured driver: SIMD on vs off.
#[test]
fn bounded_solves_match_scalar_bitwise() {
    use sea_core::{solve_bounded_configured, BoundedOptions, Precision};
    let problems = [
        generator::try_bounded(SEED ^ 4, 8, 12, 4, 1.0).expect("constructible"),
        generator::try_bounded(SEED ^ 5, 15, 6, 6, 1e6).expect("constructible"),
    ];
    for (i, p) in problems.iter().enumerate() {
        for kernel in kernels() {
            let reference = solve_bounded_configured(
                p,
                1e-7,
                20_000,
                &BoundedOptions {
                    kernel,
                    simd: SimdMode::Off,
                    precision: Precision::F64,
                },
            )
            .expect("bounded reference solve");
            for mode in modes_under_test() {
                let simd = solve_bounded_configured(
                    p,
                    1e-7,
                    20_000,
                    &BoundedOptions {
                        kernel,
                        simd: mode,
                        precision: Precision::F64,
                    },
                )
                .expect("bounded simd solve");
                let tag = format!("bounded{i}/{kernel:?}/{mode:?}");
                assert_eq!(
                    bits(simd.x.values()),
                    bits(reference.x.values()),
                    "{tag}: x"
                );
                assert_eq!(bits(&simd.lambda), bits(&reference.lambda), "{tag}: lambda");
                assert_eq!(bits(&simd.mu), bits(&reference.mu), "{tag}: mu");
                assert_eq!(simd.iterations, reference.iterations, "{tag}: iterations");
                assert_eq!(simd.converged, reference.converged, "{tag}: converged");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property-generated whole solves: any seeded instance that solves
    /// under the scalar oracle solves bitwise-identically under SIMD.
    #[test]
    fn seeded_solves_match_scalar_bitwise(
        seed in 0u64..1 << 48,
        m in 2usize..12,
        n in 2usize..12,
        decades in 0i32..5,
        kernel_sel in 0u8..2,
        par_sel in 0u8..2,
    ) {
        let kernel = kernels()[kernel_sel as usize];
        let par = if par_sel == 0 { Parallelism::Serial } else { Parallelism::RayonThreads(2) };
        if let Ok(p) = generator::try_fixed_diagonal(seed, m, n, decades, 1.0) {
            let reference = solve_with(&p, &opts_for(kernel, par, None, SimdMode::Off));
            for mode in modes_under_test() {
                let simd = solve_with(&p, &opts_for(kernel, par, None, mode));
                assert_solutions_bitwise(&format!("seed={seed}/{kernel:?}/{mode:?}"), &reference, &simd);
            }
        }
    }
}
