//! Shared fixture problems and golden-solution helpers for the sea-core
//! integration tests.
//!
//! The three fixtures cover the three diagonal problem classes of the paper
//! (fixed totals, elastic totals, SAM balancing) with fixed-seed data, and
//! `golden_*.csv` files in this directory hold KKT-verified solutions
//! produced by the sort-scan reference kernel.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{
    DiagonalProblem, KernelKind, Parallelism, SeaOptions, Solution, TotalSpec, WeightScheme,
};
use sea_linalg::DenseMatrix;

/// Deterministic positive matrix from a fixed seed.
fn random_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| rng.random_range(0.5..10.0)).collect())
        .collect();
    DenseMatrix::from_rows(&data).unwrap()
}

/// Fixed-totals fixture: 6×5 prior, totals perturbed away from the prior's
/// margins so every row/column subproblem does real work.
pub fn fixture_fixed() -> DiagonalProblem {
    let x0 = random_matrix(6, 5, 0xF1DE);
    let gamma = WeightScheme::ChiSquare.entry_weights(&x0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1DF);
    let mut s0: Vec<f64> = x0
        .row_sums()
        .iter()
        .map(|&r| r * rng.random_range(0.8..1.3))
        .collect();
    let target: f64 = s0.iter().sum();
    let cs = x0.col_sums();
    let cs_sum: f64 = cs.iter().sum();
    let mut d0: Vec<f64> = cs.iter().map(|&c| c * target / cs_sum).collect();
    // Make Σ s⁰ = Σ d⁰ exact (the scaling only gets within rounding).
    let drift: f64 = target - d0.iter().sum::<f64>();
    d0[0] += drift;
    s0[0] += 0.0;
    DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 }).unwrap()
}

/// Elastic-totals fixture: 5×6 prior with per-row/column total weights.
pub fn fixture_elastic() -> DiagonalProblem {
    let x0 = random_matrix(5, 6, 0xE1A5);
    let gamma = WeightScheme::InverseSqrt.entry_weights(&x0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0xE1A6);
    let s0: Vec<f64> = x0
        .row_sums()
        .iter()
        .map(|&r| r * rng.random_range(0.7..1.4))
        .collect();
    let d0: Vec<f64> = x0
        .col_sums()
        .iter()
        .map(|&c| c * rng.random_range(0.7..1.4))
        .collect();
    let alpha: Vec<f64> = (0..5).map(|_| rng.random_range(0.3..2.0)).collect();
    let beta: Vec<f64> = (0..6).map(|_| rng.random_range(0.3..2.0)).collect();
    DiagonalProblem::new(
        x0,
        gamma,
        TotalSpec::Elastic {
            alpha,
            s0,
            beta,
            d0,
        },
    )
    .unwrap()
}

/// SAM-balancing fixture: square prior, shared account totals estimated
/// alongside the matrix.
pub fn fixture_balanced() -> DiagonalProblem {
    let x0 = random_matrix(6, 6, 0xBA1A);
    let gamma = WeightScheme::ChiSquare.entry_weights(&x0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0xBA1B);
    let rs = x0.row_sums();
    let cs = x0.col_sums();
    let s0: Vec<f64> = rs
        .iter()
        .zip(&cs)
        .map(|(&r, &c)| 0.5 * (r + c) * rng.random_range(0.9..1.1))
        .collect();
    let alpha: Vec<f64> = s0.iter().map(|&t| 1.0 / t.max(1.0)).collect();
    DiagonalProblem::new(x0, gamma, TotalSpec::Balanced { alpha, s0 }).unwrap()
}

/// All three fixtures, tagged for assertion messages.
pub fn all_fixtures() -> Vec<(&'static str, DiagonalProblem)> {
    vec![
        ("fixed", fixture_fixed()),
        ("elastic", fixture_elastic()),
        ("balanced", fixture_balanced()),
    ]
}

/// Solve a fixture with an explicit kernel and parallelism mode.
pub fn solve_with(p: &DiagonalProblem, kernel: KernelKind, parallelism: Parallelism) -> Solution {
    let mut opts = SeaOptions::with_epsilon(1e-10);
    opts.kernel = kernel;
    opts.parallelism = parallelism;
    let sol = sea_core::solve_diagonal(p, &opts).expect("fixture must solve");
    assert!(sol.stats.converged, "fixture must converge");
    sol
}

/// Parse a golden CSV (one matrix row per line) into a row-major vector.
// Not every test binary that pulls in this module reads golden files.
#[allow(dead_code)]
pub fn parse_golden(csv: &str) -> Vec<f64> {
    csv.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .flat_map(|l| l.split(',').map(|t| t.trim().parse::<f64>().unwrap()))
        .collect()
}
