//! Shared seeded problem generator for property and batch tests.
//!
//! Every family here is a pure function of its `u64` seed (ChaCha8 +
//! SplitMix64 seed expansion, both vendored and stable), so any test in any
//! crate can reproduce an instance from the seed alone — no captured
//! fixtures, no shrinking needed. The families deliberately cover the
//! numerically nasty corners the robustness suite stresses: degenerate
//! 1×n / m×1 shapes, weight spreads of up to twelve orders of magnitude,
//! grand totals squeezed toward 1e-12 or blown up to 1e6, and
//! drifting-prior sequences that model the batch warm-start workload.
//!
//! Included via `#[path]` from several test binaries, each of which uses a
//! different subset — hence the file-level `allow(dead_code)`.
#![allow(dead_code)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{
    BoundedProblem, DiagonalProblem, GeneralProblem, GeneralTotalSpec, SeaError, Storage,
    TotalSpec, ZeroPolicy,
};
use sea_linalg::{CsrMatrix, DenseMatrix, SymMatrix};

/// The deterministic RNG behind every family.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Grand-total scale selector: squeezes totals toward zero, leaves them
/// O(1), or blows them up to 1e6.
pub fn scale_of(sel: u8) -> f64 {
    match sel % 3 {
        0 => 1e-12,
        1 => 1.0,
        _ => 1e6,
    }
}

/// Positive prior matrix with entries uniform in `lo..hi`.
pub fn positive_matrix(rng: &mut ChaCha8Rng, m: usize, n: usize, lo: f64, hi: f64) -> DenseMatrix {
    let mut x = DenseMatrix::zeros(m, n).expect("valid dims");
    for i in 0..m {
        for j in 0..n {
            x.set(i, j, rng.random_range(lo..hi));
        }
    }
    x
}

/// Weight matrix with entries `10^e`, `e` uniform in `-decades..=decades`:
/// spreads of up to `2 * decades` orders of magnitude inside one row.
pub fn spread_weights(rng: &mut ChaCha8Rng, m: usize, n: usize, decades: i32) -> DenseMatrix {
    let mut g = DenseMatrix::zeros(m, n).expect("valid dims");
    for i in 0..m {
        for j in 0..n {
            let e = rng.random_range(-decades..=decades);
            g.set(i, j, 10f64.powi(e));
        }
    }
    g
}

/// Consistent totals at the given scale: random row totals, column totals
/// carved from the same grand total via random positive fractions, with the
/// float residue folded into `d0[0]` so `Σs0 == Σd0` holds exactly.
pub fn consistent_totals(
    rng: &mut ChaCha8Rng,
    m: usize,
    n: usize,
    scale: f64,
) -> (Vec<f64>, Vec<f64>) {
    let s0: Vec<f64> = (0..m).map(|_| rng.random_range(0.1..5.0) * scale).collect();
    let total: f64 = s0.iter().sum();
    let frac: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..1.0)).collect();
    let fsum: f64 = frac.iter().sum();
    let mut d0: Vec<f64> = frac.iter().map(|f| total * f / fsum).collect();
    let resid = total - d0.iter().sum::<f64>();
    d0[0] += resid;
    (s0, d0)
}

/// Seeded adversarial diagonal instance: positive priors, `10^±decades`
/// weight spreads, consistent totals at `scale`. Construction may reject
/// extreme draws with a typed error — that is an acceptable outcome for the
/// robustness properties, hence the `try_` name.
pub fn try_fixed_diagonal(
    seed: u64,
    m: usize,
    n: usize,
    decades: i32,
    scale: f64,
) -> Result<DiagonalProblem, SeaError> {
    let mut r = rng(seed);
    let x0 = positive_matrix(&mut r, m, n, 1e-6, 10.0);
    let gamma = spread_weights(&mut r, m, n, decades);
    let (s0, d0) = consistent_totals(&mut r, m, n, scale);
    DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 })
}

/// Degenerate single-row shape (1×n): the row subproblem carries the whole
/// grand total and every column subproblem is a singleton.
pub fn degenerate_row(seed: u64, n: usize) -> Result<DiagonalProblem, SeaError> {
    try_fixed_diagonal(seed, 1, n.max(1), 6, 1.0)
}

/// Degenerate single-column shape (m×1), the transpose stress of
/// [`degenerate_row`].
pub fn degenerate_col(seed: u64, m: usize) -> Result<DiagonalProblem, SeaError> {
    try_fixed_diagonal(seed, m.max(1), 1, 6, 1.0)
}

/// Totals squeezed to O(1e-12): exercises the near-zero-total cancellation
/// paths in the equilibration kernels.
pub fn near_zero_totals(seed: u64, m: usize, n: usize) -> Result<DiagonalProblem, SeaError> {
    try_fixed_diagonal(seed, m, n, 6, 1e-12)
}

/// Weight spreads of 1e±12 at O(1) totals.
pub fn wide_weights(seed: u64, m: usize, n: usize) -> Result<DiagonalProblem, SeaError> {
    try_fixed_diagonal(seed, m, n, 12, 1.0)
}

/// Slow-converging heterogeneous instance for warm-start and supervision
/// tests. Unit-weight fixtures equilibrate in a couple of iterations, which
/// makes warm-vs-cold comparisons vacuous; this family staggers priors and
/// weights across seven decades (the `fault_injection.rs` `hard_problem`
/// recipe, seeded) so a cold 1e-10 solve takes hundreds-to-thousands of
/// dual sweeps. Always constructible: all inputs are bounded and positive.
pub fn heterogeneous(seed: u64, m: usize, n: usize) -> DiagonalProblem {
    let mut r = rng(seed);
    let mut x0 = DenseMatrix::zeros(m, n).expect("valid dims");
    let mut gamma = DenseMatrix::zeros(m, n).expect("valid dims");
    for i in 0..m {
        for j in 0..n {
            let phase = (i * n + j) % 7;
            let jitter = r.random_range(0.9..1.1);
            x0.set(i, j, (1.0 + phase as f64) * jitter);
            gamma.set(i, j, 10f64.powi(phase as i32 - 3));
        }
    }
    let s0: Vec<f64> = (0..m)
        .map(|i| (20.0 + 3.0 * (i % 7) as f64) * r.random_range(0.9..1.1))
        .collect();
    let total: f64 = s0.iter().sum();
    let mut d0: Vec<f64> = (0..n).map(|j| 30.0 - 4.0 * (j % 7) as f64).collect();
    let dsum: f64 = d0.iter().sum();
    for v in &mut d0 {
        *v *= total / dsum;
    }
    let resid = total - d0.iter().sum::<f64>();
    d0[0] += resid;
    DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 })
        .expect("heterogeneous family is always constructible")
}

/// A drifting-prior sequence: `epochs` successive instances of one problem
/// family whose priors and totals wander by a relative `drift` per epoch.
/// Models the batch warm-start workload — consecutive instances are close,
/// so epoch k's dual multipliers are a good seed for epoch k+1.
pub fn drifting_priors(
    seed: u64,
    m: usize,
    n: usize,
    epochs: usize,
    drift: f64,
) -> Vec<DiagonalProblem> {
    let mut r = rng(seed);
    let base = heterogeneous(seed, m, n);
    let mut out = Vec::with_capacity(epochs);
    let mut x0 = base.x0().clone();
    let mut s0 = match base.totals() {
        TotalSpec::Fixed { s0, .. } => s0.clone(),
        _ => unreachable!("heterogeneous builds fixed totals"),
    };
    for _ in 0..epochs {
        // Wander multiplicatively, then re-derive consistent column totals
        // from fresh fractions so every epoch stays exactly balanced.
        for i in 0..m {
            for j in 0..n {
                let f = 1.0 + drift * r.random_range(-1.0..1.0);
                x0.set(i, j, x0.get(i, j) * f);
            }
        }
        for v in &mut s0 {
            *v *= 1.0 + drift * r.random_range(-1.0..1.0);
        }
        let total: f64 = s0.iter().sum();
        let frac: Vec<f64> = (0..n).map(|_| r.random_range(0.5..1.5)).collect();
        let fsum: f64 = frac.iter().sum();
        let mut d0: Vec<f64> = frac.iter().map(|f| total * f / fsum).collect();
        let resid = total - d0.iter().sum::<f64>();
        d0[0] += resid;
        let p = DiagonalProblem::new(
            x0.clone(),
            base.gamma().clone(),
            TotalSpec::Fixed { s0: s0.clone(), d0 },
        )
        .expect("drifted instance stays constructible");
        out.push(p);
    }
    out
}

/// Seeded adversarial box-bounded instance. Lower bounds are zero and the
/// upper bounds cover the grand total, so the instance is usually feasible;
/// when an extreme draw is not, the typed error is the acceptable outcome.
pub fn try_bounded(
    seed: u64,
    m: usize,
    n: usize,
    decades: i32,
    scale: f64,
) -> Result<BoundedProblem, SeaError> {
    let mut r = rng(seed);
    let x0 = positive_matrix(&mut r, m, n, 1e-6, 10.0);
    let gamma = spread_weights(&mut r, m, n, decades);
    let (s0, d0) = consistent_totals(&mut r, m, n, scale);
    let grand: f64 = s0.iter().sum();
    let lo = DenseMatrix::zeros(m, n).expect("valid dims");
    let hi = DenseMatrix::filled(m, n, grand.max(1e-300)).expect("valid dims");
    BoundedProblem::new(x0, gamma, lo, hi, s0, d0)
}

/// Seeded adversarial general instance: strictly diagonally dominant
/// symmetric `G` (SPD by Gershgorin) with a `10^±decades` diagonal spread.
pub fn try_general(
    seed: u64,
    m: usize,
    n: usize,
    decades: i32,
) -> Result<GeneralProblem, SeaError> {
    let mut r = rng(seed);
    let x0 = positive_matrix(&mut r, m, n, 1e-3, 10.0);
    let order = m * n;
    let diags: Vec<f64> = (0..order)
        .map(|_| 10f64.powi(r.random_range(-decades..=decades)))
        .collect();
    let min_diag = diags.iter().cloned().fold(f64::INFINITY, f64::min);
    let coupling = -min_diag / (2.0 * order as f64);
    let mut g = DenseMatrix::zeros(order, order).expect("valid dims");
    for (i, &di) in diags.iter().enumerate() {
        for j in 0..order {
            g.set(i, j, if i == j { di } else { coupling });
        }
    }
    let gm = SymMatrix::from_dense(g, 1e-12)?;
    let (s0, d0) = consistent_totals(&mut r, m, n, 1.0);
    GeneralProblem::new(x0, gm, GeneralTotalSpec::Fixed { s0, d0 })
}

// ---------------------------------------------------------------------------
// Sparse (CSR) families.
//
// Each family is a pure function of its seed, like the dense ones above.
// Patterns guarantee at least one stored entry per row and per column, and
// totals are the margins of a perturbed interior point on the support, so
// every instance is feasible by construction. Problems carry
// `ZeroPolicy::Structural` so their dense image (`to_dense_problem`) treats
// off-support cells as structural zeros — the dense oracle the differential
// suite compares against.
// ---------------------------------------------------------------------------

/// Banded pattern: row `i` stores the columns within `half_bandwidth` of the
/// diagonal position `i·n/m` (clamped). Contiguous support, the
/// cache-friendliest sparse shape.
pub fn banded_pattern(m: usize, n: usize, half_bandwidth: usize) -> Vec<(usize, usize)> {
    let mut pat = Vec::new();
    for i in 0..m {
        let center = i * n / m;
        let lo = center.saturating_sub(half_bandwidth);
        let hi = (center + half_bandwidth).min(n - 1);
        for j in lo..=hi {
            pat.push((i, j));
        }
    }
    pat
}

/// Block-diagonal pattern: rows and columns split into `blocks` contiguous
/// chunks; block k is fully stored. Blocks are exactly the support-graph
/// components, so this family exercises component-aligned sharding.
pub fn block_diagonal_pattern(m: usize, n: usize, blocks: usize) -> Vec<(usize, usize)> {
    let blocks = blocks.clamp(1, m.min(n));
    let mut pat = Vec::new();
    for k in 0..blocks {
        let (r0, r1) = (k * m / blocks, (k + 1) * m / blocks);
        let (c0, c1) = (k * n / blocks, (k + 1) * n / blocks);
        for i in r0..r1 {
            for j in c0..c1 {
                pat.push((i, j));
            }
        }
    }
    pat
}

/// Power-law pattern at roughly `density`: a guaranteed diagonal-ish entry
/// per row and per column, a full hub column 0 (the heavy head of the
/// degree distribution, which also keeps the support graph connected),
/// plus random fill whose column choice is biased toward low indices
/// (`j ∝ u²`) — the degree profile of real input–output tables.
pub fn power_law_pattern(
    r: &mut ChaCha8Rng,
    m: usize,
    n: usize,
    density: f64,
) -> Vec<(usize, usize)> {
    let mut cells = std::collections::BTreeSet::new();
    for i in 0..m {
        cells.insert((i, i % n));
        cells.insert((i, 0));
    }
    for j in 0..n {
        cells.insert((j % m, j));
    }
    let extra = ((m * n) as f64 * density) as usize;
    for _ in 0..extra {
        let i = r.random_range(0..m);
        let u: f64 = r.random_range(0.0..1.0);
        let j = ((u * u) * n as f64) as usize;
        cells.insert((i, j.min(n - 1)));
    }
    cells.into_iter().collect()
}

/// Build a fixed-totals sparse diagonal problem over a support pattern:
/// positive priors and `10^±2` weight spreads on the stored cells, totals
/// from the margins of a perturbed copy of the prior (feasible by
/// construction).
pub fn sparse_fixed_from_pattern(
    r: &mut ChaCha8Rng,
    m: usize,
    n: usize,
    pat: &[(usize, usize)],
) -> DiagonalProblem<CsrMatrix> {
    let trips: Vec<(usize, usize, f64)> = pat
        .iter()
        .map(|&(i, j)| (i, j, r.random_range(0.5..10.0)))
        .collect();
    let x0 = CsrMatrix::from_triplets(m, n, &trips).expect("generated pattern is valid");
    let gvals: Vec<f64> = (0..x0.stored())
        .map(|_| 10f64.powi(r.random_range(-2..=2)))
        .collect();
    let gamma = x0.with_values(gvals).expect("same pattern");
    let (s0, d0) = sparse_margin_totals(r, &x0);
    DiagonalProblem::with_zero_policy(
        x0,
        gamma,
        TotalSpec::Fixed { s0, d0 },
        ZeroPolicy::Structural,
    )
    .expect("sparse family is feasible by construction")
}

/// Feasible totals for a sparse prior: the row/column margins of an interior
/// point obtained by perturbing every stored entry by ±25%.
fn sparse_margin_totals(r: &mut ChaCha8Rng, x0: &CsrMatrix) -> (Vec<f64>, Vec<f64>) {
    let yvals: Vec<f64> = x0
        .values()
        .iter()
        .map(|&v| v * r.random_range(0.8..1.25))
        .collect();
    let y = x0.clone().with_values(yvals).expect("same pattern");
    let mut s0 = vec![0.0; Storage::rows(x0)];
    let mut d0 = vec![0.0; Storage::cols(x0)];
    y.row_sums_into(&mut s0);
    y.col_sums_into(&mut d0);
    (s0, d0)
}

/// Seeded banded sparse instance.
pub fn sparse_banded(seed: u64, m: usize, n: usize, hb: usize) -> DiagonalProblem<CsrMatrix> {
    let mut r = rng(seed);
    let pat = banded_pattern(m, n, hb);
    sparse_fixed_from_pattern(&mut r, m, n, &pat)
}

/// Seeded block-diagonal sparse instance.
pub fn sparse_block_diagonal(
    seed: u64,
    m: usize,
    n: usize,
    blocks: usize,
) -> DiagonalProblem<CsrMatrix> {
    let mut r = rng(seed);
    let pat = block_diagonal_pattern(m, n, blocks);
    sparse_fixed_from_pattern(&mut r, m, n, &pat)
}

/// Seeded power-law sparse instance at roughly `density`.
pub fn sparse_power_law(seed: u64, m: usize, n: usize, density: f64) -> DiagonalProblem<CsrMatrix> {
    let mut r = rng(seed);
    let pat = power_law_pattern(&mut r, m, n, density);
    sparse_fixed_from_pattern(&mut r, m, n, &pat)
}

/// Seeded elastic-totals sparse instance on a banded pattern.
pub fn sparse_elastic(seed: u64, m: usize, n: usize, hb: usize) -> DiagonalProblem<CsrMatrix> {
    let mut r = rng(seed);
    let pat = banded_pattern(m, n, hb);
    let fixed = sparse_fixed_from_pattern(&mut r, m, n, &pat);
    let TotalSpec::Fixed { s0, d0 } = fixed.totals().clone() else {
        unreachable!("sparse_fixed_from_pattern builds fixed totals")
    };
    let alpha: Vec<f64> = (0..m).map(|_| r.random_range(0.3..2.0)).collect();
    let beta: Vec<f64> = (0..n).map(|_| r.random_range(0.3..2.0)).collect();
    DiagonalProblem::with_zero_policy(
        fixed.x0().clone(),
        fixed.gamma().clone(),
        TotalSpec::Elastic {
            alpha,
            s0,
            beta,
            d0,
        },
        ZeroPolicy::Structural,
    )
    .expect("elastic sparse family is constructible")
}

/// Seeded SAM-balancing sparse instance on a square banded pattern.
pub fn sparse_balanced(seed: u64, n: usize, hb: usize) -> DiagonalProblem<CsrMatrix> {
    let mut r = rng(seed);
    let pat = banded_pattern(n, n, hb);
    let fixed = sparse_fixed_from_pattern(&mut r, n, n, &pat);
    let TotalSpec::Fixed { s0, d0 } = fixed.totals().clone() else {
        unreachable!("sparse_fixed_from_pattern builds fixed totals")
    };
    let s0: Vec<f64> = s0.iter().zip(&d0).map(|(a, b)| 0.5 * (a + b)).collect();
    // Unit elasticities: tiny alpha (soft totals) makes the dual converge
    // far more slowly than the primal residual, stalling the test sweeps.
    let alpha = vec![1.0; s0.len()];
    DiagonalProblem::with_zero_policy(
        fixed.x0().clone(),
        fixed.gamma().clone(),
        TotalSpec::Balanced { alpha, s0 },
        ZeroPolicy::Structural,
    )
    .expect("balanced sparse family is constructible")
}

/// Seeded box-bounded sparse instance on a banded pattern: zero lower
/// bounds, upper bounds covering the grand total.
pub fn sparse_bounded(seed: u64, m: usize, n: usize, hb: usize) -> BoundedProblem<CsrMatrix> {
    let mut r = rng(seed);
    let pat = banded_pattern(m, n, hb);
    let fixed = sparse_fixed_from_pattern(&mut r, m, n, &pat);
    let TotalSpec::Fixed { s0, d0 } = fixed.totals().clone() else {
        unreachable!("sparse_fixed_from_pattern builds fixed totals")
    };
    let grand: f64 = s0.iter().sum();
    let x0 = fixed.x0().clone();
    let lo = x0.zeros_like();
    let hi = x0
        .clone()
        .with_values(vec![grand.max(1.0); x0.stored()])
        .expect("same pattern");
    BoundedProblem::new(x0, fixed.gamma().clone(), lo, hi, s0, d0)
        .expect("bounded sparse family is feasible by construction")
}

/// Every fixed-totals sparse family, tagged for assertion messages — the
/// sweep the differential and determinism suites run over.
pub fn sparse_families(seed: u64) -> Vec<(&'static str, DiagonalProblem<CsrMatrix>)> {
    vec![
        ("banded", sparse_banded(seed, 12, 12, 2)),
        ("banded-rect", sparse_banded(seed ^ 0xB4AD, 9, 14, 3)),
        (
            "block-diagonal",
            sparse_block_diagonal(seed ^ 0xB10C, 12, 12, 3),
        ),
        ("power-law", sparse_power_law(seed ^ 0xF01, 14, 14, 0.25)),
        ("elastic-banded", sparse_elastic(seed ^ 0xE1A, 10, 11, 2)),
        ("balanced-banded", sparse_balanced(seed ^ 0xBA1, 12, 3)),
    ]
}
