//! Shared seeded problem generator for property and batch tests.
//!
//! Every family here is a pure function of its `u64` seed (ChaCha8 +
//! SplitMix64 seed expansion, both vendored and stable), so any test in any
//! crate can reproduce an instance from the seed alone — no captured
//! fixtures, no shrinking needed. The families deliberately cover the
//! numerically nasty corners the robustness suite stresses: degenerate
//! 1×n / m×1 shapes, weight spreads of up to twelve orders of magnitude,
//! grand totals squeezed toward 1e-12 or blown up to 1e6, and
//! drifting-prior sequences that model the batch warm-start workload.
//!
//! Included via `#[path]` from several test binaries, each of which uses a
//! different subset — hence the file-level `allow(dead_code)`.
#![allow(dead_code)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sea_core::{
    BoundedProblem, DiagonalProblem, GeneralProblem, GeneralTotalSpec, SeaError, TotalSpec,
};
use sea_linalg::{DenseMatrix, SymMatrix};

/// The deterministic RNG behind every family.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Grand-total scale selector: squeezes totals toward zero, leaves them
/// O(1), or blows them up to 1e6.
pub fn scale_of(sel: u8) -> f64 {
    match sel % 3 {
        0 => 1e-12,
        1 => 1.0,
        _ => 1e6,
    }
}

/// Positive prior matrix with entries uniform in `lo..hi`.
pub fn positive_matrix(rng: &mut ChaCha8Rng, m: usize, n: usize, lo: f64, hi: f64) -> DenseMatrix {
    let mut x = DenseMatrix::zeros(m, n).expect("valid dims");
    for i in 0..m {
        for j in 0..n {
            x.set(i, j, rng.random_range(lo..hi));
        }
    }
    x
}

/// Weight matrix with entries `10^e`, `e` uniform in `-decades..=decades`:
/// spreads of up to `2 * decades` orders of magnitude inside one row.
pub fn spread_weights(rng: &mut ChaCha8Rng, m: usize, n: usize, decades: i32) -> DenseMatrix {
    let mut g = DenseMatrix::zeros(m, n).expect("valid dims");
    for i in 0..m {
        for j in 0..n {
            let e = rng.random_range(-decades..=decades);
            g.set(i, j, 10f64.powi(e));
        }
    }
    g
}

/// Consistent totals at the given scale: random row totals, column totals
/// carved from the same grand total via random positive fractions, with the
/// float residue folded into `d0[0]` so `Σs0 == Σd0` holds exactly.
pub fn consistent_totals(
    rng: &mut ChaCha8Rng,
    m: usize,
    n: usize,
    scale: f64,
) -> (Vec<f64>, Vec<f64>) {
    let s0: Vec<f64> = (0..m).map(|_| rng.random_range(0.1..5.0) * scale).collect();
    let total: f64 = s0.iter().sum();
    let frac: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..1.0)).collect();
    let fsum: f64 = frac.iter().sum();
    let mut d0: Vec<f64> = frac.iter().map(|f| total * f / fsum).collect();
    let resid = total - d0.iter().sum::<f64>();
    d0[0] += resid;
    (s0, d0)
}

/// Seeded adversarial diagonal instance: positive priors, `10^±decades`
/// weight spreads, consistent totals at `scale`. Construction may reject
/// extreme draws with a typed error — that is an acceptable outcome for the
/// robustness properties, hence the `try_` name.
pub fn try_fixed_diagonal(
    seed: u64,
    m: usize,
    n: usize,
    decades: i32,
    scale: f64,
) -> Result<DiagonalProblem, SeaError> {
    let mut r = rng(seed);
    let x0 = positive_matrix(&mut r, m, n, 1e-6, 10.0);
    let gamma = spread_weights(&mut r, m, n, decades);
    let (s0, d0) = consistent_totals(&mut r, m, n, scale);
    DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 })
}

/// Degenerate single-row shape (1×n): the row subproblem carries the whole
/// grand total and every column subproblem is a singleton.
pub fn degenerate_row(seed: u64, n: usize) -> Result<DiagonalProblem, SeaError> {
    try_fixed_diagonal(seed, 1, n.max(1), 6, 1.0)
}

/// Degenerate single-column shape (m×1), the transpose stress of
/// [`degenerate_row`].
pub fn degenerate_col(seed: u64, m: usize) -> Result<DiagonalProblem, SeaError> {
    try_fixed_diagonal(seed, m.max(1), 1, 6, 1.0)
}

/// Totals squeezed to O(1e-12): exercises the near-zero-total cancellation
/// paths in the equilibration kernels.
pub fn near_zero_totals(seed: u64, m: usize, n: usize) -> Result<DiagonalProblem, SeaError> {
    try_fixed_diagonal(seed, m, n, 6, 1e-12)
}

/// Weight spreads of 1e±12 at O(1) totals.
pub fn wide_weights(seed: u64, m: usize, n: usize) -> Result<DiagonalProblem, SeaError> {
    try_fixed_diagonal(seed, m, n, 12, 1.0)
}

/// Slow-converging heterogeneous instance for warm-start and supervision
/// tests. Unit-weight fixtures equilibrate in a couple of iterations, which
/// makes warm-vs-cold comparisons vacuous; this family staggers priors and
/// weights across seven decades (the `fault_injection.rs` `hard_problem`
/// recipe, seeded) so a cold 1e-10 solve takes hundreds-to-thousands of
/// dual sweeps. Always constructible: all inputs are bounded and positive.
pub fn heterogeneous(seed: u64, m: usize, n: usize) -> DiagonalProblem {
    let mut r = rng(seed);
    let mut x0 = DenseMatrix::zeros(m, n).expect("valid dims");
    let mut gamma = DenseMatrix::zeros(m, n).expect("valid dims");
    for i in 0..m {
        for j in 0..n {
            let phase = (i * n + j) % 7;
            let jitter = r.random_range(0.9..1.1);
            x0.set(i, j, (1.0 + phase as f64) * jitter);
            gamma.set(i, j, 10f64.powi(phase as i32 - 3));
        }
    }
    let s0: Vec<f64> = (0..m)
        .map(|i| (20.0 + 3.0 * (i % 7) as f64) * r.random_range(0.9..1.1))
        .collect();
    let total: f64 = s0.iter().sum();
    let mut d0: Vec<f64> = (0..n).map(|j| 30.0 - 4.0 * (j % 7) as f64).collect();
    let dsum: f64 = d0.iter().sum();
    for v in &mut d0 {
        *v *= total / dsum;
    }
    let resid = total - d0.iter().sum::<f64>();
    d0[0] += resid;
    DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 })
        .expect("heterogeneous family is always constructible")
}

/// A drifting-prior sequence: `epochs` successive instances of one problem
/// family whose priors and totals wander by a relative `drift` per epoch.
/// Models the batch warm-start workload — consecutive instances are close,
/// so epoch k's dual multipliers are a good seed for epoch k+1.
pub fn drifting_priors(
    seed: u64,
    m: usize,
    n: usize,
    epochs: usize,
    drift: f64,
) -> Vec<DiagonalProblem> {
    let mut r = rng(seed);
    let base = heterogeneous(seed, m, n);
    let mut out = Vec::with_capacity(epochs);
    let mut x0 = base.x0().clone();
    let mut s0 = match base.totals() {
        TotalSpec::Fixed { s0, .. } => s0.clone(),
        _ => unreachable!("heterogeneous builds fixed totals"),
    };
    for _ in 0..epochs {
        // Wander multiplicatively, then re-derive consistent column totals
        // from fresh fractions so every epoch stays exactly balanced.
        for i in 0..m {
            for j in 0..n {
                let f = 1.0 + drift * r.random_range(-1.0..1.0);
                x0.set(i, j, x0.get(i, j) * f);
            }
        }
        for v in &mut s0 {
            *v *= 1.0 + drift * r.random_range(-1.0..1.0);
        }
        let total: f64 = s0.iter().sum();
        let frac: Vec<f64> = (0..n).map(|_| r.random_range(0.5..1.5)).collect();
        let fsum: f64 = frac.iter().sum();
        let mut d0: Vec<f64> = frac.iter().map(|f| total * f / fsum).collect();
        let resid = total - d0.iter().sum::<f64>();
        d0[0] += resid;
        let p = DiagonalProblem::new(
            x0.clone(),
            base.gamma().clone(),
            TotalSpec::Fixed { s0: s0.clone(), d0 },
        )
        .expect("drifted instance stays constructible");
        out.push(p);
    }
    out
}

/// Seeded adversarial box-bounded instance. Lower bounds are zero and the
/// upper bounds cover the grand total, so the instance is usually feasible;
/// when an extreme draw is not, the typed error is the acceptable outcome.
pub fn try_bounded(
    seed: u64,
    m: usize,
    n: usize,
    decades: i32,
    scale: f64,
) -> Result<BoundedProblem, SeaError> {
    let mut r = rng(seed);
    let x0 = positive_matrix(&mut r, m, n, 1e-6, 10.0);
    let gamma = spread_weights(&mut r, m, n, decades);
    let (s0, d0) = consistent_totals(&mut r, m, n, scale);
    let grand: f64 = s0.iter().sum();
    let lo = DenseMatrix::zeros(m, n).expect("valid dims");
    let hi = DenseMatrix::filled(m, n, grand.max(1e-300)).expect("valid dims");
    BoundedProblem::new(x0, gamma, lo, hi, s0, d0)
}

/// Seeded adversarial general instance: strictly diagonally dominant
/// symmetric `G` (SPD by Gershgorin) with a `10^±decades` diagonal spread.
pub fn try_general(
    seed: u64,
    m: usize,
    n: usize,
    decades: i32,
) -> Result<GeneralProblem, SeaError> {
    let mut r = rng(seed);
    let x0 = positive_matrix(&mut r, m, n, 1e-3, 10.0);
    let order = m * n;
    let diags: Vec<f64> = (0..order)
        .map(|_| 10f64.powi(r.random_range(-decades..=decades)))
        .collect();
    let min_diag = diags.iter().cloned().fold(f64::INFINITY, f64::min);
    let coupling = -min_diag / (2.0 * order as f64);
    let mut g = DenseMatrix::zeros(order, order).expect("valid dims");
    for (i, &di) in diags.iter().enumerate() {
        for j in 0..order {
            g.set(i, j, if i == j { di } else { coupling });
        }
    }
    let gm = SymMatrix::from_dense(g, 1e-12)?;
    let (s0, d0) = consistent_totals(&mut r, m, n, 1.0);
    GeneralProblem::new(x0, gm, GeneralTotalSpec::Fixed { s0, d0 })
}
