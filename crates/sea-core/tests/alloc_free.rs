//! Steady-state allocation audit for the equilibration kernels and the
//! diagonal solver.
//!
//! A counting global allocator wraps the system allocator; after one warm-up
//! call per (kernel × variant) that sizes the reusable scratch, repeated
//! kernel invocations must perform exactly zero heap allocations. A second
//! section audits the whole solve loop under the default `NullObserver`
//! differentially: a solve doing twice the iterations must allocate exactly
//! as much as the half-length solve, so the per-iteration cost is zero.
//! This file deliberately holds a single test: the counter is
//! process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use sea_core::knapsack::exact_equilibration_boxed_with;
use sea_core::{
    exact_equilibration_with, solve_diagonal, DiagonalProblem, EquilibrationScratch, KernelKind,
    SeaOptions, TotalMode, TotalSpec,
};
use sea_linalg::DenseMatrix;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn kernels_do_not_allocate_in_steady_state() {
    let n = 512;
    let q: Vec<f64> = (0..n)
        .map(|j| ((j * 37 % 101) as f64) / 10.0 - 2.0)
        .collect();
    let gamma: Vec<f64> = (0..n)
        .map(|j| 0.05 + ((j * 13 % 89) as f64) / 20.0)
        .collect();
    let shift: Vec<f64> = (0..n).map(|j| ((j * 7 % 61) as f64) / 30.0 - 1.0).collect();
    let lo: Vec<f64> = (0..n).map(|j| ((j * 3 % 17) as f64) / 10.0).collect();
    let hi: Vec<f64> = lo.iter().map(|&l| l + 3.0).collect();
    let slo: f64 = lo.iter().sum();
    let shi: f64 = hi.iter().sum();
    let mut x = vec![0.0; n];
    let mut scratch = EquilibrationScratch::new();

    let fixed = TotalMode::Fixed { total: 300.0 };
    let elastic = TotalMode::Elastic {
        alpha: 0.7,
        prior: 280.0,
        cross: 0.4,
    };
    let boxed_total = TotalMode::Fixed {
        total: 0.5 * (slo + shi),
    };

    // Warm-up: size the scratch buffers for every code path once.
    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        for mode in [fixed, elastic] {
            exact_equilibration_with(kernel, &q, &gamma, &shift, mode, &mut x, &mut scratch)
                .unwrap();
        }
        exact_equilibration_boxed_with(
            kernel,
            &q,
            &gamma,
            &shift,
            &lo,
            &hi,
            boxed_total,
            &mut x,
            &mut scratch,
        )
        .unwrap();
    }

    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        let before = allocations();
        for round in 0..200 {
            // Vary the total so the active set moves between calls.
            let total = 100.0 + (round as f64) * 2.0;
            exact_equilibration_with(
                kernel,
                &q,
                &gamma,
                &shift,
                TotalMode::Fixed { total },
                &mut x,
                &mut scratch,
            )
            .unwrap();
            exact_equilibration_with(kernel, &q, &gamma, &shift, elastic, &mut x, &mut scratch)
                .unwrap();
            let boxed_t = slo + (shi - slo) * ((round as f64) + 0.5) / 200.0;
            exact_equilibration_boxed_with(
                kernel,
                &q,
                &gamma,
                &shift,
                &lo,
                &hi,
                TotalMode::Fixed { total: boxed_t },
                &mut x,
                &mut scratch,
            )
            .unwrap();
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{kernel}: kernel allocated in steady state"
        );
    }

    // ---- Whole-solve audit under the default NullObserver. ----
    //
    // Per-solve setup allocates (solution matrix, multipliers, reusable
    // buffers), so the audit is differential: with an unattainable
    // tolerance pinning the iteration count to `max_iterations`, a
    // 16-iteration solve must allocate exactly as much as an 8-iteration
    // solve — i.e. the steady-state loop itself is allocation-free.
    let m = 12;
    let data: Vec<f64> = (0..m * m).map(|k| 0.5 + ((k * 29 % 97) as f64)).collect();
    let x0 = DenseMatrix::from_vec(m, m, data).unwrap();
    let gamma =
        DenseMatrix::from_vec(m, m, x0.as_slice().iter().map(|&v| 1.0 / v).collect()).unwrap();
    let s0: Vec<f64> = x0.row_sums().iter().map(|v| 2.0 * v).collect();
    let d0: Vec<f64> = x0.col_sums().iter().map(|v| 2.0 * v).collect();
    let p = DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 }).unwrap();

    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        let solve_allocations = |iterations: usize| -> usize {
            let mut opts = SeaOptions::with_epsilon(1e-8);
            opts.epsilon = -1.0; // unattainable: always run to the cap
            opts.max_iterations = iterations;
            opts.kernel = kernel;
            let before = allocations();
            let sol = solve_diagonal(&p, &opts).unwrap();
            let after = allocations();
            assert_eq!(sol.stats.iterations, iterations, "cap must bind");
            after - before
        };
        solve_allocations(4); // warm-up (allocator internals, lazy statics)
        let base = solve_allocations(8);
        let doubled = solve_allocations(16);
        assert_eq!(
            doubled, base,
            "{kernel}: solve iterations allocated under NullObserver"
        );
    }
}
