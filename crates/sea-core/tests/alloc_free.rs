//! Steady-state allocation audit for the equilibration kernels and the
//! diagonal solver.
//!
//! A counting global allocator wraps the system allocator; after one warm-up
//! call per (kernel × variant) that sizes the reusable scratch, repeated
//! kernel invocations must perform exactly zero heap allocations. A second
//! section audits the whole solve loop under the default `NullObserver`
//! differentially: a solve doing twice the iterations must allocate exactly
//! as much as the half-length solve, so the per-iteration cost is zero.
//!
//! The counter is *per-thread*: the audited paths all run serially on the
//! test thread, while libtest's harness thread lazily initializes its own
//! channel machinery (`std::sync::mpmc` thread-locals) at a
//! scheduling-dependent moment — a process-global counter intermittently
//! caught those two foreign allocations inside a measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use sea_core::knapsack::exact_equilibration_boxed_with;
use sea_core::{
    exact_equilibration_with, solve_diagonal, DiagonalProblem, EquilibrationScratch, KernelKind,
    SeaOptions, TotalMode, TotalSpec,
};
use sea_linalg::DenseMatrix;

struct CountingAllocator;

std::thread_local! {
    // const-initialized: accessing it never allocates, so the allocator
    // hooks cannot recurse.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

/// Bump the calling thread's counter; silently skipped during thread
/// teardown when the TLS slot is already destroyed.
fn count_one() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.with(|c| c.get())
}

#[test]
fn kernels_do_not_allocate_in_steady_state() {
    let n = 512;
    let q: Vec<f64> = (0..n)
        .map(|j| ((j * 37 % 101) as f64) / 10.0 - 2.0)
        .collect();
    let gamma: Vec<f64> = (0..n)
        .map(|j| 0.05 + ((j * 13 % 89) as f64) / 20.0)
        .collect();
    let shift: Vec<f64> = (0..n).map(|j| ((j * 7 % 61) as f64) / 30.0 - 1.0).collect();
    let lo: Vec<f64> = (0..n).map(|j| ((j * 3 % 17) as f64) / 10.0).collect();
    let hi: Vec<f64> = lo.iter().map(|&l| l + 3.0).collect();
    let slo: f64 = lo.iter().sum();
    let shi: f64 = hi.iter().sum();
    let mut x = vec![0.0; n];
    let mut scratch = EquilibrationScratch::new();

    let fixed = TotalMode::Fixed { total: 300.0 };
    let elastic = TotalMode::Elastic {
        alpha: 0.7,
        prior: 280.0,
        cross: 0.4,
    };
    let boxed_total = TotalMode::Fixed {
        total: 0.5 * (slo + shi),
    };

    // Warm-up: size the scratch buffers for every code path once.
    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        for mode in [fixed, elastic] {
            exact_equilibration_with(kernel, &q, &gamma, &shift, mode, &mut x, &mut scratch)
                .unwrap();
        }
        exact_equilibration_boxed_with(
            kernel,
            &q,
            &gamma,
            &shift,
            &lo,
            &hi,
            boxed_total,
            &mut x,
            &mut scratch,
        )
        .unwrap();
    }

    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        let before = allocations();
        for round in 0..200 {
            // Vary the total so the active set moves between calls.
            let total = 100.0 + (round as f64) * 2.0;
            exact_equilibration_with(
                kernel,
                &q,
                &gamma,
                &shift,
                TotalMode::Fixed { total },
                &mut x,
                &mut scratch,
            )
            .unwrap();
            exact_equilibration_with(kernel, &q, &gamma, &shift, elastic, &mut x, &mut scratch)
                .unwrap();
            let boxed_t = slo + (shi - slo) * ((round as f64) + 0.5) / 200.0;
            exact_equilibration_boxed_with(
                kernel,
                &q,
                &gamma,
                &shift,
                &lo,
                &hi,
                TotalMode::Fixed { total: boxed_t },
                &mut x,
                &mut scratch,
            )
            .unwrap();
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{kernel}: kernel allocated in steady state"
        );
    }

    // ---- Whole-solve audit under the default NullObserver. ----
    //
    // Per-solve setup allocates (solution matrix, multipliers, reusable
    // buffers), so the audit is differential: with an unattainable
    // tolerance pinning the iteration count to `max_iterations`, a
    // 16-iteration solve must allocate exactly as much as an 8-iteration
    // solve — i.e. the steady-state loop itself is allocation-free.
    let m = 12;
    let data: Vec<f64> = (0..m * m).map(|k| 0.5 + ((k * 29 % 97) as f64)).collect();
    let x0 = DenseMatrix::from_vec(m, m, data).unwrap();
    let gamma =
        DenseMatrix::from_vec(m, m, x0.as_slice().iter().map(|&v| 1.0 / v).collect()).unwrap();
    let s0: Vec<f64> = x0.row_sums().iter().map(|v| 2.0 * v).collect();
    let d0: Vec<f64> = x0.col_sums().iter().map(|v| 2.0 * v).collect();
    let p = DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 }).unwrap();

    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        let solve_allocations = |iterations: usize| -> usize {
            let mut opts = SeaOptions::with_epsilon(1e-8);
            opts.epsilon = -1.0; // unattainable: always run to the cap
            opts.max_iterations = iterations;
            opts.kernel = kernel;
            let before = allocations();
            let sol = solve_diagonal(&p, &opts).unwrap();
            let after = allocations();
            assert_eq!(sol.stats.iterations, iterations, "cap must bind");
            after - before
        };
        solve_allocations(4); // warm-up (allocator internals, lazy statics)
        let base = solve_allocations(8);
        let doubled = solve_allocations(16);
        assert_eq!(
            doubled, base,
            "{kernel}: solve iterations allocated under NullObserver"
        );
    }

    // ---- Span-enabled differential audit. ----
    //
    // Same differential contract with a preallocated SpanProfiler
    // attached: spans and telemetry land in the profiler's rings in
    // place, so a span-recording solve loop must stay allocation-free
    // per iteration exactly like the NullObserver loop. The profiler is
    // built (and its rings sized) before the baseline measurement.
    let mut profiler = sea_core::SpanProfiler::with_capacity(4096, 512);
    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        let mut solve_allocations = |iterations: usize| -> usize {
            let mut opts = SeaOptions::with_epsilon(1e-8);
            opts.epsilon = -1.0; // unattainable: always run to the cap
            opts.max_iterations = iterations;
            opts.kernel = kernel;
            profiler.reset();
            let before = allocations();
            let sol = sea_core::solve_diagonal_observed(&p, &opts, &mut profiler).unwrap();
            let after = allocations();
            assert_eq!(sol.stats.iterations, iterations, "cap must bind");
            after - before
        };
        solve_allocations(4); // warm-up
        let base = solve_allocations(8);
        let doubled = solve_allocations(16);
        assert_eq!(
            doubled, base,
            "{kernel}: solve iterations allocated with span profiling on"
        );
        assert!(
            !profiler.spans().is_empty(),
            "{kernel}: profiler recorded no spans — audit is vacuous"
        );
    }
}

/// The SIMD dispatch layer honours the same contract: after one warm-up
/// sizing pass, the vectorized kernels (f64 and f32 mixed-precision
/// variants alike) and a SIMD-enabled solve loop allocate nothing.
#[test]
fn simd_kernels_do_not_allocate_in_steady_state() {
    use sea_core::kernel_simd::{
        exact_equilibration_boxed_f32, exact_equilibration_boxed_simd, exact_equilibration_f32,
        exact_equilibration_simd, Precision, SimdMode,
    };

    let level = SimdMode::Auto.resolve().expect("auto always resolves");
    let n = 512;
    let q: Vec<f64> = (0..n)
        .map(|j| ((j * 37 % 101) as f64) / 10.0 - 2.0)
        .collect();
    let gamma: Vec<f64> = (0..n)
        .map(|j| 0.05 + ((j * 13 % 89) as f64) / 20.0)
        .collect();
    let shift: Vec<f64> = (0..n).map(|j| ((j * 7 % 61) as f64) / 30.0 - 1.0).collect();
    let lo: Vec<f64> = (0..n).map(|j| ((j * 3 % 17) as f64) / 10.0).collect();
    let hi: Vec<f64> = lo.iter().map(|&l| l + 3.0).collect();
    let slo: f64 = lo.iter().sum();
    let shi: f64 = hi.iter().sum();
    let mut x = vec![0.0; n];
    let mut scratch = EquilibrationScratch::new();

    // Warm-up: size every scratch path (f64 SIMD, boxed, f32 replicas).
    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        exact_equilibration_simd(
            level,
            kernel,
            &q,
            &gamma,
            &shift,
            TotalMode::Fixed { total: 300.0 },
            &mut x,
            &mut scratch,
        )
        .unwrap();
        exact_equilibration_boxed_simd(
            level,
            kernel,
            &q,
            &gamma,
            &shift,
            &lo,
            &hi,
            TotalMode::Fixed {
                total: 0.5 * (slo + shi),
            },
            &mut x,
            &mut scratch,
        )
        .unwrap();
    }
    exact_equilibration_f32(
        level,
        &q,
        &gamma,
        &shift,
        TotalMode::Fixed { total: 300.0 },
        &mut x,
        &mut scratch,
    )
    .unwrap();
    exact_equilibration_boxed_f32(
        level,
        &q,
        &gamma,
        &shift,
        &lo,
        &hi,
        TotalMode::Fixed {
            total: 0.5 * (slo + shi),
        },
        &mut x,
        &mut scratch,
    )
    .unwrap();

    for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
        let before = allocations();
        for round in 0..200 {
            let total = 100.0 + (round as f64) * 2.0;
            exact_equilibration_simd(
                level,
                kernel,
                &q,
                &gamma,
                &shift,
                TotalMode::Fixed { total },
                &mut x,
                &mut scratch,
            )
            .unwrap();
            let boxed_t = slo + (shi - slo) * ((round as f64) + 0.5) / 200.0;
            exact_equilibration_boxed_simd(
                level,
                kernel,
                &q,
                &gamma,
                &shift,
                &lo,
                &hi,
                TotalMode::Fixed { total: boxed_t },
                &mut x,
                &mut scratch,
            )
            .unwrap();
            exact_equilibration_f32(
                level,
                &q,
                &gamma,
                &shift,
                TotalMode::Fixed { total },
                &mut x,
                &mut scratch,
            )
            .unwrap();
            exact_equilibration_boxed_f32(
                level,
                &q,
                &gamma,
                &shift,
                &lo,
                &hi,
                TotalMode::Fixed { total: boxed_t },
                &mut x,
                &mut scratch,
            )
            .unwrap();
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{kernel}: SIMD kernel allocated in steady state"
        );
    }

    // ---- SIMD-enabled whole-solve differential audit. ----
    let m = 12;
    let data: Vec<f64> = (0..m * m).map(|k| 0.5 + ((k * 29 % 97) as f64)).collect();
    let x0 = DenseMatrix::from_vec(m, m, data).unwrap();
    let gamma =
        DenseMatrix::from_vec(m, m, x0.as_slice().iter().map(|&v| 1.0 / v).collect()).unwrap();
    let s0: Vec<f64> = x0.row_sums().iter().map(|v| 2.0 * v).collect();
    let d0: Vec<f64> = x0.col_sums().iter().map(|v| 2.0 * v).collect();
    let p = DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 }).unwrap();

    for precision in [Precision::F64, Precision::F32Mixed] {
        for kernel in [KernelKind::SortScan, KernelKind::Quickselect] {
            let solve_allocations = |iterations: usize| -> usize {
                let mut opts = SeaOptions::with_epsilon(1e-8);
                opts.epsilon = -1.0; // unattainable: always run to the cap
                opts.max_iterations = iterations;
                opts.kernel = kernel;
                opts.simd = SimdMode::Auto;
                opts.precision = precision;
                let before = allocations();
                let sol = solve_diagonal(&p, &opts).unwrap();
                let after = allocations();
                assert_eq!(sol.stats.iterations, iterations, "cap must bind");
                after - before
            };
            solve_allocations(4); // warm-up
            let base = solve_allocations(8);
            let doubled = solve_allocations(16);
            assert_eq!(
                doubled, base,
                "{kernel}/{precision:?}: SIMD solve iterations allocated"
            );
        }
    }
}
