//! Property-based robustness: adversarial-but-valid inputs never panic.
//!
//! Every driver (diagonal, bounded, general) is run under supervision on
//! randomly generated problems that stress the numerically nasty corners —
//! weight spreads of twelve orders of magnitude, totals close to zero or
//! huge, degenerate 1×n / m×1 shapes — across both kernels and both
//! parallel modes. Instances come from the shared seeded generator in
//! `common/generator.rs` (also used by the `sea-batch` suites), so a
//! failing case is reproducible anywhere from its printed seed. The
//! contract under test: the solve returns `Ok` with a finite iterate or a
//! typed [`SeaError`](sea_core::SeaError); a panic in any worker or driver
//! fails the property outright (the harness treats panics as failures).

#[path = "common/generator.rs"]
mod generator;

use proptest::prelude::*;
use sea_core::{
    solve_bounded_supervised, solve_diagonal_supervised, solve_general_supervised,
    GeneralSeaOptions, KernelKind, NullObserver, Parallelism, SeaOptions, SupervisorOptions,
};

fn kernel_of(k: u8) -> KernelKind {
    if k == 0 {
        KernelKind::SortScan
    } else {
        KernelKind::Quickselect
    }
}

fn par_of(p: u8) -> Parallelism {
    if p == 0 {
        Parallelism::Serial
    } else {
        Parallelism::RayonThreads(2)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn diagonal_driver_never_panics(
        seed in 0u64..1 << 48,
        m in 1usize..5,
        n in 1usize..5,
        scale_sel in 0u8..3,
        k in 0u8..2,
        par in 0u8..2,
    ) {
        let scale = generator::scale_of(scale_sel);
        let p = match generator::try_fixed_diagonal(seed, m, n, 12, scale) {
            Ok(p) => p,
            // A typed construction error is an acceptable outcome.
            Err(_) => return Ok(()),
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 60;
        o.kernel = kernel_of(k);
        o.parallelism = par_of(par);
        let sup = SupervisorOptions::default();
        // Err(_) is a typed SeaError by construction — also acceptable.
        if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
            prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
            prop_assert!(sol.solution.lambda.iter().all(|v| v.is_finite()));
            prop_assert!(sol.solution.mu.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn bounded_driver_never_panics(
        seed in 0u64..1 << 48,
        m in 1usize..5,
        n in 1usize..5,
        scale_sel in 0u8..3,
        k in 0u8..2,
    ) {
        let scale = generator::scale_of(scale_sel);
        // Bounds cover the grand total, so the instance is usually
        // feasible; when it is not, the typed error is acceptable.
        let p = match generator::try_bounded(seed, m, n, 12, scale) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let sup = SupervisorOptions::default();
        if let Ok(sol) =
            solve_bounded_supervised(&p, 1e-8, 60, kernel_of(k), &sup, &mut NullObserver)
        {
            prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn degenerate_shapes_never_panic(
        seed in 0u64..1 << 48,
        len in 1usize..6,
        k in 0u8..2,
        par in 0u8..2,
    ) {
        // 1×n and m×1: one side of the equilibration degenerates to
        // singleton subproblems carrying the whole grand total.
        for p in [
            generator::degenerate_row(seed, len),
            generator::degenerate_col(seed, len),
        ]
        .into_iter()
        .flatten()
        {
            let mut o = SeaOptions::with_epsilon(1e-8);
            o.max_iterations = 60;
            o.kernel = kernel_of(k);
            o.parallelism = par_of(par);
            let sup = SupervisorOptions::default();
            if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
                prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn drifting_prior_sequences_never_panic(
        seed in 0u64..1 << 48,
        k in 0u8..2,
    ) {
        // The batch warm-start workload: every epoch of a drifting family
        // must stay constructible and solvable.
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 500;
        o.kernel = kernel_of(k);
        let sup = SupervisorOptions::default();
        for p in generator::drifting_priors(seed, 3, 4, 4, 0.05) {
            let sol = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver);
            prop_assert!(sol.is_ok(), "drifting epoch failed: {:?}", sol.err());
        }
    }
}

proptest! {
    // The general driver nests inner diagonal solves inside an outer
    // projection loop, so each case is costlier: fewer cases, smaller dims.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn general_driver_never_panics(
        seed in 0u64..1 << 48,
        m in 1usize..4,
        n in 1usize..4,
        k in 0u8..2,
        par in 0u8..2,
    ) {
        let p = match generator::try_general(seed, m, n, 6) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mut o = GeneralSeaOptions::with_epsilon(1e-6);
        o.max_outer = 5;
        o.inner.max_iterations = 200;
        o.inner.kernel = kernel_of(k);
        o.inner.parallelism = par_of(par);
        let sup = SupervisorOptions::default();
        if let Ok(sol) = solve_general_supervised(&p, &o, &sup, &mut NullObserver) {
            prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}

/// The near-zero-total corner, pinned deterministically (not only reachable
/// through the property sampler): totals of O(1e-12) with 1e±6 weights.
#[test]
fn near_zero_totals_solve_or_fail_typed() {
    for seed in [1u64, 2, 3, 4, 5] {
        let Ok(p) = generator::near_zero_totals(seed, 3, 3) else {
            continue;
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 200;
        let sup = SupervisorOptions::default();
        if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
            assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}

/// The wide-weight corner pinned deterministically: 1e±12 spreads at O(1)
/// totals must never produce NaN/Inf iterates.
#[test]
fn wide_weight_spreads_stay_finite() {
    for seed in [10u64, 11, 12, 13, 14] {
        let Ok(p) = generator::wide_weights(seed, 4, 4) else {
            continue;
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 200;
        let sup = SupervisorOptions::default();
        if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
            assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
            assert!(sol.solution.lambda.iter().all(|v| v.is_finite()));
            assert!(sol.solution.mu.iter().all(|v| v.is_finite()));
        }
    }
}
