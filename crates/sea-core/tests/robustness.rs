//! Property-based robustness: adversarial-but-valid inputs never panic.
//!
//! Every driver (diagonal, bounded, general) is run under supervision on
//! randomly generated problems that stress the numerically nasty corners —
//! weight spreads of twelve orders of magnitude, totals close to zero or
//! huge, degenerate 1×n / m×1 shapes — across both kernels and both
//! parallel modes. The contract under test: the solve returns `Ok` with a
//! finite iterate or a typed [`SeaError`](sea_core::SeaError); a panic in
//! any worker or driver fails the property outright (the harness treats
//! panics as failures).

use proptest::prelude::*;
use sea_core::{
    solve_bounded_supervised, solve_diagonal_supervised, solve_general_supervised, BoundedProblem,
    DiagonalProblem, GeneralProblem, GeneralSeaOptions, GeneralTotalSpec, KernelKind, NullObserver,
    Parallelism, SeaOptions, SupervisorOptions, TotalSpec,
};
use sea_linalg::{DenseMatrix, SymMatrix};

fn kernel_of(k: u8) -> KernelKind {
    if k == 0 {
        KernelKind::SortScan
    } else {
        KernelKind::Quickselect
    }
}

fn par_of(p: u8) -> Parallelism {
    if p == 0 {
        Parallelism::Serial
    } else {
        Parallelism::RayonThreads(2)
    }
}

/// Grand-total scale: squeezes totals toward zero, leaves them O(1), or
/// blows them up to 1e6.
fn scale_of(s: u8) -> f64 {
    match s {
        0 => 1e-12,
        1 => 1.0,
        _ => 1e6,
    }
}

fn matrix(m: usize, n: usize, cells: &[f64]) -> DenseMatrix {
    let mut x = DenseMatrix::zeros(m, n).expect("valid dims");
    for i in 0..m {
        for j in 0..n {
            x.set(i, j, cells[i * n + j]);
        }
    }
    x
}

/// Consistent totals: row totals scaled by `scale`, column totals carved
/// from the same grand total via random positive fractions.
fn totals(s_raw: &[f64], d_frac: &[f64], scale: f64) -> (Vec<f64>, Vec<f64>) {
    let s0: Vec<f64> = s_raw.iter().map(|v| v * scale).collect();
    let total: f64 = s0.iter().sum();
    let fsum: f64 = d_frac.iter().sum();
    let d0: Vec<f64> = d_frac.iter().map(|f| total * f / fsum).collect();
    (s0, d0)
}

/// Weights 10^e for generated exponents: spreads up to 1e±12 in one row.
fn weights(exps: &[i32]) -> Vec<f64> {
    exps.iter().map(|e| 10f64.powi(*e)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn diagonal_driver_never_panics(
        m in 1usize..5,
        n in 1usize..5,
        cells in proptest::collection::vec(1e-6f64..10.0, 16..17),
        exps in proptest::collection::vec(-12i32..13, 16..17),
        s_raw in proptest::collection::vec(0.1f64..5.0, 4..5),
        d_frac in proptest::collection::vec(0.05f64..1.0, 4..5),
        scale_sel in 0u8..3,
        k in 0u8..2,
        par in 0u8..2,
    ) {
        let x0 = matrix(m, n, &cells[..m * n]);
        let gamma = matrix(m, n, &weights(&exps[..m * n]));
        let (s0, d0) = totals(&s_raw[..m], &d_frac[..n], scale_of(scale_sel));
        let p = match DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 }) {
            Ok(p) => p,
            // A typed construction error is an acceptable outcome.
            Err(_) => return Ok(()),
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 60;
        o.kernel = kernel_of(k);
        o.parallelism = par_of(par);
        let sup = SupervisorOptions::default();
        // Err(_) is a typed SeaError by construction — also acceptable.
        if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
            prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
            prop_assert!(sol.solution.lambda.iter().all(|v| v.is_finite()));
            prop_assert!(sol.solution.mu.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn bounded_driver_never_panics(
        m in 1usize..5,
        n in 1usize..5,
        cells in proptest::collection::vec(1e-6f64..10.0, 16..17),
        exps in proptest::collection::vec(-12i32..13, 16..17),
        s_raw in proptest::collection::vec(0.1f64..5.0, 4..5),
        d_frac in proptest::collection::vec(0.05f64..1.0, 4..5),
        scale_sel in 0u8..3,
        k in 0u8..2,
    ) {
        let x0 = matrix(m, n, &cells[..m * n]);
        let gamma = matrix(m, n, &weights(&exps[..m * n]));
        let (s0, d0) = totals(&s_raw[..m], &d_frac[..n], scale_of(scale_sel));
        let grand: f64 = s0.iter().sum();
        let lo = matrix(m, n, &vec![0.0; m * n]);
        // Each row/column interval sum covers its total, so the instance is
        // usually feasible; when it is not, the typed error is acceptable.
        let hi = matrix(m, n, &vec![grand.max(1e-300); m * n]);
        let p = match BoundedProblem::new(x0, gamma, lo, hi, s0, d0) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let sup = SupervisorOptions::default();
        if let Ok(sol) =
            solve_bounded_supervised(&p, 1e-8, 60, kernel_of(k), &sup, &mut NullObserver)
        {
            prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}

proptest! {
    // The general driver nests inner diagonal solves inside an outer
    // projection loop, so each case is costlier: fewer cases, smaller dims.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn general_driver_never_panics(
        m in 1usize..4,
        n in 1usize..4,
        cells in proptest::collection::vec(1e-3f64..10.0, 9..10),
        diag_exps in proptest::collection::vec(-6i32..7, 9..10),
        s_raw in proptest::collection::vec(0.1f64..5.0, 3..4),
        d_frac in proptest::collection::vec(0.05f64..1.0, 3..4),
        k in 0u8..2,
        par in 0u8..2,
    ) {
        let x0 = matrix(m, n, &cells[..m * n]);
        let order = m * n;
        // Strictly diagonally dominant symmetric G with a wide diagonal
        // spread: SPD by Gershgorin, adversarially conditioned.
        let diags = weights(&diag_exps[..order]);
        let min_diag = diags.iter().cloned().fold(f64::INFINITY, f64::min);
        let coupling = -min_diag / (2.0 * order as f64);
        let mut g = DenseMatrix::zeros(order, order).expect("valid dims");
        for (i, &di) in diags.iter().enumerate() {
            for j in 0..order {
                g.set(i, j, if i == j { di } else { coupling });
            }
        }
        let gm = match SymMatrix::from_dense(g, 1e-12) {
            Ok(gm) => gm,
            Err(_) => return Ok(()),
        };
        let (s0, d0) = totals(&s_raw[..m], &d_frac[..n], 1.0);
        let p = match GeneralProblem::new(x0, gm, GeneralTotalSpec::Fixed { s0, d0 }) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mut o = GeneralSeaOptions::with_epsilon(1e-6);
        o.max_outer = 5;
        o.inner.max_iterations = 200;
        o.inner.kernel = kernel_of(k);
        o.inner.parallelism = par_of(par);
        let sup = SupervisorOptions::default();
        if let Ok(sol) = solve_general_supervised(&p, &o, &sup, &mut NullObserver) {
            prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}
