//! Property-based robustness: adversarial-but-valid inputs never panic.
//!
//! Every driver (diagonal, bounded, general) is run under supervision on
//! randomly generated problems that stress the numerically nasty corners —
//! weight spreads of twelve orders of magnitude, totals close to zero or
//! huge, degenerate 1×n / m×1 shapes — across both kernels and both
//! parallel modes. Instances come from the shared seeded generator in
//! `common/generator.rs` (also used by the `sea-batch` suites), so a
//! failing case is reproducible anywhere from its printed seed. The
//! contract under test: the solve returns `Ok` with a finite iterate or a
//! typed [`SeaError`](sea_core::SeaError); a panic in any worker or driver
//! fails the property outright (the harness treats panics as failures).

#[path = "common/generator.rs"]
mod generator;

use proptest::prelude::*;
use sea_core::{
    solve_bounded_supervised, solve_diagonal_supervised, solve_general_supervised,
    GeneralSeaOptions, KernelKind, NullObserver, Parallelism, SeaOptions, SupervisorOptions,
};

fn kernel_of(k: u8) -> KernelKind {
    if k == 0 {
        KernelKind::SortScan
    } else {
        KernelKind::Quickselect
    }
}

fn par_of(p: u8) -> Parallelism {
    if p == 0 {
        Parallelism::Serial
    } else {
        Parallelism::RayonThreads(2)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn diagonal_driver_never_panics(
        seed in 0u64..1 << 48,
        m in 1usize..5,
        n in 1usize..5,
        scale_sel in 0u8..3,
        k in 0u8..2,
        par in 0u8..2,
    ) {
        let scale = generator::scale_of(scale_sel);
        let p = match generator::try_fixed_diagonal(seed, m, n, 12, scale) {
            Ok(p) => p,
            // A typed construction error is an acceptable outcome.
            Err(_) => return Ok(()),
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 60;
        o.kernel = kernel_of(k);
        o.parallelism = par_of(par);
        let sup = SupervisorOptions::default();
        // Err(_) is a typed SeaError by construction — also acceptable.
        if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
            prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
            prop_assert!(sol.solution.lambda.iter().all(|v| v.is_finite()));
            prop_assert!(sol.solution.mu.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn bounded_driver_never_panics(
        seed in 0u64..1 << 48,
        m in 1usize..5,
        n in 1usize..5,
        scale_sel in 0u8..3,
        k in 0u8..2,
    ) {
        let scale = generator::scale_of(scale_sel);
        // Bounds cover the grand total, so the instance is usually
        // feasible; when it is not, the typed error is acceptable.
        let p = match generator::try_bounded(seed, m, n, 12, scale) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let sup = SupervisorOptions::default();
        if let Ok(sol) =
            solve_bounded_supervised(&p, 1e-8, 60, kernel_of(k), &sup, &mut NullObserver)
        {
            prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn degenerate_shapes_never_panic(
        seed in 0u64..1 << 48,
        len in 1usize..6,
        k in 0u8..2,
        par in 0u8..2,
    ) {
        // 1×n and m×1: one side of the equilibration degenerates to
        // singleton subproblems carrying the whole grand total.
        for p in [
            generator::degenerate_row(seed, len),
            generator::degenerate_col(seed, len),
        ]
        .into_iter()
        .flatten()
        {
            let mut o = SeaOptions::with_epsilon(1e-8);
            o.max_iterations = 60;
            o.kernel = kernel_of(k);
            o.parallelism = par_of(par);
            let sup = SupervisorOptions::default();
            if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
                prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn drifting_prior_sequences_never_panic(
        seed in 0u64..1 << 48,
        k in 0u8..2,
    ) {
        // The batch warm-start workload: every epoch of a drifting family
        // must stay constructible and solvable.
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 500;
        o.kernel = kernel_of(k);
        let sup = SupervisorOptions::default();
        for p in generator::drifting_priors(seed, 3, 4, 4, 0.05) {
            let sol = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver);
            prop_assert!(sol.is_ok(), "drifting epoch failed: {:?}", sol.err());
        }
    }
}

proptest! {
    // The general driver nests inner diagonal solves inside an outer
    // projection loop, so each case is costlier: fewer cases, smaller dims.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn general_driver_never_panics(
        seed in 0u64..1 << 48,
        m in 1usize..4,
        n in 1usize..4,
        k in 0u8..2,
        par in 0u8..2,
    ) {
        let p = match generator::try_general(seed, m, n, 6) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mut o = GeneralSeaOptions::with_epsilon(1e-6);
        o.max_outer = 5;
        o.inner.max_iterations = 200;
        o.inner.kernel = kernel_of(k);
        o.inner.parallelism = par_of(par);
        let sup = SupervisorOptions::default();
        if let Ok(sol) = solve_general_supervised(&p, &o, &sup, &mut NullObserver) {
            prop_assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}

/// The near-zero-total corner, pinned deterministically (not only reachable
/// through the property sampler): totals of O(1e-12) with 1e±6 weights.
#[test]
fn near_zero_totals_solve_or_fail_typed() {
    for seed in [1u64, 2, 3, 4, 5] {
        let Ok(p) = generator::near_zero_totals(seed, 3, 3) else {
            continue;
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 200;
        let sup = SupervisorOptions::default();
        if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
            assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}

/// The wide-weight corner pinned deterministically: 1e±12 spreads at O(1)
/// totals must never produce NaN/Inf iterates.
#[test]
fn wide_weight_spreads_stay_finite() {
    for seed in [10u64, 11, 12, 13, 14] {
        let Ok(p) = generator::wide_weights(seed, 4, 4) else {
            continue;
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 200;
        let sup = SupervisorOptions::default();
        if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
            assert!(sol.solution.x.as_slice().iter().all(|v| v.is_finite()));
            assert!(sol.solution.lambda.iter().all(|v| v.is_finite()));
            assert!(sol.solution.mu.iter().all(|v| v.is_finite()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse (CSR) instances from every seeded family solve under
    /// supervision without panicking, on both kernels and both parallel
    /// modes; solutions are finite on the stored support.
    #[test]
    fn sparse_driver_never_panics(
        seed in 0u64..1 << 48,
        fam in 0u8..3,
        k in 0u8..2,
        par in 0u8..2,
    ) {
        use sea_core::Storage;
        let p = match fam {
            0 => generator::sparse_banded(seed, 6, 7, 2),
            1 => generator::sparse_block_diagonal(seed, 6, 6, 2),
            _ => generator::sparse_power_law(seed, 6, 6, 0.3),
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 60;
        o.kernel = kernel_of(k);
        o.parallelism = par_of(par);
        let sup = SupervisorOptions::default();
        if let Ok(sol) = solve_diagonal_supervised(&p, &o, &sup, &mut NullObserver) {
            prop_assert!(sol.solution.x.values().iter().all(|v| v.is_finite()));
            prop_assert!(sol.solution.lambda.iter().all(|v| v.is_finite()));
            prop_assert!(sol.solution.mu.iter().all(|v| v.is_finite()));
        }
    }

    /// A sparse row or column with zero support never panics: it either
    /// fails construction with a typed error, or — when its total demands
    /// mass it cannot carry — the solve reports
    /// [`SeaError::InfeasibleSubproblem`](sea_core::SeaError) for exactly
    /// that row or column.
    #[test]
    fn zero_support_rows_and_columns_return_typed_errors(
        seed in 0u64..1 << 48,
        empty_row in 0usize..4,
        k in 0u8..2,
    ) {
        use sea_core::{DiagonalProblem, SeaError, TotalSpec, ZeroPolicy};
        use sea_linalg::CsrMatrix;

        use rand::Rng;
        let mut r = generator::rng(seed);
        let (m, n) = (4usize, 5usize);
        let mut trips = Vec::new();
        for i in 0..m {
            if i == empty_row {
                continue;
            }
            for j in 0..n {
                trips.push((i, j, r.random_range(0.5..10.0)));
            }
        }
        let x0 = CsrMatrix::from_triplets(m, n, &trips).expect("valid triplets");
        let gamma = x0.with_values(vec![1.0; trips.len()]).expect("same pattern");
        let mut s0: Vec<f64> = vec![0.0; m];
        let mut d0: Vec<f64> = vec![0.0; n];
        {
            use sea_core::Storage;
            x0.row_sums_into(&mut s0);
            x0.col_sums_into(&mut d0);
        }
        // Demand mass from the empty row; rebalance a live column so the
        // grand totals still agree and construction passes.
        s0[empty_row] = 1.0;
        d0[0] += 1.0;
        let p = match DiagonalProblem::with_zero_policy(
            x0,
            gamma,
            TotalSpec::Fixed { s0, d0 },
            ZeroPolicy::Structural,
        ) {
            Ok(p) => p,
            Err(_) => return Ok(()), // typed construction error: acceptable
        };
        let mut o = SeaOptions::with_epsilon(1e-8);
        o.max_iterations = 60;
        o.kernel = kernel_of(k);
        match sea_core::solve_diagonal(&p, &o) {
            Err(SeaError::InfeasibleSubproblem { side, index }) => {
                prop_assert_eq!(side, "row");
                prop_assert_eq!(index, empty_row);
            }
            Err(_) => {} // any other typed error is still a non-panic
            Ok(sol) => {
                // If the solver returns at the cap it must not claim the
                // impossible balance converged.
                prop_assert!(!sol.stats.converged);
            }
        }
    }

    /// A fully-pinned sparse row (`lo = hi` on every stored entry) never
    /// panics: consistent totals solve, inconsistent totals are rejected
    /// with a typed error at validation.
    #[test]
    fn fully_pinned_sparse_rows_never_panic(
        seed in 0u64..1 << 48,
        pinned_row in 0usize..5,
        consistent_sel in 0u8..2,
        k in 0u8..2,
    ) {
        use sea_core::{BoundedProblem, Storage};

        let consistent = consistent_sel == 1;
        let sp = generator::sparse_bounded(seed, 5, 6, 2);
        let x0 = sp.x0().clone();
        let mut lo_vals = sp.lo().values().to_vec();
        let mut hi_vals = sp.hi().values().to_vec();
        let range = x0.row_range(pinned_row);
        let (start, end) = (range.start, range.end);
        for t in start..end {
            lo_vals[t] = x0.values()[t];
            hi_vals[t] = x0.values()[t];
        }
        let lo = x0.with_values(lo_vals).expect("same pattern");
        let hi = x0.with_values(hi_vals).expect("same pattern");
        let mut s0 = sp.s0().to_vec();
        let mut d0 = sp.d0().to_vec();
        if consistent {
            // The pinned row's total must equal the pinned mass exactly;
            // push the difference onto a column so grand totals agree.
            let pinned: f64 = x0.values()[start..end].iter().sum();
            let delta = pinned - s0[pinned_row];
            s0[pinned_row] = pinned;
            d0[0] += delta;
        }
        match BoundedProblem::new(x0, sp.gamma().clone(), lo, hi, s0, d0) {
            Err(_) => {} // typed validation error: acceptable
            Ok(p) => {
                if let Ok(sol) =
                    sea_core::solve_bounded_with(&p, 1e-8, 60, kernel_of(k))
                {
                    prop_assert!(sol.x.values().iter().all(|v| v.is_finite()));
                }
            }
        }
    }
}
