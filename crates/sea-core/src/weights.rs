//! Weight schemes for the quadratic deviation objective.
//!
//! Section 2 of the paper emphasizes the modelling flexibility of the
//! weights: unit weights give a constrained least-squares problem; weights
//! `γᵢⱼ = 1/x⁰ᵢⱼ`, `αᵢ = 1/s⁰ᵢ`, `βⱼ = 1/d⁰ⱼ` give the classical chi-square
//! objective (the choice used for the paper's Table 1 experiments); the
//! inverse-square-root variant and fully custom (e.g. inverse
//! variance–covariance based) weights are also supported.

use crate::error::SeaError;
use sea_linalg::DenseMatrix;

/// Named weighting schemes for diagonal constrained matrix problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScheme {
    /// All weights 1 — constrained least squares (Friedlander 1961 used
    /// `G = I`).
    LeastSquares,
    /// `w = 1/v⁰` — the chi-square objective (Deming–Stephan 1940). Zero
    /// priors receive the weight `1/floor` with the scheme's positive floor
    /// (see [`WeightScheme::entry_weights_with_floor`]).
    ChiSquare,
    /// `w = 1/√v⁰` — the mixed scheme mentioned in §2.
    InverseSqrt,
}

impl WeightScheme {
    /// Default floor substituted for zero/tiny priors in the reciprocal
    /// schemes so that weights stay finite and strictly positive.
    pub const DEFAULT_FLOOR: f64 = 1e-8;

    #[inline]
    fn weight_of(self, v0: f64, floor: f64) -> f64 {
        let v = v0.abs().max(floor);
        match self {
            WeightScheme::LeastSquares => 1.0,
            WeightScheme::ChiSquare => 1.0 / v,
            WeightScheme::InverseSqrt => 1.0 / v.sqrt(),
        }
    }

    /// Per-entry weight matrix `Γ = (γᵢⱼ)` from the prior `X⁰`, using
    /// [`Self::DEFAULT_FLOOR`].
    ///
    /// # Errors
    /// Returns [`SeaError::NonFinite`] if the prior contains NaN/∞.
    pub fn entry_weights(self, x0: &DenseMatrix) -> Result<DenseMatrix, SeaError> {
        self.entry_weights_with_floor(x0, Self::DEFAULT_FLOOR)
    }

    /// Per-entry weight matrix with an explicit positive floor for the
    /// reciprocal schemes.
    ///
    /// # Errors
    /// Returns [`SeaError::NonFinite`] if the prior contains NaN/∞ or the
    /// floor is not strictly positive.
    pub fn entry_weights_with_floor(
        self,
        x0: &DenseMatrix,
        floor: f64,
    ) -> Result<DenseMatrix, SeaError> {
        if !(floor > 0.0) || !floor.is_finite() {
            return Err(SeaError::NonFinite {
                context: "weight floor",
            });
        }
        if !sea_linalg::vector::all_finite(x0.as_slice()) {
            return Err(SeaError::NonFinite {
                context: "prior X0",
            });
        }
        let data: Vec<f64> = x0
            .as_slice()
            .iter()
            .map(|&v| self.weight_of(v, floor))
            .collect();
        Ok(DenseMatrix::from_vec(x0.rows(), x0.cols(), data)?)
    }

    /// Per-total weight vector (for `α` from `s⁰` or `β` from `d⁰`), using
    /// [`Self::DEFAULT_FLOOR`].
    ///
    /// # Errors
    /// Returns [`SeaError::NonFinite`] if the priors contain NaN/∞.
    pub fn total_weights(self, t0: &[f64]) -> Result<Vec<f64>, SeaError> {
        if !sea_linalg::vector::all_finite(t0) {
            return Err(SeaError::NonFinite {
                context: "prior totals",
            });
        }
        Ok(t0
            .iter()
            .map(|&v| self.weight_of(v, Self::DEFAULT_FLOOR))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prior() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![4.0, 0.0], vec![1.0, 16.0]]).unwrap()
    }

    #[test]
    fn least_squares_is_all_ones() {
        let w = WeightScheme::LeastSquares.entry_weights(&prior()).unwrap();
        assert!(w.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn chi_square_is_reciprocal_with_floor() {
        let w = WeightScheme::ChiSquare.entry_weights(&prior()).unwrap();
        assert_eq!(w.get(0, 0), 0.25);
        assert_eq!(w.get(1, 0), 1.0);
        // Zero prior hits the floor instead of dividing by zero.
        assert_eq!(w.get(0, 1), 1.0 / WeightScheme::DEFAULT_FLOOR);
        assert!(sea_linalg::vector::all_positive(w.as_slice()));
    }

    #[test]
    fn inverse_sqrt_scheme() {
        let w = WeightScheme::InverseSqrt.entry_weights(&prior()).unwrap();
        assert_eq!(w.get(1, 1), 0.25);
        assert_eq!(w.get(0, 0), 0.5);
    }

    #[test]
    fn total_weights_match_entry_logic() {
        let a = WeightScheme::ChiSquare.total_weights(&[2.0, 8.0]).unwrap();
        assert_eq!(a, vec![0.5, 0.125]);
    }

    #[test]
    fn rejects_non_finite_and_bad_floor() {
        let mut x0 = prior();
        x0.set(0, 0, f64::NAN);
        assert!(WeightScheme::ChiSquare.entry_weights(&x0).is_err());
        assert!(WeightScheme::ChiSquare
            .entry_weights_with_floor(&prior(), 0.0)
            .is_err());
        assert!(WeightScheme::ChiSquare
            .total_weights(&[f64::INFINITY])
            .is_err());
    }
}
