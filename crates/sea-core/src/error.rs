//! Error type for problem validation and solver failures.

use sea_linalg::LinalgError;
use std::fmt;

/// Errors raised by problem constructors and the SEA solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SeaError {
    /// A vector or matrix had the wrong shape for the problem.
    Shape {
        /// What was being validated.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// A weight that must be strictly positive was not.
    NonPositiveWeight {
        /// Which weight family (`gamma`, `alpha`, `beta`, diagonal of G/A/B).
        which: &'static str,
        /// Flat index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Fixed row and column totals must carry the same grand total
    /// (`Σᵢ s⁰ᵢ = Σⱼ d⁰ⱼ`), else the transportation polytope is empty.
    InconsistentTotals {
        /// Sum of the row totals.
        row_total: f64,
        /// Sum of the column totals.
        col_total: f64,
    },
    /// A fixed total was negative (entries are constrained nonnegative, so
    /// no nonnegative matrix can produce a negative margin).
    NegativeTotal {
        /// `"row"` or `"column"`.
        side: &'static str,
        /// Index of the offending total.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Input data contained NaN or infinity.
    NonFinite {
        /// What was being validated.
        context: &'static str,
    },
    /// The SAM (balanced) problem requires a square prior matrix.
    NotSquareSam {
        /// Row count of the prior.
        rows: usize,
        /// Column count of the prior.
        cols: usize,
    },
    /// A subproblem was infeasible, e.g. a structural all-zero row with a
    /// strictly positive fixed total.
    InfeasibleSubproblem {
        /// `"row"` or `"column"`.
        side: &'static str,
        /// Index of the infeasible subproblem.
        index: usize,
    },
    /// The solver produced a non-finite iterate (numerical breakdown).
    NumericalBreakdown {
        /// Iteration at which breakdown was detected.
        iteration: usize,
    },
    /// An underlying linear-algebra error.
    Linalg(LinalgError),
    /// Box-constrained problems require `lower ≤ upper` and bounds
    /// compatible with the totals.
    InconsistentBounds {
        /// Flat index of the offending entry, if entry-level.
        index: usize,
        /// The offending lower bound.
        lower: f64,
        /// The offending upper bound.
        upper: f64,
    },
    /// Two sparse matrices that must share a support pattern (e.g. the
    /// prior `X⁰` and its weight table `Γ`) did not.
    PatternMismatch {
        /// What was being validated.
        context: &'static str,
    },
    /// SIMD execution was forced (`SimdMode::Force`) but the running CPU
    /// does not support the required instruction set (AVX2).
    SimdUnsupported,
    /// A parallel equilibration worker panicked; the panic was contained
    /// by the supervisor instead of aborting the process.
    WorkerPanic {
        /// `"row"` or `"column"`.
        side: &'static str,
        /// Index of the subproblem whose worker panicked.
        index: usize,
        /// The panic payload's message, when it was a string.
        message: String,
    },
}

impl fmt::Display for SeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeaError::Shape {
                context,
                expected,
                actual,
            } => write!(f, "shape error in {context}: expected {expected}, got {actual}"),
            SeaError::NonPositiveWeight { which, index, value } => write!(
                f,
                "weight {which}[{index}] = {value} must be strictly positive"
            ),
            SeaError::InconsistentTotals {
                row_total,
                col_total,
            } => write!(
                f,
                "fixed totals are inconsistent: sum of row totals {row_total} != sum of column totals {col_total}"
            ),
            SeaError::NegativeTotal { side, index, value } => {
                write!(f, "{side} total [{index}] = {value} is negative")
            }
            SeaError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            SeaError::NotSquareSam { rows, cols } => write!(
                f,
                "SAM (balanced) problems require a square prior, got {rows}x{cols}"
            ),
            SeaError::InfeasibleSubproblem { side, index } => write!(
                f,
                "{side} subproblem {index} is infeasible (no active entries but positive total)"
            ),
            SeaError::NumericalBreakdown { iteration } => {
                write!(f, "numerical breakdown at iteration {iteration}")
            }
            SeaError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            SeaError::InconsistentBounds {
                index,
                lower,
                upper,
            } => write!(
                f,
                "inconsistent bounds at entry {index}: lower {lower} > upper {upper}"
            ),
            SeaError::PatternMismatch { context } => {
                write!(f, "sparse pattern mismatch in {context}")
            }
            SeaError::SimdUnsupported => write!(
                f,
                "SIMD execution was forced but this CPU does not support AVX2 \
                 (use --simd auto for runtime dispatch with a portable fallback)"
            ),
            SeaError::WorkerPanic {
                side,
                index,
                message,
            } => write!(
                f,
                "{side} equilibration worker {index} panicked: {message}"
            ),
        }
    }
}

impl std::error::Error for SeaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeaError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SeaError {
    fn from(e: LinalgError) -> Self {
        SeaError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SeaError::InconsistentTotals {
            row_total: 10.0,
            col_total: 11.0,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("11"));

        let e = SeaError::NonPositiveWeight {
            which: "gamma",
            index: 3,
            value: 0.0,
        };
        assert!(e.to_string().contains("gamma[3]"));
    }

    #[test]
    fn inconsistent_bounds_reports_offending_values() {
        let e = SeaError::InconsistentBounds {
            index: 5,
            lower: 2.5,
            upper: 1.25,
        };
        let s = e.to_string();
        assert!(s.contains("entry 5"), "{s}");
        assert!(s.contains("2.5"), "{s}");
        assert!(s.contains("1.25"), "{s}");
    }

    #[test]
    fn worker_panic_reports_side_index_and_message() {
        let e = SeaError::WorkerPanic {
            side: "row",
            index: 7,
            message: "index out of bounds".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("row"), "{s}");
        assert!(s.contains('7'), "{s}");
        assert!(s.contains("index out of bounds"), "{s}");
    }

    #[test]
    fn linalg_conversion_preserves_source() {
        let le = LinalgError::Empty { context: "x" };
        let e: SeaError = le.clone().into();
        assert_eq!(e, SeaError::Linalg(le));
        assert!(std::error::Error::source(&e).is_some());
    }
}
