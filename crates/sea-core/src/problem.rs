//! Diagonal constrained matrix problem definitions (paper §2).
//!
//! A [`DiagonalProblem`] bundles the prior matrix `X⁰`, the strictly
//! positive per-entry weights `Γ = (γᵢⱼ)`, and a [`TotalSpec`] choosing
//! among the paper's three problem classes:
//!
//! * [`TotalSpec::Fixed`] — known totals (objective 13, constraints 11–12):
//!   the classical transportation-polytope problem of Deming–Stephan,
//!   Friedlander, Bachem–Korte.
//! * [`TotalSpec::Elastic`] — unknown totals estimated alongside the matrix
//!   (objective 5, constraints 2–4), the I/O-updating model of
//!   Harrigan–Buchanan and Nagurney (1989).
//! * [`TotalSpec::Balanced`] — the SAM model (objective 9, constraints 7–8):
//!   square, with each account's row total equal to its column total.
//!
//! Entries may be declared **structural zeros** via [`ZeroPolicy`]: a
//! structural zero stays exactly zero (excluded from equilibration), which
//! is how sparse I/O tables (16–58 % nonzero in the paper's datasets) are
//! handled.

use crate::error::SeaError;
use crate::storage::{RowView, Storage};
use sea_linalg::{vector, CsrMatrix, DenseMatrix};

/// Specification of the row/column totals — selects the problem class.
#[derive(Debug, Clone, PartialEq)]
pub enum TotalSpec {
    /// Known fixed totals `s⁰` (length m) and `d⁰` (length n); requires
    /// `Σ s⁰ = Σ d⁰`.
    Fixed {
        /// Row totals.
        s0: Vec<f64>,
        /// Column totals.
        d0: Vec<f64>,
    },
    /// Unknown totals with quadratic penalties `αᵢ(sᵢ−s⁰ᵢ)²`,
    /// `βⱼ(dⱼ−d⁰ⱼ)²`.
    Elastic {
        /// Strictly positive row-total weights (length m).
        alpha: Vec<f64>,
        /// Prior row totals (length m).
        s0: Vec<f64>,
        /// Strictly positive column-total weights (length n).
        beta: Vec<f64>,
        /// Prior column totals (length n).
        d0: Vec<f64>,
    },
    /// SAM balance: square problem, row total i = column total i = sᵢ,
    /// penalized by `αᵢ(sᵢ−s⁰ᵢ)²`.
    Balanced {
        /// Strictly positive account weights (length n).
        alpha: Vec<f64>,
        /// Prior account totals (length n).
        s0: Vec<f64>,
    },
}

/// How zero entries of the prior are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZeroPolicy {
    /// Zeros are ordinary free entries (may become positive in the
    /// estimate). This is Friedlander's treatment.
    #[default]
    Free,
    /// Zeros are structural: the estimate keeps them exactly zero and the
    /// equilibration subproblems skip them (the sparse-table treatment).
    Structural,
}

/// Precomputed support lists for [`ZeroPolicy::Structural`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Support {
    /// For each row, the column indices of nonzero prior entries.
    pub rows: Vec<Vec<u32>>,
    /// For each column, the row indices of nonzero prior entries.
    pub cols: Vec<Vec<u32>>,
}

/// Constraint violations of a candidate solution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Residuals {
    /// `maxᵢ |Σⱼ xᵢⱼ − sᵢ|`.
    pub row_inf: f64,
    /// `maxⱼ |Σᵢ xᵢⱼ − dⱼ|`.
    pub col_inf: f64,
    /// `maxᵢ |Σⱼ xᵢⱼ − sᵢ| / max(|sᵢ|, 1e-12)` — the paper's SAM stopping
    /// quantity (§3.1.2 Step 3).
    pub rel_row_inf: f64,
    /// Euclidean norm of all constraint violations, `‖∇ζ‖` by eq. 25–27.
    pub norm2: f64,
}

/// A diagonal quadratic constrained matrix problem, generic over the
/// storage backend (dense by default; CSR for sparse instances).
///
/// For sparse ([`CsrMatrix`]) storage the stored pattern **is** the
/// support: missing cells are structural zeros regardless of
/// [`ZeroPolicy`], and the prior and weight table must share one pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalProblem<S: Storage = DenseMatrix> {
    x0: S,
    gamma: S,
    totals: TotalSpec,
    zero_policy: ZeroPolicy,
    support: Option<Support>,
}

fn validate_positive(v: &[f64], which: &'static str) -> Result<(), SeaError> {
    for (i, &w) in v.iter().enumerate() {
        if !(w > 0.0) || !w.is_finite() {
            return Err(SeaError::NonPositiveWeight {
                which,
                index: i,
                value: w,
            });
        }
    }
    Ok(())
}

fn validate_len(v: &[f64], expected: usize, context: &'static str) -> Result<(), SeaError> {
    if v.len() != expected {
        return Err(SeaError::Shape {
            context,
            expected,
            actual: v.len(),
        });
    }
    Ok(())
}

impl<S: Storage> DiagonalProblem<S> {
    /// Relative tolerance for the `Σ s⁰ = Σ d⁰` consistency check.
    pub const TOTALS_TOL: f64 = 1e-9;

    /// Build and validate a problem with [`ZeroPolicy::Free`].
    ///
    /// # Errors
    /// See [`DiagonalProblem::with_zero_policy`].
    pub fn new(x0: S, gamma: S, totals: TotalSpec) -> Result<Self, SeaError> {
        Self::with_zero_policy(x0, gamma, totals, ZeroPolicy::Free)
    }

    /// Build and validate a problem with an explicit zero policy.
    ///
    /// # Errors
    /// * [`SeaError::Shape`] on any dimension mismatch.
    /// * [`SeaError::PatternMismatch`] when sparse `Γ` does not share the
    ///   prior's support pattern.
    /// * [`SeaError::NonFinite`] if `X⁰` contains NaN/∞ or negatives are
    ///   present (priors are nonnegative matrices).
    /// * [`SeaError::NonPositiveWeight`] for non-positive `γ`, `α`, `β`.
    /// * [`SeaError::InconsistentTotals`] / [`SeaError::NegativeTotal`] for
    ///   invalid fixed totals.
    /// * [`SeaError::NotSquareSam`] for a non-square balanced problem.
    pub fn with_zero_policy(
        x0: S,
        gamma: S,
        totals: TotalSpec,
        zero_policy: ZeroPolicy,
    ) -> Result<Self, SeaError> {
        if x0.values().iter().any(|&v| v < 0.0) {
            return Err(SeaError::NonFinite {
                context: "prior X0 (negative entry)",
            });
        }
        Self::with_signed_prior(x0, gamma, totals, zero_policy)
    }

    /// Like [`DiagonalProblem::with_zero_policy`] but allowing *negative*
    /// prior entries. User-facing constrained matrix problems have
    /// nonnegative priors, but the diagonalization step of the general
    /// solvers (eq. 79) encodes its linear term as a signed pseudo-prior
    /// `q = −c/G̃` which may dip below zero; the solution stays nonnegative
    /// regardless because the constraint set is unchanged.
    ///
    /// # Errors
    /// Same as [`DiagonalProblem::with_zero_policy`] minus the
    /// prior-nonnegativity check.
    pub fn with_signed_prior(
        x0: S,
        gamma: S,
        totals: TotalSpec,
        zero_policy: ZeroPolicy,
    ) -> Result<Self, SeaError> {
        let (m, n) = (x0.rows(), x0.cols());
        if gamma.rows() != m || gamma.cols() != n {
            return Err(SeaError::Shape {
                context: "gamma shape",
                expected: m * n,
                actual: gamma.rows() * gamma.cols(),
            });
        }
        if !x0.same_pattern(&gamma) {
            return Err(SeaError::PatternMismatch {
                context: "gamma support pattern",
            });
        }
        if !vector::all_finite(x0.values()) {
            return Err(SeaError::NonFinite {
                context: "prior X0",
            });
        }
        validate_positive(gamma.values(), "gamma")?;

        match &totals {
            TotalSpec::Fixed { s0, d0 } => {
                validate_len(s0, m, "fixed s0")?;
                validate_len(d0, n, "fixed d0")?;
                for (i, &v) in s0.iter().enumerate() {
                    if v < 0.0 {
                        return Err(SeaError::NegativeTotal {
                            side: "row",
                            index: i,
                            value: v,
                        });
                    }
                }
                for (j, &v) in d0.iter().enumerate() {
                    if v < 0.0 {
                        return Err(SeaError::NegativeTotal {
                            side: "column",
                            index: j,
                            value: v,
                        });
                    }
                }
                let rs: f64 = s0.iter().sum();
                let cs: f64 = d0.iter().sum();
                if (rs - cs).abs() > Self::TOTALS_TOL * rs.abs().max(cs.abs()).max(1.0) {
                    return Err(SeaError::InconsistentTotals {
                        row_total: rs,
                        col_total: cs,
                    });
                }
            }
            TotalSpec::Elastic {
                alpha,
                s0,
                beta,
                d0,
            } => {
                validate_len(alpha, m, "elastic alpha")?;
                validate_len(s0, m, "elastic s0")?;
                validate_len(beta, n, "elastic beta")?;
                validate_len(d0, n, "elastic d0")?;
                validate_positive(alpha, "alpha")?;
                validate_positive(beta, "beta")?;
            }
            TotalSpec::Balanced { alpha, s0 } => {
                if m != n {
                    return Err(SeaError::NotSquareSam { rows: m, cols: n });
                }
                validate_len(alpha, n, "balanced alpha")?;
                validate_len(s0, n, "balanced s0")?;
                validate_positive(alpha, "alpha")?;
            }
        }

        // Structural-zero support lists are a *dense* notion: sparse
        // backends already carry the support in their pattern, so an
        // indexed row view leaves `support` as `None` and the passes use
        // the pattern directly.
        let support = match zero_policy {
            ZeroPolicy::Free => None,
            ZeroPolicy::Structural => {
                let mut rows: Vec<Vec<u32>> = vec![Vec::new(); m];
                let mut cols: Vec<Vec<u32>> = vec![Vec::new(); n];
                let mut dense_rows = true;
                'scan: for i in 0..m {
                    match x0.row_view(i) {
                        RowView::Dense(row) => {
                            for (j, &v) in row.iter().enumerate() {
                                if v != 0.0 {
                                    rows[i].push(j as u32);
                                    cols[j].push(i as u32);
                                }
                            }
                        }
                        RowView::Indexed { .. } => {
                            dense_rows = false;
                            break 'scan;
                        }
                    }
                }
                dense_rows.then_some(Support { rows, cols })
            }
        };

        Ok(Self {
            x0,
            gamma,
            totals,
            zero_policy,
            support,
        })
    }

    /// Convenience: fixed-totals problem whose targets are the prior's own
    /// margins scaled by `row_growth` / `col_growth` — the construction the
    /// paper's I/O experiments use ("10 % growth factor" etc.). The scale
    /// factors must produce a consistent grand total, so a single scalar
    /// pair (g, g) always works.
    ///
    /// # Errors
    /// Propagates validation failures from [`DiagonalProblem::new`].
    pub fn fixed_from_growth(
        x0: S,
        gamma: S,
        row_growth: f64,
        col_growth: f64,
    ) -> Result<Self, SeaError> {
        let mut s0 = vec![0.0; x0.rows()];
        let mut d0 = vec![0.0; x0.cols()];
        x0.row_sums_into(&mut s0);
        x0.col_sums_into(&mut d0);
        for v in &mut s0 {
            *v *= row_growth;
        }
        for v in &mut d0 {
            *v *= col_growth;
        }
        // Rebalance the grand total onto the columns so the polytope is
        // nonempty even when the two growth factors differ.
        let rs: f64 = s0.iter().sum();
        let cs: f64 = d0.iter().sum();
        if cs > 0.0 {
            let f = rs / cs;
            for v in &mut d0 {
                *v *= f;
            }
        }
        Self::new(x0, gamma, TotalSpec::Fixed { s0, d0 })
    }

    /// Number of rows `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.x0.rows()
    }

    /// Number of columns `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.x0.cols()
    }

    /// The prior matrix `X⁰`.
    #[inline]
    pub fn x0(&self) -> &S {
        &self.x0
    }

    /// The per-entry weights `Γ`.
    #[inline]
    pub fn gamma(&self) -> &S {
        &self.gamma
    }

    /// The total specification.
    #[inline]
    pub fn totals(&self) -> &TotalSpec {
        &self.totals
    }

    /// The zero policy.
    #[inline]
    pub fn zero_policy(&self) -> ZeroPolicy {
        self.zero_policy
    }

    pub(crate) fn support(&self) -> Option<&Support> {
        self.support.as_ref()
    }

    /// Number of decision variables (`m·n` for a free dense problem, the
    /// support size under a structural zero policy or sparse storage) —
    /// the paper's "# of variables" column.
    pub fn variable_count(&self) -> usize {
        match &self.support {
            None => self.x0.stored(),
            Some(s) => s.rows.iter().map(Vec::len).sum(),
        }
    }

    /// Evaluate the primal objective (eq. 5 / 9 / 13) at `(x, s, d)`.
    ///
    /// For [`TotalSpec::Fixed`] the `s`/`d` arguments are ignored; for
    /// [`TotalSpec::Balanced`], `d` is ignored (totals are shared).
    /// `x` must share the problem's storage pattern (true for solver
    /// iterates by construction).
    pub fn objective(&self, x: &S, s: &[f64], d: &[f64]) -> f64 {
        debug_assert!(x.same_pattern(&self.x0));
        let mut obj = 0.0;
        for (xv, (x0v, gv)) in x
            .values()
            .iter()
            .zip(self.x0.values().iter().zip(self.gamma.values()))
        {
            let dev = xv - x0v;
            obj += gv * dev * dev;
        }
        match &self.totals {
            TotalSpec::Fixed { .. } => {}
            TotalSpec::Elastic {
                alpha,
                s0,
                beta,
                d0,
            } => {
                for i in 0..alpha.len() {
                    let dev = s[i] - s0[i];
                    obj += alpha[i] * dev * dev;
                }
                for j in 0..beta.len() {
                    let dev = d[j] - d0[j];
                    obj += beta[j] * dev * dev;
                }
            }
            TotalSpec::Balanced { alpha, s0 } => {
                for i in 0..alpha.len() {
                    let dev = s[i] - s0[i];
                    obj += alpha[i] * dev * dev;
                }
            }
        }
        obj
    }

    /// Constraint residuals of `(x, s, d)` against this problem's
    /// constraints. For fixed totals the targets are `s⁰`/`d⁰`; for elastic
    /// and balanced problems the targets are the supplied `s`/`d` (`s`
    /// doubles as the column target in the balanced case).
    pub fn residuals(&self, x: &S, s: &[f64], d: &[f64]) -> Residuals {
        let mut row_sums = vec![0.0; x.rows()];
        let mut col_sums = vec![0.0; x.cols()];
        x.row_sums_into(&mut row_sums);
        x.col_sums_into(&mut col_sums);
        let (s_target, d_target): (&[f64], &[f64]) = match &self.totals {
            TotalSpec::Fixed { s0, d0 } => (s0, d0),
            TotalSpec::Elastic { .. } => (s, d),
            TotalSpec::Balanced { .. } => (s, s),
        };
        let mut r = Residuals::default();
        let mut sq = 0.0;
        for i in 0..row_sums.len() {
            let v = (row_sums[i] - s_target[i]).abs();
            r.row_inf = r.row_inf.max(v);
            r.rel_row_inf = r.rel_row_inf.max(v / s_target[i].abs().max(1e-12));
            sq += v * v;
        }
        for j in 0..col_sums.len() {
            let v = (col_sums[j] - d_target[j]).abs();
            r.col_inf = r.col_inf.max(v);
            sq += v * v;
        }
        r.norm2 = sq.sqrt();
        r
    }

    /// Re-express this problem over dense storage (structural zeros in a
    /// sparse pattern become dense structural zeros under
    /// [`ZeroPolicy::Structural`], free zeros otherwise).
    ///
    /// # Errors
    /// Propagates allocation failures and re-validation errors. Note a
    /// sparse problem whose pattern holds stored zeros in `Γ`'s positions
    /// cannot round-trip under `ZeroPolicy::Free` — dense `Γ` must be
    /// positive everywhere — so this is primarily a debugging/interchange
    /// aid for full-pattern and structural problems.
    pub fn to_dense_problem(&self) -> Result<DiagonalProblem<DenseMatrix>, SeaError> {
        let x0 = self.x0.to_dense()?;
        let mut gamma = self.gamma.to_dense()?;
        // Structural cells have no weight in sparse storage; give them a
        // positive placeholder so dense validation accepts the table (the
        // structural policy keeps them out of the subproblems anyway).
        if gamma.as_slice().contains(&0.0) {
            gamma.map_inplace(|v| if v == 0.0 { 1.0 } else { v });
        }
        DiagonalProblem::with_signed_prior(x0, gamma, self.totals.clone(), self.zero_policy)
    }
}

impl DiagonalProblem<CsrMatrix> {
    /// Build the sparse image of a dense problem.
    ///
    /// The pattern follows the dense problem's zero policy so both describe
    /// the same feasible set: under [`ZeroPolicy::Free`] every dense cell is
    /// stored (zeros included — they are variables), under
    /// [`ZeroPolicy::Structural`] only the prior's nonzero cells are stored.
    /// `Γ` is gathered onto the prior's pattern, so the two always share it.
    ///
    /// # Errors
    /// Propagates construction failures from [`CsrMatrix`] and problem
    /// validation.
    pub fn from_dense_problem(p: &DiagonalProblem<DenseMatrix>) -> Result<Self, SeaError> {
        let x0 = match p.zero_policy() {
            ZeroPolicy::Free => CsrMatrix::from_dense_full(p.x0())?,
            ZeroPolicy::Structural => CsrMatrix::from_dense_pruned(p.x0())?,
        };
        let mut gvals = Vec::with_capacity(x0.stored());
        for i in 0..x0.rows() {
            let grow = p.gamma().row(i);
            gvals.extend(x0.row_cols(i).iter().map(|&j| grow[j as usize]));
        }
        let gamma = x0.with_values(gvals)?;
        Self::with_signed_prior(x0, gamma, p.totals().clone(), p.zero_policy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x0() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 0.0]]).unwrap()
    }

    fn ones() -> DenseMatrix {
        DenseMatrix::filled(2, 2, 1.0).unwrap()
    }

    #[test]
    fn builds_fixed_problem() {
        let p = DiagonalProblem::new(
            x0(),
            ones(),
            TotalSpec::Fixed {
                s0: vec![3.0, 4.0],
                d0: vec![5.0, 2.0],
            },
        )
        .unwrap();
        assert_eq!(p.m(), 2);
        assert_eq!(p.n(), 2);
        assert_eq!(p.variable_count(), 4);
    }

    #[test]
    fn rejects_inconsistent_fixed_totals() {
        let e = DiagonalProblem::new(
            x0(),
            ones(),
            TotalSpec::Fixed {
                s0: vec![3.0, 4.0],
                d0: vec![5.0, 3.0],
            },
        );
        assert!(matches!(e, Err(SeaError::InconsistentTotals { .. })));
    }

    #[test]
    fn rejects_negative_total_and_bad_weight() {
        let e = DiagonalProblem::new(
            x0(),
            ones(),
            TotalSpec::Fixed {
                s0: vec![-1.0, 8.0],
                d0: vec![5.0, 2.0],
            },
        );
        assert!(matches!(
            e,
            Err(SeaError::NegativeTotal { side: "row", .. })
        ));

        let mut g = ones();
        g.set(0, 1, 0.0);
        let e = DiagonalProblem::new(
            x0(),
            g,
            TotalSpec::Fixed {
                s0: vec![3.0, 4.0],
                d0: vec![5.0, 2.0],
            },
        );
        assert!(matches!(
            e,
            Err(SeaError::NonPositiveWeight {
                which: "gamma",
                index: 1,
                ..
            })
        ));
    }

    #[test]
    fn rejects_negative_prior_and_nan() {
        let mut bad = x0();
        bad.set(0, 0, -1.0);
        assert!(DiagonalProblem::new(
            bad,
            ones(),
            TotalSpec::Balanced {
                alpha: vec![1.0, 1.0],
                s0: vec![1.0, 1.0]
            }
        )
        .is_err());
    }

    #[test]
    fn balanced_requires_square() {
        let rect = DenseMatrix::zeros(2, 3).unwrap();
        let g = DenseMatrix::filled(2, 3, 1.0).unwrap();
        let e = DiagonalProblem::new(
            rect,
            g,
            TotalSpec::Balanced {
                alpha: vec![1.0; 2],
                s0: vec![1.0; 2],
            },
        );
        assert!(matches!(
            e,
            Err(SeaError::NotSquareSam { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn structural_support_lists() {
        let p = DiagonalProblem::with_zero_policy(
            x0(),
            ones(),
            TotalSpec::Elastic {
                alpha: vec![1.0; 2],
                s0: vec![3.0, 3.0],
                beta: vec![1.0; 2],
                d0: vec![4.0, 2.0],
            },
            ZeroPolicy::Structural,
        )
        .unwrap();
        assert_eq!(p.variable_count(), 3);
        let sup = p.support().unwrap();
        assert_eq!(sup.rows[1], vec![0]);
        assert_eq!(sup.cols[1], vec![0]);
    }

    #[test]
    fn objective_matches_hand_computation() {
        let p = DiagonalProblem::new(
            x0(),
            ones(),
            TotalSpec::Elastic {
                alpha: vec![2.0; 2],
                s0: vec![3.0, 3.0],
                beta: vec![1.0; 2],
                d0: vec![4.0, 2.0],
            },
        )
        .unwrap();
        let x = DenseMatrix::from_rows(&[vec![1.0, 3.0], vec![3.0, 1.0]]).unwrap();
        // Entry deviations: (0,1,0,1) → Σγ dev² = 2.
        // s = (4,4): Σα(s−s0)² = 2(1+1) = 4. d = (4,4): Σβ(d−d0)² = 0+4.
        let obj = p.objective(&x, &[4.0, 4.0], &[4.0, 4.0]);
        assert!((obj - 10.0).abs() < 1e-12);
    }

    #[test]
    fn residuals_report_violations() {
        let p = DiagonalProblem::new(
            x0(),
            ones(),
            TotalSpec::Fixed {
                s0: vec![3.0, 4.0],
                d0: vec![5.0, 2.0],
            },
        )
        .unwrap();
        let r = p.residuals(&x0(), &[], &[]);
        // Row sums (3,3) vs (3,4); col sums (4,2) vs (5,2).
        assert!((r.row_inf - 1.0).abs() < 1e-12);
        assert!((r.col_inf - 1.0).abs() < 1e-12);
        assert!((r.rel_row_inf - 0.25).abs() < 1e-12);
        assert!((r.norm2 - (2.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn growth_construction_is_consistent() {
        let p = DiagonalProblem::fixed_from_growth(x0(), ones(), 1.1, 1.3).unwrap();
        match p.totals() {
            TotalSpec::Fixed { s0, d0 } => {
                let rs: f64 = s0.iter().sum();
                let cs: f64 = d0.iter().sum();
                assert!((rs - cs).abs() < 1e-9);
                assert!((s0[0] - 3.0 * 1.1).abs() < 1e-12);
            }
            _ => panic!("expected fixed totals"),
        }
    }
}
