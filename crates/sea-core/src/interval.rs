//! Box/interval-constrained diagonal problems — the Harrigan–Buchanan
//! (1984) and Ohuchi–Kaji (1984) extensions noted in §2.
//!
//! The fixed-totals diagonal problem gains per-entry bounds
//! `loᵢⱼ ≤ xᵢⱼ ≤ hiᵢⱼ` (interval constraints on the estimates). The SEA
//! machinery carries over unchanged: each row/column subproblem becomes a
//! box-bounded continuous quadratic knapsack, still solvable exactly by a
//! breakpoint sweep ([`crate::knapsack::exact_equilibration_boxed`]).

use crate::error::SeaError;
use crate::kernel_simd::{
    exact_equilibration_boxed_f32, exact_equilibration_boxed_simd, Precision, SimdMode,
};
use crate::knapsack::{EquilibrationResult, EquilibrationScratch, KernelKind, TotalMode};
use crate::problem::Residuals;
use crate::storage::{RowView, Storage};
use crate::supervisor::{SolveControl, StopReason, SupervisedBoundedSolution, SupervisorOptions};
use sea_linalg::simd::{self, SimdLevel};
use sea_linalg::{vector, DenseMatrix};
use sea_observe::{
    Event, KernelCounters, NullObserver, Observer, PhaseLabel, SpanKind, TelemetrySample,
};
use std::time::{Duration, Instant};

/// A fixed-totals diagonal problem with entry bounds. Generic over
/// [`Storage`]: with a sparse backend, all four matrices share one support
/// pattern and entries outside it are pinned at zero (they contribute
/// nothing to either bound sum).
#[derive(Debug, Clone)]
pub struct BoundedProblem<S: Storage = DenseMatrix> {
    x0: S,
    gamma: S,
    lo: S,
    hi: S,
    s0: Vec<f64>,
    d0: Vec<f64>,
}

impl<S: Storage> BoundedProblem<S> {
    /// Build and validate.
    ///
    /// # Errors
    /// * [`SeaError::Shape`] for any dimension mismatch.
    /// * [`SeaError::InconsistentBounds`] if some `lo > hi` entrywise.
    /// * [`SeaError::InconsistentTotals`] if `Σ s⁰ ≠ Σ d⁰`.
    /// * [`SeaError::NonPositiveWeight`] for non-positive `γ`.
    /// * [`SeaError::InfeasibleSubproblem`] when a row/column total falls
    ///   outside its `[Σ lo, Σ hi]` range.
    pub fn new(
        x0: S,
        gamma: S,
        lo: S,
        hi: S,
        s0: Vec<f64>,
        d0: Vec<f64>,
    ) -> Result<Self, SeaError> {
        let (m, n) = (x0.rows(), x0.cols());
        for (mat, ctx) in [
            (&gamma, "bounded gamma shape"),
            (&lo, "bounded lo shape"),
            (&hi, "bounded hi shape"),
        ] {
            if mat.rows() != m || mat.cols() != n {
                return Err(SeaError::Shape {
                    context: ctx,
                    expected: m * n,
                    actual: mat.rows() * mat.cols(),
                });
            }
            if !x0.same_pattern(mat) {
                return Err(SeaError::PatternMismatch {
                    context: "bounded support pattern",
                });
            }
        }
        if s0.len() != m || d0.len() != n {
            return Err(SeaError::Shape {
                context: "bounded totals",
                expected: m + n,
                actual: s0.len() + d0.len(),
            });
        }
        // `index` is a storage index: a flat cell index for dense backends,
        // a position in the stored-value array for sparse ones.
        for (k, (&l, &h)) in lo.values().iter().zip(hi.values()).enumerate() {
            if l > h {
                return Err(SeaError::InconsistentBounds {
                    index: k,
                    lower: l,
                    upper: h,
                });
            }
        }
        for (k, &g) in gamma.values().iter().enumerate() {
            if !(g > 0.0) {
                return Err(SeaError::NonPositiveWeight {
                    which: "gamma",
                    index: k,
                    value: g,
                });
            }
        }
        let rs: f64 = s0.iter().sum();
        let cs: f64 = d0.iter().sum();
        if (rs - cs).abs() > 1e-9 * rs.abs().max(cs.abs()).max(1.0) {
            return Err(SeaError::InconsistentTotals {
                row_total: rs,
                col_total: cs,
            });
        }
        // Per-subproblem feasibility: s⁰ᵢ ∈ [Σⱼ lo, Σⱼ hi], likewise
        // columns. Off-support entries of a sparse backend are pinned at 0
        // and add nothing to either sum, so a fully-pinned (empty) sparse
        // row is feasible only for a zero total.
        let mut lo_sums = vec![0.0; m];
        let mut hi_sums = vec![0.0; m];
        lo.row_sums_into(&mut lo_sums);
        hi.row_sums_into(&mut hi_sums);
        for i in 0..m {
            if s0[i] < lo_sums[i] - 1e-9 || s0[i] > hi_sums[i] + 1e-9 {
                return Err(SeaError::InfeasibleSubproblem {
                    side: "row",
                    index: i,
                });
            }
        }
        let mut lo_csums = vec![0.0; n];
        let mut hi_csums = vec![0.0; n];
        lo.col_sums_into(&mut lo_csums);
        hi.col_sums_into(&mut hi_csums);
        for j in 0..n {
            if d0[j] < lo_csums[j] - 1e-9 || d0[j] > hi_csums[j] + 1e-9 {
                return Err(SeaError::InfeasibleSubproblem {
                    side: "column",
                    index: j,
                });
            }
        }
        Ok(Self {
            x0,
            gamma,
            lo,
            hi,
            s0,
            d0,
        })
    }

    /// Rows.
    pub fn m(&self) -> usize {
        self.x0.rows()
    }

    /// Columns.
    pub fn n(&self) -> usize {
        self.x0.cols()
    }

    /// The prior `X⁰`.
    pub fn x0(&self) -> &S {
        &self.x0
    }

    /// The weight matrix `Γ`.
    pub fn gamma(&self) -> &S {
        &self.gamma
    }

    /// Lower bounds.
    pub fn lo(&self) -> &S {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &S {
        &self.hi
    }

    /// Row totals `s⁰`.
    pub fn s0(&self) -> &[f64] {
        &self.s0
    }

    /// Column totals `d⁰`.
    pub fn d0(&self) -> &[f64] {
        &self.d0
    }

    /// Objective `Σ γᵢⱼ (xᵢⱼ − x⁰ᵢⱼ)²`.
    pub fn objective(&self, x: &S) -> f64 {
        debug_assert!(x.same_pattern(&self.x0));
        x.values()
            .iter()
            .zip(self.x0.values().iter().zip(self.gamma.values()))
            .map(|(x, (x0, g))| g * (x - x0) * (x - x0))
            .sum()
    }
}

/// Result of a bounded solve.
#[derive(Debug, Clone)]
pub struct BoundedSolution<S: Storage = DenseMatrix> {
    /// The estimate (same storage backend as the problem).
    pub x: S,
    /// Row multipliers.
    pub lambda: Vec<f64>,
    /// Column multipliers.
    pub mu: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the relative row-balance criterion fired.
    pub converged: bool,
    /// Final constraint residuals.
    pub residuals: Residuals,
    /// Objective value.
    pub objective: f64,
    /// Wall clock.
    pub elapsed: Duration,
}

/// Kernel configuration for the bounded driver: which λ-search kernel,
/// which SIMD policy, and which arithmetic precision. The default
/// (`SortScan`, `SimdMode::Off`, `Precision::F64`) is exactly the scalar
/// oracle the legacy entry points run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedOptions {
    /// Which equilibration kernel solves the row/column subproblems.
    pub kernel: KernelKind,
    /// SIMD policy, resolved once per solve against the running CPU.
    pub simd: SimdMode,
    /// Arithmetic precision of the iterates (same phase semantics as
    /// [`crate::SeaOptions::precision`]: `F32Mixed` polishes in f64 before
    /// convergence may be declared).
    pub precision: Precision,
}

impl Default for BoundedOptions {
    fn default() -> Self {
        Self {
            kernel: KernelKind::SortScan,
            simd: SimdMode::Off,
            precision: Precision::F64,
        }
    }
}

/// Solve a bounded problem by SEA with box-bounded exact equilibration.
///
/// # Errors
/// Propagates kernel failures; returns `converged = false` on hitting
/// `max_iterations`.
pub fn solve_bounded<S: Storage>(
    p: &BoundedProblem<S>,
    epsilon: f64,
    max_iterations: usize,
) -> Result<BoundedSolution<S>, SeaError> {
    solve_bounded_with(p, epsilon, max_iterations, KernelKind::SortScan)
}

/// [`solve_bounded`] with a full kernel configuration (kernel choice, SIMD
/// policy, and precision).
///
/// # Errors
/// Same contract as [`solve_bounded`], plus [`SeaError::SimdUnsupported`]
/// when `opts.simd` is [`SimdMode::Force`] on a CPU without AVX2.
pub fn solve_bounded_configured<S: Storage>(
    p: &BoundedProblem<S>,
    epsilon: f64,
    max_iterations: usize,
    opts: &BoundedOptions,
) -> Result<BoundedSolution<S>, SeaError> {
    solve_bounded_inner_warm(
        p,
        epsilon,
        max_iterations,
        *opts,
        None,
        &mut NullObserver,
        &mut SolveControl::passive(),
    )
}

/// [`solve_bounded_supervised_warm`] with a full kernel configuration.
///
/// # Errors
/// Same contract as [`solve_bounded_supervised_warm`], plus
/// [`SeaError::SimdUnsupported`] when SIMD is forced without AVX2 support.
pub fn solve_bounded_supervised_configured<S: Storage, O: Observer>(
    p: &BoundedProblem<S>,
    epsilon: f64,
    max_iterations: usize,
    opts: &BoundedOptions,
    initial_mu: Option<&[f64]>,
    sup: &SupervisorOptions,
    obs: &mut O,
) -> Result<SupervisedBoundedSolution<S>, SeaError> {
    let mut ctrl = SolveControl::active(sup);
    let solution = solve_bounded_inner_warm(
        p,
        epsilon,
        max_iterations,
        *opts,
        initial_mu,
        obs,
        &mut ctrl,
    )?;
    let stop = if solution.converged {
        StopReason::Converged
    } else {
        ctrl.stop().unwrap_or(StopReason::IterationCap)
    };
    Ok(SupervisedBoundedSolution { solution, stop })
}

/// [`solve_bounded`] with an explicit equilibration kernel choice.
///
/// # Errors
/// Same contract as [`solve_bounded`].
pub fn solve_bounded_with<S: Storage>(
    p: &BoundedProblem<S>,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
) -> Result<BoundedSolution<S>, SeaError> {
    solve_bounded_observed(p, epsilon, max_iterations, kernel, &mut NullObserver)
}

/// [`solve_bounded_with`] with an event sink (see
/// [`crate::solver::solve_diagonal_observed`]).
///
/// The bounded driver is serial, so phase events carry empty `task_seconds`
/// (consumers fall back to the phase total) and kernel counters are read
/// straight from the single scratch workspace.
///
/// # Errors
/// Same contract as [`solve_bounded`].
pub fn solve_bounded_observed<S: Storage, O: Observer>(
    p: &BoundedProblem<S>,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
    obs: &mut O,
) -> Result<BoundedSolution<S>, SeaError> {
    solve_bounded_inner(
        p,
        epsilon,
        max_iterations,
        kernel,
        obs,
        &mut SolveControl::passive(),
    )
}

/// [`solve_bounded_observed`] under the fault-tolerant supervisor: budget,
/// cancellation, stagnation, and breakdown watchdogs are checked once per
/// iteration (the bounded driver is serial; worker faults don't apply).
///
/// # Errors
/// Same contract as [`solve_bounded`], except numerical breakdown after a
/// certified snapshot returns that snapshot with
/// [`StopReason::Breakdown`] instead of an error.
pub fn solve_bounded_supervised<S: Storage, O: Observer>(
    p: &BoundedProblem<S>,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
    sup: &SupervisorOptions,
    obs: &mut O,
) -> Result<SupervisedBoundedSolution<S>, SeaError> {
    solve_bounded_supervised_warm(p, epsilon, max_iterations, kernel, None, sup, obs)
}

/// [`solve_bounded_supervised`] seeded with column multipliers from a
/// previous solve of a related problem. The row pass recomputes `λ` from
/// `μ`, so `μ` alone resumes/warm-starts a bounded solve — the same
/// mechanism the diagonal driver exposes via `SeaOptions::initial_mu` and
/// that checkpoints use.
///
/// # Errors
/// Same contract as [`solve_bounded`], plus [`SeaError::Shape`] when
/// `initial_mu` has the wrong length.
pub fn solve_bounded_supervised_warm<S: Storage, O: Observer>(
    p: &BoundedProblem<S>,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
    initial_mu: Option<&[f64]>,
    sup: &SupervisorOptions,
    obs: &mut O,
) -> Result<SupervisedBoundedSolution<S>, SeaError> {
    let mut ctrl = SolveControl::active(sup);
    let solution = solve_bounded_inner_warm(
        p,
        epsilon,
        max_iterations,
        BoundedOptions {
            kernel,
            ..BoundedOptions::default()
        },
        initial_mu,
        obs,
        &mut ctrl,
    )?;
    let stop = if solution.converged {
        StopReason::Converged
    } else {
        ctrl.stop().unwrap_or(StopReason::IterationCap)
    };
    Ok(SupervisedBoundedSolution { solution, stop })
}

/// Run the configured boxed kernel on one subproblem's gathered slices:
/// f32 λ-search first during the mixed-precision phase (falling back to
/// the f64 kernel when it cannot produce a usable multiplier), the
/// SIMD-dispatched f64 kernel otherwise.
#[allow(clippy::too_many_arguments)] // kernel inputs + output + workspace
fn boxed_kernel(
    kernel: KernelKind,
    level: SimdLevel,
    f32_phase: bool,
    q: &[f64],
    g: &[f64],
    sh: &[f64],
    l: &[f64],
    h: &[f64],
    mode: TotalMode,
    x_row: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<EquilibrationResult, SeaError> {
    // As in the plain dispatcher: the f32 stand-in is a sort-scan, so it
    // only pays off under the sort-scan kernel; quickselect solves route
    // straight to the f64 kernel.
    if f32_phase && kernel == KernelKind::SortScan {
        if let Some(r) = exact_equilibration_boxed_f32(level, q, g, sh, l, h, mode, x_row, scratch)?
        {
            return Ok(r);
        }
    }
    exact_equilibration_boxed_simd(level, kernel, q, g, sh, l, h, mode, x_row, scratch)
}

/// Solve one box-bounded subproblem in row orientation: dense rows go to
/// the kernel whole; a sparse row's stored support *is* the subproblem, with
/// only the shift vector gathered into `sh_buf`.
#[allow(clippy::too_many_arguments)] // one quadruple + one scalar per kernel input
fn boxed_task<S: Storage>(
    kernel: KernelKind,
    level: SimdLevel,
    f32_phase: bool,
    (prior, gamma, lo, hi): (&S, &S, &S, &S),
    shift: &[f64],
    side: &'static str,
    i: usize,
    total: f64,
    x: &mut S,
    sh_buf: &mut Vec<f64>,
    scratch: &mut EquilibrationScratch,
) -> Result<f64, SeaError> {
    let mode = TotalMode::Fixed { total };
    match (
        prior.row_view(i),
        gamma.row_view(i),
        lo.row_view(i),
        hi.row_view(i),
    ) {
        (RowView::Dense(q), RowView::Dense(g), RowView::Dense(l), RowView::Dense(h)) => {
            let r = boxed_kernel(
                kernel,
                level,
                f32_phase,
                q,
                g,
                shift,
                l,
                h,
                mode,
                x.row_values_mut(i),
                scratch,
            )?;
            Ok(r.lambda)
        }
        (
            RowView::Indexed { idx, vals: q },
            RowView::Indexed { vals: g, .. },
            RowView::Indexed { vals: l, .. },
            RowView::Indexed { vals: h, .. },
        ) => {
            if idx.is_empty() {
                // Fully-pinned (empty) sparse subproblem: every entry is a
                // structural zero, so only a zero total is attainable.
                scratch.stats.subproblems += 1;
                if total.abs() > 1e-9 {
                    return Err(SeaError::InfeasibleSubproblem { side, index: i });
                }
                return Ok(0.0);
            }
            sh_buf.clear();
            sh_buf.resize(idx.len(), 0.0);
            simd::gather(level, shift, idx, sh_buf);
            let r = boxed_kernel(
                kernel,
                level,
                f32_phase,
                q,
                g,
                sh_buf,
                l,
                h,
                mode,
                x.row_values_mut(i),
                scratch,
            )?;
            Ok(r.lambda)
        }
        _ => Err(SeaError::PatternMismatch {
            context: "bounded pass inputs (mixed row views)",
        }),
    }
}

fn solve_bounded_inner<S: Storage, O: Observer>(
    p: &BoundedProblem<S>,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
    obs: &mut O,
    ctrl: &mut SolveControl<'_>,
) -> Result<BoundedSolution<S>, SeaError> {
    solve_bounded_inner_warm(
        p,
        epsilon,
        max_iterations,
        BoundedOptions {
            kernel,
            ..BoundedOptions::default()
        },
        None,
        obs,
        ctrl,
    )
}

fn solve_bounded_inner_warm<S: Storage, O: Observer>(
    p: &BoundedProblem<S>,
    epsilon: f64,
    max_iterations: usize,
    cfg: BoundedOptions,
    initial_mu: Option<&[f64]>,
    obs: &mut O,
    ctrl: &mut SolveControl<'_>,
) -> Result<BoundedSolution<S>, SeaError> {
    let kernel = cfg.kernel;
    let simd_level = cfg.simd.resolve()?;
    // Mixed-precision phase control, mirroring the diagonal driver: the
    // f32 phase hands over to a full-f64 polish epoch on reaching ε or on
    // stagnation, and only the polish may declare convergence.
    let mut f32_phase = cfg.precision != Precision::F64;
    let mut prev_rel = f64::INFINITY;
    let mut stagnant_checks = 0u32;
    let start = Instant::now();
    let (m, n) = (p.m(), p.n());
    let x0_t = p.x0.transposed()?;
    let gamma_t = p.gamma.transposed()?;
    let lo_t = p.lo.transposed()?;
    let hi_t = p.hi.transposed()?;
    let observing = obs.enabled();
    if observing {
        obs.record(&Event::SolveStart {
            solver: "bounded",
            rows: m,
            cols: n,
            kernel: kernel.name(),
            parallelism: "serial".to_string(),
            criterion: "relative_row_balance",
        });
    }
    // The bounded driver is fully serial, so pass spans carry their own
    // kernel counters directly: a snapshot delta of the cumulative scratch
    // stats brackets each pass, and there are no shard leaves to replay.
    let spanning = obs.spans_enabled();
    if spanning {
        obs.span_open(SpanKind::Solve, 0, (m + n) as u64);
    }
    let mut epoch_open = false;

    let mut lambda = vec![0.0; m];
    let mut mu = match initial_mu {
        None => vec![0.0; n],
        Some(mu0) => {
            if mu0.len() != n {
                return Err(SeaError::Shape {
                    context: "initial_mu",
                    expected: n,
                    actual: mu0.len(),
                });
            }
            mu0.to_vec()
        }
    };
    let mut x = p.x0.zeros_like()?;
    let mut x_t = x0_t.zeros_like()?;
    let mut scratch = EquilibrationScratch::new();
    let mut sh_buf: Vec<f64> = Vec::new();
    let mut row_sums_buf = vec![0.0; m];

    let mut iterations = 0;
    let mut converged = false;
    let mut rel = f64::INFINITY;
    for t in 1..=max_iterations.max(1) {
        iterations = t;
        if spanning {
            obs.span_open(SpanKind::Epoch, t as u64, 0);
            epoch_open = true;
            obs.span_open(SpanKind::RowPass, t as u64, m as u64);
        }
        let pass_c0 = scratch.stats;
        if observing {
            obs.record(&Event::PhaseStart {
                label: PhaseLabel::RowEquilibration,
                tasks: m,
            });
        }
        let phase_t0 = observing.then(Instant::now);
        for i in 0..m {
            lambda[i] = boxed_task(
                kernel,
                simd_level,
                f32_phase,
                (&p.x0, &p.gamma, &p.lo, &p.hi),
                &mu,
                "row",
                i,
                p.s0[i],
                &mut x,
                &mut sh_buf,
                &mut scratch,
            )?;
        }
        if let Some(t0) = phase_t0 {
            obs.record(&Event::PhaseEnd {
                label: PhaseLabel::RowEquilibration,
                tasks: m,
                seconds: t0.elapsed().as_secs_f64(),
                task_seconds: Vec::new(),
            });
            obs.record(&Event::PhaseStart {
                label: PhaseLabel::ColumnEquilibration,
                tasks: n,
            });
        }
        if spanning {
            obs.span_close(&scratch.stats.delta_from(pass_c0));
            obs.span_open(SpanKind::ColPass, t as u64, n as u64);
        }
        let pass_c0 = scratch.stats;
        let phase_t0 = observing.then(Instant::now);
        for j in 0..n {
            mu[j] = boxed_task(
                kernel,
                simd_level,
                f32_phase,
                (&x0_t, &gamma_t, &lo_t, &hi_t),
                &lambda,
                "column",
                j,
                p.d0[j],
                &mut x_t,
                &mut sh_buf,
                &mut scratch,
            )?;
        }
        if let Some(t0) = phase_t0 {
            obs.record(&Event::PhaseEnd {
                label: PhaseLabel::ColumnEquilibration,
                tasks: n,
                seconds: t0.elapsed().as_secs_f64(),
                task_seconds: Vec::new(),
            });
            obs.record(&Event::PhaseStart {
                label: PhaseLabel::ConvergenceCheck,
                tasks: 1,
            });
        }
        if spanning {
            obs.span_close(&scratch.stats.delta_from(pass_c0));
            obs.span_open(SpanKind::Check, t as u64, 1);
        }
        // Relative row balance after the column pass.
        let check_t0 = Instant::now();
        x_t.col_sums_into(&mut row_sums_buf);
        rel = row_sums_buf
            .iter()
            .zip(&p.s0)
            .map(|(r, s)| (r - s).abs() / s.abs().max(1e-12))
            .fold(0.0_f64, f64::max);
        if observing {
            let check_secs = check_t0.elapsed().as_secs_f64();
            obs.record(&Event::PhaseEnd {
                label: PhaseLabel::ConvergenceCheck,
                tasks: 1,
                seconds: check_secs,
                task_seconds: vec![check_secs],
            });
            obs.record(&Event::ConvergenceCheck {
                iteration: t,
                residual: rel,
                dual_value: None,
                criterion: "relative_row_balance",
            });
        }
        if spanning {
            obs.span_close(&KernelCounters::default());
            let active_set = x_t.values().iter().filter(|v| **v > 0.0).count() as u64;
            obs.telemetry(&TelemetrySample {
                iteration: t as u64,
                seconds: start.elapsed().as_secs_f64(),
                residual: rel,
                dual_value: f64::NAN,
                kernel_work: scratch.stats.work(),
                active_set,
            });
        }
        let f32_iterating = f32_phase && cfg.precision == Precision::F32Mixed;
        if rel <= epsilon {
            if f32_iterating {
                // Hand over to the f64 polish epoch; convergence may only
                // be declared from full-precision iterates.
                f32_phase = false;
            } else {
                converged = true;
                break;
            }
        } else if f32_iterating {
            if rel > prev_rel * 0.99 {
                stagnant_checks += 1;
                if stagnant_checks >= 3 {
                    f32_phase = false;
                }
            } else {
                stagnant_checks = 0;
            }
        }
        prev_rel = rel;

        // ---- Supervisor hooks (per iteration). ---------------------------
        if ctrl.is_active() {
            ctrl.inject_faults(t, &mut lambda);
            let finite = vector::all_finite(&lambda)
                && vector::all_finite(&mu)
                && vector::all_finite(x_t.values());
            if !finite {
                let mut empty_s: [f64; 0] = [];
                let mut empty_d: [f64; 0] = [];
                if ctrl
                    .restore_snapshot(
                        &mut lambda,
                        &mut mu,
                        x_t.values_mut(),
                        &mut empty_s,
                        &mut empty_d,
                    )
                    .map(|(it, res)| {
                        iterations = it;
                        rel = res;
                    })
                    .is_some()
                {
                    break;
                }
                return Err(SeaError::NumericalBreakdown { iteration: t });
            }
            ctrl.capture_snapshot(t, rel, &lambda, &mu, x_t.values(), &[], &[]);
            if ctrl.note_residual(rel) {
                break;
            }
            if ctrl.should_stop(t, None).is_some() {
                break;
            }
        }

        if spanning {
            obs.span_close(&KernelCounters::default());
            epoch_open = false;
        }
    }
    if spanning {
        if epoch_open {
            obs.span_close(&KernelCounters::default());
        }
        obs.span_close(&KernelCounters::default());
    }

    let x_final = x_t.transposed()?;
    let mut row_sums = vec![0.0; m];
    let mut col_sums = vec![0.0; n];
    x_final.row_sums_into(&mut row_sums);
    x_final.col_sums_into(&mut col_sums);
    let mut residuals = Residuals::default();
    let mut sq = 0.0;
    for i in 0..m {
        let v = (row_sums[i] - p.s0[i]).abs();
        residuals.row_inf = residuals.row_inf.max(v);
        residuals.rel_row_inf = residuals.rel_row_inf.max(v / p.s0[i].abs().max(1e-12));
        sq += v * v;
    }
    for j in 0..n {
        let v = (col_sums[j] - p.d0[j]).abs();
        residuals.col_inf = residuals.col_inf.max(v);
        sq += v * v;
    }
    residuals.norm2 = sq.sqrt();
    let objective = p.objective(&x_final);

    if observing {
        if ctrl.is_active() && !converged {
            obs.record(&Event::SupervisorStop {
                iteration: iterations,
                reason: ctrl
                    .stop()
                    .map_or(StopReason::IterationCap.name(), StopReason::name),
            });
        }
        if !scratch.stats.is_empty() {
            obs.record(&Event::KernelCounters {
                counters: scratch.stats,
            });
        }
        obs.record(&Event::SolveEnd {
            iterations,
            converged,
            residual: rel,
            objective,
            dual_value: None,
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    Ok(BoundedSolution {
        x: x_final,
        lambda,
        mu,
        iterations,
        converged,
        residuals,
        objective,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> BoundedProblem {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let lo = DenseMatrix::filled(2, 2, 0.5).unwrap();
        let hi = DenseMatrix::filled(2, 2, 10.0).unwrap();
        BoundedProblem::new(x0, gamma, lo, hi, vec![4.0, 6.0], vec![5.0, 5.0]).unwrap()
    }

    #[test]
    fn sparse_bounded_matches_dense_bitwise_on_full_pattern() {
        // A full-pattern CSR bounded problem must replay the dense driver
        // exactly: same multipliers, same entries, same bits.
        use sea_linalg::CsrMatrix;
        let p = problem();
        let sp = BoundedProblem::<CsrMatrix>::new(
            CsrMatrix::from_dense_full(
                &DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(),
            )
            .unwrap(),
            CsrMatrix::from_dense_full(&DenseMatrix::filled(2, 2, 1.0).unwrap()).unwrap(),
            CsrMatrix::from_dense_full(&DenseMatrix::filled(2, 2, 0.5).unwrap()).unwrap(),
            CsrMatrix::from_dense_full(&DenseMatrix::filled(2, 2, 10.0).unwrap()).unwrap(),
            vec![4.0, 6.0],
            vec![5.0, 5.0],
        )
        .unwrap();
        let dense = solve_bounded(&p, 1e-10, 10_000).unwrap();
        let sparse = solve_bounded(&sp, 1e-10, 10_000).unwrap();
        assert!(dense.converged && sparse.converged);
        assert_eq!(dense.x.as_slice(), sparse.x.values());
        assert_eq!(dense.lambda, sparse.lambda);
        assert_eq!(dense.mu, sparse.mu);
        assert_eq!(dense.iterations, sparse.iterations);
    }

    #[test]
    fn sparse_bounded_empty_row_needs_zero_total() {
        // Row 1 of the support is empty: every cell is a structural zero,
        // so a nonzero row total must be rejected at validation with a
        // typed error, and a zero total must solve cleanly.
        use sea_linalg::CsrMatrix;
        let trip = |v: f64| CsrMatrix::from_triplets(2, 2, &[(0, 0, v), (0, 1, v)]).unwrap();
        let x0 = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0)]).unwrap();
        let bad = BoundedProblem::new(
            x0.clone(),
            trip(1.0),
            trip(0.0),
            trip(10.0),
            vec![4.0, 1.0],
            vec![2.5, 2.5],
        );
        assert!(matches!(
            bad,
            Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 1
            })
        ));
        let ok = BoundedProblem::new(
            x0,
            trip(1.0),
            trip(0.0),
            trip(10.0),
            vec![4.0, 0.0],
            vec![2.0, 2.0],
        )
        .unwrap();
        let sol = solve_bounded(&ok, 1e-10, 10_000).unwrap();
        assert!(sol.converged);
        assert_eq!(
            sol.x.row_view(1),
            RowView::Indexed {
                idx: &[],
                vals: &[]
            }
        );
        assert!((sol.x.values().iter().sum::<f64>() - 4.0).abs() < 1e-8);
    }

    #[test]
    fn mismatched_sparse_patterns_are_rejected() {
        use sea_linalg::CsrMatrix;
        let x0 = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        let gamma = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        let r = BoundedProblem::new(x0, gamma, b.clone(), b, vec![1.0, 2.0], vec![1.0, 2.0]);
        assert!(matches!(r, Err(SeaError::PatternMismatch { .. })));
    }

    #[test]
    fn bounded_solve_is_feasible_and_within_bounds() {
        let p = problem();
        let sol = solve_bounded(&p, 1e-10, 10_000).unwrap();
        assert!(sol.converged);
        assert!(sol.residuals.row_inf < 1e-8);
        assert!(sol.residuals.col_inf < 1e-9);
        for &v in sol.x.as_slice() {
            assert!((0.5..=10.0).contains(&v));
        }
    }

    #[test]
    fn loose_bounds_match_unbounded_sea() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let lo = DenseMatrix::filled(2, 2, 0.0).unwrap();
        let hi = DenseMatrix::filled(2, 2, 1e9).unwrap();
        let p = BoundedProblem::new(
            x0.clone(),
            gamma.clone(),
            lo,
            hi,
            vec![4.0, 6.0],
            vec![5.0, 5.0],
        )
        .unwrap();
        let bounded = solve_bounded(&p, 1e-12, 10_000).unwrap();
        let dp = crate::problem::DiagonalProblem::new(
            x0,
            gamma,
            crate::problem::TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let free =
            crate::solver::solve_diagonal(&dp, &crate::solver::SeaOptions::with_epsilon(1e-12))
                .unwrap();
        assert!(bounded.x.max_abs_diff(&free.x) < 1e-6);
    }

    #[test]
    fn tight_bounds_pin_entries() {
        // Pin entry (0,0) to exactly 2.0 via lo = hi.
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let mut lo = DenseMatrix::filled(2, 2, 0.0).unwrap();
        let mut hi = DenseMatrix::filled(2, 2, 100.0).unwrap();
        lo.set(0, 0, 2.0);
        hi.set(0, 0, 2.0);
        let p = BoundedProblem::new(x0, gamma, lo, hi, vec![4.0, 6.0], vec![5.0, 5.0]).unwrap();
        let sol = solve_bounded(&p, 1e-10, 10_000).unwrap();
        assert!(sol.converged);
        assert!((sol.x.get(0, 0) - 2.0).abs() < 1e-9);
        assert!(sol.residuals.row_inf < 1e-7);
    }

    #[test]
    fn bounded_observer_reports_clamps() {
        let p = problem();
        let mut obs = sea_observe::VecObserver::new();
        let sol =
            solve_bounded_observed(&p, 1e-10, 10_000, KernelKind::SortScan, &mut obs).unwrap();
        assert!(sol.converged);
        assert!(matches!(
            obs.events.first(),
            Some(Event::SolveStart {
                solver: "bounded",
                ..
            })
        ));
        let checks = obs
            .events
            .iter()
            .filter(|e| matches!(e, Event::ConvergenceCheck { .. }))
            .count();
        assert_eq!(checks, sol.iterations);
        let counters = obs
            .events
            .iter()
            .find_map(|e| match e {
                Event::KernelCounters { counters } => Some(*counters),
                _ => None,
            })
            .expect("kernel counters event missing");
        assert_eq!(counters.subproblems, (4 * sol.iterations) as u64);
    }

    #[test]
    fn warm_start_reproduces_same_solution_and_validates_length() {
        let p = problem();
        let sup = SupervisorOptions::default();
        let cold = solve_bounded_supervised_warm(
            &p,
            1e-10,
            10_000,
            KernelKind::SortScan,
            None,
            &sup,
            &mut sea_observe::NullObserver,
        )
        .unwrap();
        assert_eq!(cold.stop, StopReason::Converged);
        let warm = solve_bounded_supervised_warm(
            &p,
            1e-10,
            10_000,
            KernelKind::SortScan,
            Some(&cold.solution.mu),
            &sup,
            &mut sea_observe::NullObserver,
        )
        .unwrap();
        assert_eq!(warm.stop, StopReason::Converged);
        assert!(warm.solution.iterations <= cold.solution.iterations);
        assert!(warm.solution.x.max_abs_diff(&cold.solution.x) < 1e-8);

        let err = solve_bounded_supervised_warm(
            &p,
            1e-10,
            10_000,
            KernelKind::SortScan,
            Some(&[0.0; 5]),
            &sup,
            &mut sea_observe::NullObserver,
        );
        assert!(matches!(
            err,
            Err(SeaError::Shape {
                context: "initial_mu",
                ..
            })
        ));
    }

    #[test]
    fn validation_rejects_infeasible_margins() {
        let x0 = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let lo = DenseMatrix::filled(2, 2, 0.0).unwrap();
        let hi = DenseMatrix::filled(2, 2, 1.0).unwrap();
        // Row 0 total 3.0 exceeds Σ hi = 2.
        assert!(matches!(
            BoundedProblem::new(x0, gamma, lo, hi, vec![3.0, 1.0], vec![2.0, 2.0]),
            Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 0
            })
        ));
    }

    #[test]
    fn validation_rejects_crossed_bounds() {
        let x0 = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let lo = DenseMatrix::filled(2, 2, 2.0).unwrap();
        let hi = DenseMatrix::filled(2, 2, 1.0).unwrap();
        assert!(matches!(
            BoundedProblem::new(x0, gamma, lo, hi, vec![4.0, 4.0], vec![4.0, 4.0]),
            Err(SeaError::InconsistentBounds {
                index: 0,
                lower,
                upper,
            }) if lower == 2.0 && upper == 1.0
        ));
    }
}
