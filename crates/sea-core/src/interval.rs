//! Box/interval-constrained diagonal problems — the Harrigan–Buchanan
//! (1984) and Ohuchi–Kaji (1984) extensions noted in §2.
//!
//! The fixed-totals diagonal problem gains per-entry bounds
//! `loᵢⱼ ≤ xᵢⱼ ≤ hiᵢⱼ` (interval constraints on the estimates). The SEA
//! machinery carries over unchanged: each row/column subproblem becomes a
//! box-bounded continuous quadratic knapsack, still solvable exactly by a
//! breakpoint sweep ([`crate::knapsack::exact_equilibration_boxed`]).

use crate::error::SeaError;
use crate::knapsack::{
    exact_equilibration_boxed_with, EquilibrationScratch, KernelKind, TotalMode,
};
use crate::problem::Residuals;
use crate::supervisor::{SolveControl, StopReason, SupervisedBoundedSolution, SupervisorOptions};
use sea_linalg::{vector, DenseMatrix};
use sea_observe::{Event, NullObserver, Observer, PhaseLabel};
use std::time::{Duration, Instant};

/// A fixed-totals diagonal problem with entry bounds.
#[derive(Debug, Clone)]
pub struct BoundedProblem {
    x0: DenseMatrix,
    gamma: DenseMatrix,
    lo: DenseMatrix,
    hi: DenseMatrix,
    s0: Vec<f64>,
    d0: Vec<f64>,
}

impl BoundedProblem {
    /// Build and validate.
    ///
    /// # Errors
    /// * [`SeaError::Shape`] for any dimension mismatch.
    /// * [`SeaError::InconsistentBounds`] if some `lo > hi` entrywise.
    /// * [`SeaError::InconsistentTotals`] if `Σ s⁰ ≠ Σ d⁰`.
    /// * [`SeaError::NonPositiveWeight`] for non-positive `γ`.
    /// * [`SeaError::InfeasibleSubproblem`] when a row/column total falls
    ///   outside its `[Σ lo, Σ hi]` range.
    pub fn new(
        x0: DenseMatrix,
        gamma: DenseMatrix,
        lo: DenseMatrix,
        hi: DenseMatrix,
        s0: Vec<f64>,
        d0: Vec<f64>,
    ) -> Result<Self, SeaError> {
        let (m, n) = (x0.rows(), x0.cols());
        for (mat, ctx) in [(&gamma, "gamma"), (&lo, "lo"), (&hi, "hi")] {
            if mat.rows() != m || mat.cols() != n {
                return Err(SeaError::Shape {
                    context: match ctx {
                        "gamma" => "bounded gamma shape",
                        "lo" => "bounded lo shape",
                        _ => "bounded hi shape",
                    },
                    expected: m * n,
                    actual: mat.rows() * mat.cols(),
                });
            }
        }
        if s0.len() != m || d0.len() != n {
            return Err(SeaError::Shape {
                context: "bounded totals",
                expected: m + n,
                actual: s0.len() + d0.len(),
            });
        }
        for (k, (&l, &h)) in lo.as_slice().iter().zip(hi.as_slice()).enumerate() {
            if l > h {
                return Err(SeaError::InconsistentBounds {
                    index: k,
                    lower: l,
                    upper: h,
                });
            }
        }
        for (k, &g) in gamma.as_slice().iter().enumerate() {
            if !(g > 0.0) {
                return Err(SeaError::NonPositiveWeight {
                    which: "gamma",
                    index: k,
                    value: g,
                });
            }
        }
        let rs: f64 = s0.iter().sum();
        let cs: f64 = d0.iter().sum();
        if (rs - cs).abs() > 1e-9 * rs.abs().max(cs.abs()).max(1.0) {
            return Err(SeaError::InconsistentTotals {
                row_total: rs,
                col_total: cs,
            });
        }
        // Per-subproblem feasibility: s⁰ᵢ ∈ [Σⱼ lo, Σⱼ hi], likewise columns.
        for i in 0..m {
            let l: f64 = lo.row(i).iter().sum();
            let h: f64 = hi.row(i).iter().sum();
            if s0[i] < l - 1e-9 || s0[i] > h + 1e-9 {
                return Err(SeaError::InfeasibleSubproblem {
                    side: "row",
                    index: i,
                });
            }
        }
        let lo_t = lo.transposed();
        let hi_t = hi.transposed();
        for j in 0..n {
            let l: f64 = lo_t.row(j).iter().sum();
            let h: f64 = hi_t.row(j).iter().sum();
            if d0[j] < l - 1e-9 || d0[j] > h + 1e-9 {
                return Err(SeaError::InfeasibleSubproblem {
                    side: "column",
                    index: j,
                });
            }
        }
        Ok(Self {
            x0,
            gamma,
            lo,
            hi,
            s0,
            d0,
        })
    }

    /// Rows.
    pub fn m(&self) -> usize {
        self.x0.rows()
    }

    /// Columns.
    pub fn n(&self) -> usize {
        self.x0.cols()
    }

    /// Objective `Σ γᵢⱼ (xᵢⱼ − x⁰ᵢⱼ)²`.
    pub fn objective(&self, x: &DenseMatrix) -> f64 {
        x.as_slice()
            .iter()
            .zip(self.x0.as_slice().iter().zip(self.gamma.as_slice()))
            .map(|(x, (x0, g))| g * (x - x0) * (x - x0))
            .sum()
    }
}

/// Result of a bounded solve.
#[derive(Debug, Clone)]
pub struct BoundedSolution {
    /// The estimate.
    pub x: DenseMatrix,
    /// Row multipliers.
    pub lambda: Vec<f64>,
    /// Column multipliers.
    pub mu: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the relative row-balance criterion fired.
    pub converged: bool,
    /// Final constraint residuals.
    pub residuals: Residuals,
    /// Objective value.
    pub objective: f64,
    /// Wall clock.
    pub elapsed: Duration,
}

/// Solve a bounded problem by SEA with box-bounded exact equilibration.
///
/// # Errors
/// Propagates kernel failures; returns `converged = false` on hitting
/// `max_iterations`.
pub fn solve_bounded(
    p: &BoundedProblem,
    epsilon: f64,
    max_iterations: usize,
) -> Result<BoundedSolution, SeaError> {
    solve_bounded_with(p, epsilon, max_iterations, KernelKind::SortScan)
}

/// [`solve_bounded`] with an explicit equilibration kernel choice.
///
/// # Errors
/// Same contract as [`solve_bounded`].
pub fn solve_bounded_with(
    p: &BoundedProblem,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
) -> Result<BoundedSolution, SeaError> {
    solve_bounded_observed(p, epsilon, max_iterations, kernel, &mut NullObserver)
}

/// [`solve_bounded_with`] with an event sink (see
/// [`crate::solver::solve_diagonal_observed`]).
///
/// The bounded driver is serial, so phase events carry empty `task_seconds`
/// (consumers fall back to the phase total) and kernel counters are read
/// straight from the single scratch workspace.
///
/// # Errors
/// Same contract as [`solve_bounded`].
pub fn solve_bounded_observed<O: Observer>(
    p: &BoundedProblem,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
    obs: &mut O,
) -> Result<BoundedSolution, SeaError> {
    solve_bounded_inner(
        p,
        epsilon,
        max_iterations,
        kernel,
        obs,
        &mut SolveControl::passive(),
    )
}

/// [`solve_bounded_observed`] under the fault-tolerant supervisor: budget,
/// cancellation, stagnation, and breakdown watchdogs are checked once per
/// iteration (the bounded driver is serial; worker faults don't apply).
///
/// # Errors
/// Same contract as [`solve_bounded`], except numerical breakdown after a
/// certified snapshot returns that snapshot with
/// [`StopReason::Breakdown`] instead of an error.
pub fn solve_bounded_supervised<O: Observer>(
    p: &BoundedProblem,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
    sup: &SupervisorOptions,
    obs: &mut O,
) -> Result<SupervisedBoundedSolution, SeaError> {
    solve_bounded_supervised_warm(p, epsilon, max_iterations, kernel, None, sup, obs)
}

/// [`solve_bounded_supervised`] seeded with column multipliers from a
/// previous solve of a related problem. The row pass recomputes `λ` from
/// `μ`, so `μ` alone resumes/warm-starts a bounded solve — the same
/// mechanism the diagonal driver exposes via `SeaOptions::initial_mu` and
/// that checkpoints use.
///
/// # Errors
/// Same contract as [`solve_bounded`], plus [`SeaError::Shape`] when
/// `initial_mu` has the wrong length.
pub fn solve_bounded_supervised_warm<O: Observer>(
    p: &BoundedProblem,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
    initial_mu: Option<&[f64]>,
    sup: &SupervisorOptions,
    obs: &mut O,
) -> Result<SupervisedBoundedSolution, SeaError> {
    let mut ctrl = SolveControl::active(sup);
    let solution = solve_bounded_inner_warm(
        p,
        epsilon,
        max_iterations,
        kernel,
        initial_mu,
        obs,
        &mut ctrl,
    )?;
    let stop = if solution.converged {
        StopReason::Converged
    } else {
        ctrl.stop().unwrap_or(StopReason::IterationCap)
    };
    Ok(SupervisedBoundedSolution { solution, stop })
}

fn solve_bounded_inner<O: Observer>(
    p: &BoundedProblem,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
    obs: &mut O,
    ctrl: &mut SolveControl<'_>,
) -> Result<BoundedSolution, SeaError> {
    solve_bounded_inner_warm(p, epsilon, max_iterations, kernel, None, obs, ctrl)
}

fn solve_bounded_inner_warm<O: Observer>(
    p: &BoundedProblem,
    epsilon: f64,
    max_iterations: usize,
    kernel: KernelKind,
    initial_mu: Option<&[f64]>,
    obs: &mut O,
    ctrl: &mut SolveControl<'_>,
) -> Result<BoundedSolution, SeaError> {
    let start = Instant::now();
    let (m, n) = (p.m(), p.n());
    let x0_t = p.x0.transposed();
    let gamma_t = p.gamma.transposed();
    let lo_t = p.lo.transposed();
    let hi_t = p.hi.transposed();
    let observing = obs.enabled();
    if observing {
        obs.record(&Event::SolveStart {
            solver: "bounded",
            rows: m,
            cols: n,
            kernel: kernel.name(),
            parallelism: "serial".to_string(),
            criterion: "relative_row_balance",
        });
    }

    let mut lambda = vec![0.0; m];
    let mut mu = match initial_mu {
        None => vec![0.0; n],
        Some(mu0) => {
            if mu0.len() != n {
                return Err(SeaError::Shape {
                    context: "initial_mu",
                    expected: n,
                    actual: mu0.len(),
                });
            }
            mu0.to_vec()
        }
    };
    let mut x = DenseMatrix::zeros(m, n)?;
    let mut x_t = DenseMatrix::zeros(n, m)?;
    let mut scratch = EquilibrationScratch::new();
    let mut row_sums_buf = vec![0.0; m];

    let mut iterations = 0;
    let mut converged = false;
    let mut rel = f64::INFINITY;
    for t in 1..=max_iterations.max(1) {
        iterations = t;
        if observing {
            obs.record(&Event::PhaseStart {
                label: PhaseLabel::RowEquilibration,
                tasks: m,
            });
        }
        let phase_t0 = observing.then(Instant::now);
        for i in 0..m {
            let r = exact_equilibration_boxed_with(
                kernel,
                p.x0.row(i),
                p.gamma.row(i),
                &mu,
                p.lo.row(i),
                p.hi.row(i),
                TotalMode::Fixed { total: p.s0[i] },
                x.row_mut(i),
                &mut scratch,
            )?;
            lambda[i] = r.lambda;
        }
        if let Some(t0) = phase_t0 {
            obs.record(&Event::PhaseEnd {
                label: PhaseLabel::RowEquilibration,
                tasks: m,
                seconds: t0.elapsed().as_secs_f64(),
                task_seconds: Vec::new(),
            });
            obs.record(&Event::PhaseStart {
                label: PhaseLabel::ColumnEquilibration,
                tasks: n,
            });
        }
        let phase_t0 = observing.then(Instant::now);
        for j in 0..n {
            let r = exact_equilibration_boxed_with(
                kernel,
                x0_t.row(j),
                gamma_t.row(j),
                &lambda,
                lo_t.row(j),
                hi_t.row(j),
                TotalMode::Fixed { total: p.d0[j] },
                x_t.row_mut(j),
                &mut scratch,
            )?;
            mu[j] = r.lambda;
        }
        if let Some(t0) = phase_t0 {
            obs.record(&Event::PhaseEnd {
                label: PhaseLabel::ColumnEquilibration,
                tasks: n,
                seconds: t0.elapsed().as_secs_f64(),
                task_seconds: Vec::new(),
            });
            obs.record(&Event::PhaseStart {
                label: PhaseLabel::ConvergenceCheck,
                tasks: 1,
            });
        }
        // Relative row balance after the column pass.
        let check_t0 = Instant::now();
        x_t.col_sums_into(&mut row_sums_buf);
        rel = row_sums_buf
            .iter()
            .zip(&p.s0)
            .map(|(r, s)| (r - s).abs() / s.abs().max(1e-12))
            .fold(0.0_f64, f64::max);
        if observing {
            let check_secs = check_t0.elapsed().as_secs_f64();
            obs.record(&Event::PhaseEnd {
                label: PhaseLabel::ConvergenceCheck,
                tasks: 1,
                seconds: check_secs,
                task_seconds: vec![check_secs],
            });
            obs.record(&Event::ConvergenceCheck {
                iteration: t,
                residual: rel,
                dual_value: None,
                criterion: "relative_row_balance",
            });
        }
        if rel <= epsilon {
            converged = true;
            break;
        }

        // ---- Supervisor hooks (per iteration). ---------------------------
        if ctrl.is_active() {
            ctrl.inject_faults(t, &mut lambda);
            let finite = vector::all_finite(&lambda)
                && vector::all_finite(&mu)
                && vector::all_finite(x_t.as_slice());
            if !finite {
                let mut empty_s: [f64; 0] = [];
                let mut empty_d: [f64; 0] = [];
                if ctrl
                    .restore_snapshot(&mut lambda, &mut mu, &mut x_t, &mut empty_s, &mut empty_d)
                    .map(|(it, res)| {
                        iterations = it;
                        rel = res;
                    })
                    .is_some()
                {
                    break;
                }
                return Err(SeaError::NumericalBreakdown { iteration: t });
            }
            ctrl.capture_snapshot(t, rel, &lambda, &mu, &x_t, &[], &[]);
            if ctrl.note_residual(rel) {
                break;
            }
            if ctrl.should_stop(t, None).is_some() {
                break;
            }
        }
    }

    let x_final = x_t.transposed();
    let row_sums = x_final.row_sums();
    let col_sums = x_final.col_sums();
    let mut residuals = Residuals::default();
    let mut sq = 0.0;
    for i in 0..m {
        let v = (row_sums[i] - p.s0[i]).abs();
        residuals.row_inf = residuals.row_inf.max(v);
        residuals.rel_row_inf = residuals.rel_row_inf.max(v / p.s0[i].abs().max(1e-12));
        sq += v * v;
    }
    for j in 0..n {
        let v = (col_sums[j] - p.d0[j]).abs();
        residuals.col_inf = residuals.col_inf.max(v);
        sq += v * v;
    }
    residuals.norm2 = sq.sqrt();
    let objective = p.objective(&x_final);

    if observing {
        if ctrl.is_active() && !converged {
            obs.record(&Event::SupervisorStop {
                iteration: iterations,
                reason: ctrl
                    .stop()
                    .map_or(StopReason::IterationCap.name(), StopReason::name),
            });
        }
        if !scratch.stats.is_empty() {
            obs.record(&Event::KernelCounters {
                counters: scratch.stats,
            });
        }
        obs.record(&Event::SolveEnd {
            iterations,
            converged,
            residual: rel,
            objective,
            dual_value: None,
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    Ok(BoundedSolution {
        x: x_final,
        lambda,
        mu,
        iterations,
        converged,
        residuals,
        objective,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> BoundedProblem {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let lo = DenseMatrix::filled(2, 2, 0.5).unwrap();
        let hi = DenseMatrix::filled(2, 2, 10.0).unwrap();
        BoundedProblem::new(x0, gamma, lo, hi, vec![4.0, 6.0], vec![5.0, 5.0]).unwrap()
    }

    #[test]
    fn bounded_solve_is_feasible_and_within_bounds() {
        let p = problem();
        let sol = solve_bounded(&p, 1e-10, 10_000).unwrap();
        assert!(sol.converged);
        assert!(sol.residuals.row_inf < 1e-8);
        assert!(sol.residuals.col_inf < 1e-9);
        for &v in sol.x.as_slice() {
            assert!((0.5..=10.0).contains(&v));
        }
    }

    #[test]
    fn loose_bounds_match_unbounded_sea() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let lo = DenseMatrix::filled(2, 2, 0.0).unwrap();
        let hi = DenseMatrix::filled(2, 2, 1e9).unwrap();
        let p = BoundedProblem::new(
            x0.clone(),
            gamma.clone(),
            lo,
            hi,
            vec![4.0, 6.0],
            vec![5.0, 5.0],
        )
        .unwrap();
        let bounded = solve_bounded(&p, 1e-12, 10_000).unwrap();
        let dp = crate::problem::DiagonalProblem::new(
            x0,
            gamma,
            crate::problem::TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let free =
            crate::solver::solve_diagonal(&dp, &crate::solver::SeaOptions::with_epsilon(1e-12))
                .unwrap();
        assert!(bounded.x.max_abs_diff(&free.x) < 1e-6);
    }

    #[test]
    fn tight_bounds_pin_entries() {
        // Pin entry (0,0) to exactly 2.0 via lo = hi.
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let mut lo = DenseMatrix::filled(2, 2, 0.0).unwrap();
        let mut hi = DenseMatrix::filled(2, 2, 100.0).unwrap();
        lo.set(0, 0, 2.0);
        hi.set(0, 0, 2.0);
        let p = BoundedProblem::new(x0, gamma, lo, hi, vec![4.0, 6.0], vec![5.0, 5.0]).unwrap();
        let sol = solve_bounded(&p, 1e-10, 10_000).unwrap();
        assert!(sol.converged);
        assert!((sol.x.get(0, 0) - 2.0).abs() < 1e-9);
        assert!(sol.residuals.row_inf < 1e-7);
    }

    #[test]
    fn bounded_observer_reports_clamps() {
        let p = problem();
        let mut obs = sea_observe::VecObserver::new();
        let sol =
            solve_bounded_observed(&p, 1e-10, 10_000, KernelKind::SortScan, &mut obs).unwrap();
        assert!(sol.converged);
        assert!(matches!(
            obs.events.first(),
            Some(Event::SolveStart {
                solver: "bounded",
                ..
            })
        ));
        let checks = obs
            .events
            .iter()
            .filter(|e| matches!(e, Event::ConvergenceCheck { .. }))
            .count();
        assert_eq!(checks, sol.iterations);
        let counters = obs
            .events
            .iter()
            .find_map(|e| match e {
                Event::KernelCounters { counters } => Some(*counters),
                _ => None,
            })
            .expect("kernel counters event missing");
        assert_eq!(counters.subproblems, (4 * sol.iterations) as u64);
    }

    #[test]
    fn warm_start_reproduces_same_solution_and_validates_length() {
        let p = problem();
        let sup = SupervisorOptions::default();
        let cold = solve_bounded_supervised_warm(
            &p,
            1e-10,
            10_000,
            KernelKind::SortScan,
            None,
            &sup,
            &mut sea_observe::NullObserver,
        )
        .unwrap();
        assert_eq!(cold.stop, StopReason::Converged);
        let warm = solve_bounded_supervised_warm(
            &p,
            1e-10,
            10_000,
            KernelKind::SortScan,
            Some(&cold.solution.mu),
            &sup,
            &mut sea_observe::NullObserver,
        )
        .unwrap();
        assert_eq!(warm.stop, StopReason::Converged);
        assert!(warm.solution.iterations <= cold.solution.iterations);
        assert!(warm.solution.x.max_abs_diff(&cold.solution.x) < 1e-8);

        let err = solve_bounded_supervised_warm(
            &p,
            1e-10,
            10_000,
            KernelKind::SortScan,
            Some(&[0.0; 5]),
            &sup,
            &mut sea_observe::NullObserver,
        );
        assert!(matches!(
            err,
            Err(SeaError::Shape {
                context: "initial_mu",
                ..
            })
        ));
    }

    #[test]
    fn validation_rejects_infeasible_margins() {
        let x0 = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let lo = DenseMatrix::filled(2, 2, 0.0).unwrap();
        let hi = DenseMatrix::filled(2, 2, 1.0).unwrap();
        // Row 0 total 3.0 exceeds Σ hi = 2.
        assert!(matches!(
            BoundedProblem::new(x0, gamma, lo, hi, vec![3.0, 1.0], vec![2.0, 2.0]),
            Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 0
            })
        ));
    }

    #[test]
    fn validation_rejects_crossed_bounds() {
        let x0 = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let lo = DenseMatrix::filled(2, 2, 2.0).unwrap();
        let hi = DenseMatrix::filled(2, 2, 1.0).unwrap();
        assert!(matches!(
            BoundedProblem::new(x0, gamma, lo, hi, vec![4.0, 4.0], vec![4.0, 4.0]),
            Err(SeaError::InconsistentBounds {
                index: 0,
                lower,
                upper,
            }) if lower == 2.0 && upper == 1.0
        ));
    }
}
