//! # sea-core — the Splitting Equilibration Algorithm
//!
//! Implementation of Nagurney & Eydeland (1990): quadratic constrained
//! matrix problems and the splitting equilibration algorithm (SEA) that
//! solves them by alternating parallel row/column *exact equilibrations* on
//! the dual.
//!
//! ## Layout
//!
//! * [`problem`] — [`DiagonalProblem`] with the three total specifications
//!   ([`TotalSpec::Fixed`], [`TotalSpec::Elastic`], [`TotalSpec::Balanced`])
//!   and structural-zero support.
//! * [`weights`] — [`WeightScheme`]: least-squares, chi-square,
//!   inverse-sqrt.
//! * [`knapsack`] — the exact-equilibration kernel (closed-form
//!   single-constraint QP via breakpoint sort), plus a box-bounded variant.
//! * [`kernel_simd`] — vectorized (runtime-dispatched SIMD) and
//!   mixed-precision variants of the kernels, bitwise-identical to the
//!   scalar oracle by construction (elementwise SIMD, scalar-order
//!   reductions).
//! * [`equilibrate`] — row/column equilibration passes (serial and
//!   parallel) that fan the kernel out over a matrix.
//! * [`solver`] — [`solve_diagonal`]: the diagonal SEA driver (§3.1).
//! * [`storage`] — the [`Storage`] abstraction every driver is generic
//!   over: row-major dense (`DenseMatrix`) and CSR support-only
//!   (`CsrMatrix`) problem storage with bitwise-identical solves.
//! * [`error`] — [`SeaError`], the typed failure vocabulary (no panics in
//!   library code).
//! * [`general`] — [`GeneralProblem`] and [`solve_general`]: the
//!   projection/diagonalization outer loop for dense `A`, `B`, `G` (§3.2).
//! * [`dual`] — `ζ₁/ζ₂/ζ₃`, gradients, weak duality.
//! * [`theory`] — curvature and iteration bounds (eq. 58–64, 77).
//! * [`components`] — support-graph components and the Modified Algorithm.
//! * [`parallel`], [`trace`] — execution control and phase traces for the
//!   scheduling simulator.
//! * [`interval`] — interval/box-constrained extension (Harrigan–Buchanan,
//!   Ohuchi–Kaji).
//! * [`observe`] — glue to the `sea-observe` event schema: every solver has
//!   an `*_observed` variant that streams typed lifecycle events to an
//!   [`Observer`] sink, and recorded logs convert back to
//!   [`ExecutionTrace`]s.
//! * [`verify`] — first-principles KKT/duality verification of computed
//!   solutions.
//! * [`supervisor`] — fault-tolerant solve supervision: budgets,
//!   cancellation, breakdown/stagnation watchdogs, crash-safe checkpoints,
//!   kernel fallback, and a deterministic fault-injection plan.
//!
//! ## Example
//!
//! ```
//! use sea_core::{DiagonalProblem, SeaOptions, TotalSpec, WeightScheme, solve_diagonal};
//! use sea_linalg::DenseMatrix;
//!
//! let x0 = DenseMatrix::from_rows(&[vec![10.0, 5.0], vec![5.0, 10.0]]).unwrap();
//! let gamma = WeightScheme::ChiSquare.entry_weights(&x0).unwrap();
//! let p = DiagonalProblem::new(
//!     x0,
//!     gamma,
//!     TotalSpec::Fixed { s0: vec![18.0, 18.0], d0: vec![18.0, 18.0] },
//! ).unwrap();
//! let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-10)).unwrap();
//! assert!(sol.stats.converged);
//! assert!(sol.stats.residuals.row_inf < 1e-6);
//! ```

// Numeric-kernel idioms: indexed loops over multiple parallel arrays are
// clearer than zipped iterator chains in the equilibration math, and
// `!(w > 0.0)` deliberately treats NaN as invalid (a positive-weight check
// that `w <= 0.0` would pass NaN through).
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Robustness contract: library code must surface failures as `SeaError`,
// never panic. The few justified sites carry an explicit `#[allow]` with a
// proof comment; tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod components;
pub mod dual;
pub mod equilibrate;
pub mod error;
pub mod general;
pub mod interval;
pub mod kernel_simd;
pub mod knapsack;
pub mod observe;
pub mod parallel;
pub mod problem;
pub mod solver;
pub mod storage;
pub mod supervisor;
pub mod theory;
pub mod trace;
pub mod verify;
pub mod weights;

pub use equilibrate::PassCounters;
pub use error::SeaError;
pub use general::{
    solve_general, solve_general_in, solve_general_observed, solve_general_supervised,
    solve_general_supervised_in, GeneralProblem, GeneralSeaOptions, GeneralSolution,
    GeneralTotalSpec,
};
pub use interval::{
    solve_bounded, solve_bounded_configured, solve_bounded_observed, solve_bounded_supervised,
    solve_bounded_supervised_configured, solve_bounded_supervised_warm, solve_bounded_with,
    BoundedOptions, BoundedProblem,
};
pub use kernel_simd::{
    exact_equilibration_boxed_f32, exact_equilibration_boxed_simd, exact_equilibration_f32,
    exact_equilibration_simd, Precision, SimdMode,
};
pub use knapsack::{
    exact_equilibration, exact_equilibration_with, EquilibrationResult, EquilibrationScratch,
    KernelKind, TotalMode,
};
pub use observe::trace_from_events;
pub use parallel::Parallelism;
pub use problem::{DiagonalProblem, Residuals, TotalSpec, ZeroPolicy};
pub use sea_linalg::simd::SimdLevel;
pub use solver::{
    solve_diagonal, solve_diagonal_observed, solve_diagonal_supervised, ConvergenceCriterion,
    IterationSnapshot, SeaOptions, Solution, SolveStats,
};
pub use storage::{RowView, Storage};
pub use supervisor::{
    CancelToken, Checkpoint, CheckpointPolicy, FaultKind, FaultPlan, SolveBudget, StagnationPolicy,
    StopReason, SupervisedBoundedSolution, SupervisedGeneralSolution, SupervisedSolution,
    SupervisorOptions,
};
pub use trace::{ExecutionTrace, Phase, PhaseKind};
pub use verify::{verify_solution, GapCheck, KktReport};
pub use weights::WeightScheme;

// Re-export the event vocabulary so downstream crates don't need a direct
// sea-observe dependency for the common cases.
pub use sea_observe::{
    Event, KernelCounters, NullObserver, Observer, PhaseLabel, SpanKind, SpanProfiler, SpanRecord,
    TelemetrySample, VecObserver,
};
