//! Execution traces: the bridge between the solvers and the multiprocessor
//! scheduling simulator.
//!
//! The paper's parallel experiments (§4.2, §5.2) decompose each SEA
//! iteration into a parallel **row equilibration** phase (m independent
//! tasks), a parallel **column equilibration** phase (n tasks), and a
//! *serial* **convergence verification** phase — the structure that
//! determines the measured speedups. When a solver runs with
//! `record_trace`, it emits one [`Phase`] per such stage with measured
//! per-task costs; `sea-parsim` then replays the trace on a simulated
//! N-processor machine.

/// What a phase represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Parallel row equilibration (one task per row subproblem).
    RowEquilibration,
    /// Parallel column equilibration (one task per column subproblem).
    ColumnEquilibration,
    /// Serial convergence verification (the paper's O(m²) serial stage).
    ConvergenceCheck,
    /// Serial projection-step work in the general solvers (building the
    /// diagonalized linear terms; dominated by the G mat-vec). Task costs
    /// are per-row of the mat-vec, so this phase is parallelizable.
    Projection,
}

impl PhaseKind {
    /// Whether tasks in this phase may execute concurrently.
    pub fn is_parallel(self) -> bool {
        !matches!(self, PhaseKind::ConvergenceCheck)
    }
}

/// One stage of a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// The stage type.
    pub kind: PhaseKind,
    /// Per-task costs in seconds (one entry per independent subproblem).
    /// Serial phases carry a single entry.
    pub task_seconds: Vec<f64>,
}

impl Phase {
    /// Total work in the phase (sum of task costs) in seconds.
    pub fn total_work(&self) -> f64 {
        self.task_seconds.iter().sum()
    }

    /// Longest single task in seconds (0.0 when empty).
    pub fn longest_task(&self) -> f64 {
        self.task_seconds.iter().fold(0.0_f64, |m, &v| m.max(v))
    }
}

/// A full solve decomposed into phases.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl ExecutionTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a phase.
    pub fn push(&mut self, kind: PhaseKind, task_seconds: Vec<f64>) {
        self.phases.push(Phase { kind, task_seconds });
    }

    /// Total single-processor time: every task executed back to back.
    pub fn serial_time(&self) -> f64 {
        self.phases.iter().map(Phase::total_work).sum()
    }

    /// Time spent in inherently serial phases.
    pub fn inherently_serial_time(&self) -> f64 {
        self.phases
            .iter()
            .filter(|p| !p.kind.is_parallel())
            .map(Phase::total_work)
            .sum()
    }

    /// The serial fraction (Amdahl), in `[0, 1]`; `0.0` for an empty trace.
    pub fn serial_fraction(&self) -> f64 {
        let total = self.serial_time();
        if total <= 0.0 {
            0.0
        } else {
            self.inherently_serial_time() / total
        }
    }

    /// Number of phases of a given kind.
    pub fn count(&self, kind: PhaseKind) -> usize {
        self.phases.iter().filter(|p| p.kind == kind).count()
    }

    /// Concatenate another trace after this one (used by the general
    /// solvers to splice inner diagonal solves into the outer trace).
    pub fn extend(&mut self, other: ExecutionTrace) {
        self.phases.extend(other.phases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.push(PhaseKind::RowEquilibration, vec![1.0, 2.0, 3.0]);
        t.push(PhaseKind::ColumnEquilibration, vec![2.0, 2.0]);
        t.push(PhaseKind::ConvergenceCheck, vec![0.5]);
        t
    }

    #[test]
    fn totals_and_fractions() {
        let t = sample();
        assert_eq!(t.serial_time(), 10.5);
        assert_eq!(t.inherently_serial_time(), 0.5);
        assert!((t.serial_fraction() - 0.5 / 10.5).abs() < 1e-12);
    }

    #[test]
    fn counts_by_kind() {
        let t = sample();
        assert_eq!(t.count(PhaseKind::RowEquilibration), 1);
        assert_eq!(t.count(PhaseKind::Projection), 0);
    }

    #[test]
    fn phase_aggregates() {
        let p = Phase {
            kind: PhaseKind::RowEquilibration,
            task_seconds: vec![1.0, 4.0, 2.0],
        };
        assert_eq!(p.total_work(), 7.0);
        assert_eq!(p.longest_task(), 4.0);
        assert!(p.kind.is_parallel());
        assert!(!PhaseKind::ConvergenceCheck.is_parallel());
    }

    #[test]
    fn empty_trace_fraction_is_zero() {
        assert_eq!(ExecutionTrace::new().serial_fraction(), 0.0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = sample();
        let b = sample();
        a.extend(b);
        assert_eq!(a.phases.len(), 6);
    }
}
