//! Execution traces: the bridge between the solvers and the multiprocessor
//! scheduling simulator.
//!
//! The paper's parallel experiments (§4.2, §5.2) decompose each SEA
//! iteration into a parallel **row equilibration** phase (m independent
//! tasks), a parallel **column equilibration** phase (n tasks), and a
//! *serial* **convergence verification** phase — the structure that
//! determines the measured speedups. When a solver runs with
//! `record_trace`, it emits one [`Phase`] per such stage with measured
//! per-task costs; `sea-parsim` then replays the trace on a simulated
//! N-processor machine.

/// What a phase represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Parallel row equilibration (one task per row subproblem).
    RowEquilibration,
    /// Parallel column equilibration (one task per column subproblem).
    ColumnEquilibration,
    /// Serial convergence verification (the paper's O(m²) serial stage).
    ConvergenceCheck,
    /// Serial projection-step work in the general solvers (building the
    /// diagonalized linear terms; dominated by the G mat-vec). Task costs
    /// are per-row of the mat-vec, so this phase is parallelizable.
    Projection,
}

impl PhaseKind {
    /// All kinds, in a fixed order.
    pub const ALL: [PhaseKind; 4] = [
        PhaseKind::RowEquilibration,
        PhaseKind::ColumnEquilibration,
        PhaseKind::ConvergenceCheck,
        PhaseKind::Projection,
    ];

    /// Whether tasks in this phase may execute concurrently.
    pub fn is_parallel(self) -> bool {
        !matches!(self, PhaseKind::ConvergenceCheck)
    }

    /// Stable wire name; identical to the corresponding
    /// [`sea_observe::PhaseLabel`] name so traces and event logs share one
    /// vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::RowEquilibration => "row_equilibration",
            PhaseKind::ColumnEquilibration => "column_equilibration",
            PhaseKind::ConvergenceCheck => "convergence_check",
            PhaseKind::Projection => "projection",
        }
    }

    /// Inverse of [`PhaseKind::name`].
    pub fn parse(s: &str) -> Option<PhaseKind> {
        PhaseKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One stage of a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// The stage type.
    pub kind: PhaseKind,
    /// Per-task costs in seconds (one entry per independent subproblem).
    /// Serial phases carry a single entry.
    pub task_seconds: Vec<f64>,
}

impl Phase {
    /// Total work in the phase (sum of task costs) in seconds.
    pub fn total_work(&self) -> f64 {
        self.task_seconds.iter().sum()
    }

    /// Longest single task in seconds (0.0 when empty).
    pub fn longest_task(&self) -> f64 {
        self.task_seconds.iter().fold(0.0_f64, |m, &v| m.max(v))
    }
}

/// A full solve decomposed into phases.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl ExecutionTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a phase.
    pub fn push(&mut self, kind: PhaseKind, task_seconds: Vec<f64>) {
        self.phases.push(Phase { kind, task_seconds });
    }

    /// Total single-processor time: every task executed back to back.
    pub fn serial_time(&self) -> f64 {
        self.phases.iter().map(Phase::total_work).sum()
    }

    /// Time spent in inherently serial phases.
    pub fn inherently_serial_time(&self) -> f64 {
        self.phases
            .iter()
            .filter(|p| !p.kind.is_parallel())
            .map(Phase::total_work)
            .sum()
    }

    /// The serial fraction (Amdahl), in `[0, 1]`; `0.0` for an empty trace.
    pub fn serial_fraction(&self) -> f64 {
        let total = self.serial_time();
        if total <= 0.0 {
            0.0
        } else {
            self.inherently_serial_time() / total
        }
    }

    /// Number of phases of a given kind.
    pub fn count(&self, kind: PhaseKind) -> usize {
        self.phases.iter().filter(|p| p.kind == kind).count()
    }

    /// Concatenate another trace after this one (used by the general
    /// solvers to splice inner diagonal solves into the outer trace).
    pub fn extend(&mut self, other: ExecutionTrace) {
        self.phases.extend(other.phases);
    }

    /// Serialize to a JSON document:
    /// `{"phases":[{"kind":"row_equilibration","task_seconds":[...]}, ...]}`.
    pub fn to_json(&self) -> String {
        use sea_observe::json::{f64_to_json, JsonValue};
        let phases: Vec<JsonValue> = self
            .phases
            .iter()
            .map(|p| {
                JsonValue::Object(vec![
                    (
                        "kind".to_string(),
                        JsonValue::String(p.kind.name().to_string()),
                    ),
                    (
                        "task_seconds".to_string(),
                        JsonValue::Array(p.task_seconds.iter().map(|&v| f64_to_json(v)).collect()),
                    ),
                ])
            })
            .collect();
        JsonValue::Object(vec![("phases".to_string(), JsonValue::Array(phases))]).render()
    }

    /// Parse the format produced by [`ExecutionTrace::to_json`].
    ///
    /// # Errors
    /// Returns a human-readable message on malformed JSON, an unknown phase
    /// kind, or a missing field.
    pub fn from_json(text: &str) -> Result<ExecutionTrace, String> {
        use sea_observe::json::{json_to_f64, parse, JsonValue};
        let doc = parse(text)?;
        let phases = doc
            .get("phases")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "trace document missing \"phases\" array".to_string())?;
        let mut trace = ExecutionTrace::new();
        for (idx, ph) in phases.iter().enumerate() {
            let kind_name = ph
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("phase {idx}: missing \"kind\""))?;
            let kind = PhaseKind::parse(kind_name)
                .ok_or_else(|| format!("phase {idx}: unknown kind {kind_name:?}"))?;
            let secs = ph
                .get("task_seconds")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("phase {idx}: missing \"task_seconds\""))?;
            let task_seconds = secs
                .iter()
                .enumerate()
                .map(|(j, v)| {
                    json_to_f64(v)
                        .ok_or_else(|| format!("phase {idx}: task_seconds[{j}] not a number"))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            trace.push(kind, task_seconds);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.push(PhaseKind::RowEquilibration, vec![1.0, 2.0, 3.0]);
        t.push(PhaseKind::ColumnEquilibration, vec![2.0, 2.0]);
        t.push(PhaseKind::ConvergenceCheck, vec![0.5]);
        t
    }

    #[test]
    fn totals_and_fractions() {
        let t = sample();
        assert_eq!(t.serial_time(), 10.5);
        assert_eq!(t.inherently_serial_time(), 0.5);
        assert!((t.serial_fraction() - 0.5 / 10.5).abs() < 1e-12);
    }

    #[test]
    fn counts_by_kind() {
        let t = sample();
        assert_eq!(t.count(PhaseKind::RowEquilibration), 1);
        assert_eq!(t.count(PhaseKind::Projection), 0);
    }

    #[test]
    fn phase_aggregates() {
        let p = Phase {
            kind: PhaseKind::RowEquilibration,
            task_seconds: vec![1.0, 4.0, 2.0],
        };
        assert_eq!(p.total_work(), 7.0);
        assert_eq!(p.longest_task(), 4.0);
        assert!(p.kind.is_parallel());
        assert!(!PhaseKind::ConvergenceCheck.is_parallel());
    }

    #[test]
    fn empty_trace_fraction_is_zero() {
        assert_eq!(ExecutionTrace::new().serial_fraction(), 0.0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = sample();
        let b = sample();
        a.extend(b);
        assert_eq!(a.phases.len(), 6);
    }

    #[test]
    fn kind_names_round_trip() {
        for k in PhaseKind::ALL {
            assert_eq!(PhaseKind::parse(k.name()), Some(k));
        }
        assert_eq!(PhaseKind::parse("warmup"), None);
    }

    #[test]
    fn json_round_trip_preserves_trace() {
        let mut t = sample();
        t.push(PhaseKind::Projection, vec![0.25, 0.25]);
        let text = t.to_json();
        let back = ExecutionTrace::from_json(&text).expect("round trip");
        assert_eq!(back, t);
        // Empty traces survive too.
        let empty = ExecutionTrace::new();
        assert_eq!(ExecutionTrace::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(ExecutionTrace::from_json("not json").is_err());
        assert!(ExecutionTrace::from_json("{}").is_err());
        assert!(ExecutionTrace::from_json(
            r#"{"phases":[{"kind":"warp_drive","task_seconds":[]}]}"#
        )
        .is_err());
        assert!(ExecutionTrace::from_json(r#"{"phases":[{"kind":"projection"}]}"#).is_err());
    }
}
