//! Vectorized and mixed-precision variants of the exact-equilibration
//! kernels, differentially tested against the untouched scalar oracle in
//! [`crate::knapsack`].
//!
//! ## Bitwise-identity contract
//!
//! The SIMD entry points ([`exact_equilibration_simd`],
//! [`exact_equilibration_boxed_simd`]) reproduce the scalar kernels
//! **bitwise** — same iterates, same multipliers, same
//! [`sea_observe::KernelCounters`]. This is possible because only
//! *elementwise* computations are vectorized (breakpoint evaluation, event
//! slope coefficients, solution materialization, the boxed clamp sweep, and
//! the constraint-restoring rescale): per-lane SIMD arithmetic performs the
//! same IEEE-754 operation sequence as the scalar loop, so each lane is
//! bit-identical. Every *reduction* — the segment-sweep folds `a += daⱼ`,
//! `b += dbⱼ`, the materialized sum, and the active count — deliberately
//! stays in scalar index order, folding SIMD-computed per-entry
//! coefficients one at a time. The sweep and selection logic itself
//! (`select_lambda`, the segment scan) is reused unchanged from the scalar
//! kernels, so the two paths walk identical decision sequences.
//!
//! ## Mixed precision
//!
//! [`exact_equilibration_f32`] and [`exact_equilibration_boxed_f32`] run the
//! λ-search in `f32` (narrowed inputs, `f32` breakpoint sort and sweep) and
//! materialize the solution in `f64` from the original inputs, so row/column
//! totals and the downstream residual/dual accumulation stay in full
//! precision. They return `Ok(None)` when the `f32` search cannot produce a
//! usable multiplier (non-finite λ, or a positive total with an all-zero
//! materialization); callers fall back to the scalar `f64` kernel and count
//! a kernel fallback. The solver drives these during the `f32` phase of
//! [`Precision::F32Mixed`] and switches every pass back to `f64` for the
//! final polish epoch.

use crate::error::SeaError;
use crate::knapsack::{
    elastic_constants, exact_equilibration_boxed_with, exact_equilibration_with, select_lambda,
    validate_inputs, EquilibrationResult, EquilibrationScratch, FlatPolicy, KernelKind,
    SelectEvent, TotalMode,
};
use sea_linalg::simd::{self, SimdLevel};
use sea_linalg::sort;

/// User-facing SIMD policy, resolved once per solve to a
/// [`SimdLevel`] before the hot loop starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Scalar kernels only (the differential oracle's own path). The
    /// library default: zero behavioural risk.
    #[default]
    Off,
    /// Runtime dispatch: AVX2 when the CPU supports it, otherwise the
    /// portable lanes path. The CLI default.
    Auto,
    /// Require the explicit AVX2 path; resolving fails with
    /// [`SeaError::SimdUnsupported`] on CPUs without AVX2.
    Force,
}

impl SimdMode {
    /// Stable lowercase name, for CLI flags and report tables.
    pub fn name(self) -> &'static str {
        match self {
            SimdMode::Off => "off",
            SimdMode::Auto => "auto",
            SimdMode::Force => "force",
        }
    }

    /// Parse a CLI spelling. Accepts `off`/`scalar`/`none`, `auto`, and
    /// `force`/`on`.
    pub fn parse(s: &str) -> Option<SimdMode> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "scalar" | "none" => Some(SimdMode::Off),
            "auto" => Some(SimdMode::Auto),
            "force" | "on" => Some(SimdMode::Force),
            _ => None,
        }
    }

    /// Resolve the policy against the running CPU.
    ///
    /// # Errors
    /// [`SeaError::SimdUnsupported`] when `Force` is requested on a CPU
    /// without AVX2.
    pub fn resolve(self) -> Result<SimdLevel, SeaError> {
        match self {
            SimdMode::Off => Ok(SimdLevel::Scalar),
            SimdMode::Auto => Ok(SimdLevel::detect()),
            SimdMode::Force => {
                if simd::avx2_available() {
                    Ok(SimdLevel::Avx2)
                } else {
                    Err(SeaError::SimdUnsupported)
                }
            }
        }
    }
}

impl std::fmt::Display for SimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Arithmetic precision of the equilibration iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full double precision throughout (the default and the oracle).
    #[default]
    F64,
    /// Single-precision λ-search for **every** iteration, no polish. A
    /// diagnostic mode: on ill-conditioned problems it demonstrably fails
    /// where [`Precision::F32Mixed`] recovers; convergence is still judged
    /// by the f64 residual, so it simply stalls rather than lying.
    F32,
    /// Mixed precision: f32 λ-search iterates with f64 residual/dual
    /// accumulation, then a final f64 polish epoch once the f32 phase has
    /// converged or stagnated. Convergence is only ever declared from the
    /// polish phase, which must still pass the f64 KKT certificate.
    F32Mixed,
}

impl Precision {
    /// Stable lowercase name, for CLI flags and report tables.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::F32Mixed => "f32-mixed",
        }
    }

    /// Parse a CLI spelling. Accepts `f64`/`double`, `f32`/`single`, and
    /// `f32-mixed`/`mixed`.
    pub fn parse(s: &str) -> Option<Precision> {
        match s.to_ascii_lowercase().as_str() {
            "f64" | "double" => Some(Precision::F64),
            "f32" | "single" => Some(Precision::F32),
            "f32-mixed" | "f32mixed" | "mixed" => Some(Precision::F32Mixed),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Extra workhorse buffers for the vectorized kernels, embedded in
/// [`EquilibrationScratch`]. All buffers grow once and are reused; scalar
/// solves never touch them.
#[derive(Debug, Default, Clone)]
pub(crate) struct SimdScratch {
    /// Per-entry intercept deltas `daⱼ` (plain) / lower-event deltas (boxed).
    da: Vec<f64>,
    /// Per-entry slope deltas `dbⱼ = 1/(2γⱼ)`.
    db: Vec<f64>,
    /// Upper-event intercept deltas for the boxed kernel.
    da_hi: Vec<f64>,
    /// f32 breakpoint array for the mixed-precision λ-search.
    bp32: Vec<f32>,
    /// f32 event intercept deltas `da32ⱼ = q32ⱼ + sh32ⱼ·db32ⱼ` for the
    /// mixed-precision sweeps (filled 8 lanes wide, consumed in event order).
    da32: Vec<f32>,
    /// f32 event slope deltas `db32ⱼ = 1/(2·g32ⱼ)`.
    db32: Vec<f32>,
    /// Narrowed inputs for the mixed-precision λ-search.
    q32: Vec<f32>,
    g32: Vec<f32>,
    sh32: Vec<f32>,
    lo32: Vec<f32>,
    hi32: Vec<f32>,
}

impl SimdScratch {
    fn prepare_plain(&mut self, n: usize) {
        self.da.clear();
        self.da.resize(n, 0.0);
        self.db.clear();
        self.db.resize(n, 0.0);
    }

    fn prepare_boxed(&mut self, n: usize) {
        self.prepare_plain(n);
        self.da_hi.clear();
        self.da_hi.resize(n, 0.0);
    }

    fn prepare_f32(&mut self, n: usize) {
        self.bp32.clear();
        self.bp32.resize(n, 0.0);
        self.q32.clear();
        self.q32.resize(n, 0.0);
        self.g32.clear();
        self.g32.resize(n, 0.0);
        self.sh32.clear();
        self.sh32.resize(n, 0.0);
        self.da32.clear();
        self.da32.resize(n, 0.0);
        self.db32.clear();
        self.db32.resize(n, 0.0);
    }
}

/// Shared `n == 0` handling, byte-for-byte the scalar kernels' behaviour.
fn empty_subproblem(mode: TotalMode) -> Result<EquilibrationResult, SeaError> {
    match mode {
        TotalMode::Fixed { total } if total > 0.0 => Err(SeaError::InfeasibleSubproblem {
            side: "row",
            index: 0,
        }),
        TotalMode::Fixed { .. } => Ok(EquilibrationResult {
            lambda: 0.0,
            total: 0.0,
            active: 0,
        }),
        TotalMode::Elastic {
            alpha,
            prior,
            cross,
        } => Ok(EquilibrationResult {
            lambda: 2.0 * alpha * prior - cross,
            total: 0.0,
            active: 0,
        }),
    }
}

/// [`exact_equilibration_with`]
/// through the vectorized path: identical results, identical counters, SIMD
/// elementwise work. [`SimdLevel::Scalar`] delegates to the oracle itself.
///
/// # Errors
/// Same contract as [`crate::knapsack::exact_equilibration`].
#[allow(clippy::too_many_arguments)] // kernel inputs + output + workspace
pub fn exact_equilibration_simd(
    level: SimdLevel,
    kernel: KernelKind,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<EquilibrationResult, SeaError> {
    if level == SimdLevel::Scalar {
        return exact_equilibration_with(kernel, q, gamma, shift, mode, x_out, scratch);
    }
    validate_inputs(q, gamma, shift, x_out)?;
    let n = q.len();
    scratch.stats.subproblems += 1;

    if let TotalMode::Elastic { alpha, .. } = mode {
        if !(alpha > 0.0) {
            return Err(SeaError::NonPositiveWeight {
                which: "alpha",
                index: 0,
                value: alpha,
            });
        }
    }
    if n == 0 {
        return empty_subproblem(mode);
    }
    debug_assert!(
        gamma.iter().all(|&g| g > 0.0),
        "gamma must be strictly positive"
    );

    let lambda = match kernel {
        KernelKind::SortScan => simd_lambda_sort_scan(level, q, gamma, shift, mode, scratch),
        KernelKind::Quickselect => simd_lambda_quickselect(level, q, gamma, shift, mode, scratch),
    };
    if !lambda.is_finite() {
        return Err(SeaError::NumericalBreakdown { iteration: 0 });
    }

    let (sum, active) = simd::materialize_plain(level, q, gamma, shift, lambda, x_out);

    let total = match mode {
        TotalMode::Fixed { total } => total,
        TotalMode::Elastic {
            alpha,
            prior,
            cross,
        } => prior - (lambda + cross) / (2.0 * alpha),
    };

    let err = total - sum;
    if err != 0.0 && sum > 0.0 && err.abs() > 0.0 {
        let scale = total / sum;
        if scale.is_finite() && scale > 0.0 {
            simd::scale_in_place(level, x_out, scale);
        }
    }

    Ok(EquilibrationResult {
        lambda,
        total,
        active,
    })
}

/// SIMD sort-scan λ-search: vectorized breakpoint and slope-coefficient
/// fills, then the scalar oracle's own segment sweep folding the
/// precomputed `(daⱼ, dbⱼ)` in sorted order.
fn simd_lambda_sort_scan(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f64 {
    let n = q.len();
    scratch.prepare(n);
    scratch.breakpoints.resize(n, 0.0);
    scratch.simd.prepare_plain(n);
    simd::event_coeffs_plain(
        level,
        q,
        gamma,
        shift,
        &mut scratch.breakpoints,
        &mut scratch.simd.da,
        &mut scratch.simd.db,
    );
    scratch.order.resize(n, 0);
    sort::identity_permutation(&mut scratch.order);
    sort::argsort(&mut scratch.order, &scratch.breakpoints);

    let mut a = 0.0_f64;
    let mut b = 0.0_f64;
    let (el_slope, el_const) = elastic_constants(mode);

    let mut lambda = f64::NAN;
    let mut swept = 0u64;
    for r in 0..=n {
        swept += 1;
        let upper = if r < n {
            scratch.breakpoints[scratch.order[r] as usize]
        } else {
            f64::INFINITY
        };
        let cand = match mode {
            TotalMode::Fixed { total } => {
                if b > 0.0 {
                    Some((total - a) / b)
                } else if total <= 0.0 {
                    Some(if r < n { upper } else { 0.0 })
                } else {
                    None
                }
            }
            TotalMode::Elastic { .. } => Some((el_const - a) / (b + el_slope)),
        };
        if let Some(c) = cand {
            if c <= upper {
                lambda = c;
                break;
            }
        }
        if r < n {
            let j = scratch.order[r] as usize;
            a += scratch.simd.da[j];
            b += scratch.simd.db[j];
        }
    }
    scratch.stats.breakpoints_scanned += swept;
    lambda
}

/// SIMD selection λ-search: vectorized event-coefficient fill, then the
/// scalar oracle's `select_lambda` over the identical event array (hence
/// identical pivots and partition path).
fn simd_lambda_quickselect(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f64 {
    let n = q.len();
    scratch.prepare(n);
    scratch.breakpoints.resize(n, 0.0);
    scratch.simd.prepare_plain(n);
    simd::event_coeffs_plain(
        level,
        q,
        gamma,
        shift,
        &mut scratch.breakpoints,
        &mut scratch.simd.da,
        &mut scratch.simd.db,
    );
    for j in 0..n {
        scratch.events.push(SelectEvent {
            v: scratch.breakpoints[j],
            da: scratch.simd.da[j],
            db: scratch.simd.db[j],
        });
    }
    select_lambda(
        &mut scratch.events,
        0.0,
        mode,
        FlatPolicy::NonnegativePrefix,
        &mut scratch.stats.quickselect_pivots,
    )
    .unwrap_or(f64::NAN)
}

/// [`exact_equilibration_boxed_with`]
/// through the vectorized path: identical results, identical counters.
///
/// # Errors
/// Same contract as [`crate::knapsack::exact_equilibration_boxed`].
#[allow(clippy::too_many_arguments)]
pub fn exact_equilibration_boxed_simd(
    level: SimdLevel,
    kernel: KernelKind,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<EquilibrationResult, SeaError> {
    if level == SimdLevel::Scalar {
        return exact_equilibration_boxed_with(
            kernel, q, gamma, shift, lo, hi, mode, x_out, scratch,
        );
    }
    validate_inputs(q, gamma, shift, x_out)?;
    let n = q.len();
    scratch.stats.subproblems += 1;
    if lo.len() != n || hi.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration_boxed bounds",
            expected: n,
            actual: lo.len().min(hi.len()),
        });
    }
    for j in 0..n {
        if lo[j] > hi[j] {
            return Err(SeaError::InconsistentBounds {
                index: j,
                lower: lo[j],
                upper: hi[j],
            });
        }
    }
    let sum_lo: f64 = lo.iter().sum();
    let sum_hi: f64 = hi.iter().sum();
    if let TotalMode::Fixed { total } = mode {
        let span = (sum_hi - sum_lo).abs().max(1.0);
        if total < sum_lo - 1e-9 * span || total > sum_hi + 1e-9 * span {
            return Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 0,
            });
        }
    }
    if let TotalMode::Elastic { alpha, .. } = mode {
        if !(alpha > 0.0) {
            return Err(SeaError::NonPositiveWeight {
                which: "alpha",
                index: 0,
                value: alpha,
            });
        }
    }

    let mut lambda = match kernel {
        KernelKind::SortScan => {
            simd_boxed_lambda_sort_scan(level, q, gamma, shift, lo, hi, sum_lo, mode, scratch)
        }
        KernelKind::Quickselect => {
            simd_boxed_lambda_quickselect(level, q, gamma, shift, lo, hi, sum_lo, mode, scratch)
        }
    };
    if !lambda.is_finite() {
        lambda = match mode {
            TotalMode::Fixed { total } if total >= sum_hi => f64::MAX.sqrt(),
            _ => -f64::MAX.sqrt(),
        };
    }

    let active = simd::materialize_boxed(level, q, gamma, shift, lo, hi, lambda, x_out);
    let total = match mode {
        TotalMode::Fixed { total } => total,
        TotalMode::Elastic {
            alpha,
            prior,
            cross,
        } => prior - (lambda + cross) / (2.0 * alpha),
    };
    scratch.stats.boxed_clamps += (n - active) as u64;

    Ok(EquilibrationResult {
        lambda,
        total,
        active,
    })
}

/// SIMD boxed sort-scan λ-search: vectorized two-sided breakpoint and
/// hinge-coefficient fills, then the oracle's sweep folding precomputed
/// deltas in sorted order.
#[allow(clippy::too_many_arguments)]
fn simd_boxed_lambda_sort_scan(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    sum_lo: f64,
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f64 {
    let n = q.len();
    scratch.prepare(n);
    scratch.events_hi.clear();
    scratch.events_hi.resize(2 * n, 0.0);
    {
        let (elo, ehi) = scratch.events_hi.split_at_mut(n);
        simd::breakpoints_boxed(level, q, gamma, shift, lo, hi, elo, ehi);
    }
    scratch.simd.prepare_boxed(n);
    simd::event_coeffs_boxed(
        level,
        q,
        gamma,
        shift,
        lo,
        hi,
        &mut scratch.simd.da,
        &mut scratch.simd.da_hi,
        &mut scratch.simd.db,
    );
    scratch.order.resize(2 * n, 0);
    sort::identity_permutation(&mut scratch.order);
    sort::argsort(&mut scratch.order, &scratch.events_hi);

    let (el_slope, el_const) = elastic_constants(mode);

    let mut a = sum_lo;
    let mut b = 0.0_f64;
    let mut lambda = f64::NAN;
    let mut seg_lo = f64::NEG_INFINITY;
    let mut swept = 0u64;
    for r in 0..=(2 * n) {
        swept += 1;
        let upper = if r < 2 * n {
            scratch.events_hi[scratch.order[r] as usize]
        } else {
            f64::INFINITY
        };
        let cand = match mode {
            TotalMode::Fixed { total } => {
                if b > 0.0 {
                    Some((total - a) / b)
                } else if (a - total).abs() <= 1e-12 * total.abs().max(1.0) {
                    Some(if r < 2 * n { upper } else { seg_lo })
                } else {
                    None
                }
            }
            TotalMode::Elastic { .. } => Some((el_const - a) / (b + el_slope)),
        };
        if let Some(c) = cand {
            if c <= upper {
                lambda = c.max(seg_lo);
                break;
            }
        }
        if r < 2 * n {
            let e = scratch.order[r] as usize;
            let j = e % n;
            if e < n {
                a += scratch.simd.da[j];
                b += scratch.simd.db[j];
            } else {
                a += scratch.simd.da_hi[j];
                b -= scratch.simd.db[j];
            }
            seg_lo = upper;
        }
    }
    scratch.stats.breakpoints_scanned += swept;
    lambda
}

/// SIMD boxed selection λ-search: vectorized coefficient fills, then the
/// oracle's `select_lambda` over an identical interleaved event array.
#[allow(clippy::too_many_arguments)]
fn simd_boxed_lambda_quickselect(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    sum_lo: f64,
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f64 {
    let n = q.len();
    scratch.prepare(n);
    scratch.events_hi.clear();
    scratch.events_hi.resize(2 * n, 0.0);
    {
        let (elo, ehi) = scratch.events_hi.split_at_mut(n);
        simd::breakpoints_boxed(level, q, gamma, shift, lo, hi, elo, ehi);
    }
    scratch.simd.prepare_boxed(n);
    simd::event_coeffs_boxed(
        level,
        q,
        gamma,
        shift,
        lo,
        hi,
        &mut scratch.simd.da,
        &mut scratch.simd.da_hi,
        &mut scratch.simd.db,
    );
    for j in 0..n {
        scratch.events.push(SelectEvent {
            v: scratch.events_hi[j],
            da: scratch.simd.da[j],
            db: scratch.simd.db[j],
        });
        scratch.events.push(SelectEvent {
            v: scratch.events_hi[n + j],
            da: scratch.simd.da_hi[j],
            db: -scratch.simd.db[j],
        });
    }
    select_lambda(
        &mut scratch.events,
        sum_lo,
        mode,
        FlatPolicy::BoundedMatch,
        &mut scratch.stats.quickselect_pivots,
    )
    .unwrap_or(f64::NAN)
}

// ---------------------------------------------------------------------------
// Mixed precision: f32 λ-search, f64 materialization.
// ---------------------------------------------------------------------------

/// Mixed-precision plain equilibration: f32 sort-scan λ-search over narrowed
/// inputs, f64 materialization and constraint-restoring rescale.
///
/// Returns `Ok(None)` when the f32 search cannot stand in for the f64 kernel
/// (non-finite λ, or a positive total left with an all-zero materialization);
/// the caller must then fall back to the scalar `f64` kernel.
///
/// # Errors
/// Same contract as [`crate::knapsack::exact_equilibration`].
pub fn exact_equilibration_f32(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<Option<EquilibrationResult>, SeaError> {
    validate_inputs(q, gamma, shift, x_out)?;
    let n = q.len();
    scratch.stats.subproblems += 1;
    if let TotalMode::Elastic { alpha, .. } = mode {
        if !(alpha > 0.0) {
            return Err(SeaError::NonPositiveWeight {
                which: "alpha",
                index: 0,
                value: alpha,
            });
        }
    }
    if n == 0 {
        return empty_subproblem(mode).map(Some);
    }

    scratch.prepare(n);
    scratch.simd.prepare_f32(n);
    simd::narrow_to_f32(level, q, &mut scratch.simd.q32);
    simd::narrow_to_f32(level, gamma, &mut scratch.simd.g32);
    simd::narrow_to_f32(level, shift, &mut scratch.simd.sh32);

    let lambda32 = f32_lambda_sort_scan(level, mode, scratch);
    if !lambda32.is_finite() {
        return Ok(None);
    }
    let lambda = lambda32 as f64;

    let (sum, active) = simd::materialize_plain(level, q, gamma, shift, lambda, x_out);
    let total = match mode {
        TotalMode::Fixed { total } => total,
        TotalMode::Elastic {
            alpha,
            prior,
            cross,
        } => prior - (lambda + cross) / (2.0 * alpha),
    };
    if total > 0.0 && !(sum > 0.0) {
        // The f32 multiplier undershot every breakpoint; only the f64
        // kernel can place λ accurately enough.
        return Ok(None);
    }
    if sum > 0.0 && total != sum {
        let scale = total / sum;
        if scale.is_finite() && scale > 0.0 {
            simd::scale_in_place(level, x_out, scale);
        }
    }
    Ok(Some(EquilibrationResult {
        lambda,
        total,
        active,
    }))
}

/// f32 replica of the plain sort-scan sweep over the narrowed inputs held
/// in the scratch. The breakpoint fill and the per-event coefficients
/// (`da32`, `db32` — the divisions) run 8 lanes wide at the selected SIMD
/// level; the sweep itself consumes them in sorted event order.
fn f32_lambda_sort_scan(
    level: SimdLevel,
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f32 {
    let n = scratch.simd.q32.len();
    simd::breakpoints_plain_f32(
        level,
        &scratch.simd.q32,
        &scratch.simd.g32,
        &scratch.simd.sh32,
        &mut scratch.simd.bp32,
    );
    simd::event_coeffs_plain_f32(
        level,
        &scratch.simd.q32,
        &scratch.simd.g32,
        &scratch.simd.sh32,
        &mut scratch.simd.da32,
        &mut scratch.simd.db32,
    );
    scratch.order.resize(n, 0);
    sort::identity_permutation(&mut scratch.order);
    sort::argsort_f32(&mut scratch.order, &scratch.simd.bp32);

    let (el_slope64, el_const64) = elastic_constants(mode);
    let el_slope = el_slope64 as f32;
    let el_const = el_const64 as f32;
    let total32 = match mode {
        TotalMode::Fixed { total } => total as f32,
        TotalMode::Elastic { .. } => 0.0,
    };

    let mut a = 0.0_f32;
    let mut b = 0.0_f32;
    let mut lambda = f32::NAN;
    let mut swept = 0u64;
    for r in 0..=n {
        swept += 1;
        let upper = if r < n {
            scratch.simd.bp32[scratch.order[r] as usize]
        } else {
            f32::INFINITY
        };
        let cand = match mode {
            TotalMode::Fixed { .. } => {
                if b > 0.0 {
                    Some((total32 - a) / b)
                } else if total32 <= 0.0 {
                    Some(if r < n { upper } else { 0.0 })
                } else {
                    None
                }
            }
            TotalMode::Elastic { .. } => Some((el_const - a) / (b + el_slope)),
        };
        if let Some(c) = cand {
            if c <= upper {
                lambda = c;
                break;
            }
        }
        if r < n {
            let j = scratch.order[r] as usize;
            a += scratch.simd.da32[j];
            b += scratch.simd.db32[j];
        }
    }
    scratch.stats.breakpoints_scanned += swept;
    lambda
}

/// Mixed-precision boxed equilibration: f32 two-sided sort-scan λ-search,
/// f64 clamp materialization. Returns `Ok(None)` when the f32 search fails
/// (non-finite λ); callers fall back to the scalar `f64` kernel.
///
/// # Errors
/// Same contract as [`crate::knapsack::exact_equilibration_boxed`].
#[allow(clippy::too_many_arguments)]
pub fn exact_equilibration_boxed_f32(
    level: SimdLevel,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<Option<EquilibrationResult>, SeaError> {
    validate_inputs(q, gamma, shift, x_out)?;
    let n = q.len();
    scratch.stats.subproblems += 1;
    if lo.len() != n || hi.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration_boxed bounds",
            expected: n,
            actual: lo.len().min(hi.len()),
        });
    }
    for j in 0..n {
        if lo[j] > hi[j] {
            return Err(SeaError::InconsistentBounds {
                index: j,
                lower: lo[j],
                upper: hi[j],
            });
        }
    }
    let sum_lo: f64 = lo.iter().sum();
    let sum_hi: f64 = hi.iter().sum();
    if let TotalMode::Fixed { total } = mode {
        let span = (sum_hi - sum_lo).abs().max(1.0);
        if total < sum_lo - 1e-9 * span || total > sum_hi + 1e-9 * span {
            return Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 0,
            });
        }
    }
    if let TotalMode::Elastic { alpha, .. } = mode {
        if !(alpha > 0.0) {
            return Err(SeaError::NonPositiveWeight {
                which: "alpha",
                index: 0,
                value: alpha,
            });
        }
    }

    scratch.prepare(n);
    scratch.simd.prepare_f32(n);
    scratch.simd.lo32.clear();
    scratch.simd.lo32.resize(n, 0.0);
    scratch.simd.hi32.clear();
    scratch.simd.hi32.resize(n, 0.0);
    simd::narrow_to_f32(level, q, &mut scratch.simd.q32);
    simd::narrow_to_f32(level, gamma, &mut scratch.simd.g32);
    simd::narrow_to_f32(level, shift, &mut scratch.simd.sh32);
    simd::narrow_to_f32(level, lo, &mut scratch.simd.lo32);
    simd::narrow_to_f32(level, hi, &mut scratch.simd.hi32);

    let lambda32 = f32_boxed_lambda_sort_scan(level, sum_lo as f32, mode, scratch);
    if !lambda32.is_finite() {
        return Ok(None);
    }
    let lambda = lambda32 as f64;

    let active = simd::materialize_boxed(level, q, gamma, shift, lo, hi, lambda, x_out);
    let total = match mode {
        TotalMode::Fixed { total } => total,
        TotalMode::Elastic {
            alpha,
            prior,
            cross,
        } => prior - (lambda + cross) / (2.0 * alpha),
    };
    scratch.stats.boxed_clamps += (n - active) as u64;
    Ok(Some(EquilibrationResult {
        lambda,
        total,
        active,
    }))
}

/// f32 replica of the boxed sort-scan sweep over the narrowed inputs. Fills
/// and per-event coefficients run 8 lanes wide at the selected SIMD level.
fn f32_boxed_lambda_sort_scan(
    level: SimdLevel,
    sum_lo: f32,
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f32 {
    let n = scratch.simd.q32.len();
    scratch.bp32_boxed_fill(level);
    simd::event_coeffs_plain_f32(
        level,
        &scratch.simd.q32,
        &scratch.simd.g32,
        &scratch.simd.sh32,
        &mut scratch.simd.da32,
        &mut scratch.simd.db32,
    );
    scratch.order.resize(2 * n, 0);
    sort::identity_permutation(&mut scratch.order);
    sort::argsort_f32(&mut scratch.order, &scratch.simd.bp32);

    let (el_slope64, el_const64) = elastic_constants(mode);
    let el_slope = el_slope64 as f32;
    let el_const = el_const64 as f32;
    let total32 = match mode {
        TotalMode::Fixed { total } => total as f32,
        TotalMode::Elastic { .. } => 0.0,
    };

    let mut a = sum_lo;
    let mut b = 0.0_f32;
    let mut lambda = f32::NAN;
    let mut seg_lo = f32::NEG_INFINITY;
    let mut swept = 0u64;
    for r in 0..=(2 * n) {
        swept += 1;
        let upper = if r < 2 * n {
            scratch.simd.bp32[scratch.order[r] as usize]
        } else {
            f32::INFINITY
        };
        let cand = match mode {
            TotalMode::Fixed { .. } => {
                if b > 0.0 {
                    Some((total32 - a) / b)
                } else if (a - total32).abs() <= 1e-6 * total32.abs().max(1.0) {
                    Some(if r < 2 * n { upper } else { seg_lo })
                } else {
                    None
                }
            }
            TotalMode::Elastic { .. } => Some((el_const - a) / (b + el_slope)),
        };
        if let Some(c) = cand {
            if c <= upper {
                lambda = c.max(seg_lo);
                break;
            }
        }
        if r < 2 * n {
            let e = scratch.order[r] as usize;
            let j = e % n;
            if e < n {
                a += scratch.simd.da32[j] - scratch.simd.lo32[j];
                b += scratch.simd.db32[j];
            } else {
                a += scratch.simd.hi32[j] - scratch.simd.da32[j];
                b -= scratch.simd.db32[j];
            }
            seg_lo = upper;
        }
    }
    scratch.stats.breakpoints_scanned += swept;
    lambda
}

impl EquilibrationScratch {
    /// Fill the f32 boxed breakpoint array (2n events: lower then upper)
    /// from the narrowed inputs already staged in the SIMD scratch, 8 lanes
    /// at a time at the selected level.
    fn bp32_boxed_fill(&mut self, level: SimdLevel) {
        let n = self.simd.q32.len();
        self.simd.bp32.clear();
        self.simd.bp32.resize(2 * n, 0.0);
        let (out_lo, out_hi) = self.simd.bp32.split_at_mut(n);
        simd::breakpoints_boxed_f32(
            level,
            &self.simd.q32,
            &self.simd.g32,
            &self.simd.sh32,
            &self.simd.lo32,
            &self.simd.hi32,
            out_lo,
            out_hi,
        );
    }
}
