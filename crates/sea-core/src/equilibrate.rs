//! Row/column equilibration passes.
//!
//! One pass maximizes the dual over one multiplier block (all `λᵢ` or all
//! `μⱼ′`) with the other block fixed — which, by the duality argument of
//! §3.1, is exactly a set of *independent* single-constraint subproblems,
//! one per row (resp. column), each solved in closed form by
//! [`crate::knapsack::exact_equilibration`]. Independence is what makes SEA
//! parallel: every subproblem can go to a distinct processor.
//!
//! Both passes share one orientation-agnostic implementation: the caller
//! supplies the prior and weight matrices oriented so subproblems are rows
//! (the column pass passes transposed copies built once per solve).

use crate::error::SeaError;
use crate::knapsack::{exact_equilibration_with, EquilibrationScratch, KernelKind, TotalMode};
use crate::parallel::Parallelism;
use crate::supervisor::TaskFault;
use rayon::prelude::*;
use sea_linalg::DenseMatrix;
use sea_observe::KernelCounters;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    /// Workspace reused by every *serial* pass run on this thread. A pass
    /// sizes the buffers on first use and later passes (and later solves)
    /// reuse them, keeping the steady-state solver loop allocation-free —
    /// the property `tests/alloc_free.rs` audits. Rayon passes instead get
    /// one scratch per worker via `try_for_each_init`.
    static SERIAL_SCRATCH: RefCell<TaskScratch> = RefCell::new(TaskScratch::new());
}

/// Thread-safe accumulator for [`KernelCounters`] harvested from the
/// per-thread [`TaskScratch`] workspaces of a rayon pass. The pass hands
/// each worker its own scratch (`try_for_each_init`), so counters are
/// flushed here with relaxed atomics once per task — contention-free in
/// practice and exact in total.
#[derive(Debug, Default)]
pub struct PassCounters {
    subproblems: AtomicU64,
    breakpoints_scanned: AtomicU64,
    quickselect_pivots: AtomicU64,
    boxed_clamps: AtomicU64,
    // Tracked outside `KernelCounters`, whose 4-field wire layout is pinned
    // by the JSONL golden fixture.
    kernel_fallbacks: AtomicU64,
}

impl PassCounters {
    /// Fold one scratch's counters into the accumulator.
    pub fn add(&self, c: &KernelCounters) {
        if c.is_empty() {
            return;
        }
        self.subproblems.fetch_add(c.subproblems, Ordering::Relaxed);
        self.breakpoints_scanned
            .fetch_add(c.breakpoints_scanned, Ordering::Relaxed);
        self.quickselect_pivots
            .fetch_add(c.quickselect_pivots, Ordering::Relaxed);
        self.boxed_clamps
            .fetch_add(c.boxed_clamps, Ordering::Relaxed);
    }

    /// Fold one scratch's quickselect→sort-scan fallback count in.
    pub fn add_fallbacks(&self, n: u64) {
        if n != 0 {
            self.kernel_fallbacks.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total quickselect→sort-scan fallbacks accumulated so far.
    pub fn fallbacks(&self) -> u64 {
        self.kernel_fallbacks.load(Ordering::Relaxed)
    }

    /// Read the current totals.
    pub fn snapshot(&self) -> KernelCounters {
        KernelCounters {
            subproblems: self.subproblems.load(Ordering::Relaxed),
            breakpoints_scanned: self.breakpoints_scanned.load(Ordering::Relaxed),
            quickselect_pivots: self.quickselect_pivots.load(Ordering::Relaxed),
            boxed_clamps: self.boxed_clamps.load(Ordering::Relaxed),
        }
    }
}

/// Per-thread scratch: gather buffers for structural-zero subproblems plus
/// the kernel's own workspace. Reused across every subproblem a thread
/// handles (allocation-free hot loop).
#[derive(Debug, Default, Clone)]
pub(crate) struct TaskScratch {
    eq: EquilibrationScratch,
    q: Vec<f64>,
    g: Vec<f64>,
    sh: Vec<f64>,
    x: Vec<f64>,
    /// Quickselect→sort-scan fallbacks taken by this thread's tasks.
    fallbacks: u64,
}

impl TaskScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// Inputs shared by every subproblem of a pass, in "row orientation".
pub struct PassInputs<'a> {
    /// Prior matrix, oriented so each subproblem is a contiguous row.
    pub prior: &'a DenseMatrix,
    /// Weight matrix, same orientation.
    pub gamma: &'a DenseMatrix,
    /// Structural-zero support lists (per subproblem), if any.
    pub support: Option<&'a [Vec<u32>]>,
    /// The opposite side's multipliers (length = subproblem size).
    pub shift: &'a [f64],
    /// `"row"` or `"column"`, for error reporting.
    pub side: &'static str,
    /// Which equilibration kernel solves each subproblem.
    pub kernel: KernelKind,
    /// Scripted fault for one subproblem of this pass (fault-injection
    /// harness only; `None` in production).
    pub fault: Option<TaskFault>,
}

/// Run the configured kernel on one subproblem; on a pathological result
/// (non-finite `λ` or total — or a scripted kernel fault) re-solve with the
/// robust sort-scan kernel and count the fallback. Quickselect's
/// median-of-three pivoting can in principle degrade on adversarial
/// breakpoint patterns; sort-scan is the slower oracle both kernels are
/// differentially tested against, so it is the safe harbor.
#[allow(clippy::too_many_arguments)] // kernel inputs + output + workspace + fallback sink
fn kernel_solve(
    kernel: KernelKind,
    force_fallback: bool,
    q: &[f64],
    g: &[f64],
    sh: &[f64],
    mode: TotalMode,
    x: &mut [f64],
    eq: &mut EquilibrationScratch,
    fallbacks: &mut u64,
) -> Result<(f64, f64), SeaError> {
    let r = exact_equilibration_with(kernel, q, g, sh, mode, x, eq)?;
    let pathological = force_fallback || !r.lambda.is_finite() || !r.total.is_finite();
    if pathological && kernel == KernelKind::Quickselect {
        *fallbacks += 1;
        let r = exact_equilibration_with(KernelKind::SortScan, q, g, sh, mode, x, eq)?;
        return Ok((r.lambda, r.total));
    }
    Ok((r.lambda, r.total))
}

/// Solve one subproblem; returns `(λ, realized total)` and writes the
/// subproblem's entries into `x_row`.
fn solve_task(
    inp: &PassInputs<'_>,
    i: usize,
    mode: TotalMode,
    x_row: &mut [f64],
    scratch: &mut TaskScratch,
) -> Result<(f64, f64), SeaError> {
    let force_fallback = match inp.fault {
        Some(f) if f.index == i => {
            if f.panic {
                panic!("injected worker panic (fault plan)");
            }
            true
        }
        _ => false,
    };
    match inp.support {
        None => kernel_solve(
            inp.kernel,
            force_fallback,
            inp.prior.row(i),
            inp.gamma.row(i),
            inp.shift,
            mode,
            x_row,
            &mut scratch.eq,
            &mut scratch.fallbacks,
        ),
        Some(support) => {
            let idx = &support[i];
            let k = idx.len();
            if k == 0 {
                x_row.fill(0.0);
                return match mode {
                    TotalMode::Fixed { total } if total > 0.0 => {
                        Err(SeaError::InfeasibleSubproblem {
                            side: inp.side,
                            index: i,
                        })
                    }
                    TotalMode::Fixed { .. } => Ok((0.0, 0.0)),
                    TotalMode::Elastic {
                        alpha,
                        prior,
                        cross,
                    } => Ok((2.0 * alpha * prior - cross, 0.0)),
                };
            }
            scratch.q.clear();
            scratch.g.clear();
            scratch.sh.clear();
            let prior_row = inp.prior.row(i);
            let gamma_row = inp.gamma.row(i);
            for &j in idx {
                let j = j as usize;
                scratch.q.push(prior_row[j]);
                scratch.g.push(gamma_row[j]);
                scratch.sh.push(inp.shift[j]);
            }
            scratch.x.resize(k, 0.0);
            let TaskScratch {
                eq,
                q,
                g,
                sh,
                x,
                fallbacks,
            } = scratch;
            let (lambda, total) =
                kernel_solve(inp.kernel, force_fallback, q, g, sh, mode, x, eq, fallbacks)
                    .map_err(|e| match e {
                        SeaError::InfeasibleSubproblem { .. } => SeaError::InfeasibleSubproblem {
                            side: inp.side,
                            index: i,
                        },
                        other => other,
                    })?;
            x_row.fill(0.0);
            for (&j, &v) in idx.iter().zip(&scratch.x) {
                x_row[j as usize] = v;
            }
            Ok((lambda, total))
        }
    }
}

/// [`solve_task`] with panic containment: a worker panic (including a
/// scripted one) becomes [`SeaError::WorkerPanic`] instead of unwinding
/// through — or, under rayon, aborting — the whole solve. The non-panic
/// path of `catch_unwind` costs no allocation, preserving the
/// allocation-free steady state.
fn run_task(
    inp: &PassInputs<'_>,
    i: usize,
    mode: TotalMode,
    x_row: &mut [f64],
    scratch: &mut TaskScratch,
) -> Result<(f64, f64), SeaError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        solve_task(inp, i, mode, x_row, scratch)
    })) {
        Ok(r) => r,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic payload of unknown type".to_string());
            Err(SeaError::WorkerPanic {
                side: inp.side,
                index: i,
                message,
            })
        }
    }
}

/// Run a full equilibration pass.
///
/// `modes(i)` supplies the total specification of subproblem `i`; `lambda`
/// and `totals_out` receive, per subproblem, the constraint multiplier and
/// the realized total; `x` (same orientation as `inp.prior`) receives the
/// primal iterate. When `costs` is provided it is filled with per-task
/// wall-clock seconds for the scheduling simulator. When `counters` is
/// provided the kernels' work counters are accumulated into it (pass `None`
/// when nothing is observing; the flush is skipped entirely).
///
/// # Errors
/// Propagates the first subproblem failure (infeasibility, invalid data).
#[allow(clippy::too_many_arguments)] // pass = inputs + three outputs + mode + two optional sinks
pub fn equilibration_pass(
    inp: &PassInputs<'_>,
    modes: &(dyn Fn(usize) -> TotalMode + Sync),
    lambda: &mut [f64],
    totals_out: &mut [f64],
    x: &mut DenseMatrix,
    par: Parallelism,
    mut costs: Option<&mut Vec<f64>>,
    counters: Option<&PassCounters>,
) -> Result<(), SeaError> {
    let m = inp.prior.rows();
    debug_assert_eq!(lambda.len(), m);
    debug_assert_eq!(totals_out.len(), m);
    debug_assert_eq!(x.rows(), m);
    debug_assert_eq!(x.cols(), inp.prior.cols());

    if let Some(c) = costs.as_deref_mut() {
        c.clear();
        c.resize(m, 0.0);
    }
    let timing = costs.is_some();
    // A dummy slot so the zip below always has a cost target.
    let mut dummy: Vec<f64> = Vec::new();
    let cost_slice: &mut [f64] = match costs {
        Some(c) => c.as_mut_slice(),
        None => &mut dummy,
    };

    match par {
        Parallelism::Serial => SERIAL_SCRATCH.with_borrow_mut(|scratch| {
            // The scratch outlives any one pass; drop counts a previous
            // (possibly aborted) pass left behind before accumulating.
            scratch.eq.stats = KernelCounters::default();
            scratch.fallbacks = 0;
            for i in 0..m {
                let t0 = timing.then(Instant::now);
                let (l, s) = run_task(inp, i, modes(i), x.row_mut(i), scratch)?;
                lambda[i] = l;
                totals_out[i] = s;
                if let Some(t0) = t0 {
                    cost_slice[i] = t0.elapsed().as_secs_f64();
                }
            }
            if let Some(c) = counters {
                c.add(&scratch.eq.stats);
                c.add_fallbacks(scratch.fallbacks);
            }
            Ok(())
        }),
        Parallelism::Rayon | Parallelism::RayonThreads(_) => {
            // `RayonThreads` pools are installed by the solver around the
            // whole solve; here both variants fan out on the current pool.
            if timing {
                lambda
                    .par_iter_mut()
                    .zip(totals_out.par_iter_mut())
                    .zip(x.par_row_iter_mut())
                    .zip(cost_slice.par_iter_mut())
                    .enumerate()
                    .try_for_each_init(TaskScratch::new, |scratch, (i, (((l, s), xr), c))| {
                        let t0 = Instant::now();
                        let (lv, sv) = run_task(inp, i, modes(i), xr, scratch)?;
                        *l = lv;
                        *s = sv;
                        *c = t0.elapsed().as_secs_f64();
                        if let Some(acc) = counters {
                            acc.add(&scratch.eq.stats);
                            acc.add_fallbacks(scratch.fallbacks);
                            scratch.eq.stats = KernelCounters::default();
                            scratch.fallbacks = 0;
                        }
                        Ok(())
                    })
            } else {
                lambda
                    .par_iter_mut()
                    .zip(totals_out.par_iter_mut())
                    .zip(x.par_row_iter_mut())
                    .enumerate()
                    .try_for_each_init(TaskScratch::new, |scratch, (i, ((l, s), xr))| {
                        let (lv, sv) = run_task(inp, i, modes(i), xr, scratch)?;
                        *l = lv;
                        *s = sv;
                        if let Some(acc) = counters {
                            acc.add(&scratch.eq.stats);
                            acc.add_fallbacks(scratch.fallbacks);
                            scratch.eq.stats = KernelCounters::default();
                            scratch.fallbacks = 0;
                        }
                        Ok(())
                    })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DenseMatrix, DenseMatrix) {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 0.0, 2.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 3, 1.0).unwrap();
        (x0, gamma)
    }

    #[test]
    fn fixed_pass_hits_row_totals() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            fault: None,
        };
        let s0 = [9.0, 3.0];
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        equilibration_pass(
            &inp,
            &|i| TotalMode::Fixed { total: s0[i] },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            None,
        )
        .unwrap();
        let sums = x.row_sums();
        assert!((sums[0] - 9.0).abs() < 1e-9);
        assert!((sums[1] - 3.0).abs() < 1e-9);
        assert!(x.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (x0, gamma) = setup();
        let shift = vec![0.5, -0.5, 0.25];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            fault: None,
        };
        let run = |par: Parallelism| {
            let mut lambda = vec![0.0; 2];
            let mut totals = vec![0.0; 2];
            let mut x = DenseMatrix::zeros(2, 3).unwrap();
            equilibration_pass(
                &inp,
                &|i| TotalMode::Elastic {
                    alpha: 1.0 + i as f64,
                    prior: 5.0,
                    cross: 0.0,
                },
                &mut lambda,
                &mut totals,
                &mut x,
                par,
                None,
                None,
            )
            .unwrap();
            (lambda, totals, x)
        };
        let (l1, t1, x1) = run(Parallelism::Serial);
        let (l2, t2, x2) = run(Parallelism::Rayon);
        assert_eq!(l1, l2);
        assert_eq!(t1, t2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn structural_support_keeps_zeros() {
        let (x0, gamma) = setup();
        let support = vec![vec![0u32, 1, 2], vec![0u32, 2]];
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: Some(&support),
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            fault: None,
        };
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 8.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            None,
        )
        .unwrap();
        assert_eq!(x.get(1, 1), 0.0, "structural zero must stay zero");
        let sums = x.row_sums();
        assert!((sums[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_structural_row_with_positive_total_is_infeasible() {
        let (x0, gamma) = setup();
        let support = vec![vec![0u32, 1, 2], vec![]];
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: Some(&support),
            shift: &shift,
            side: "column",
            kernel: KernelKind::SortScan,
            fault: None,
        };
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        let e = equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 8.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            None,
        );
        assert!(matches!(
            e,
            Err(SeaError::InfeasibleSubproblem {
                side: "column",
                index: 1
            })
        ));
    }

    #[test]
    fn cost_recording_fills_per_task_entries() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            fault: None,
        };
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        let mut costs = Vec::new();
        equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 5.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            Some(&mut costs),
            None,
        )
        .unwrap();
        assert_eq!(costs.len(), 2);
        assert!(costs.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn pass_counters_collect_from_every_worker() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            fault: None,
        };
        for par in [Parallelism::Serial, Parallelism::Rayon] {
            let counters = PassCounters::default();
            let mut lambda = vec![0.0; 2];
            let mut totals = vec![0.0; 2];
            let mut x = DenseMatrix::zeros(2, 3).unwrap();
            equilibration_pass(
                &inp,
                &|_| TotalMode::Fixed { total: 5.0 },
                &mut lambda,
                &mut totals,
                &mut x,
                par,
                None,
                Some(&counters),
            )
            .unwrap();
            let snap = counters.snapshot();
            assert_eq!(snap.subproblems, 2, "par={par:?}");
            assert!(snap.breakpoints_scanned >= 2);
            assert_eq!(snap.quickselect_pivots, 0);
        }
    }

    #[test]
    fn injected_kernel_fault_falls_back_to_sort_scan() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::Quickselect,
            fault: Some(TaskFault {
                index: 1,
                panic: false,
            }),
        };
        let counters = PassCounters::default();
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 5.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            Some(&counters),
        )
        .unwrap();
        assert_eq!(counters.fallbacks(), 1);
        // The fallback re-solve still hits the row total exactly.
        let sums = x.row_sums();
        assert!((sums[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn injected_kernel_fault_is_inert_under_sort_scan() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            fault: Some(TaskFault {
                index: 0,
                panic: false,
            }),
        };
        let counters = PassCounters::default();
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 5.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            Some(&counters),
        )
        .unwrap();
        assert_eq!(counters.fallbacks(), 0, "sort-scan has no fallback target");
    }

    #[test]
    fn worker_panic_is_contained_as_typed_error() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        for par in [Parallelism::Serial, Parallelism::Rayon] {
            let inp = PassInputs {
                prior: &x0,
                gamma: &gamma,
                support: None,
                shift: &shift,
                side: "column",
                kernel: KernelKind::SortScan,
                fault: Some(TaskFault {
                    index: 1,
                    panic: true,
                }),
            };
            let mut lambda = vec![0.0; 2];
            let mut totals = vec![0.0; 2];
            let mut x = DenseMatrix::zeros(2, 3).unwrap();
            let e = equilibration_pass(
                &inp,
                &|_| TotalMode::Fixed { total: 5.0 },
                &mut lambda,
                &mut totals,
                &mut x,
                par,
                None,
                None,
            );
            match e {
                Err(SeaError::WorkerPanic {
                    side: "column",
                    index: 1,
                    message,
                }) => assert!(message.contains("injected"), "message: {message}"),
                other => panic!("expected WorkerPanic, got {other:?} (par={par:?})"),
            }
        }
    }
}
