//! Row/column equilibration passes.
//!
//! One pass maximizes the dual over one multiplier block (all `λᵢ` or all
//! `μⱼ′`) with the other block fixed — which, by the duality argument of
//! §3.1, is exactly a set of *independent* single-constraint subproblems,
//! one per row (resp. column), each solved in closed form by
//! [`crate::knapsack::exact_equilibration`]. Independence is what makes SEA
//! parallel: every subproblem can go to a distinct processor.
//!
//! Both passes share one orientation-agnostic implementation: the caller
//! supplies the prior and weight matrices oriented so subproblems are rows
//! (the column pass passes transposed copies built once per solve). The
//! pass is generic over [`Storage`]: dense rows go to the kernel whole (or
//! gathered through structural-zero support lists), while CSR rows *are*
//! the support — the kernel runs directly over the stored value slices
//! with only the shift vector gathered, so sparse subproblem cost is
//! `O(k log k)` in the row's support size `k`, never `O(n)`.
//!
//! Parallel passes are **sharded**: rows are grouped into cache-sized
//! contiguous blocks (optionally aligned to support-graph component
//! boundaries by the solver) and the blocks are distributed over the
//! worker pool. Each row is still solved independently, so results are
//! bitwise identical across worker counts *and* shard sizes.

use crate::error::SeaError;
use crate::kernel_simd::{exact_equilibration_f32, exact_equilibration_simd};
use crate::knapsack::{EquilibrationScratch, KernelKind, TotalMode};
use crate::parallel::Parallelism;
use crate::storage::{RowView, Storage};
use crate::supervisor::TaskFault;
use rayon::prelude::*;
use sea_linalg::simd::{self, SimdLevel};
use sea_observe::KernelCounters;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default shard size (rows per block) for parallel passes when the solver
/// does not supply explicit boundaries. Sized so a typical block's working
/// set (a few KB per row even on dense mid-size instances) stays within an
/// L2 cache.
pub const DEFAULT_BLOCK_ROWS: usize = 256;

thread_local! {
    /// Workspace reused by every *serial* pass run on this thread. A pass
    /// sizes the buffers on first use and later passes (and later solves)
    /// reuse them, keeping the steady-state solver loop allocation-free —
    /// the property `tests/alloc_free.rs` audits. Rayon passes instead get
    /// one scratch per worker via `try_for_each_init`.
    static SERIAL_SCRATCH: RefCell<TaskScratch> = RefCell::new(TaskScratch::new());
}

/// Thread-safe accumulator for [`KernelCounters`] harvested from the
/// per-thread `TaskScratch` workspaces of a rayon pass. The pass hands
/// each worker its own scratch (`try_for_each_init`), so counters are
/// flushed here with relaxed atomics once per shard — contention-free in
/// practice and exact in total.
#[derive(Debug, Default)]
pub struct PassCounters {
    subproblems: AtomicU64,
    breakpoints_scanned: AtomicU64,
    quickselect_pivots: AtomicU64,
    boxed_clamps: AtomicU64,
    // Tracked outside `KernelCounters`, whose 4-field wire layout is pinned
    // by the JSONL golden fixture.
    kernel_fallbacks: AtomicU64,
}

impl PassCounters {
    /// Fold one scratch's counters into the accumulator.
    pub fn add(&self, c: &KernelCounters) {
        if c.is_empty() {
            return;
        }
        self.subproblems.fetch_add(c.subproblems, Ordering::Relaxed);
        self.breakpoints_scanned
            .fetch_add(c.breakpoints_scanned, Ordering::Relaxed);
        self.quickselect_pivots
            .fetch_add(c.quickselect_pivots, Ordering::Relaxed);
        self.boxed_clamps
            .fetch_add(c.boxed_clamps, Ordering::Relaxed);
    }

    /// Fold one scratch's quickselect→sort-scan fallback count in.
    pub fn add_fallbacks(&self, n: u64) {
        if n != 0 {
            self.kernel_fallbacks.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total quickselect→sort-scan fallbacks accumulated so far.
    pub fn fallbacks(&self) -> u64 {
        self.kernel_fallbacks.load(Ordering::Relaxed)
    }

    /// Read the current totals.
    pub fn snapshot(&self) -> KernelCounters {
        KernelCounters {
            subproblems: self.subproblems.load(Ordering::Relaxed),
            breakpoints_scanned: self.breakpoints_scanned.load(Ordering::Relaxed),
            quickselect_pivots: self.quickselect_pivots.load(Ordering::Relaxed),
            boxed_clamps: self.boxed_clamps.load(Ordering::Relaxed),
        }
    }
}

/// Wall-clock window and kernel work of one shard of a parallel pass,
/// filled by the worker that ran the shard. Offsets are nanoseconds from
/// the pass start, so the serial caller can replay shards as span leaves
/// without workers ever touching the observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardTiming {
    /// Nanoseconds from pass start to the shard's first task.
    pub start_ns: u64,
    /// Nanoseconds from pass start to the shard's last task finishing.
    pub end_ns: u64,
    /// Subproblems (rows) in the shard.
    pub tasks: u64,
    /// Kernel work done by the shard's tasks.
    pub counters: KernelCounters,
}

/// Preallocated per-shard timing sink for span profiling.
///
/// Reused across passes: `equilibration_pass` resizes it to the shard
/// count (a no-op allocation-wise after the first pass, since the shard
/// layout of a solve is fixed) and workers fill disjoint slots. Serial
/// passes leave it empty — the pass span itself carries their timing.
#[derive(Debug, Default)]
pub struct ShardSink {
    timings: Vec<ShardTiming>,
}

impl ShardSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size for `shards` slots and zero them.
    fn prepare(&mut self, shards: usize) {
        self.timings.clear();
        self.timings.resize(shards, ShardTiming::default());
    }

    /// The per-shard timings of the most recent parallel pass (empty
    /// after a serial pass).
    pub fn timings(&self) -> &[ShardTiming] {
        &self.timings
    }

    /// Drop any recorded timings (used before serial passes so stale
    /// shards from a previous pass are not replayed).
    pub fn clear(&mut self) {
        self.timings.clear();
    }
}

/// Nanoseconds elapsed since `base`, saturating.
fn elapsed_ns(base: Instant) -> u64 {
    let d = base.elapsed();
    d.as_secs()
        .saturating_mul(1_000_000_000)
        .saturating_add(u64::from(d.subsec_nanos()))
}

/// Per-thread scratch: gather buffers for structural-zero subproblems plus
/// the kernel's own workspace. Reused across every subproblem a thread
/// handles (allocation-free hot loop).
#[derive(Debug, Default, Clone)]
pub(crate) struct TaskScratch {
    eq: EquilibrationScratch,
    q: Vec<f64>,
    g: Vec<f64>,
    sh: Vec<f64>,
    x: Vec<f64>,
    /// Quickselect→sort-scan fallbacks taken by this thread's tasks.
    fallbacks: u64,
}

impl TaskScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// Inputs shared by every subproblem of a pass, in "row orientation".
pub struct PassInputs<'a, S: Storage> {
    /// Prior matrix, oriented so each subproblem is a contiguous row.
    pub prior: &'a S,
    /// Weight matrix, same orientation (and, for sparse storage, the same
    /// pattern).
    pub gamma: &'a S,
    /// Structural-zero support lists (per subproblem), if any. Dense
    /// storage only: sparse rows carry their support in the pattern.
    pub support: Option<&'a [Vec<u32>]>,
    /// The opposite side's multipliers (length = subproblem size).
    pub shift: &'a [f64],
    /// `"row"` or `"column"`, for error reporting.
    pub side: &'static str,
    /// Which equilibration kernel solves each subproblem.
    pub kernel: KernelKind,
    /// Resolved SIMD dispatch level for the kernels of this pass
    /// ([`SimdLevel::Scalar`] runs the untouched scalar oracle).
    pub simd: SimdLevel,
    /// When `true` the pass runs the mixed-precision `f32` λ-search,
    /// falling back to the `f64` kernel per subproblem when it fails.
    pub f32_phase: bool,
    /// Scripted fault for one subproblem of this pass (fault-injection
    /// harness only; `None` in production).
    pub fault: Option<TaskFault>,
}

/// Run the configured kernel on one subproblem; on a pathological result
/// (non-finite `λ` or total — or a scripted kernel fault) re-solve with the
/// robust sort-scan kernel and count the fallback. Quickselect's
/// median-of-three pivoting can in principle degrade on adversarial
/// breakpoint patterns; sort-scan is the slower oracle both kernels are
/// differentially tested against, so it is the safe harbor.
#[allow(clippy::too_many_arguments)] // kernel inputs + output + workspace + fallback sink
fn kernel_solve(
    kernel: KernelKind,
    simd: SimdLevel,
    f32_phase: bool,
    force_fallback: bool,
    q: &[f64],
    g: &[f64],
    sh: &[f64],
    mode: TotalMode,
    x: &mut [f64],
    eq: &mut EquilibrationScratch,
    fallbacks: &mut u64,
) -> Result<(f64, f64), SeaError> {
    // The f32 stand-in is a sort-scan; under the quickselect kernel the
    // full-precision λ-search is already cheaper than any sort, so mixed
    // precision routes straight to the f64 kernel there (measured ~4×
    // faster end-to-end than forcing the f32 sort-scan).
    if f32_phase && kernel == KernelKind::SortScan && !force_fallback {
        if let Some(r) = exact_equilibration_f32(simd, q, g, sh, mode, x, eq)? {
            if r.lambda.is_finite() && r.total.is_finite() {
                return Ok((r.lambda, r.total));
            }
        }
        // The f32 search could not stand in for the f64 kernel on this
        // subproblem; count the fallback and re-solve in full precision.
        *fallbacks += 1;
    }
    let r = exact_equilibration_simd(simd, kernel, q, g, sh, mode, x, eq)?;
    let pathological = force_fallback || !r.lambda.is_finite() || !r.total.is_finite();
    if pathological && kernel == KernelKind::Quickselect {
        *fallbacks += 1;
        let r = exact_equilibration_simd(simd, KernelKind::SortScan, q, g, sh, mode, x, eq)?;
        return Ok((r.lambda, r.total));
    }
    Ok((r.lambda, r.total))
}

/// Shared semantics for a subproblem with no active entries: the iterate
/// stays zero, a positive fixed total is infeasible, and an elastic total
/// settles at its unconstrained optimum.
fn empty_support_result(
    mode: TotalMode,
    side: &'static str,
    i: usize,
) -> Result<(f64, f64), SeaError> {
    match mode {
        TotalMode::Fixed { total } if total > 0.0 => {
            Err(SeaError::InfeasibleSubproblem { side, index: i })
        }
        TotalMode::Fixed { .. } => Ok((0.0, 0.0)),
        TotalMode::Elastic {
            alpha,
            prior,
            cross,
        } => Ok((2.0 * alpha * prior - cross, 0.0)),
    }
}

/// Solve one subproblem; returns `(λ, realized total)` and writes the
/// subproblem's entries into `x_row` (the iterate's stored values for this
/// row: length `n` dense, support size for CSR).
fn solve_task<S: Storage>(
    inp: &PassInputs<'_, S>,
    i: usize,
    mode: TotalMode,
    x_row: &mut [f64],
    scratch: &mut TaskScratch,
) -> Result<(f64, f64), SeaError> {
    let force_fallback = match inp.fault {
        Some(f) if f.index == i => {
            if f.panic {
                panic!("injected worker panic (fault plan)");
            }
            true
        }
        _ => false,
    };
    match (inp.prior.row_view(i), inp.gamma.row_view(i)) {
        // Sparse row: the stored entries are the support. The kernel runs
        // directly over the prior/weight value slices and writes the
        // iterate's stored values in place — only the shift is gathered.
        (RowView::Indexed { idx, vals: q }, RowView::Indexed { vals: g, .. }) => {
            let k = idx.len();
            if k == 0 {
                return empty_support_result(mode, inp.side, i);
            }
            scratch.sh.clear();
            scratch.sh.resize(k, 0.0);
            simd::gather(inp.simd, inp.shift, idx, &mut scratch.sh);
            kernel_solve(
                inp.kernel,
                inp.simd,
                inp.f32_phase,
                force_fallback,
                q,
                g,
                &scratch.sh,
                mode,
                x_row,
                &mut scratch.eq,
                &mut scratch.fallbacks,
            )
            .map_err(|e| match e {
                SeaError::InfeasibleSubproblem { .. } => SeaError::InfeasibleSubproblem {
                    side: inp.side,
                    index: i,
                },
                other => other,
            })
        }
        (RowView::Dense(prior_row), RowView::Dense(gamma_row)) => match inp.support {
            None => kernel_solve(
                inp.kernel,
                inp.simd,
                inp.f32_phase,
                force_fallback,
                prior_row,
                gamma_row,
                inp.shift,
                mode,
                x_row,
                &mut scratch.eq,
                &mut scratch.fallbacks,
            ),
            Some(support) => {
                let idx = &support[i];
                let k = idx.len();
                if k == 0 {
                    x_row.fill(0.0);
                    return empty_support_result(mode, inp.side, i);
                }
                scratch.q.clear();
                scratch.q.resize(k, 0.0);
                scratch.g.clear();
                scratch.g.resize(k, 0.0);
                scratch.sh.clear();
                scratch.sh.resize(k, 0.0);
                simd::gather(inp.simd, prior_row, idx, &mut scratch.q);
                simd::gather(inp.simd, gamma_row, idx, &mut scratch.g);
                simd::gather(inp.simd, inp.shift, idx, &mut scratch.sh);
                scratch.x.resize(k, 0.0);
                let TaskScratch {
                    eq,
                    q,
                    g,
                    sh,
                    x,
                    fallbacks,
                } = scratch;
                let (lambda, total) = kernel_solve(
                    inp.kernel,
                    inp.simd,
                    inp.f32_phase,
                    force_fallback,
                    q,
                    g,
                    sh,
                    mode,
                    x,
                    eq,
                    fallbacks,
                )
                .map_err(|e| match e {
                    SeaError::InfeasibleSubproblem { .. } => SeaError::InfeasibleSubproblem {
                        side: inp.side,
                        index: i,
                    },
                    other => other,
                })?;
                x_row.fill(0.0);
                for (&j, &v) in idx.iter().zip(&scratch.x) {
                    x_row[j as usize] = v;
                }
                Ok((lambda, total))
            }
        },
        // A problem's prior and weights share one storage type and pattern,
        // so mixed views cannot occur.
        _ => Err(SeaError::PatternMismatch {
            context: "pass inputs (mixed row views)",
        }),
    }
}

/// [`solve_task`] with panic containment: a worker panic (including a
/// scripted one) becomes [`SeaError::WorkerPanic`] instead of unwinding
/// through — or, under rayon, aborting — the whole solve. The non-panic
/// path of `catch_unwind` costs no allocation, preserving the
/// allocation-free steady state.
fn run_task<S: Storage>(
    inp: &PassInputs<'_, S>,
    i: usize,
    mode: TotalMode,
    x_row: &mut [f64],
    scratch: &mut TaskScratch,
) -> Result<(f64, f64), SeaError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        solve_task(inp, i, mode, x_row, scratch)
    })) {
        Ok(r) => r,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic payload of unknown type".to_string());
            Err(SeaError::WorkerPanic {
                side: inp.side,
                index: i,
                message,
            })
        }
    }
}

/// One contiguous block of subproblems of a parallel pass, carrying the
/// disjoint output slices its rows write. Blocks are the unit of work
/// distribution *and* of counter flushing; rows inside a block run
/// sequentially on one worker.
struct Shard<'a> {
    /// Global index of the first row in this shard.
    base: usize,
    lambda: &'a mut [f64],
    totals: &'a mut [f64],
    /// Per-row stored-value slices of the iterate.
    rows: Vec<&'a mut [f64]>,
    /// Per-row wall-clock sinks, when the pass is timing tasks.
    costs: Option<&'a mut [f64]>,
    /// This shard's timing slot, when the pass is span-profiled.
    timing: Option<&'a mut ShardTiming>,
}

/// Split the pass outputs into [`Shard`]s at the given start indices
/// (`starts[0] == 0`, strictly increasing, each `< m`).
fn build_shards<'a, S: Storage>(
    starts: &[usize],
    m: usize,
    lambda: &'a mut [f64],
    totals_out: &'a mut [f64],
    x: &'a mut S,
    mut costs: Option<&'a mut [f64]>,
    mut timings: Option<&'a mut [ShardTiming]>,
) -> Vec<Shard<'a>> {
    debug_assert_eq!(starts.first(), Some(&0));
    let row_lens: Vec<usize> = (0..m).map(|i| x.row_range(i).len()).collect();
    let mut lam_rest = lambda;
    let mut tot_rest = totals_out;
    // Stored values are row-major and contiguous in both backends, so the
    // per-row slices tile `values_mut()` exactly.
    let mut vals_rest = x.values_mut();
    let mut shards = Vec::with_capacity(starts.len());
    for (si, &start) in starts.iter().enumerate() {
        let end = starts.get(si + 1).copied().unwrap_or(m);
        let cnt = end - start;
        let (lam, rest) = std::mem::take(&mut lam_rest).split_at_mut(cnt);
        lam_rest = rest;
        let (tot, rest) = std::mem::take(&mut tot_rest).split_at_mut(cnt);
        tot_rest = rest;
        let shard_costs = costs.as_mut().map(|c| {
            let (head, rest) = std::mem::take(c).split_at_mut(cnt);
            *c = rest;
            head
        });
        let shard_timing = timings.as_mut().map(|t| {
            let (head, rest) = std::mem::take(t).split_at_mut(1);
            *t = rest;
            &mut head[0]
        });
        let mut rows = Vec::with_capacity(cnt);
        for i in start..end {
            let (row, rest) = std::mem::take(&mut vals_rest).split_at_mut(row_lens[i]);
            vals_rest = rest;
            rows.push(row);
        }
        shards.push(Shard {
            base: start,
            lambda: lam,
            totals: tot,
            rows,
            costs: shard_costs,
            timing: shard_timing,
        });
    }
    shards
}

/// Run a full equilibration pass.
///
/// `modes(i)` supplies the total specification of subproblem `i`; `lambda`
/// and `totals_out` receive, per subproblem, the constraint multiplier and
/// the realized total; `x` (same orientation — and, for sparse storage,
/// the same pattern — as `inp.prior`) receives the primal iterate. When
/// `costs` is provided it is filled with per-task wall-clock seconds for
/// the scheduling simulator. When `counters` is provided the kernels' work
/// counters are accumulated into it (pass `None` when nothing is
/// observing; the flush is skipped entirely).
///
/// `shard_starts` optionally supplies explicit shard boundaries for the
/// parallel path (start indices, first `0`): the solver aligns these to
/// support-graph component boundaries. `None` shards uniformly every
/// [`DEFAULT_BLOCK_ROWS`] rows. Serial passes ignore sharding. Results are
/// bitwise independent of the sharding because every row is solved
/// independently.
///
/// When `timings` is provided, parallel workers fill one [`ShardTiming`]
/// slot per shard (wall window relative to pass start, task count, and
/// kernel counters) for the caller to replay as span leaves; serial
/// passes clear the sink instead. Per-shard counters require `counters`
/// to also be present (the per-shard flush is what isolates them).
///
/// # Errors
/// Propagates the first subproblem failure (infeasibility, invalid data).
#[allow(clippy::too_many_arguments)] // pass = inputs + three outputs + mode + three optional sinks
pub fn equilibration_pass<S: Storage>(
    inp: &PassInputs<'_, S>,
    modes: &(dyn Fn(usize) -> TotalMode + Sync),
    lambda: &mut [f64],
    totals_out: &mut [f64],
    x: &mut S,
    par: Parallelism,
    mut costs: Option<&mut Vec<f64>>,
    counters: Option<&PassCounters>,
    shard_starts: Option<&[usize]>,
    timings: Option<&mut ShardSink>,
) -> Result<(), SeaError> {
    let m = inp.prior.rows();
    debug_assert_eq!(lambda.len(), m);
    debug_assert_eq!(totals_out.len(), m);
    debug_assert_eq!(x.rows(), m);
    debug_assert_eq!(x.cols(), inp.prior.cols());
    debug_assert!(x.same_pattern(inp.prior));

    if let Some(c) = costs.as_deref_mut() {
        c.clear();
        c.resize(m, 0.0);
    }
    let timing = costs.is_some();

    match par {
        Parallelism::Serial => SERIAL_SCRATCH.with_borrow_mut(|scratch| {
            if let Some(sink) = timings {
                sink.clear();
            }
            let mut cost_slice: Option<&mut [f64]> = costs.map(Vec::as_mut_slice);
            // The scratch outlives any one pass; drop counts a previous
            // (possibly aborted) pass left behind before accumulating.
            scratch.eq.stats = KernelCounters::default();
            scratch.fallbacks = 0;
            for i in 0..m {
                let t0 = timing.then(Instant::now);
                let (l, s) = run_task(inp, i, modes(i), x.row_values_mut(i), scratch)?;
                lambda[i] = l;
                totals_out[i] = s;
                if let (Some(c), Some(t0)) = (cost_slice.as_deref_mut(), t0) {
                    c[i] = t0.elapsed().as_secs_f64();
                }
            }
            if let Some(c) = counters {
                c.add(&scratch.eq.stats);
                c.add_fallbacks(scratch.fallbacks);
            }
            Ok(())
        }),
        Parallelism::Rayon | Parallelism::RayonThreads(_) => {
            // `RayonThreads` pools are installed by the solver around the
            // whole solve; here both variants fan out on the current pool.
            let default_starts: Vec<usize>;
            let starts: &[usize] = match shard_starts {
                Some(s) if !s.is_empty() => s,
                _ => {
                    default_starts = (0..m).step_by(DEFAULT_BLOCK_ROWS).collect();
                    &default_starts
                }
            };
            let cost_slice: Option<&mut [f64]> = costs.map(Vec::as_mut_slice);
            let timing_slots: Option<&mut [ShardTiming]> = timings.map(|sink| {
                sink.prepare(starts.len());
                sink.timings.as_mut_slice()
            });
            let pass_t0 = Instant::now();
            let mut shards =
                build_shards(starts, m, lambda, totals_out, x, cost_slice, timing_slots);
            shards
                .par_iter_mut()
                .try_for_each_init(TaskScratch::new, |scratch, shard| {
                    if let Some(tm) = shard.timing.as_mut() {
                        tm.start_ns = elapsed_ns(pass_t0);
                    }
                    for t in 0..shard.rows.len() {
                        let i = shard.base + t;
                        let t0 = timing.then(Instant::now);
                        let (lv, sv) = run_task(inp, i, modes(i), &mut *shard.rows[t], scratch)?;
                        shard.lambda[t] = lv;
                        shard.totals[t] = sv;
                        if let (Some(c), Some(t0)) = (shard.costs.as_deref_mut(), t0) {
                            c[t] = t0.elapsed().as_secs_f64();
                        }
                    }
                    if let Some(tm) = shard.timing.as_mut() {
                        tm.end_ns = elapsed_ns(pass_t0);
                        tm.tasks = shard.rows.len() as u64;
                        // Valid only alongside `counters`: the per-shard
                        // flush below is what scopes the scratch stats to
                        // this shard.
                        tm.counters = scratch.eq.stats;
                    }
                    if let Some(acc) = counters {
                        acc.add(&scratch.eq.stats);
                        acc.add_fallbacks(scratch.fallbacks);
                        scratch.eq.stats = KernelCounters::default();
                        scratch.fallbacks = 0;
                    }
                    Ok(())
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_linalg::{CsrMatrix, DenseMatrix};

    fn setup() -> (DenseMatrix, DenseMatrix) {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 0.0, 2.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 3, 1.0).unwrap();
        (x0, gamma)
    }

    #[test]
    fn fixed_pass_hits_row_totals() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        let s0 = [9.0, 3.0];
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        equilibration_pass(
            &inp,
            &|i| TotalMode::Fixed { total: s0[i] },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            None,
            None,
            None,
        )
        .unwrap();
        let sums = x.row_sums();
        assert!((sums[0] - 9.0).abs() < 1e-9);
        assert!((sums[1] - 3.0).abs() < 1e-9);
        assert!(x.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (x0, gamma) = setup();
        let shift = vec![0.5, -0.5, 0.25];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        let run = |par: Parallelism| {
            let mut lambda = vec![0.0; 2];
            let mut totals = vec![0.0; 2];
            let mut x = DenseMatrix::zeros(2, 3).unwrap();
            equilibration_pass(
                &inp,
                &|i| TotalMode::Elastic {
                    alpha: 1.0 + i as f64,
                    prior: 5.0,
                    cross: 0.0,
                },
                &mut lambda,
                &mut totals,
                &mut x,
                par,
                None,
                None,
                None,
                None,
            )
            .unwrap();
            (lambda, totals, x)
        };
        let (l1, t1, x1) = run(Parallelism::Serial);
        let (l2, t2, x2) = run(Parallelism::Rayon);
        assert_eq!(l1, l2);
        assert_eq!(t1, t2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn structural_support_keeps_zeros() {
        let (x0, gamma) = setup();
        let support = vec![vec![0u32, 1, 2], vec![0u32, 2]];
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: Some(&support),
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 8.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(x.get(1, 1), 0.0, "structural zero must stay zero");
        let sums = x.row_sums();
        assert!((sums[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn csr_pass_matches_dense_structural_bitwise() {
        // Same logical problem: dense rows with structural-zero support
        // lists vs a CSR whose pattern is that support. The kernel must see
        // identical value sequences, so λ, totals, and stored x agree
        // *bitwise* and the structural cell stays zero.
        let (x0, gamma) = setup();
        let support = vec![vec![0u32, 1, 2], vec![0u32, 2]];
        let shift = vec![0.37, -0.21, 0.11];

        let mut lambda_d = vec![0.0; 2];
        let mut totals_d = vec![0.0; 2];
        let mut xd = DenseMatrix::zeros(2, 3).unwrap();
        equilibration_pass(
            &PassInputs {
                prior: &x0,
                gamma: &gamma,
                support: Some(&support),
                shift: &shift,
                side: "row",
                kernel: KernelKind::SortScan,
                simd: SimdLevel::Scalar,
                f32_phase: false,
                fault: None,
            },
            &|_| TotalMode::Fixed { total: 8.0 },
            &mut lambda_d,
            &mut totals_d,
            &mut xd,
            Parallelism::Serial,
            None,
            None,
            None,
            None,
        )
        .unwrap();

        let x0_csr = CsrMatrix::from_dense_pruned(&x0).unwrap();
        let gvals: Vec<f64> = (0..2)
            .flat_map(|i| {
                let grow = gamma.row(i).to_vec();
                x0_csr
                    .row_cols(i)
                    .iter()
                    .map(move |&j| grow[j as usize])
                    .collect::<Vec<f64>>()
            })
            .collect();
        let gamma_csr = x0_csr.with_values(gvals).unwrap();
        let mut lambda_s = vec![0.0; 2];
        let mut totals_s = vec![0.0; 2];
        let mut xs = x0_csr.zeros_like();
        for par in [Parallelism::Serial, Parallelism::Rayon] {
            equilibration_pass(
                &PassInputs {
                    prior: &x0_csr,
                    gamma: &gamma_csr,
                    support: None,
                    shift: &shift,
                    side: "row",
                    kernel: KernelKind::SortScan,
                    simd: SimdLevel::Scalar,
                    f32_phase: false,
                    fault: None,
                },
                &|_| TotalMode::Fixed { total: 8.0 },
                &mut lambda_s,
                &mut totals_s,
                &mut xs,
                par,
                None,
                None,
                None,
                None,
            )
            .unwrap();
            assert_eq!(lambda_d, lambda_s, "par={par:?}");
            assert_eq!(totals_d, totals_s, "par={par:?}");
            let dense_back = xs.to_dense().unwrap();
            assert_eq!(dense_back.as_slice(), xd.as_slice(), "par={par:?}");
        }
    }

    #[test]
    fn shard_boundaries_do_not_change_results() {
        // 8 rows, solved with every sharding from one block to per-row
        // blocks: bitwise-identical λ/totals/x.
        let m = 8;
        let x0 = DenseMatrix::from_vec(m, 3, (0..m * 3).map(|k| 1.0 + (k % 7) as f64).collect())
            .unwrap();
        let gamma = DenseMatrix::filled(m, 3, 1.0).unwrap();
        let shift = vec![0.3, -0.4, 0.1];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        let run = |starts: Option<&[usize]>| {
            let mut lambda = vec![0.0; m];
            let mut totals = vec![0.0; m];
            let mut x = DenseMatrix::zeros(m, 3).unwrap();
            equilibration_pass(
                &inp,
                &|i| TotalMode::Fixed {
                    total: 5.0 + i as f64,
                },
                &mut lambda,
                &mut totals,
                &mut x,
                Parallelism::Rayon,
                None,
                None,
                starts,
                None,
            )
            .unwrap();
            (lambda, totals, x)
        };
        let base = run(None);
        let whole = run(Some(&[0]));
        let pairs = run(Some(&[0, 2, 4, 6]));
        let ragged = run(Some(&[0, 1, 5]));
        let per_row: Vec<usize> = (0..m).collect();
        let singles = run(Some(&per_row));
        for other in [&whole, &pairs, &ragged, &singles] {
            assert_eq!(base.0, other.0);
            assert_eq!(base.1, other.1);
            assert_eq!(base.2, other.2);
        }
    }

    #[test]
    fn sharded_costs_and_counters_cover_every_task() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        let counters = PassCounters::default();
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        let mut costs = Vec::new();
        equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 5.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Rayon,
            Some(&mut costs),
            Some(&counters),
            Some(&[0, 1]),
            None,
        )
        .unwrap();
        assert_eq!(costs.len(), 2);
        assert!(costs.iter().all(|&c| c >= 0.0));
        assert_eq!(counters.snapshot().subproblems, 2);
    }

    #[test]
    fn empty_structural_row_with_positive_total_is_infeasible() {
        let (x0, gamma) = setup();
        let support = vec![vec![0u32, 1, 2], vec![]];
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: Some(&support),
            shift: &shift,
            side: "column",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        let e = equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 8.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            None,
            None,
            None,
        );
        assert!(matches!(
            e,
            Err(SeaError::InfeasibleSubproblem {
                side: "column",
                index: 1
            })
        ));
    }

    #[test]
    fn empty_csr_row_with_positive_total_is_infeasible() {
        // Row 1 of the CSR has no stored entries at all.
        let x0 = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0)]).unwrap();
        let gamma = x0.with_values(vec![1.0, 1.0]).unwrap();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = x0.zeros_like();
        let e = equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 4.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            None,
            None,
            None,
        );
        assert!(matches!(
            e,
            Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 1
            })
        ));
        // A zero fixed total (or an elastic one) is fine.
        let ok = equilibration_pass(
            &inp,
            &|i| TotalMode::Fixed {
                total: if i == 0 { 4.0 } else { 0.0 },
            },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            None,
            None,
            None,
        );
        assert!(ok.is_ok());
        assert_eq!(totals[1], 0.0);
    }

    #[test]
    fn cost_recording_fills_per_task_entries() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        let mut costs = Vec::new();
        equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 5.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            Some(&mut costs),
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(costs.len(), 2);
        assert!(costs.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn pass_counters_collect_from_every_worker() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: None,
        };
        for par in [Parallelism::Serial, Parallelism::Rayon] {
            let counters = PassCounters::default();
            let mut lambda = vec![0.0; 2];
            let mut totals = vec![0.0; 2];
            let mut x = DenseMatrix::zeros(2, 3).unwrap();
            equilibration_pass(
                &inp,
                &|_| TotalMode::Fixed { total: 5.0 },
                &mut lambda,
                &mut totals,
                &mut x,
                par,
                None,
                Some(&counters),
                None,
                None,
            )
            .unwrap();
            let snap = counters.snapshot();
            assert_eq!(snap.subproblems, 2, "par={par:?}");
            assert!(snap.breakpoints_scanned >= 2);
            assert_eq!(snap.quickselect_pivots, 0);
        }
    }

    #[test]
    fn injected_kernel_fault_falls_back_to_sort_scan() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::Quickselect,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: Some(TaskFault {
                index: 1,
                panic: false,
            }),
        };
        let counters = PassCounters::default();
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 5.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            Some(&counters),
            None,
            None,
        )
        .unwrap();
        assert_eq!(counters.fallbacks(), 1);
        // The fallback re-solve still hits the row total exactly.
        let sums = x.row_sums();
        assert!((sums[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn injected_kernel_fault_is_inert_under_sort_scan() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        let inp = PassInputs {
            prior: &x0,
            gamma: &gamma,
            support: None,
            shift: &shift,
            side: "row",
            kernel: KernelKind::SortScan,
            simd: SimdLevel::Scalar,
            f32_phase: false,
            fault: Some(TaskFault {
                index: 0,
                panic: false,
            }),
        };
        let counters = PassCounters::default();
        let mut lambda = vec![0.0; 2];
        let mut totals = vec![0.0; 2];
        let mut x = DenseMatrix::zeros(2, 3).unwrap();
        equilibration_pass(
            &inp,
            &|_| TotalMode::Fixed { total: 5.0 },
            &mut lambda,
            &mut totals,
            &mut x,
            Parallelism::Serial,
            None,
            Some(&counters),
            None,
            None,
        )
        .unwrap();
        assert_eq!(counters.fallbacks(), 0, "sort-scan has no fallback target");
    }

    #[test]
    fn worker_panic_is_contained_as_typed_error() {
        let (x0, gamma) = setup();
        let shift = vec![0.0; 3];
        for par in [Parallelism::Serial, Parallelism::Rayon] {
            let inp = PassInputs {
                prior: &x0,
                gamma: &gamma,
                support: None,
                shift: &shift,
                side: "column",
                kernel: KernelKind::SortScan,
                simd: SimdLevel::Scalar,
                f32_phase: false,
                fault: Some(TaskFault {
                    index: 1,
                    panic: true,
                }),
            };
            let mut lambda = vec![0.0; 2];
            let mut totals = vec![0.0; 2];
            let mut x = DenseMatrix::zeros(2, 3).unwrap();
            let e = equilibration_pass(
                &inp,
                &|_| TotalMode::Fixed { total: 5.0 },
                &mut lambda,
                &mut totals,
                &mut x,
                par,
                None,
                None,
                None,
                None,
            );
            match e {
                Err(SeaError::WorkerPanic {
                    side: "column",
                    index: 1,
                    message,
                }) => assert!(message.contains("injected"), "message: {message}"),
                other => panic!("expected WorkerPanic, got {other:?} (par={par:?})"),
            }
        }
    }
}
