//! SEA for **general** quadratic constrained matrix problems (paper §3.2).
//!
//! The general problem weights deviations with dense strictly positive
//! definite matrices `G` (`mn×mn`), and — when totals are estimated — `A`
//! (`m×m`) and `B` (`n×n`). SEA handles it with the projection
//! (diagonalization) method of Dafermos (1982, 1983): each outer iteration
//! freezes the off-diagonal coupling into a linear term (eq. 79) and solves
//! the resulting *diagonal* constrained matrix problem with the diagonal
//! SEA of §3.1 — so the expensive dense `G` mat-vec happens once per outer
//! iteration, while all constraint work stays in the cheap, parallel
//! equilibration passes.

use crate::error::SeaError;
use crate::problem::{DiagonalProblem, Residuals, TotalSpec, ZeroPolicy};
use crate::solver::{solve_diagonal_observed, SeaOptions};
use crate::storage::Storage;
use crate::supervisor::{SolveControl, StopReason, SupervisedGeneralSolution, SupervisorOptions};
use crate::trace::{ExecutionTrace, PhaseKind};
use sea_linalg::{vector, DenseMatrix, SymMatrix};
use sea_observe::{
    Event, KernelCounters, NullObserver, Observer, PhaseLabel, SpanKind, TelemetrySample,
};
use std::time::{Duration, Instant};

/// Total specification for the general problem.
#[derive(Debug, Clone)]
pub enum GeneralTotalSpec {
    /// Known fixed totals (objective 10, constraints 11–12).
    Fixed {
        /// Row totals (length m).
        s0: Vec<f64>,
        /// Column totals (length n).
        d0: Vec<f64>,
    },
    /// Estimated totals with dense weight matrices (objective 1).
    Elastic {
        /// Row-total weight matrix `A` (order m, SPD).
        a: SymMatrix,
        /// Prior row totals.
        s0: Vec<f64>,
        /// Column-total weight matrix `B` (order n, SPD).
        b: SymMatrix,
        /// Prior column totals.
        d0: Vec<f64>,
    },
    /// SAM balance with a dense account-weight matrix (objective 6).
    Balanced {
        /// Account weight matrix `A` (order n, SPD).
        a: SymMatrix,
        /// Prior account totals.
        s0: Vec<f64>,
    },
}

/// A general quadratic constrained matrix problem.
#[derive(Debug, Clone)]
pub struct GeneralProblem {
    x0: DenseMatrix,
    g: SymMatrix,
    totals: GeneralTotalSpec,
}

impl GeneralProblem {
    /// Build and validate.
    ///
    /// # Errors
    /// * [`SeaError::Shape`] if `G`'s order is not `m·n` or total vectors
    ///   mismatch.
    /// * [`SeaError::NonPositiveWeight`] if any diagonal of `G`/`A`/`B` is
    ///   not strictly positive (the diagonalization step divides by them).
    /// * [`SeaError::InconsistentTotals`] for inconsistent fixed totals.
    /// * [`SeaError::NotSquareSam`] for a non-square balanced problem.
    pub fn new(x0: DenseMatrix, g: SymMatrix, totals: GeneralTotalSpec) -> Result<Self, SeaError> {
        let (m, n) = (x0.rows(), x0.cols());
        if g.order() != m * n {
            return Err(SeaError::Shape {
                context: "G order",
                expected: m * n,
                actual: g.order(),
            });
        }
        if !g.has_positive_diagonal() {
            return Err(SeaError::NonPositiveWeight {
                which: "diag(G)",
                index: 0,
                value: 0.0,
            });
        }
        match &totals {
            GeneralTotalSpec::Fixed { s0, d0 } => {
                if s0.len() != m {
                    return Err(SeaError::Shape {
                        context: "fixed s0",
                        expected: m,
                        actual: s0.len(),
                    });
                }
                if d0.len() != n {
                    return Err(SeaError::Shape {
                        context: "fixed d0",
                        expected: n,
                        actual: d0.len(),
                    });
                }
                let rs: f64 = s0.iter().sum();
                let cs: f64 = d0.iter().sum();
                if (rs - cs).abs() > 1e-9 * rs.abs().max(cs.abs()).max(1.0) {
                    return Err(SeaError::InconsistentTotals {
                        row_total: rs,
                        col_total: cs,
                    });
                }
            }
            GeneralTotalSpec::Elastic { a, s0, b, d0 } => {
                if a.order() != m || s0.len() != m {
                    return Err(SeaError::Shape {
                        context: "elastic A/s0",
                        expected: m,
                        actual: a.order().min(s0.len()),
                    });
                }
                if b.order() != n || d0.len() != n {
                    return Err(SeaError::Shape {
                        context: "elastic B/d0",
                        expected: n,
                        actual: b.order().min(d0.len()),
                    });
                }
                if !a.has_positive_diagonal() || !b.has_positive_diagonal() {
                    return Err(SeaError::NonPositiveWeight {
                        which: "diag(A)/diag(B)",
                        index: 0,
                        value: 0.0,
                    });
                }
            }
            GeneralTotalSpec::Balanced { a, s0 } => {
                if m != n {
                    return Err(SeaError::NotSquareSam { rows: m, cols: n });
                }
                if a.order() != n || s0.len() != n {
                    return Err(SeaError::Shape {
                        context: "balanced A/s0",
                        expected: n,
                        actual: a.order().min(s0.len()),
                    });
                }
                if !a.has_positive_diagonal() {
                    return Err(SeaError::NonPositiveWeight {
                        which: "diag(A)",
                        index: 0,
                        value: 0.0,
                    });
                }
            }
        }
        Ok(Self { x0, g, totals })
    }

    /// Rows of the prior.
    pub fn m(&self) -> usize {
        self.x0.rows()
    }

    /// Columns of the prior.
    pub fn n(&self) -> usize {
        self.x0.cols()
    }

    /// The prior matrix.
    pub fn x0(&self) -> &DenseMatrix {
        &self.x0
    }

    /// The entry weight matrix `G`.
    pub fn g(&self) -> &SymMatrix {
        &self.g
    }

    /// The total specification.
    pub fn totals(&self) -> &GeneralTotalSpec {
        &self.totals
    }

    /// Primal objective (eq. 1/6/10): `(x−x⁰)ᵀG(x−x⁰) [+ totals terms]`.
    // Allowed: every quadratic form is evaluated on vectors whose lengths
    // were validated against G/A/B at problem construction.
    #[allow(clippy::expect_used)]
    pub fn objective(&self, x: &DenseMatrix, s: &[f64], d: &[f64]) -> f64 {
        self.objective_flat(x.as_slice(), s, d)
    }

    /// [`GeneralProblem::objective`] on a row-major flat estimate — the form
    /// the generic driver uses, since a full-pattern sparse estimate exposes
    /// exactly this layout via [`Storage::values`].
    // Allowed: every quadratic form is evaluated on vectors whose lengths
    // were validated against G/A/B at problem construction.
    #[allow(clippy::expect_used)]
    pub fn objective_flat(&self, x: &[f64], s: &[f64], d: &[f64]) -> f64 {
        let dev: Vec<f64> = x
            .iter()
            .zip(self.x0.as_slice())
            .map(|(a, b)| a - b)
            .collect();
        let mut obj = self.g.quadratic_form(&dev).expect("validated dims");
        match &self.totals {
            GeneralTotalSpec::Fixed { .. } => {}
            GeneralTotalSpec::Elastic { a, s0, b, d0 } => {
                let ds: Vec<f64> = s.iter().zip(s0).map(|(a, b)| a - b).collect();
                let dd: Vec<f64> = d.iter().zip(d0).map(|(a, b)| a - b).collect();
                obj += a.quadratic_form(&ds).expect("validated dims");
                obj += b.quadratic_form(&dd).expect("validated dims");
            }
            GeneralTotalSpec::Balanced { a, s0 } => {
                let ds: Vec<f64> = s.iter().zip(s0).map(|(a, b)| a - b).collect();
                obj += a.quadratic_form(&ds).expect("validated dims");
            }
        }
        obj
    }

    /// An initial feasible point for the projection method ("start with any
    /// feasible (s, x, d)"): proportional fill for fixed totals, the prior
    /// itself for elastic totals, a balanced proportional fill for SAMs.
    // Allowed: construction guarantees m, n >= 1, so the proportional-fill
    // allocation cannot fail.
    #[allow(clippy::expect_used)]
    pub fn initial_feasible(&self) -> (DenseMatrix, Vec<f64>, Vec<f64>) {
        let (m, n) = (self.m(), self.n());
        match &self.totals {
            GeneralTotalSpec::Fixed { s0, d0 } => {
                let total: f64 = s0.iter().sum();
                let mut x = DenseMatrix::zeros(m, n).expect("nonempty");
                if total > 0.0 {
                    for i in 0..m {
                        let row = x.row_mut(i);
                        for (j, r) in row.iter_mut().enumerate() {
                            *r = s0[i] * d0[j] / total;
                        }
                    }
                }
                (x, s0.clone(), d0.clone())
            }
            GeneralTotalSpec::Elastic { .. } => {
                let s = self.x0.row_sums();
                let d = self.x0.col_sums();
                (self.x0.clone(), s, d)
            }
            GeneralTotalSpec::Balanced { .. } => {
                let rs = self.x0.row_sums();
                let cs = self.x0.col_sums();
                let t: Vec<f64> = rs.iter().zip(&cs).map(|(a, b)| 0.5 * (a + b)).collect();
                let total: f64 = t.iter().sum();
                let mut x = DenseMatrix::zeros(m, n).expect("nonempty");
                if total > 0.0 {
                    for i in 0..m {
                        let row = x.row_mut(i);
                        for (j, r) in row.iter_mut().enumerate() {
                            *r = t[i] * t[j] / total;
                        }
                    }
                }
                (x, t.clone(), t)
            }
        }
    }
}

/// Options for [`solve_general`].
#[derive(Debug, Clone)]
pub struct GeneralSeaOptions {
    /// Outer stopping tolerance on `maxᵢⱼ |xᵗᵢⱼ − xᵗ⁻¹ᵢⱼ|` (eq. Step 2 of
    /// §3.2.1; the paper's ε′).
    pub outer_epsilon: f64,
    /// Cap on projection (outer) iterations.
    pub max_outer: usize,
    /// Options for the inner diagonal SEA solves.
    pub inner: SeaOptions,
    /// Record a phase trace (projection mat-vecs + inner solves).
    pub record_trace: bool,
    /// Warm-start each inner diagonal solve with the previous outer
    /// iteration's column multipliers (extension; the paper restarts from
    /// `μ = 0` each time).
    pub warm_start_inner: bool,
}

impl Default for GeneralSeaOptions {
    fn default() -> Self {
        Self {
            outer_epsilon: 1e-6,
            max_outer: 200,
            inner: SeaOptions::default(),
            record_trace: false,
            warm_start_inner: true,
        }
    }
}

impl GeneralSeaOptions {
    /// Paper-style options: outer tolerance `eps`, inner solves one decade
    /// tighter.
    pub fn with_epsilon(eps: f64) -> Self {
        Self {
            outer_epsilon: eps,
            inner: SeaOptions::with_epsilon(eps * 0.1),
            ..Self::default()
        }
    }
}

/// Result of a general solve. `S` is the storage backend used for the
/// *inner* diagonal subproblems (the outer data `G`, `A`, `B` are dense by
/// nature); the estimate comes back in that backend.
#[derive(Debug, Clone)]
pub struct GeneralSolution<S: Storage = DenseMatrix> {
    /// The matrix estimate.
    pub x: S,
    /// Row totals.
    pub s: Vec<f64>,
    /// Column totals.
    pub d: Vec<f64>,
    /// Column multipliers of the final inner diagonal solve. Seeding a
    /// related solve's `GeneralSeaOptions::inner.initial_mu` with these
    /// warm-starts its first projection step (the batch engine's cache
    /// relies on this).
    pub mu: Vec<f64>,
    /// Outer (projection) iterations performed.
    pub outer_iterations: usize,
    /// Total inner (diagonal SEA) iterations across all outer iterations.
    pub inner_iterations: usize,
    /// Whether the outer loop converged.
    pub converged: bool,
    /// Final outer change `maxᵢⱼ |Δxᵢⱼ|`.
    pub outer_residual: f64,
    /// Primal objective at the solution.
    pub objective: f64,
    /// Constraint residuals at the solution.
    pub residuals: Residuals,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Phase trace (present iff requested).
    pub trace: Option<ExecutionTrace>,
}

/// Build the diagonalized pseudo-prior `q = y − M(y − y⁰)/diag(M)` for one
/// variable block (eq. 79 rearranged; see DESIGN.md §5).
fn diagonalized_prior(
    msym: &SymMatrix,
    diag: &[f64],
    y: &[f64],
    y0: &[f64],
    scratch: &mut Vec<f64>,
    parallel: bool,
) -> Result<Vec<f64>, SeaError> {
    let k = y.len();
    scratch.clear();
    scratch.extend(y.iter().zip(y0).map(|(a, b)| a - b));
    let mut mv = vec![0.0; k];
    if parallel {
        msym.matvec_parallel(scratch, &mut mv)?;
    } else {
        msym.matvec(scratch, &mut mv)?;
    }
    Ok((0..k).map(|i| y[i] - mv[i] / diag[i]).collect())
}

/// Solve a general constrained matrix problem with SEA (projection outer
/// loop + diagonal SEA inner solves).
///
/// # Errors
/// Propagates validation and inner-solver failures.
pub fn solve_general(
    p: &GeneralProblem,
    opts: &GeneralSeaOptions,
) -> Result<GeneralSolution, SeaError> {
    solve_general_observed(p, opts, &mut NullObserver)
}

/// [`solve_general`] with the inner diagonal subproblems carried in storage
/// backend `S`. With a sparse backend every stored cell of the projection's
/// pseudo-prior is kept (full pattern), so results are bitwise identical to
/// the dense path; this entry point exists to exercise and scale the sparse
/// plumbing end-to-end through the projection method.
///
/// # Errors
/// Same contract as [`solve_general`].
pub fn solve_general_in<S: Storage>(
    p: &GeneralProblem,
    opts: &GeneralSeaOptions,
) -> Result<GeneralSolution<S>, SeaError> {
    solve_general_inner::<S, _>(p, opts, &mut NullObserver, &mut SolveControl::passive())
}

/// [`solve_general`] with an event sink (see
/// [`solve_diagonal_observed`]).
///
/// The outer loop emits its own `SolveStart`/`SolveEnd` pair plus one
/// `Projection` phase and one `OuterIteration` event per projection step;
/// the nested diagonal solves emit their full event stream in between, so a
/// log of a general solve contains interleaved solver lifecycles.
///
/// # Errors
/// Same contract as [`solve_general`].
pub fn solve_general_observed<O: Observer + Send>(
    p: &GeneralProblem,
    opts: &GeneralSeaOptions,
    obs: &mut O,
) -> Result<GeneralSolution, SeaError> {
    solve_general_inner::<DenseMatrix, _>(p, opts, obs, &mut SolveControl::passive())
}

/// [`solve_general_observed`] under the fault-tolerant supervisor. The
/// budget, cancellation, stagnation, and breakdown watchdogs run at
/// *outer-iteration* granularity (an inner diagonal solve always runs to
/// its own completion); worker panics inside the inner equilibration passes
/// surface as [`SeaError::WorkerPanic`] regardless.
///
/// # Errors
/// Same contract as [`solve_general`].
pub fn solve_general_supervised<O: Observer + Send>(
    p: &GeneralProblem,
    opts: &GeneralSeaOptions,
    sup: &SupervisorOptions,
    obs: &mut O,
) -> Result<SupervisedGeneralSolution, SeaError> {
    solve_general_supervised_in::<DenseMatrix, _>(p, opts, sup, obs)
}

/// [`solve_general_supervised`] with inner storage backend `S` (see
/// [`solve_general_in`]).
///
/// # Errors
/// Same contract as [`solve_general`].
pub fn solve_general_supervised_in<S: Storage, O: Observer + Send>(
    p: &GeneralProblem,
    opts: &GeneralSeaOptions,
    sup: &SupervisorOptions,
    obs: &mut O,
) -> Result<SupervisedGeneralSolution<S>, SeaError> {
    let mut ctrl = SolveControl::active(sup);
    let solution = solve_general_inner::<S, _>(p, opts, obs, &mut ctrl)?;
    let stop = if solution.converged {
        StopReason::Converged
    } else {
        ctrl.stop().unwrap_or(StopReason::IterationCap)
    };
    Ok(SupervisedGeneralSolution { solution, stop })
}

fn solve_general_inner<S: Storage, O: Observer + Send>(
    p: &GeneralProblem,
    opts: &GeneralSeaOptions,
    obs: &mut O,
    ctrl: &mut SolveControl<'_>,
) -> Result<GeneralSolution<S>, SeaError> {
    let start = Instant::now();
    let (m, n) = (p.m(), p.n());
    let observing = obs.enabled();
    if observing {
        obs.record(&Event::SolveStart {
            solver: "general",
            rows: m,
            cols: n,
            kernel: opts.inner.kernel.name(),
            parallelism: opts.inner.parallelism.label(),
            // The outer loop always checks max |Δx| across a projection
            // step; the inner solves report their own criterion.
            criterion: "max_abs_change",
        });
    }
    // Outer spans: the general driver contributes no kernel work of its
    // own, so every span here closes with zero self-counters; the inner
    // diagonal solves open nested Solve spans through the lent observer
    // and their counters roll up into the outer Epoch automatically.
    let spanning = obs.spans_enabled();
    if spanning {
        obs.span_open(SpanKind::Solve, 0, (m + n) as u64);
    }
    let mut epoch_open = false;
    let mn = m * n;
    let g_diag = p.g().diagonal();
    let gamma_dense = DenseMatrix::from_vec(m, n, g_diag.iter().map(|&v| 0.5 * v).collect())?;
    let gamma = S::from_dense(&gamma_dense)?;
    let parallel = opts.inner.parallelism.is_parallel();

    let (x_init, mut s, mut d) = p.initial_feasible();
    // A full-pattern conversion keeps every cell, so x.values() stays the
    // row-major flat layout the projection mat-vec expects.
    let mut x = S::from_dense(&x_init)?;
    let x0_flat = p.x0().as_slice().to_vec();

    let mut trace = opts.record_trace.then(ExecutionTrace::new);
    let mut inner_iterations = 0usize;
    let mut outer_iterations = 0usize;
    let mut converged = false;
    let mut outer_residual = f64::INFINITY;
    let mut last_mu = opts
        .inner
        .initial_mu
        .clone()
        .unwrap_or_else(|| vec![0.0; n]);
    let mut scratch: Vec<f64> = Vec::with_capacity(mn);

    let mut inner_opts = opts.inner.clone();
    inner_opts.record_trace = opts.record_trace;

    for t in 1..=opts.max_outer {
        outer_iterations = t;

        // ---- Projection step: freeze off-diagonal coupling (eq. 79). ----
        // The dense mat-vec parallelizes over rows of G; a real scheduler
        // hands out coarse chunks, so the phase is reported as up to 256
        // equal chunks rather than mn micro-tasks.
        let chunks = mn.min(256);
        if spanning {
            obs.span_open(SpanKind::Epoch, t as u64, 0);
            epoch_open = true;
            obs.span_open(SpanKind::Projection, t as u64, chunks as u64);
        }
        if observing {
            obs.record(&Event::PhaseStart {
                label: PhaseLabel::Projection,
                tasks: chunks,
            });
        }
        let proj_t0 = Instant::now();
        let q_flat =
            diagonalized_prior(p.g(), &g_diag, x.values(), &x0_flat, &mut scratch, parallel)?;
        let q = S::from_dense(&DenseMatrix::from_vec(m, n, q_flat)?)?;

        let spec = match p.totals() {
            GeneralTotalSpec::Fixed { s0, d0 } => TotalSpec::Fixed {
                s0: s0.clone(),
                d0: d0.clone(),
            },
            GeneralTotalSpec::Elastic { a, s0, b, d0 } => {
                let a_diag = a.diagonal();
                let b_diag = b.diagonal();
                let ps = diagonalized_prior(a, &a_diag, &s, s0, &mut scratch, parallel)?;
                let pd = diagonalized_prior(b, &b_diag, &d, d0, &mut scratch, parallel)?;
                TotalSpec::Elastic {
                    alpha: a_diag.iter().map(|&v| 0.5 * v).collect(),
                    s0: ps,
                    beta: b_diag.iter().map(|&v| 0.5 * v).collect(),
                    d0: pd,
                }
            }
            GeneralTotalSpec::Balanced { a, s0 } => {
                let a_diag = a.diagonal();
                let ps = diagonalized_prior(a, &a_diag, &s, s0, &mut scratch, parallel)?;
                TotalSpec::Balanced {
                    alpha: a_diag.iter().map(|&v| 0.5 * v).collect(),
                    s0: ps,
                }
            }
        };
        let proj_secs = proj_t0.elapsed().as_secs_f64();
        if let Some(tr) = trace.as_mut() {
            tr.push(
                PhaseKind::Projection,
                vec![proj_secs / chunks as f64; chunks],
            );
        }
        if observing {
            obs.record(&Event::PhaseEnd {
                label: PhaseLabel::Projection,
                tasks: chunks,
                seconds: proj_secs,
                task_seconds: vec![proj_secs / chunks as f64; chunks],
            });
        }
        if spanning {
            obs.span_close(&KernelCounters::default());
        }

        // ---- Inner diagonal SEA solve. -----------------------------------
        let sub = DiagonalProblem::with_signed_prior(q, gamma.clone(), spec, ZeroPolicy::Free)?;
        let sol = solve_diagonal_observed(&sub, &inner_opts, &mut *obs)?;
        if opts.warm_start_inner {
            inner_opts.initial_mu = Some(sol.mu.clone());
        }
        last_mu = sol.mu;
        inner_iterations += sol.stats.iterations;
        if let Some(tr) = trace.as_mut() {
            if let Some(inner_tr) = sol.stats.trace {
                tr.extend(inner_tr);
            }
        }

        // ---- Outer convergence check. ------------------------------------
        outer_residual = sol.x.max_abs_diff(&x);
        x = sol.x;
        s = sol.s;
        d = sol.d;
        if observing {
            obs.record(&Event::OuterIteration {
                iteration: t,
                inner_iterations: sol.stats.iterations,
                outer_residual,
            });
        }
        if spanning {
            let active_set = x.values().iter().filter(|v| **v > 0.0).count() as u64;
            obs.telemetry(&TelemetrySample {
                iteration: t as u64,
                seconds: start.elapsed().as_secs_f64(),
                residual: outer_residual,
                dual_value: f64::NAN,
                kernel_work: 0,
                active_set,
            });
        }
        if outer_residual <= opts.outer_epsilon {
            converged = true;
            break;
        }

        // ---- Supervisor hooks (outer-iteration granularity). -------------
        if ctrl.is_active() {
            if !vector::all_finite(x.values()) {
                let mut no_multipliers: [f64; 0] = [];
                let mut no_multipliers2: [f64; 0] = [];
                if ctrl
                    .restore_snapshot(
                        &mut no_multipliers,
                        &mut no_multipliers2,
                        x.values_mut(),
                        &mut s,
                        &mut d,
                    )
                    .map(|(it, res)| {
                        outer_iterations = it;
                        outer_residual = res;
                    })
                    .is_some()
                {
                    break;
                }
                return Err(SeaError::NumericalBreakdown { iteration: t });
            }
            ctrl.capture_snapshot(t, outer_residual, &[], &[], x.values(), &s, &d);
            if ctrl.note_residual(outer_residual) {
                break;
            }
            if ctrl.should_stop(t, None).is_some() {
                break;
            }
        }

        if spanning {
            obs.span_close(&KernelCounters::default());
            epoch_open = false;
        }
    }
    if spanning {
        if epoch_open {
            obs.span_close(&KernelCounters::default());
        }
        obs.span_close(&KernelCounters::default());
    }

    // Residuals against this problem's constraints.
    let residuals = {
        let mut row_sums = vec![0.0; m];
        let mut col_sums = vec![0.0; n];
        x.row_sums_into(&mut row_sums);
        x.col_sums_into(&mut col_sums);
        let (st, dt): (&[f64], &[f64]) = match p.totals() {
            GeneralTotalSpec::Fixed { s0, d0 } => (s0, d0),
            GeneralTotalSpec::Elastic { .. } => (&s, &d),
            GeneralTotalSpec::Balanced { .. } => (&s, &s),
        };
        let mut r = Residuals::default();
        let mut sq = 0.0;
        for i in 0..m {
            let v = (row_sums[i] - st[i]).abs();
            r.row_inf = r.row_inf.max(v);
            r.rel_row_inf = r.rel_row_inf.max(v / st[i].abs().max(1e-12));
            sq += v * v;
        }
        for j in 0..n {
            let v = (col_sums[j] - dt[j]).abs();
            r.col_inf = r.col_inf.max(v);
            sq += v * v;
        }
        r.norm2 = sq.sqrt();
        r
    };
    let objective = p.objective_flat(x.values(), &s, &d);

    if observing {
        if ctrl.is_active() && !converged {
            obs.record(&Event::SupervisorStop {
                iteration: outer_iterations,
                reason: ctrl
                    .stop()
                    .map_or(StopReason::IterationCap.name(), StopReason::name),
            });
        }
        obs.record(&Event::SolveEnd {
            iterations: outer_iterations,
            converged,
            residual: outer_residual,
            objective,
            dual_value: None,
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    Ok(GeneralSolution {
        x,
        s,
        d,
        mu: last_mu,
        outer_iterations,
        inner_iterations,
        converged,
        outer_residual,
        objective,
        residuals,
        elapsed: start.elapsed(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_diagonal;

    /// Strictly diagonally dominant SPD matrix with negative off-diagonals,
    /// as the paper's §5.1.1 generator prescribes.
    fn dd_matrix(order: usize, diag: f64, off: f64) -> SymMatrix {
        let mut mtx = DenseMatrix::zeros(order, order).unwrap();
        for i in 0..order {
            for j in 0..order {
                mtx.set(i, j, if i == j { diag } else { -off });
            }
        }
        SymMatrix::from_dense(mtx, 1e-12).unwrap()
    }

    #[test]
    fn validation_catches_bad_shapes() {
        let x0 = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let g = dd_matrix(3, 10.0, 0.1); // wrong order (should be 4)
        assert!(matches!(
            GeneralProblem::new(
                x0,
                g,
                GeneralTotalSpec::Fixed {
                    s0: vec![2.0, 2.0],
                    d0: vec![2.0, 2.0]
                }
            ),
            Err(SeaError::Shape { .. })
        ));
    }

    #[test]
    fn diagonal_g_reduces_to_diagonal_solver() {
        // With G purely diagonal, general SEA must agree with diagonal SEA.
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gd = vec![2.0, 4.0, 6.0, 8.0];
        let g = SymMatrix::from_diagonal(&gd).unwrap();
        let totals = GeneralTotalSpec::Fixed {
            s0: vec![4.0, 6.0],
            d0: vec![5.0, 5.0],
        };
        let p = GeneralProblem::new(x0.clone(), g, totals).unwrap();
        let sol = solve_general(&p, &GeneralSeaOptions::with_epsilon(1e-10)).unwrap();
        assert!(sol.converged);
        // Reference: diagonal problem with γ = diag(G)/2... but the
        // objective (x−x0)ᵀG(x−x0) with diagonal G equals Σ G_kk(x_k−x0_k)²,
        // i.e. γ_k = G_kk. Minimizers coincide for any positive scaling.
        let gamma = DenseMatrix::from_vec(2, 2, gd).unwrap();
        let dp = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let dsol = solve_diagonal(&dp, &SeaOptions::with_epsilon(1e-12)).unwrap();
        assert!(
            sol.x.max_abs_diff(&dsol.x) < 1e-6,
            "general vs diagonal mismatch: {}",
            sol.x.max_abs_diff(&dsol.x)
        );
        // Diagonal G: a single outer iteration suffices (projection is
        // exact), plus one confirming iteration.
        assert!(sol.outer_iterations <= 2);
    }

    #[test]
    fn dense_g_converges_and_is_feasible() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let g = dd_matrix(4, 10.0, 1.0);
        let p = GeneralProblem::new(
            x0,
            g,
            GeneralTotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let sol = solve_general(&p, &GeneralSeaOptions::with_epsilon(1e-9)).unwrap();
        assert!(sol.converged, "residual {}", sol.outer_residual);
        assert!(sol.residuals.row_inf < 1e-6);
        assert!(sol.residuals.col_inf < 1e-6);
        assert!(sol.x.as_slice().iter().all(|&v| v >= 0.0));
        // The solution must beat the feasible starting point.
        let (x_init, s_init, d_init) = p.initial_feasible();
        assert!(sol.objective <= p.objective(&x_init, &s_init, &d_init) + 1e-9);
    }

    #[test]
    fn elastic_general_runs() {
        let x0 = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let g = dd_matrix(4, 8.0, 0.5);
        let a = dd_matrix(2, 4.0, 0.5);
        let b = dd_matrix(2, 4.0, 0.5);
        let p = GeneralProblem::new(
            x0,
            g,
            GeneralTotalSpec::Elastic {
                a,
                s0: vec![5.0, 5.0],
                b,
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let sol = solve_general(&p, &GeneralSeaOptions::with_epsilon(1e-9)).unwrap();
        assert!(sol.converged);
        // Row sums match estimated totals.
        let rs = sol.x.row_sums();
        for i in 0..2 {
            assert!((rs[i] - sol.s[i]).abs() < 1e-6);
        }
        // Totals pulled from prior margins (3) toward targets (5).
        assert!(sol.s[0] > 3.0 && sol.s[0] < 5.0);
    }

    #[test]
    fn balanced_general_balances() {
        let x0 = DenseMatrix::from_rows(&[vec![0.0, 3.0], vec![2.0, 1.0]]).unwrap();
        let g = dd_matrix(4, 8.0, 0.5);
        let a = dd_matrix(2, 4.0, 0.5);
        let p = GeneralProblem::new(
            x0,
            g,
            GeneralTotalSpec::Balanced {
                a,
                s0: vec![4.0, 3.0],
            },
        )
        .unwrap();
        let sol = solve_general(&p, &GeneralSeaOptions::with_epsilon(1e-9)).unwrap();
        assert!(sol.converged);
        let rs = sol.x.row_sums();
        let cs = sol.x.col_sums();
        for i in 0..2 {
            assert!((rs[i] - cs[i]).abs() < 1e-6, "account {i} unbalanced");
        }
    }

    #[test]
    fn warm_start_does_not_change_the_answer() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let g = dd_matrix(4, 8.0, 1.5);
        let totals = GeneralTotalSpec::Fixed {
            s0: vec![4.0, 6.0],
            d0: vec![5.0, 5.0],
        };
        let p = GeneralProblem::new(x0, g, totals).unwrap();
        let mut warm = GeneralSeaOptions::with_epsilon(1e-10);
        warm.warm_start_inner = true;
        let mut cold = GeneralSeaOptions::with_epsilon(1e-10);
        cold.warm_start_inner = false;
        let a = solve_general(&p, &warm).unwrap();
        let b = solve_general(&p, &cold).unwrap();
        assert!(a.converged && b.converged);
        assert!(a.x.max_abs_diff(&b.x) < 1e-7);
        // Warm starting can only reduce the total inner work.
        assert!(a.inner_iterations <= b.inner_iterations);
    }

    #[test]
    fn solution_mu_warm_starts_a_repeat_solve() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let g = dd_matrix(4, 8.0, 1.5);
        let totals = GeneralTotalSpec::Fixed {
            s0: vec![4.0, 6.0],
            d0: vec![5.0, 5.0],
        };
        let p = GeneralProblem::new(x0, g, totals).unwrap();
        let opts = GeneralSeaOptions::with_epsilon(1e-10);
        let cold = solve_general(&p, &opts).unwrap();
        assert!(cold.converged);
        assert_eq!(cold.mu.len(), p.n());
        let mut warm_opts = opts.clone();
        warm_opts.inner.initial_mu = Some(cold.mu.clone());
        let warm = solve_general(&p, &warm_opts).unwrap();
        assert!(warm.converged);
        assert!(warm.inner_iterations <= cold.inner_iterations);
        assert!(warm.x.max_abs_diff(&cold.x) < 1e-7);
    }

    #[test]
    fn observer_interleaves_outer_and_inner_lifecycles() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let g = dd_matrix(4, 10.0, 1.0);
        let p = GeneralProblem::new(
            x0,
            g,
            GeneralTotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let mut obs = sea_observe::VecObserver::new();
        let sol =
            solve_general_observed(&p, &GeneralSeaOptions::with_epsilon(1e-9), &mut obs).unwrap();
        let events = &obs.events;
        assert!(matches!(
            events.first(),
            Some(Event::SolveStart {
                solver: "general",
                ..
            })
        ));
        let outer_events = events
            .iter()
            .filter(|e| matches!(e, Event::OuterIteration { .. }))
            .count();
        assert_eq!(outer_events, sol.outer_iterations);
        let proj_starts = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::PhaseStart {
                        label: PhaseLabel::Projection,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(proj_starts, sol.outer_iterations);
        // One nested diagonal lifecycle per outer iteration.
        let inner_starts = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::SolveStart {
                        solver: "diagonal",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(inner_starts, sol.outer_iterations);
        // The outermost SolveEnd reports outer iterations with no dual.
        assert!(matches!(
            events.last(),
            Some(Event::SolveEnd {
                dual_value: None,
                ..
            })
        ));
    }

    #[test]
    fn sparse_inner_storage_matches_dense_bitwise() {
        // Full-pattern CSR inner storage must replay the dense projection
        // method exactly: same iterate sequence, same bits.
        use sea_linalg::CsrMatrix;
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let g = dd_matrix(4, 10.0, 1.0);
        let p = GeneralProblem::new(
            x0,
            g,
            GeneralTotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let opts = GeneralSeaOptions::with_epsilon(1e-9);
        let dense = solve_general(&p, &opts).unwrap();
        let sparse: GeneralSolution<CsrMatrix> = solve_general_in(&p, &opts).unwrap();
        assert!(dense.converged && sparse.converged);
        assert_eq!(dense.x.as_slice(), sparse.x.values());
        assert_eq!(dense.outer_iterations, sparse.outer_iterations);
        assert_eq!(dense.inner_iterations, sparse.inner_iterations);
        assert_eq!(dense.objective.to_bits(), sparse.objective.to_bits());
    }

    #[test]
    fn trace_contains_projection_phases() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let g = dd_matrix(4, 10.0, 1.0);
        let p = GeneralProblem::new(
            x0,
            g,
            GeneralTotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let mut opts = GeneralSeaOptions::with_epsilon(1e-8);
        opts.record_trace = true;
        let sol = solve_general(&p, &opts).unwrap();
        let tr = sol.trace.as_ref().unwrap();
        assert_eq!(tr.count(PhaseKind::Projection), sol.outer_iterations);
        assert!(tr.count(PhaseKind::RowEquilibration) >= sol.outer_iterations);
    }
}
