//! The dual functions `ζ₁`, `ζ₂`, `ζ₃` and their gradients (paper
//! eq. 24, 41, 51).
//!
//! SEA *is* block-coordinate ascent on these concave functions, and the
//! paper's convergence analysis rests on two of their properties, both of
//! which are verified by this module's tests:
//!
//! 1. **Weak duality** — `ζ(λ, μ)` never exceeds the primal objective of a
//!    feasible point, so the duality gap brackets the optimum.
//! 2. **Gradient = constraint violation** (eq. 25–27, 42–43) — `∂ζ/∂λᵢ` is
//!    exactly the violation of row constraint `i` by the multiplier-defined
//!    primal point, which justifies using the constraint residual as the
//!    stopping criterion.

use crate::problem::{DiagonalProblem, TotalSpec};
use crate::storage::{RowView, Storage};
#[cfg(test)]
use sea_linalg::DenseMatrix;

#[inline]
fn entry_term(gamma: f64, x0: f64, lam_plus_mu: f64) -> f64 {
    let t = (2.0 * gamma * x0 + lam_plus_mu).max(0.0);
    -t * t / (4.0 * gamma) + gamma * x0 * x0
}

/// Evaluate the dual function of `p`'s problem class at `(λ, μ)`.
///
/// # Panics
/// Debug-panics on length mismatches.
pub fn dual_value<S: Storage>(p: &DiagonalProblem<S>, lambda: &[f64], mu: &[f64]) -> f64 {
    let (m, n) = (p.m(), p.n());
    debug_assert_eq!(lambda.len(), m);
    debug_assert_eq!(mu.len(), n);
    let x0 = p.x0();
    let gamma = p.gamma();

    let mut z = 0.0;
    for i in 0..m {
        let li = lambda[i];
        match (x0.row_view(i), gamma.row_view(i)) {
            (RowView::Dense(x0r), RowView::Dense(gr)) => match p.support() {
                None => {
                    for j in 0..n {
                        z += entry_term(gr[j], x0r[j], li + mu[j]);
                    }
                }
                Some(sup) => {
                    for &j in &sup.rows[i] {
                        let j = j as usize;
                        z += entry_term(gr[j], x0r[j], li + mu[j]);
                    }
                }
            },
            (RowView::Indexed { idx, vals }, RowView::Indexed { vals: gvals, .. }) => {
                // The stored pattern is the support; entries are walked in
                // the same (column-sorted) order as the dense support path,
                // so sums agree bitwise for the same logical problem.
                for (t, &j) in idx.iter().enumerate() {
                    z += entry_term(gvals[t], vals[t], li + mu[j as usize]);
                }
            }
            // Constructors enforce a shared pattern between X^0 and Gamma.
            _ => debug_assert!(false, "mismatched row views in dual_value"),
        }
    }

    match p.totals() {
        TotalSpec::Fixed { s0, d0 } => {
            for i in 0..m {
                z += lambda[i] * s0[i];
            }
            for j in 0..n {
                z += mu[j] * d0[j];
            }
        }
        TotalSpec::Elastic {
            alpha,
            s0,
            beta,
            d0,
        } => {
            for i in 0..m {
                let t = 2.0 * alpha[i] * s0[i] - lambda[i];
                z += -t * t / (4.0 * alpha[i]) + alpha[i] * s0[i] * s0[i];
            }
            for j in 0..n {
                let t = 2.0 * beta[j] * d0[j] - mu[j];
                z += -t * t / (4.0 * beta[j]) + beta[j] * d0[j] * d0[j];
            }
        }
        TotalSpec::Balanced { alpha, s0 } => {
            for j in 0..n {
                let t = 2.0 * alpha[j] * s0[j] - lambda[j] - mu[j];
                z += -t * t / (4.0 * alpha[j]) + alpha[j] * s0[j] * s0[j];
            }
        }
    }
    z
}

/// The multiplier-defined primal point `X(λ,μ), S(λ,μ), D(λ,μ)`
/// (eq. 23a–c / 40a–b): the inner minimizer of the Lagrangian. Structural
/// zeros are kept at zero.
// Allowed: `DiagonalProblem` construction guarantees m, n >= 1 and a valid
// prior, so mirroring its pattern into a workspace cannot fail.
#[allow(clippy::expect_used)]
pub fn primal_from_multipliers<S: Storage>(
    p: &DiagonalProblem<S>,
    lambda: &[f64],
    mu: &[f64],
) -> (S, Vec<f64>, Vec<f64>) {
    let (m, n) = (p.m(), p.n());
    let mut x = p.x0().zeros_like().expect("nonempty problem");
    let x0 = p.x0();
    let gamma = p.gamma();
    for i in 0..m {
        let li = lambda[i];
        match (x0.row_view(i), gamma.row_view(i)) {
            (RowView::Dense(x0r), RowView::Dense(gr)) => {
                let xr = x.row_values_mut(i);
                match p.support() {
                    None => {
                        for j in 0..n {
                            xr[j] = (x0r[j] + (li + mu[j]) / (2.0 * gr[j])).max(0.0);
                        }
                    }
                    Some(sup) => {
                        for &j in &sup.rows[i] {
                            let j = j as usize;
                            xr[j] = (x0r[j] + (li + mu[j]) / (2.0 * gr[j])).max(0.0);
                        }
                    }
                }
            }
            (RowView::Indexed { idx, vals }, RowView::Indexed { vals: gvals, .. }) => {
                let xr = x.row_values_mut(i);
                for t in 0..idx.len() {
                    xr[t] = (vals[t] + (li + mu[idx[t] as usize]) / (2.0 * gvals[t])).max(0.0);
                }
            }
            _ => debug_assert!(false, "mismatched row views in primal_from_multipliers"),
        }
    }
    let (s, d) = match p.totals() {
        TotalSpec::Fixed { s0, d0 } => (s0.clone(), d0.clone()),
        TotalSpec::Elastic {
            alpha,
            s0,
            beta,
            d0,
        } => {
            let s = (0..m)
                .map(|i| s0[i] - lambda[i] / (2.0 * alpha[i]))
                .collect();
            let d = (0..n).map(|j| d0[j] - mu[j] / (2.0 * beta[j])).collect();
            (s, d)
        }
        TotalSpec::Balanced { alpha, s0 } => {
            let s: Vec<f64> = (0..n)
                .map(|j| s0[j] - (lambda[j] + mu[j]) / (2.0 * alpha[j]))
                .collect();
            (s.clone(), s)
        }
    };
    (x, s, d)
}

/// Gradient of the dual at `(λ, μ)`: `grad_lambda[i] = ∂ζ/∂λᵢ =
/// Sᵢ(λ,μ) − Σⱼ Xᵢⱼ(λ,μ)` and symmetrically for `μ` — i.e. the row and
/// column constraint violations of the multiplier-defined primal point.
pub fn dual_gradient<S: Storage>(
    p: &DiagonalProblem<S>,
    lambda: &[f64],
    mu: &[f64],
    grad_lambda: &mut [f64],
    grad_mu: &mut [f64],
) {
    let (x, s, d) = primal_from_multipliers(p, lambda, mu);
    let mut row_sums = vec![0.0; p.m()];
    let mut col_sums = vec![0.0; p.n()];
    x.row_sums_into(&mut row_sums);
    x.col_sums_into(&mut col_sums);
    for i in 0..p.m() {
        grad_lambda[i] = s[i] - row_sums[i];
    }
    for j in 0..p.n() {
        grad_mu[j] = d[j] - col_sums[j];
    }
}

/// Euclidean norm of the dual gradient — the paper's `‖∇ζ‖ ≤ ε ~
/// ‖Constraints‖ ≤ ε` stopping quantity (eq. 27).
pub fn dual_gradient_norm<S: Storage>(p: &DiagonalProblem<S>, lambda: &[f64], mu: &[f64]) -> f64 {
    let mut gl = vec![0.0; p.m()];
    let mut gm = vec![0.0; p.n()];
    dual_gradient(p, lambda, mu, &mut gl, &mut gm);
    (sea_linalg::vector::dot(&gl, &gl) + sea_linalg::vector::dot(&gm, &gm)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ZeroPolicy;
    use proptest::prelude::*;

    fn fixed_problem() -> DiagonalProblem {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap()
    }

    fn elastic_problem() -> DiagonalProblem {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 2.0).unwrap();
        DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Elastic {
                alpha: vec![1.0, 2.0],
                s0: vec![4.0, 6.0],
                beta: vec![0.5, 1.5],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap()
    }

    #[test]
    fn zero_multipliers_give_prior_point() {
        let p = elastic_problem();
        let (x, s, d) = primal_from_multipliers(&p, &[0.0; 2], &[0.0; 2]);
        assert_eq!(x, p.x0().clone());
        assert_eq!(s, vec![4.0, 6.0]);
        assert_eq!(d, vec![5.0, 5.0]);
        // ζ at 0 equals the Lagrangian at the unconstrained minimum: for
        // elastic, all quadratic terms vanish → ζ(0,0) = 0.
        assert!(dual_value(&p, &[0.0; 2], &[0.0; 2]).abs() < 1e-12);
    }

    #[test]
    fn weak_duality_fixed() {
        let p = fixed_problem();
        // A feasible matrix for totals s0=(4,6), d0=(5,5):
        let xf = DenseMatrix::from_rows(&[vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let primal = p.objective(&xf, &[], &[]);
        for (l, u) in [([0.0, 0.0], [0.0, 0.0]), ([1.0, -1.0], [0.5, 2.0])] {
            let z = dual_value(&p, &l, &u);
            assert!(
                z <= primal + 1e-9,
                "weak duality violated: zeta={z}, primal={primal}"
            );
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let p = elastic_problem();
        let lambda = [0.7, -0.3];
        let mu = [0.2, 0.9];
        let mut gl = [0.0; 2];
        let mut gm = [0.0; 2];
        dual_gradient(&p, &lambda, &mu, &mut gl, &mut gm);
        let h = 1e-6;
        for i in 0..2 {
            let mut lp = lambda;
            lp[i] += h;
            let mut lm = lambda;
            lm[i] -= h;
            let fd = (dual_value(&p, &lp, &mu) - dual_value(&p, &lm, &mu)) / (2.0 * h);
            assert!(
                (fd - gl[i]).abs() < 1e-5,
                "dzeta/dlambda[{i}]: fd={fd} vs {}",
                gl[i]
            );
        }
        for j in 0..2 {
            let mut up = mu;
            up[j] += h;
            let mut um = mu;
            um[j] -= h;
            let fd = (dual_value(&p, &lambda, &up) - dual_value(&p, &lambda, &um)) / (2.0 * h);
            assert!(
                (fd - gm[j]).abs() < 1e-5,
                "dzeta/dmu[{j}]: fd={fd} vs {}",
                gm[j]
            );
        }
    }

    #[test]
    fn gradient_matches_finite_differences_fixed() {
        let p = fixed_problem();
        let lambda = [1.5, -2.0];
        let mu = [0.0, 3.0];
        let mut gl = [0.0; 2];
        let mut gm = [0.0; 2];
        dual_gradient(&p, &lambda, &mu, &mut gl, &mut gm);
        let h = 1e-6;
        for i in 0..2 {
            let mut lp = lambda;
            lp[i] += h;
            let mut lm = lambda;
            lm[i] -= h;
            let fd = (dual_value(&p, &lp, &mu) - dual_value(&p, &lm, &mu)) / (2.0 * h);
            assert!((fd - gl[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_matches_finite_differences_balanced() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 4.0], vec![2.0, 3.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.5).unwrap();
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Balanced {
                alpha: vec![0.7, 1.3],
                s0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let lambda = [0.4, -0.9];
        let mu = [-0.2, 0.6];
        let mut gl = [0.0; 2];
        let mut gm = [0.0; 2];
        dual_gradient(&p, &lambda, &mu, &mut gl, &mut gm);
        let h = 1e-6;
        for i in 0..2 {
            let mut lp = lambda;
            lp[i] += h;
            let mut lm = lambda;
            lm[i] -= h;
            let fd = (dual_value(&p, &lp, &mu) - dual_value(&p, &lm, &mu)) / (2.0 * h);
            assert!(
                (fd - gl[i]).abs() < 1e-5,
                "balanced dλ[{i}]: {fd} vs {}",
                gl[i]
            );
        }
        for j in 0..2 {
            let mut up = mu;
            up[j] += h;
            let mut um = mu;
            um[j] -= h;
            let fd = (dual_value(&p, &lambda, &up) - dual_value(&p, &lambda, &um)) / (2.0 * h);
            assert!(
                (fd - gm[j]).abs() < 1e-5,
                "balanced dμ[{j}]: {fd} vs {}",
                gm[j]
            );
        }
    }

    #[test]
    fn structural_zeros_excluded_from_dual() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = DiagonalProblem::with_zero_policy(
            x0,
            gamma,
            TotalSpec::Balanced {
                alpha: vec![1.0, 1.0],
                s0: vec![3.0, 5.0],
            },
            ZeroPolicy::Structural,
        )
        .unwrap();
        // Large positive multipliers would activate the (0,1) entry if it
        // were free; structurally it contributes nothing.
        let (x, _, _) = primal_from_multipliers(&p, &[10.0, 0.0], &[0.0, 10.0]);
        assert_eq!(x.get(0, 1), 0.0);
    }

    proptest! {
        #[test]
        fn dual_is_concave_along_random_segments(
            l0 in proptest::array::uniform2(-5.0f64..5.0),
            l1 in proptest::array::uniform2(-5.0f64..5.0),
            u0 in proptest::array::uniform2(-5.0f64..5.0),
            u1 in proptest::array::uniform2(-5.0f64..5.0),
        ) {
            let p = elastic_problem();
            let mid_l = [(l0[0]+l1[0])/2.0, (l0[1]+l1[1])/2.0];
            let mid_u = [(u0[0]+u1[0])/2.0, (u0[1]+u1[1])/2.0];
            let z_mid = dual_value(&p, &mid_l, &mid_u);
            let z_avg = 0.5*(dual_value(&p, &l0, &u0) + dual_value(&p, &l1, &u1));
            prop_assert!(z_mid >= z_avg - 1e-9 * (1.0 + z_avg.abs()));
        }
    }
}
