//! Connected components of the support graph and the paper's **Modified
//! Algorithm** for keeping dual iterates bounded.
//!
//! For the SAM and fixed-totals duals (`ζ₂`, `ζ₃`) the maximizer set is not
//! a single point: within any connected component of the graph whose edges
//! are the strictly positive entries `xᵢⱼ > 0`, a constant can be added to
//! every `λᵢ` and subtracted from every `μⱼ′` without changing `ζ`. The
//! paper's Modified Algorithm (end of §3.1) exploits this: whenever some
//! `|λᵢ| > R`, shift the component containing it so its multipliers return
//! to the bounded cube, guaranteeing the convergence analysis applies.

use crate::storage::{RowView, Storage};

/// Union–find over `m + n` nodes (rows `0..m`, columns `m..m+n`) with
/// path-halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    /// Merge the sets containing `a` and `b`; returns the new root.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        ra
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Compute the component label of each row and column of the bipartite
/// support graph: rows `i` and columns `j` are connected when
/// `x[i·n + j] > threshold`. Returns `(row_labels, col_labels)` where labels
/// are root ids in the combined `m + n` index space.
pub fn support_components(
    x: &[f64],
    m: usize,
    n: usize,
    threshold: f64,
) -> (Vec<usize>, Vec<usize>) {
    debug_assert_eq!(x.len(), m * n);
    let mut uf = UnionFind::new(m + n);
    for i in 0..m {
        let row = &x[i * n..(i + 1) * n];
        for (j, &v) in row.iter().enumerate() {
            if v > threshold {
                uf.union(i, m + j);
            }
        }
    }
    let rows = (0..m).map(|i| uf.find(i)).collect();
    let cols = (0..n).map(|j| uf.find(m + j)).collect();
    (rows, cols)
}

/// [`support_components`] generalized over [`Storage`]: rows `i` and columns
/// `j` are connected when a *stored* entry `x[i, j] > threshold`. For dense
/// storage the union order is identical to the slice-based function (row
/// major over every cell), so labels are bitwise-equal; for sparse storage
/// only the stored support is visited, making this `O(nnz α(m+n))`.
pub fn storage_support_components<S: Storage>(x: &S, threshold: f64) -> (Vec<usize>, Vec<usize>) {
    let (m, n) = (x.rows(), x.cols());
    let mut uf = UnionFind::new(m + n);
    for i in 0..m {
        match x.row_view(i) {
            RowView::Dense(row) => {
                for (j, &v) in row.iter().enumerate() {
                    if v > threshold {
                        uf.union(i, m + j);
                    }
                }
            }
            RowView::Indexed { idx, vals } => {
                for (&j, &v) in idx.iter().zip(vals) {
                    if v > threshold {
                        uf.union(i, m + j as usize);
                    }
                }
            }
        }
    }
    let rows = (0..m).map(|i| uf.find(i)).collect();
    let cols = (0..n).map(|j| uf.find(m + j)).collect();
    (rows, cols)
}

/// Turn per-row component labels into shard start indices for a parallel
/// equilibration pass. Starting from row 0, a new shard opens at the first
/// component-label change after `target` rows have accumulated — so a shard
/// never splits a support component unless the component itself exceeds
/// `2 * target` rows, at which point a hard cut keeps shards cache-sized
/// (one giant component must not collapse the pass to a single worker
/// chunk). Returns start indices; the first is always 0.
///
/// Sharding never changes results — rows are solved independently and each
/// writes a position-fixed slot — so boundaries are purely a locality hint:
/// rows of one component share columns, hence share the opposite-side
/// multiplier cache lines.
pub fn shard_boundaries(labels: &[usize], target: usize) -> Vec<usize> {
    let m = labels.len();
    if m == 0 {
        return Vec::new();
    }
    let target = target.max(1);
    let mut starts = vec![0];
    let mut len = 1;
    for i in 1..m {
        let boundary = labels[i] != labels[i - 1];
        if (len >= target && boundary) || len >= 2 * target {
            starts.push(i);
            len = 1;
        } else {
            len += 1;
        }
    }
    starts
}

/// The paper's Modified Algorithm step: if any `|λᵢ| > bound`, shift every
/// component containing an offender by the offending value — subtracting it
/// from the component's `λ`s and adding it to the component's `μ`s — which
/// leaves `ζ₂`/`ζ₃` unchanged but returns the iterates to a bounded cube.
///
/// `x` is the current (row-major, `m×n`) primal iterate defining the
/// support graph. Returns the number of components shifted.
pub fn normalize_multipliers(
    x: &[f64],
    m: usize,
    n: usize,
    lambda: &mut [f64],
    mu: &mut [f64],
    bound: f64,
) -> usize {
    debug_assert_eq!(lambda.len(), m);
    debug_assert_eq!(mu.len(), n);
    if lambda.iter().all(|&l| l.abs() <= bound) {
        return 0;
    }
    let (row_labels, col_labels) = support_components(x, m, n, 0.0);
    apply_component_shifts(&row_labels, &col_labels, lambda, mu, bound)
}

/// [`normalize_multipliers`] generalized over [`Storage`]: identical shift
/// selection and application (first offending `λ` per component, in row
/// order), but the support graph is read through row views so sparse
/// iterates pay only for their stored entries.
pub fn normalize_multipliers_storage<S: Storage>(
    x: &S,
    lambda: &mut [f64],
    mu: &mut [f64],
    bound: f64,
) -> usize {
    debug_assert_eq!(lambda.len(), x.rows());
    debug_assert_eq!(mu.len(), x.cols());
    if lambda.iter().all(|&l| l.abs() <= bound) {
        return 0;
    }
    let (row_labels, col_labels) = storage_support_components(x, 0.0);
    apply_component_shifts(&row_labels, &col_labels, lambda, mu, bound)
}

/// Shared tail of the Modified Algorithm: pick, per component, the first
/// offending `λ` as the shift value, subtract it from the component's `λ`s
/// and add it to its `μ`s. Returns the number of components shifted.
fn apply_component_shifts(
    row_labels: &[usize],
    col_labels: &[usize],
    lambda: &mut [f64],
    mu: &mut [f64],
    bound: f64,
) -> usize {
    let mut shift_of_root: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    for (i, &l) in lambda.iter().enumerate() {
        if l.abs() > bound {
            shift_of_root.entry(row_labels[i]).or_insert(l);
        }
    }
    for (i, l) in lambda.iter_mut().enumerate() {
        if let Some(&sh) = shift_of_root.get(&row_labels[i]) {
            *l -= sh;
        }
    }
    for (j, m) in mu.iter_mut().enumerate() {
        if let Some(&sh) = shift_of_root.get(&col_labels[j]) {
            *m += sh;
        }
    }
    shift_of_root.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.connected(0, 1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert!(uf.connected(0, 1));
        assert!(uf.connected(4, 3));
        assert!(!uf.connected(1, 3));
        uf.union(1, 3);
        assert!(uf.connected(0, 4));
    }

    #[test]
    fn components_of_block_diagonal_support() {
        // 2x2 block support: rows {0}, cols {0} one component; rows {1},
        // cols {1} another.
        let x = [1.0, 0.0, 0.0, 2.0];
        let (r, c) = support_components(&x, 2, 2, 0.0);
        assert_eq!(r[0], c[0]);
        assert_eq!(r[1], c[1]);
        assert_ne!(r[0], r[1]);
    }

    #[test]
    fn dense_support_is_one_component() {
        let x = [1.0; 6];
        let (r, c) = support_components(&x, 2, 3, 0.0);
        assert!(r.iter().chain(c.iter()).all(|&l| l == r[0]));
    }

    #[test]
    fn normalize_shifts_offending_component_only() {
        // Two components; only the first offends.
        let x = [1.0, 0.0, 0.0, 2.0];
        let mut lambda = vec![100.0, 1.0];
        let mut mu = vec![-3.0, 4.0];
        let shifted = normalize_multipliers(&x, 2, 2, &mut lambda, &mut mu, 10.0);
        assert_eq!(shifted, 1);
        assert_eq!(lambda, vec![0.0, 1.0]);
        assert_eq!(mu, vec![97.0, 4.0]);
    }

    #[test]
    fn normalize_noop_when_bounded() {
        let x = [1.0; 4];
        let mut lambda = vec![1.0, -2.0];
        let mut mu = vec![0.5, 0.5];
        let shifted = normalize_multipliers(&x, 2, 2, &mut lambda, &mut mu, 10.0);
        assert_eq!(shifted, 0);
        assert_eq!(lambda, vec![1.0, -2.0]);
    }

    #[test]
    fn storage_components_match_slice_components() {
        use sea_linalg::{CsrMatrix, DenseMatrix};
        let x = [1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
        let dense = DenseMatrix::from_vec(2, 3, x.to_vec()).unwrap();
        let (r_ref, c_ref) = support_components(&x, 2, 3, 0.0);
        let (r_d, c_d) = storage_support_components(&dense, 0.0);
        assert_eq!(r_ref, r_d);
        assert_eq!(c_ref, c_d);
        // CSR drops the zeros but labels must describe the same partition.
        let csr = CsrMatrix::from_dense_pruned(&dense).unwrap();
        let (r_s, c_s) = storage_support_components(&csr, 0.0);
        for a in 0..2 {
            for b in 0..2 {
                assert_eq!(r_ref[a] == r_ref[b], r_s[a] == r_s[b]);
            }
        }
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(c_ref[a] == c_ref[b], c_s[a] == c_s[b]);
            }
        }
    }

    #[test]
    fn normalize_storage_matches_slice_variant() {
        use sea_linalg::{CsrMatrix, DenseMatrix};
        let x = [1.0, 0.0, 0.0, 2.0];
        let dense = DenseMatrix::from_vec(2, 2, x.to_vec()).unwrap();
        let csr = CsrMatrix::from_dense_pruned(&dense).unwrap();
        let mut l_ref = vec![100.0, 1.0];
        let mut m_ref = vec![-3.0, 4.0];
        let n_ref = normalize_multipliers(&x, 2, 2, &mut l_ref, &mut m_ref, 10.0);
        for backend in 0..2 {
            let mut lambda = vec![100.0, 1.0];
            let mut mu = vec![-3.0, 4.0];
            let shifted = if backend == 0 {
                normalize_multipliers_storage(&dense, &mut lambda, &mut mu, 10.0)
            } else {
                normalize_multipliers_storage(&csr, &mut lambda, &mut mu, 10.0)
            };
            assert_eq!(shifted, n_ref);
            assert_eq!(lambda, l_ref);
            assert_eq!(mu, m_ref);
        }
    }

    #[test]
    fn shard_boundaries_respect_components_and_caps() {
        // Labels: component A rows 0..3, B rows 3..5, C rows 5..12.
        let labels = [7, 7, 7, 9, 9, 2, 2, 2, 2, 2, 2, 2];
        // target 2: cut at the first label change after 2 rows, hard cut at 4.
        let starts = shard_boundaries(&labels, 2);
        assert_eq!(starts[0], 0);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert!(*starts.last().unwrap() < labels.len());
        // Component boundary at 3 honored (shard [0,3) has >= target rows).
        assert!(starts.contains(&3));
        // Giant component C is hard-cut: no shard exceeds 2*target rows.
        let mut ends = starts[1..].to_vec();
        ends.push(labels.len());
        for (s, e) in starts.iter().zip(&ends) {
            assert!(e - s <= 4, "shard [{s}, {e}) exceeds 2*target");
        }
        // Degenerate inputs.
        assert!(shard_boundaries(&[], 4).is_empty());
        assert_eq!(shard_boundaries(&[1, 1, 1], 100), vec![0]);
        assert_eq!(shard_boundaries(&[1, 2, 3], 1), vec![0, 1, 2]);
    }

    #[test]
    fn normalize_preserves_lambda_plus_mu_on_support() {
        // λᵢ + μⱼ is the quantity entering x(λ,μ); shifting must preserve
        // it on every edge of the offending component.
        let x = [1.0, 1.0, 1.0, 1.0];
        let mut lambda = vec![50.0, 30.0];
        let mut mu = vec![-3.0, 4.0];
        let before: Vec<f64> = (0..2)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| lambda[i] + mu[j])
            .collect();
        normalize_multipliers(&x, 2, 2, &mut lambda, &mut mu, 10.0);
        let after: Vec<f64> = (0..2)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| lambda[i] + mu[j])
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-12);
        }
    }
}
