//! Connected components of the support graph and the paper's **Modified
//! Algorithm** for keeping dual iterates bounded.
//!
//! For the SAM and fixed-totals duals (`ζ₂`, `ζ₃`) the maximizer set is not
//! a single point: within any connected component of the graph whose edges
//! are the strictly positive entries `xᵢⱼ > 0`, a constant can be added to
//! every `λᵢ` and subtracted from every `μⱼ′` without changing `ζ`. The
//! paper's Modified Algorithm (end of §3.1) exploits this: whenever some
//! `|λᵢ| > R`, shift the component containing it so its multipliers return
//! to the bounded cube, guaranteeing the convergence analysis applies.

/// Union–find over `m + n` nodes (rows `0..m`, columns `m..m+n`) with
/// path-halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    /// Merge the sets containing `a` and `b`; returns the new root.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        ra
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Compute the component label of each row and column of the bipartite
/// support graph: rows `i` and columns `j` are connected when
/// `x[i·n + j] > threshold`. Returns `(row_labels, col_labels)` where labels
/// are root ids in the combined `m + n` index space.
pub fn support_components(
    x: &[f64],
    m: usize,
    n: usize,
    threshold: f64,
) -> (Vec<usize>, Vec<usize>) {
    debug_assert_eq!(x.len(), m * n);
    let mut uf = UnionFind::new(m + n);
    for i in 0..m {
        let row = &x[i * n..(i + 1) * n];
        for (j, &v) in row.iter().enumerate() {
            if v > threshold {
                uf.union(i, m + j);
            }
        }
    }
    let rows = (0..m).map(|i| uf.find(i)).collect();
    let cols = (0..n).map(|j| uf.find(m + j)).collect();
    (rows, cols)
}

/// The paper's Modified Algorithm step: if any `|λᵢ| > bound`, shift every
/// component containing an offender by the offending value — subtracting it
/// from the component's `λ`s and adding it to the component's `μ`s — which
/// leaves `ζ₂`/`ζ₃` unchanged but returns the iterates to a bounded cube.
///
/// `x` is the current (row-major, `m×n`) primal iterate defining the
/// support graph. Returns the number of components shifted.
pub fn normalize_multipliers(
    x: &[f64],
    m: usize,
    n: usize,
    lambda: &mut [f64],
    mu: &mut [f64],
    bound: f64,
) -> usize {
    debug_assert_eq!(lambda.len(), m);
    debug_assert_eq!(mu.len(), n);
    if lambda.iter().all(|&l| l.abs() <= bound) {
        return 0;
    }
    let (row_labels, col_labels) = support_components(x, m, n, 0.0);
    // Pick, per component, the first offending λ as the shift value.
    let mut shift_of_root: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    for i in 0..m {
        if lambda[i].abs() > bound {
            shift_of_root.entry(row_labels[i]).or_insert(lambda[i]);
        }
    }
    for i in 0..m {
        if let Some(&sh) = shift_of_root.get(&row_labels[i]) {
            lambda[i] -= sh;
        }
    }
    for j in 0..n {
        if let Some(&sh) = shift_of_root.get(&col_labels[j]) {
            mu[j] += sh;
        }
    }
    shift_of_root.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.connected(0, 1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert!(uf.connected(0, 1));
        assert!(uf.connected(4, 3));
        assert!(!uf.connected(1, 3));
        uf.union(1, 3);
        assert!(uf.connected(0, 4));
    }

    #[test]
    fn components_of_block_diagonal_support() {
        // 2x2 block support: rows {0}, cols {0} one component; rows {1},
        // cols {1} another.
        let x = [1.0, 0.0, 0.0, 2.0];
        let (r, c) = support_components(&x, 2, 2, 0.0);
        assert_eq!(r[0], c[0]);
        assert_eq!(r[1], c[1]);
        assert_ne!(r[0], r[1]);
    }

    #[test]
    fn dense_support_is_one_component() {
        let x = [1.0; 6];
        let (r, c) = support_components(&x, 2, 3, 0.0);
        assert!(r.iter().chain(c.iter()).all(|&l| l == r[0]));
    }

    #[test]
    fn normalize_shifts_offending_component_only() {
        // Two components; only the first offends.
        let x = [1.0, 0.0, 0.0, 2.0];
        let mut lambda = vec![100.0, 1.0];
        let mut mu = vec![-3.0, 4.0];
        let shifted = normalize_multipliers(&x, 2, 2, &mut lambda, &mut mu, 10.0);
        assert_eq!(shifted, 1);
        assert_eq!(lambda, vec![0.0, 1.0]);
        assert_eq!(mu, vec![97.0, 4.0]);
    }

    #[test]
    fn normalize_noop_when_bounded() {
        let x = [1.0; 4];
        let mut lambda = vec![1.0, -2.0];
        let mut mu = vec![0.5, 0.5];
        let shifted = normalize_multipliers(&x, 2, 2, &mut lambda, &mut mu, 10.0);
        assert_eq!(shifted, 0);
        assert_eq!(lambda, vec![1.0, -2.0]);
    }

    #[test]
    fn normalize_preserves_lambda_plus_mu_on_support() {
        // λᵢ + μⱼ is the quantity entering x(λ,μ); shifting must preserve
        // it on every edge of the offending component.
        let x = [1.0, 1.0, 1.0, 1.0];
        let mut lambda = vec![50.0, 30.0];
        let mut mu = vec![-3.0, 4.0];
        let before: Vec<f64> = (0..2)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| lambda[i] + mu[j])
            .collect();
        normalize_multipliers(&x, 2, 2, &mut lambda, &mut mu, 10.0);
        let after: Vec<f64> = (0..2)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| lambda[i] + mu[j])
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-12);
        }
    }
}
