//! Exact equilibration: the closed-form single-constraint quadratic solver.
//!
//! Every row and column subproblem that SEA (and RC) produces has the form
//!
//! ```text
//!   min  Σⱼ γⱼ (xⱼ − qⱼ)²  −  Σⱼ shiftⱼ·xⱼ   [+ total term]
//!   s.t. Σⱼ xⱼ = S,   xⱼ ≥ 0
//! ```
//!
//! where `shiftⱼ` carries the opposite side's Lagrange multipliers (μⱼ′ in a
//! row pass, λᵢ in a column pass). The KKT conditions (paper eq. 20–23) give
//!
//! ```text
//!   xⱼ(λ) = ( qⱼ + (shiftⱼ + λ) / (2γⱼ) )₊
//! ```
//!
//! with `λ` the multiplier of the total constraint, so the subproblem
//! reduces to the one-dimensional piecewise-linear equation `Σⱼ xⱼ(λ) = S(λ)`
//! solved exactly by sorting the *breakpoints* `bⱼ = −2γⱼqⱼ − shiftⱼ` and
//! scanning — the *exact equilibration* of Eydeland–Nagurney (1989), with
//! the paper's `7n + n·ln n + 2n` operation profile.
//!
//! The total specification `S(λ)` comes in three flavours ([`TotalMode`]):
//!
//! * **Fixed** — `S = s⁰` (eq. 45–48; the classical transportation case).
//! * **Elastic** — `S = s` is itself a variable with objective term
//!   `α(s − s⁰)²`; KKT gives `s(λ) = s⁰ − (λ + cross)/(2α)` (eq. 23b/40b),
//!   where `cross` is 0 for the unknown-totals problem and the transpose
//!   multiplier for the SAM problem.
//!
//! A box-bounded variant ([`exact_equilibration_boxed`]) supports the
//! Ohuchi–Kaji (1984) bounded model and Harrigan–Buchanan (1984) interval
//! constraints.

use crate::error::SeaError;
use sea_linalg::sort;

/// How the subproblem's total is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TotalMode {
    /// The total is known and fixed: `Σⱼ xⱼ = total`.
    Fixed {
        /// The fixed (nonnegative) total `s⁰ᵢ` or `d⁰ⱼ′`.
        total: f64,
    },
    /// The total is elastic with quadratic penalty `alpha·(s − prior)²`; the
    /// optimal total is `s(λ) = prior − (λ + cross)/(2·alpha)`.
    Elastic {
        /// Strictly positive penalty weight (`αᵢ` or `βⱼ′`).
        alpha: f64,
        /// Prior total (`s⁰ᵢ` or `d⁰ⱼ′`).
        prior: f64,
        /// Extra multiplier folded into the total's stationarity condition:
        /// 0 for the unknown-totals problem, the transpose multiplier for
        /// the SAM balanced problem (eq. 40b).
        cross: f64,
    },
}

/// Result of one exact equilibration solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquilibrationResult {
    /// Lagrange multiplier of the total constraint.
    pub lambda: f64,
    /// The realized total `S` (equals the fixed total, or the optimal
    /// elastic total).
    pub total: f64,
    /// Number of strictly positive entries in the solution.
    pub active: usize,
}

/// Reusable workspace so the hot loop performs no allocation (workhorse
/// buffers, per the performance guide).
#[derive(Debug, Default, Clone)]
pub struct EquilibrationScratch {
    breakpoints: Vec<f64>,
    order: Vec<u32>,
    /// Second event array for the boxed variant.
    events_hi: Vec<f64>,
}

impl EquilibrationScratch {
    /// Fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, n: usize) {
        self.breakpoints.clear();
        self.breakpoints.reserve(n);
        self.order.clear();
        self.order.reserve(2 * n);
    }
}

/// Operation-count model for one exact equilibration of length `n`, per the
/// paper's Section 3 analysis (`7n + n ln n + 2n`). Used by the scheduling
/// simulator as an architecture-independent task cost.
#[inline]
pub fn operation_count(n: usize) -> f64 {
    let nf = n as f64;
    9.0 * nf + nf * nf.max(1.0).ln()
}

#[inline]
fn validate_inputs(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    x_out: &[f64],
) -> Result<(), SeaError> {
    let n = q.len();
    if gamma.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration gamma",
            expected: n,
            actual: gamma.len(),
        });
    }
    if shift.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration shift",
            expected: n,
            actual: shift.len(),
        });
    }
    if x_out.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration x_out",
            expected: n,
            actual: x_out.len(),
        });
    }
    Ok(())
}

/// Solve the single-constraint subproblem by exact equilibration.
///
/// `q` are the priors, `gamma` the strictly positive quadratic weights,
/// `shift` the opposite-side multipliers, `mode` the total specification.
/// The optimal entries are written to `x_out`.
///
/// ```
/// use sea_core::knapsack::{exact_equilibration, EquilibrationScratch, TotalMode};
///
/// // Spread a total of 9 across priors (1, 2, 3) with unit weights:
/// // every entry shifts by +1.
/// let mut x = [0.0; 3];
/// let mut scratch = EquilibrationScratch::new();
/// let r = exact_equilibration(
///     &[1.0, 2.0, 3.0],
///     &[1.0, 1.0, 1.0],
///     &[0.0, 0.0, 0.0],
///     TotalMode::Fixed { total: 9.0 },
///     &mut x,
///     &mut scratch,
/// ).unwrap();
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((r.lambda - 2.0).abs() < 1e-12);
/// ```
///
/// # Errors
/// * [`SeaError::Shape`] on length mismatches.
/// * [`SeaError::InfeasibleSubproblem`] for a fixed positive total with no
///   entries.
/// * [`SeaError::NonPositiveWeight`] if any `gamma` (or elastic `alpha`) is
///   not strictly positive (checked in debug and on the slow path).
pub fn exact_equilibration(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<EquilibrationResult, SeaError> {
    validate_inputs(q, gamma, shift, x_out)?;
    let n = q.len();

    if let TotalMode::Elastic { alpha, .. } = mode {
        if !(alpha > 0.0) {
            return Err(SeaError::NonPositiveWeight {
                which: "alpha",
                index: 0,
                value: alpha,
            });
        }
    }

    if n == 0 {
        return match mode {
            TotalMode::Fixed { total } if total > 0.0 => Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 0,
            }),
            TotalMode::Fixed { .. } => Ok(EquilibrationResult {
                lambda: 0.0,
                total: 0.0,
                active: 0,
            }),
            TotalMode::Elastic { alpha, prior, cross } => {
                // Only the elastic total remains: s = prior − (λ+cross)/(2α)
                // with s = Σx = 0 ⇒ λ = 2α·prior − cross.
                Ok(EquilibrationResult {
                    lambda: 2.0 * alpha * prior - cross,
                    total: 0.0,
                    active: 0,
                })
            }
        };
    }

    // Breakpoints bⱼ = −2γⱼqⱼ − shiftⱼ: entry j is active for λ > bⱼ.
    scratch.prepare(n);
    for j in 0..n {
        debug_assert!(gamma[j] > 0.0, "gamma must be strictly positive");
        scratch
            .breakpoints
            .push(-2.0 * gamma[j] * q[j] - shift[j]);
    }
    scratch.order.resize(n, 0);
    sort::identity_permutation(&mut scratch.order);
    sort::argsort(&mut scratch.order, &scratch.breakpoints);

    // Sweep the segments. Active prefix r contributes Σ (qⱼ + shiftⱼ/(2γⱼ))
    // (accumulated in `a`) plus λ·Σ 1/(2γⱼ) (accumulated in `b`).
    let mut a = 0.0_f64;
    let mut b = 0.0_f64;
    // Elastic constants.
    let (el_slope, el_const) = match mode {
        TotalMode::Fixed { .. } => (0.0, 0.0),
        TotalMode::Elastic { alpha, prior, cross } => {
            (1.0 / (2.0 * alpha), prior - cross / (2.0 * alpha))
        }
    };

    let mut lambda = f64::NAN;
    for r in 0..=n {
        let upper = if r < n {
            scratch.breakpoints[scratch.order[r] as usize]
        } else {
            f64::INFINITY
        };
        // Root of: a + λ·b  =  S(λ), where for fixed mode S(λ) = total and
        // for elastic S(λ) = el_const − λ·el_slope.
        let cand = match mode {
            TotalMode::Fixed { total } => {
                if b > 0.0 {
                    Some((total - a) / b)
                } else if total <= 0.0 {
                    // All entries zero is the solution; λ may sit anywhere
                    // at or below the first breakpoint — report the
                    // boundary (the largest valid multiplier).
                    Some(if r < n { upper } else { 0.0 })
                } else {
                    None
                }
            }
            TotalMode::Elastic { .. } => Some((el_const - a) / (b + el_slope)),
        };
        if let Some(c) = cand {
            if c <= upper {
                lambda = c;
                break;
            }
        }
        if r < n {
            let j = scratch.order[r] as usize;
            let inv2g = 1.0 / (2.0 * gamma[j]);
            a += q[j] + shift[j] * inv2g;
            b += inv2g;
        }
    }

    if !lambda.is_finite() {
        // Fixed positive total but every segment exhausted: can only happen
        // when b stays 0, i.e. n == 0 (handled above) — defensive.
        return Err(SeaError::NumericalBreakdown { iteration: 0 });
    }

    // Materialize the solution.
    let mut sum = 0.0;
    let mut active = 0usize;
    for j in 0..n {
        let v = q[j] + (shift[j] + lambda) / (2.0 * gamma[j]);
        let v = if v > 0.0 { v } else { 0.0 };
        if v > 0.0 {
            active += 1;
        }
        x_out[j] = v;
        sum += v;
    }

    let total = match mode {
        TotalMode::Fixed { total } => total,
        TotalMode::Elastic { alpha, prior, cross } => prior - (lambda + cross) / (2.0 * alpha),
    };

    // Absorb the residual rounding error into the largest entries so the
    // constraint holds to near machine precision (keeps downstream
    // convergence checks honest). Proportional correction preserves
    // nonnegativity.
    let err = total - sum;
    if err != 0.0 && sum > 0.0 && err.abs() > 0.0 {
        let scale = total / sum;
        if scale.is_finite() && scale > 0.0 {
            for v in x_out.iter_mut() {
                *v *= scale;
            }
        }
    }

    Ok(EquilibrationResult {
        lambda,
        total,
        active,
    })
}

/// Box-bounded exact equilibration: `loⱼ ≤ xⱼ ≤ hiⱼ` instead of `xⱼ ≥ 0`.
///
/// Supports the Ohuchi–Kaji (1984) bounded transportation model and the
/// Harrigan–Buchanan (1984) interval-constrained I/O estimation model. The
/// projected entry is `xⱼ(λ) = clamp(qⱼ + (shiftⱼ + λ)/(2γⱼ), loⱼ, hiⱼ)`,
/// so each entry contributes two breakpoints; the sweep is otherwise the
/// same as [`exact_equilibration`].
///
/// # Errors
/// * [`SeaError::Shape`] on length mismatches.
/// * [`SeaError::InconsistentBounds`] if some `loⱼ > hiⱼ`.
/// * [`SeaError::InfeasibleSubproblem`] if the fixed total lies outside
///   `[Σ lo, Σ hi]`.
#[allow(clippy::too_many_arguments)]
pub fn exact_equilibration_boxed(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<EquilibrationResult, SeaError> {
    validate_inputs(q, gamma, shift, x_out)?;
    let n = q.len();
    if lo.len() != n || hi.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration_boxed bounds",
            expected: n,
            actual: lo.len().min(hi.len()),
        });
    }
    for j in 0..n {
        if lo[j] > hi[j] {
            return Err(SeaError::InconsistentBounds { index: j });
        }
    }
    let sum_lo: f64 = lo.iter().sum();
    let sum_hi: f64 = hi.iter().sum();
    if let TotalMode::Fixed { total } = mode {
        let span = (sum_hi - sum_lo).abs().max(1.0);
        if total < sum_lo - 1e-9 * span || total > sum_hi + 1e-9 * span {
            return Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 0,
            });
        }
    }
    if let TotalMode::Elastic { alpha, .. } = mode {
        if !(alpha > 0.0) {
            return Err(SeaError::NonPositiveWeight {
                which: "alpha",
                index: 0,
                value: alpha,
            });
        }
    }

    // Event k < n is entry k leaving its lower bound; event k ≥ n is entry
    // k−n saturating at its upper bound.
    scratch.prepare(n);
    scratch.events_hi.clear();
    scratch.events_hi.reserve(2 * n);
    for j in 0..n {
        scratch
            .events_hi
            .push(2.0 * gamma[j] * (lo[j] - q[j]) - shift[j]);
    }
    for j in 0..n {
        scratch
            .events_hi
            .push(2.0 * gamma[j] * (hi[j] - q[j]) - shift[j]);
    }
    scratch.order.resize(2 * n, 0);
    sort::identity_permutation(&mut scratch.order);
    sort::argsort(&mut scratch.order, &scratch.events_hi);

    let (el_slope, el_const) = match mode {
        TotalMode::Fixed { .. } => (0.0, 0.0),
        TotalMode::Elastic { alpha, prior, cross } => {
            (1.0 / (2.0 * alpha), prior - cross / (2.0 * alpha))
        }
    };

    // Start below every event: all entries pinned at lo.
    let mut a = sum_lo;
    let mut b = 0.0_f64;
    let mut lambda = f64::NAN;
    for r in 0..=(2 * n) {
        let upper = if r < 2 * n {
            scratch.events_hi[scratch.order[r] as usize]
        } else {
            f64::INFINITY
        };
        let cand = match mode {
            TotalMode::Fixed { total } => {
                if b > 0.0 {
                    Some((total - a) / b)
                } else if (a - total).abs() <= 1e-12 * total.abs().max(1.0) {
                    // Flat segment already matching the total.
                    Some(if r < 2 * n { upper } else { 0.0 })
                } else {
                    None
                }
            }
            TotalMode::Elastic { .. } => Some((el_const - a) / (b + el_slope)),
        };
        if let Some(c) = cand {
            if c <= upper {
                lambda = c;
                break;
            }
        }
        if r < 2 * n {
            let e = scratch.order[r] as usize;
            let j = e % n;
            let inv2g = 1.0 / (2.0 * gamma[j]);
            if e < n {
                // Entry leaves its lower bound.
                a += q[j] + shift[j] * inv2g - lo[j];
                b += inv2g;
            } else {
                // Entry saturates at its upper bound.
                a += hi[j] - (q[j] + shift[j] * inv2g);
                b -= inv2g;
            }
        }
    }
    if !lambda.is_finite() {
        // Fixed mode where the total is only attained at the extreme: clamp.
        lambda = match mode {
            TotalMode::Fixed { total } if total >= sum_hi => f64::MAX.sqrt(),
            _ => -f64::MAX.sqrt(),
        };
    }

    let mut active = 0usize;
    let mut sum = 0.0;
    for j in 0..n {
        let raw = q[j] + (shift[j] + lambda) / (2.0 * gamma[j]);
        let v = raw.clamp(lo[j], hi[j]);
        if v > lo[j] && v < hi[j] {
            active += 1;
        }
        x_out[j] = v;
        sum += v;
    }
    let total = match mode {
        TotalMode::Fixed { total } => total,
        TotalMode::Elastic { alpha, prior, cross } => prior - (lambda + cross) / (2.0 * alpha),
    };
    let _ = sum;

    Ok(EquilibrationResult {
        lambda,
        total,
        active,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference solve by bisection on λ — independent of the sweep logic.
    fn bisect_reference(
        q: &[f64],
        gamma: &[f64],
        shift: &[f64],
        mode: TotalMode,
    ) -> (f64, Vec<f64>) {
        let g = |lam: f64| -> f64 {
            let s: f64 = q
                .iter()
                .zip(gamma)
                .zip(shift)
                .map(|((&qj, &gj), &mj)| (qj + (mj + lam) / (2.0 * gj)).max(0.0))
                .sum();
            match mode {
                TotalMode::Fixed { total } => s - total,
                TotalMode::Elastic { alpha, prior, cross } => {
                    s - (prior - (lam + cross) / (2.0 * alpha))
                }
            }
        };
        let (mut lo, mut hi) = (-1e9, 1e9);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if g(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let lam = 0.5 * (lo + hi);
        let x = q
            .iter()
            .zip(gamma)
            .zip(shift)
            .map(|((&qj, &gj), &mj)| (qj + (mj + lam) / (2.0 * gj)).max(0.0))
            .collect();
        (lam, x)
    }

    fn check_kkt(
        q: &[f64],
        gamma: &[f64],
        shift: &[f64],
        x: &[f64],
        lambda: f64,
        tol: f64,
    ) {
        for j in 0..q.len() {
            let grad = 2.0 * gamma[j] * (x[j] - q[j]) - shift[j] - lambda;
            if x[j] > tol {
                assert!(
                    grad.abs() <= tol * (1.0 + gamma[j].abs() * q[j].abs()),
                    "stationarity violated at {j}: grad={grad}"
                );
            } else {
                assert!(grad >= -tol * (1.0 + gamma[j].abs()), "sign violated at {j}");
            }
        }
    }

    #[test]
    fn fixed_mode_simple() {
        // Equal weights, zero shift: equilibration spreads the total with
        // equal adjustments.
        let q = [1.0, 2.0, 3.0];
        let gamma = [1.0, 1.0, 1.0];
        let shift = [0.0; 3];
        let mut x = [0.0; 3];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Fixed { total: 9.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        // Each entry shifts by +1 ⇒ x = (2,3,4), λ = 2.
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - 4.0).abs() < 1e-12);
        assert!((r.lambda - 2.0).abs() < 1e-12);
        assert_eq!(r.active, 3);
    }

    #[test]
    fn fixed_mode_activates_nonnegativity() {
        // Shrinking the total far enough drives small entries to zero.
        let q = [1.0, 10.0];
        let gamma = [1.0, 1.0];
        let shift = [0.0; 2];
        let mut x = [0.0; 2];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Fixed { total: 2.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert_eq!(r.active, 1);
        check_kkt(&q, &gamma, &shift, &x, r.lambda, 1e-9);
    }

    #[test]
    fn fixed_zero_total_gives_zero_solution() {
        let q = [1.0, 2.0];
        let gamma = [0.5, 2.0];
        let shift = [0.3, -0.7];
        let mut x = [9.0; 2];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Fixed { total: 0.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(x, [0.0, 0.0]);
        assert_eq!(r.active, 0);
        // λ must keep every entry at or below zero.
        check_kkt(&q, &gamma, &shift, &x, r.lambda, 1e-9);
    }

    #[test]
    fn elastic_mode_matches_hand_computation() {
        // One entry, q=0, γ=1/2, shift=0, α=1/2, prior=4:
        // x(λ)=(λ)₊, s(λ)=4−λ; x=s ⇒ λ=2, x=2, s=2.
        let q = [0.0];
        let gamma = [0.5];
        let shift = [0.0];
        let mut x = [0.0];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Elastic {
                alpha: 0.5,
                prior: 4.0,
                cross: 0.0,
            },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert!((r.lambda - 2.0).abs() < 1e-12);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((r.total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn elastic_cross_shift_moves_total() {
        // SAM-style cross term reduces the realized total.
        let q = [0.0];
        let gamma = [0.5];
        let shift = [0.0];
        let mut x = [0.0];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Elastic {
                alpha: 0.5,
                prior: 4.0,
                cross: 1.0,
            },
            &mut x,
            &mut sc,
        )
        .unwrap();
        // x(λ)=λ₊, s=4−(λ+1) ⇒ λ = 1.5, x = 1.5.
        assert!((r.lambda - 1.5).abs() < 1e-12);
        assert!((x[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_subproblem_cases() {
        let mut x: [f64; 0] = [];
        let mut sc = EquilibrationScratch::new();
        assert!(exact_equilibration(
            &[],
            &[],
            &[],
            TotalMode::Fixed { total: 1.0 },
            &mut x,
            &mut sc
        )
        .is_err());
        let r = exact_equilibration(
            &[],
            &[],
            &[],
            TotalMode::Fixed { total: 0.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(r.active, 0);
        let r = exact_equilibration(
            &[],
            &[],
            &[],
            TotalMode::Elastic {
                alpha: 1.0,
                prior: 3.0,
                cross: 0.0,
            },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(r.total, 0.0);
        assert!((r.lambda - 6.0).abs() < 1e-12);
    }

    #[test]
    fn shape_errors() {
        let mut x = [0.0; 2];
        let mut sc = EquilibrationScratch::new();
        assert!(matches!(
            exact_equilibration(
                &[1.0, 2.0],
                &[1.0],
                &[0.0, 0.0],
                TotalMode::Fixed { total: 1.0 },
                &mut x,
                &mut sc
            ),
            Err(SeaError::Shape { .. })
        ));
    }

    #[test]
    fn boxed_respects_bounds_and_total() {
        let q = [1.0, 5.0, 2.0];
        let gamma = [1.0, 1.0, 1.0];
        let shift = [0.0; 3];
        let lo = [0.5, 0.0, 1.0];
        let hi = [2.0, 3.0, 2.5];
        let mut x = [0.0; 3];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration_boxed(
            &q,
            &gamma,
            &shift,
            &lo,
            &hi,
            TotalMode::Fixed { total: 6.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        let sum: f64 = x.iter().sum();
        assert!((sum - 6.0).abs() < 1e-9, "sum={sum}");
        for j in 0..3 {
            assert!(x[j] >= lo[j] - 1e-12 && x[j] <= hi[j] + 1e-12);
        }
        let _ = r;
    }

    #[test]
    fn boxed_detects_infeasible_total() {
        let mut x = [0.0; 2];
        let mut sc = EquilibrationScratch::new();
        assert!(matches!(
            exact_equilibration_boxed(
                &[1.0, 1.0],
                &[1.0, 1.0],
                &[0.0, 0.0],
                &[0.0, 0.0],
                &[1.0, 1.0],
                TotalMode::Fixed { total: 5.0 },
                &mut x,
                &mut sc
            ),
            Err(SeaError::InfeasibleSubproblem { .. })
        ));
        assert!(matches!(
            exact_equilibration_boxed(
                &[1.0, 1.0],
                &[1.0, 1.0],
                &[0.0, 0.0],
                &[2.0, 0.0],
                &[1.0, 1.0],
                TotalMode::Fixed { total: 1.5 },
                &mut x,
                &mut sc
            ),
            Err(SeaError::InconsistentBounds { index: 0 })
        ));
    }

    #[test]
    fn boxed_reduces_to_plain_when_bounds_loose() {
        let q = [1.0, 2.0, 3.0];
        let gamma = [0.5, 1.5, 1.0];
        let shift = [0.1, -0.2, 0.0];
        let lo = [0.0; 3];
        let hi = [1e12; 3];
        let mut x_plain = [0.0; 3];
        let mut x_box = [0.0; 3];
        let mut sc = EquilibrationScratch::new();
        let mode = TotalMode::Fixed { total: 7.0 };
        let r1 =
            exact_equilibration(&q, &gamma, &shift, mode, &mut x_plain, &mut sc).unwrap();
        let r2 = exact_equilibration_boxed(
            &q, &gamma, &shift, &lo, &hi, mode, &mut x_box, &mut sc,
        )
        .unwrap();
        assert!((r1.lambda - r2.lambda).abs() < 1e-9);
        for j in 0..3 {
            assert!((x_plain[j] - x_box[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn boxed_elastic_mode_balances_total_against_bounds() {
        // Elastic total with tight upper bounds: the realized total cannot
        // exceed Σ hi even though the prior total asks for more.
        let q = [0.0, 0.0];
        let gamma = [0.5, 0.5];
        let shift = [0.0, 0.0];
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        let mut x = [0.0; 2];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration_boxed(
            &q,
            &gamma,
            &shift,
            &lo,
            &hi,
            TotalMode::Elastic {
                alpha: 0.5,
                prior: 100.0,
                cross: 0.0,
            },
            &mut x,
            &mut sc,
        )
        .unwrap();
        // Entries saturate at the bounds; the elastic total then sits at
        // Σx = 2, with λ at the stationarity value s = prior − λ/(2α).
        assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
        assert!((r.total - 2.0).abs() < 1e-9);
        let s_stat = 100.0 - r.lambda / (2.0 * 0.5);
        assert!((s_stat - 2.0).abs() < 1e-9);
    }

    #[test]
    fn boxed_elastic_interior_matches_plain_elastic() {
        let q = [1.0, 3.0, 2.0];
        let gamma = [0.7, 1.2, 0.4];
        let shift = [0.2, -0.1, 0.0];
        let mode = TotalMode::Elastic {
            alpha: 0.8,
            prior: 9.0,
            cross: 0.3,
        };
        let mut x_plain = [0.0; 3];
        let mut x_boxed = [0.0; 3];
        let mut sc = EquilibrationScratch::new();
        let r1 = exact_equilibration(&q, &gamma, &shift, mode, &mut x_plain, &mut sc).unwrap();
        let lo = [0.0; 3];
        let hi = [1e9; 3];
        let r2 = exact_equilibration_boxed(
            &q, &gamma, &shift, &lo, &hi, mode, &mut x_boxed, &mut sc,
        )
        .unwrap();
        assert!((r1.lambda - r2.lambda).abs() < 1e-9);
        assert!((r1.total - r2.total).abs() < 1e-9);
        for k in 0..3 {
            assert!((x_plain[k] - x_boxed[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn operation_count_grows_superlinearly() {
        assert!(operation_count(2000) > 2.0 * operation_count(1000));
        assert!(operation_count(0) == 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn fixed_matches_bisection(
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let q: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..10.0)).collect();
            let gamma: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..5.0)).collect();
            let shift: Vec<f64> = (0..n).map(|_| rng.random_range(-3.0..3.0)).collect();
            let total = rng.random_range(0.0..30.0);
            let mode = TotalMode::Fixed { total };
            let mut x = vec![0.0; n];
            let mut sc = EquilibrationScratch::new();
            let r = exact_equilibration(&q, &gamma, &shift, mode, &mut x, &mut sc).unwrap();
            let (lam_ref, x_ref) = bisect_reference(&q, &gamma, &shift, mode);
            // Feasibility.
            let sum: f64 = x.iter().sum();
            prop_assert!((sum - total).abs() <= 1e-8 * (1.0 + total.abs()), "sum {} vs {}", sum, total);
            // Multiplier and solution agreement (λ can be non-unique only in
            // degenerate all-zero cases; compare solutions instead).
            for j in 0..n {
                prop_assert!((x[j] - x_ref[j]).abs() <= 1e-5 * (1.0 + x_ref[j].abs()));
            }
            if total > 1e-9 {
                prop_assert!((r.lambda - lam_ref).abs() <= 1e-4 * (1.0 + lam_ref.abs()));
            }
            check_kkt(&q, &gamma, &shift, &x, r.lambda, 1e-6);
        }

        #[test]
        fn elastic_matches_bisection(
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let q: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..10.0)).collect();
            let gamma: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..5.0)).collect();
            let shift: Vec<f64> = (0..n).map(|_| rng.random_range(-3.0..3.0)).collect();
            let alpha = rng.random_range(0.05..5.0);
            let prior = rng.random_range(-5.0..30.0);
            let cross = rng.random_range(-2.0..2.0);
            let mode = TotalMode::Elastic { alpha, prior, cross };
            let mut x = vec![0.0; n];
            let mut sc = EquilibrationScratch::new();
            let r = exact_equilibration(&q, &gamma, &shift, mode, &mut x, &mut sc).unwrap();
            let (lam_ref, _x_ref) = bisect_reference(&q, &gamma, &shift, mode);
            prop_assert!((r.lambda - lam_ref).abs() <= 1e-5 * (1.0 + lam_ref.abs()));
            // Realized total equals the elastic stationarity value and the
            // entry sum simultaneously.
            let sum: f64 = x.iter().sum();
            prop_assert!((sum - r.total).abs() <= 1e-8 * (1.0 + r.total.abs()));
            let s_stat = prior - (r.lambda + cross) / (2.0 * alpha);
            prop_assert!((r.total - s_stat).abs() <= 1e-8 * (1.0 + s_stat.abs()));
            check_kkt(&q, &gamma, &shift, &x, r.lambda, 1e-6);
        }

        #[test]
        fn boxed_feasible_and_kkt(
            n in 1usize..30,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xB0C5);
            let q: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..10.0)).collect();
            let gamma: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..5.0)).collect();
            let shift: Vec<f64> = (0..n).map(|_| rng.random_range(-3.0..3.0)).collect();
            let lo: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..2.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|&l| l + rng.random_range(0.1..5.0)).collect();
            let slo: f64 = lo.iter().sum();
            let shi: f64 = hi.iter().sum();
            let total = rng.random_range(slo..=shi);
            let mut x = vec![0.0; n];
            let mut sc = EquilibrationScratch::new();
            let r = exact_equilibration_boxed(
                &q, &gamma, &shift, &lo, &hi,
                TotalMode::Fixed { total }, &mut x, &mut sc,
            ).unwrap();
            let sum: f64 = x.iter().sum();
            prop_assert!((sum - total).abs() <= 1e-6 * (1.0 + total.abs()), "sum {} vs total {}", sum, total);
            for j in 0..n {
                prop_assert!(x[j] >= lo[j] - 1e-9 && x[j] <= hi[j] + 1e-9);
                let grad = 2.0 * gamma[j] * (x[j] - q[j]) - shift[j] - r.lambda;
                if x[j] > lo[j] + 1e-7 && x[j] < hi[j] - 1e-7 {
                    prop_assert!(grad.abs() <= 1e-5 * (1.0 + grad.abs()));
                } else if x[j] <= lo[j] + 1e-7 {
                    prop_assert!(grad >= -1e-6 * (1.0 + gamma[j]));
                } else {
                    prop_assert!(grad <= 1e-6 * (1.0 + gamma[j]));
                }
            }
        }
    }
}
