//! Exact equilibration: the closed-form single-constraint quadratic solver.
//!
//! Every row and column subproblem that SEA (and RC) produces has the form
//!
//! ```text
//!   min  Σⱼ γⱼ (xⱼ − qⱼ)²  −  Σⱼ shiftⱼ·xⱼ   [+ total term]
//!   s.t. Σⱼ xⱼ = S,   xⱼ ≥ 0
//! ```
//!
//! where `shiftⱼ` carries the opposite side's Lagrange multipliers (μⱼ′ in a
//! row pass, λᵢ in a column pass). The KKT conditions (paper eq. 20–23) give
//!
//! ```text
//!   xⱼ(λ) = ( qⱼ + (shiftⱼ + λ) / (2γⱼ) )₊
//! ```
//!
//! with `λ` the multiplier of the total constraint, so the subproblem
//! reduces to the one-dimensional piecewise-linear equation `Σⱼ xⱼ(λ) = S(λ)`
//! solved exactly by sorting the *breakpoints* `bⱼ = −2γⱼqⱼ − shiftⱼ` and
//! scanning — the *exact equilibration* of Eydeland–Nagurney (1989), with
//! the paper's `7n + n·ln n + 2n` operation profile.
//!
//! The total specification `S(λ)` comes in three flavours ([`TotalMode`]):
//!
//! * **Fixed** — `S = s⁰` (eq. 45–48; the classical transportation case).
//! * **Elastic** — `S = s` is itself a variable with objective term
//!   `α(s − s⁰)²`; KKT gives `s(λ) = s⁰ − (λ + cross)/(2α)` (eq. 23b/40b),
//!   where `cross` is 0 for the unknown-totals problem and the transpose
//!   multiplier for the SAM problem.
//!
//! A box-bounded variant ([`exact_equilibration_boxed`]) supports the
//! Ohuchi–Kaji (1984) bounded model and Harrigan–Buchanan (1984) interval
//! constraints.

use crate::error::SeaError;
use sea_linalg::sort;
use sea_observe::KernelCounters;

/// How the subproblem's total is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TotalMode {
    /// The total is known and fixed: `Σⱼ xⱼ = total`.
    Fixed {
        /// The fixed (nonnegative) total `s⁰ᵢ` or `d⁰ⱼ′`.
        total: f64,
    },
    /// The total is elastic with quadratic penalty `alpha·(s − prior)²`; the
    /// optimal total is `s(λ) = prior − (λ + cross)/(2·alpha)`.
    Elastic {
        /// Strictly positive penalty weight (`αᵢ` or `βⱼ′`).
        alpha: f64,
        /// Prior total (`s⁰ᵢ` or `d⁰ⱼ′`).
        prior: f64,
        /// Extra multiplier folded into the total's stationarity condition:
        /// 0 for the unknown-totals problem, the transpose multiplier for
        /// the SAM balanced problem (eq. 40b).
        cross: f64,
    },
}

/// Which algorithm solves the piecewise-linear equation `Σⱼ xⱼ(λ) = S(λ)`.
///
/// Both kernels produce the same solution (differentially tested to 1e-10);
/// they differ only in how they locate the linear segment containing the
/// root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Argsort the breakpoints, then scan segments in order — `O(n log n)`,
    /// the paper's `7n + n·ln n + 2n` profile. The reference oracle.
    #[default]
    SortScan,
    /// Expected-`O(n)` selection: deterministic median-of-3 quickselect over
    /// the breakpoints, folding discarded segments into running linear
    /// coefficients instead of ever sorting (Kiwiel-style breakpoint
    /// search).
    Quickselect,
}

impl KernelKind {
    /// Stable lowercase name, for CLI flags and report tables.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::SortScan => "sortscan",
            KernelKind::Quickselect => "quickselect",
        }
    }

    /// Parse a CLI spelling. Accepts `sortscan`/`sort-scan`/`sort` and
    /// `quickselect`/`select`/`qs`.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.to_ascii_lowercase().as_str() {
            "sortscan" | "sort-scan" | "sort" => Some(KernelKind::SortScan),
            "quickselect" | "select" | "qs" => Some(KernelKind::Quickselect),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of one exact equilibration solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquilibrationResult {
    /// Lagrange multiplier of the total constraint.
    pub lambda: f64,
    /// The realized total `S` (equals the fixed total, or the optimal
    /// elastic total).
    pub total: f64,
    /// Number of strictly positive entries in the solution.
    pub active: usize,
}

/// One breakpoint event for the selection kernel: crossing `v` changes the
/// active-set linear form `f(λ) = A + B·λ` by `(da, db)`.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SelectEvent {
    pub(crate) v: f64,
    pub(crate) da: f64,
    pub(crate) db: f64,
}

/// Reusable workspace so the hot loop performs no allocation (workhorse
/// buffers, per the performance guide). Buffers grow to the subproblem size
/// on first use; every subsequent solve of the same (or smaller) size is
/// allocation-free regardless of kernel.
#[derive(Debug, Default, Clone)]
pub struct EquilibrationScratch {
    pub(crate) breakpoints: Vec<f64>,
    pub(crate) order: Vec<u32>,
    /// Second event array for the boxed variant.
    pub(crate) events_hi: Vec<f64>,
    /// Breakpoint events for the quickselect kernel (plain and boxed).
    pub(crate) events: Vec<SelectEvent>,
    /// Extra coefficient buffers used only by the vectorized kernels in
    /// [`crate::kernel_simd`]; empty (and allocation-free) on scalar paths.
    pub(crate) simd: crate::kernel_simd::SimdScratch,
    /// Cumulative work counters across every solve that used this scratch
    /// (subproblems, breakpoint segments swept, quickselect partition
    /// rounds, boxed-bound clamps). Maintained unconditionally — a handful
    /// of integer adds per solve — and harvested by the observability
    /// layer; reset by assigning `KernelCounters::default()`.
    pub stats: KernelCounters,
}

impl EquilibrationScratch {
    /// Fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn prepare(&mut self, n: usize) {
        self.breakpoints.clear();
        self.breakpoints.reserve(n);
        self.order.clear();
        self.order.reserve(2 * n);
        self.events.clear();
        self.events.reserve(2 * n);
    }
}

/// Operation-count model for one exact equilibration of length `n`, per the
/// paper's Section 3 analysis (`7n + n ln n + 2n`). Used by the scheduling
/// simulator as an architecture-independent task cost.
#[inline]
pub fn operation_count(n: usize) -> f64 {
    let nf = n as f64;
    9.0 * nf + nf * nf.max(1.0).ln()
}

/// Operation-count model dispatched by kernel: the selection kernel drops
/// the `n·ln n` sorting term (expected-linear breakpoint search), keeping a
/// larger linear constant for the partition passes.
#[inline]
pub fn operation_count_for(kernel: KernelKind, n: usize) -> f64 {
    match kernel {
        KernelKind::SortScan => operation_count(n),
        KernelKind::Quickselect => 13.0 * n as f64,
    }
}

#[inline]
pub(crate) fn validate_inputs(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    x_out: &[f64],
) -> Result<(), SeaError> {
    let n = q.len();
    if gamma.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration gamma",
            expected: n,
            actual: gamma.len(),
        });
    }
    if shift.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration shift",
            expected: n,
            actual: shift.len(),
        });
    }
    if x_out.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration x_out",
            expected: n,
            actual: x_out.len(),
        });
    }
    Ok(())
}

/// Solve the single-constraint subproblem by exact equilibration.
///
/// `q` are the priors, `gamma` the strictly positive quadratic weights,
/// `shift` the opposite-side multipliers, `mode` the total specification.
/// The optimal entries are written to `x_out`.
///
/// ```
/// use sea_core::knapsack::{exact_equilibration, EquilibrationScratch, TotalMode};
///
/// // Spread a total of 9 across priors (1, 2, 3) with unit weights:
/// // every entry shifts by +1.
/// let mut x = [0.0; 3];
/// let mut scratch = EquilibrationScratch::new();
/// let r = exact_equilibration(
///     &[1.0, 2.0, 3.0],
///     &[1.0, 1.0, 1.0],
///     &[0.0, 0.0, 0.0],
///     TotalMode::Fixed { total: 9.0 },
///     &mut x,
///     &mut scratch,
/// ).unwrap();
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((r.lambda - 2.0).abs() < 1e-12);
/// ```
///
/// # Errors
/// * [`SeaError::Shape`] on length mismatches.
/// * [`SeaError::InfeasibleSubproblem`] for a fixed positive total with no
///   entries.
/// * [`SeaError::NonPositiveWeight`] if any `gamma` (or elastic `alpha`) is
///   not strictly positive (checked in debug and on the slow path).
pub fn exact_equilibration(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<EquilibrationResult, SeaError> {
    exact_equilibration_with(KernelKind::SortScan, q, gamma, shift, mode, x_out, scratch)
}

/// [`exact_equilibration`] with an explicit kernel choice.
///
/// [`KernelKind::SortScan`] is the reference oracle; [`KernelKind::Quickselect`]
/// locates the same root segment by in-place selection in expected linear
/// time. Both write the same solution (to floating-point roundoff).
///
/// # Errors
/// Same contract as [`exact_equilibration`].
pub fn exact_equilibration_with(
    kernel: KernelKind,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<EquilibrationResult, SeaError> {
    validate_inputs(q, gamma, shift, x_out)?;
    let n = q.len();
    scratch.stats.subproblems += 1;

    if let TotalMode::Elastic { alpha, .. } = mode {
        if !(alpha > 0.0) {
            return Err(SeaError::NonPositiveWeight {
                which: "alpha",
                index: 0,
                value: alpha,
            });
        }
    }

    if n == 0 {
        return match mode {
            TotalMode::Fixed { total } if total > 0.0 => Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 0,
            }),
            TotalMode::Fixed { .. } => Ok(EquilibrationResult {
                lambda: 0.0,
                total: 0.0,
                active: 0,
            }),
            TotalMode::Elastic {
                alpha,
                prior,
                cross,
            } => {
                // Only the elastic total remains: s = prior − (λ+cross)/(2α)
                // with s = Σx = 0 ⇒ λ = 2α·prior − cross.
                Ok(EquilibrationResult {
                    lambda: 2.0 * alpha * prior - cross,
                    total: 0.0,
                    active: 0,
                })
            }
        };
    }

    let lambda = match kernel {
        KernelKind::SortScan => plain_lambda_sort_scan(q, gamma, shift, mode, scratch),
        KernelKind::Quickselect => plain_lambda_quickselect(q, gamma, shift, mode, scratch),
    };

    if !lambda.is_finite() {
        // Fixed positive total but every segment exhausted: can only happen
        // when b stays 0, i.e. n == 0 (handled above) — defensive.
        return Err(SeaError::NumericalBreakdown { iteration: 0 });
    }

    // Materialize the solution.
    let mut sum = 0.0;
    let mut active = 0usize;
    for j in 0..n {
        let v = q[j] + (shift[j] + lambda) / (2.0 * gamma[j]);
        let v = if v > 0.0 { v } else { 0.0 };
        if v > 0.0 {
            active += 1;
        }
        x_out[j] = v;
        sum += v;
    }

    let total = match mode {
        TotalMode::Fixed { total } => total,
        TotalMode::Elastic {
            alpha,
            prior,
            cross,
        } => prior - (lambda + cross) / (2.0 * alpha),
    };

    // Absorb the residual rounding error into the largest entries so the
    // constraint holds to near machine precision (keeps downstream
    // convergence checks honest). Proportional correction preserves
    // nonnegativity.
    let err = total - sum;
    if err != 0.0 && sum > 0.0 && err.abs() > 0.0 {
        let scale = total / sum;
        if scale.is_finite() && scale > 0.0 {
            for v in x_out.iter_mut() {
                *v *= scale;
            }
        }
    }

    Ok(EquilibrationResult {
        lambda,
        total,
        active,
    })
}

/// Slope/intercept of the elastic total response `S(λ) = el_const − λ·el_slope`
/// (fixed mode degenerates to `(0, 0)` and is special-cased by callers).
#[inline]
pub(crate) fn elastic_constants(mode: TotalMode) -> (f64, f64) {
    match mode {
        TotalMode::Fixed { .. } => (0.0, 0.0),
        TotalMode::Elastic {
            alpha,
            prior,
            cross,
        } => (1.0 / (2.0 * alpha), prior - cross / (2.0 * alpha)),
    }
}

/// Sort-based segment search for the nonnegative subproblem: argsort the
/// breakpoints, then sweep segments left to right accumulating the active
/// linear form. Returns NaN when no segment accepts (numerical breakdown;
/// the caller reports it).
pub(crate) fn plain_lambda_sort_scan(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f64 {
    let n = q.len();
    // Breakpoints bⱼ = −2γⱼqⱼ − shiftⱼ: entry j is active for λ > bⱼ.
    scratch.prepare(n);
    for j in 0..n {
        debug_assert!(gamma[j] > 0.0, "gamma must be strictly positive");
        scratch.breakpoints.push(-2.0 * gamma[j] * q[j] - shift[j]);
    }
    scratch.order.resize(n, 0);
    sort::identity_permutation(&mut scratch.order);
    sort::argsort(&mut scratch.order, &scratch.breakpoints);

    // Sweep the segments. Active prefix r contributes Σ (qⱼ + shiftⱼ/(2γⱼ))
    // (accumulated in `a`) plus λ·Σ 1/(2γⱼ) (accumulated in `b`).
    let mut a = 0.0_f64;
    let mut b = 0.0_f64;
    let (el_slope, el_const) = elastic_constants(mode);

    let mut lambda = f64::NAN;
    let mut swept = 0u64;
    for r in 0..=n {
        swept += 1;
        let upper = if r < n {
            scratch.breakpoints[scratch.order[r] as usize]
        } else {
            f64::INFINITY
        };
        // Root of: a + λ·b  =  S(λ), where for fixed mode S(λ) = total and
        // for elastic S(λ) = el_const − λ·el_slope.
        let cand = match mode {
            TotalMode::Fixed { total } => {
                if b > 0.0 {
                    Some((total - a) / b)
                } else if total <= 0.0 {
                    // All entries zero is the solution; λ may sit anywhere
                    // at or below the first breakpoint — report the
                    // boundary (the largest valid multiplier).
                    Some(if r < n { upper } else { 0.0 })
                } else {
                    None
                }
            }
            TotalMode::Elastic { .. } => Some((el_const - a) / (b + el_slope)),
        };
        if let Some(c) = cand {
            if c <= upper {
                lambda = c;
                break;
            }
        }
        if r < n {
            let j = scratch.order[r] as usize;
            let inv2g = 1.0 / (2.0 * gamma[j]);
            a += q[j] + shift[j] * inv2g;
            b += inv2g;
        }
    }
    scratch.stats.breakpoints_scanned += swept;
    lambda
}

/// Selection kernel for the nonnegative subproblem: one breakpoint event
/// per entry, then [`select_lambda`]. Returns NaN on breakdown.
fn plain_lambda_quickselect(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f64 {
    let n = q.len();
    scratch.prepare(n);
    for j in 0..n {
        debug_assert!(gamma[j] > 0.0, "gamma must be strictly positive");
        let inv2g = 1.0 / (2.0 * gamma[j]);
        scratch.events.push(SelectEvent {
            v: -2.0 * gamma[j] * q[j] - shift[j],
            // Crossing the breakpoint activates xⱼ(λ) = daⱼ + λ·dbⱼ.
            da: q[j] + shift[j] * inv2g,
            db: inv2g,
        });
    }
    select_lambda(
        &mut scratch.events,
        0.0,
        mode,
        FlatPolicy::NonnegativePrefix,
        &mut scratch.stats.quickselect_pivots,
    )
    .unwrap_or(f64::NAN)
}

/// How a flat (zero-slope) terminal segment is resolved in fixed mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FlatPolicy {
    /// Plain kernel: zero slope only happens left of every breakpoint,
    /// where all entries clamp to zero — a solution iff `total ≤ 0`; report
    /// the segment's upper boundary, matching the sort-scan sweep.
    NonnegativePrefix,
    /// Boxed kernel: flat segments can occur anywhere (every entry pinned
    /// at a bound); accept when the pinned sum already matches the total.
    BoundedMatch,
}

#[inline]
fn median3(a: f64, b: f64, c: f64) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if c <= lo {
        lo
    } else if c >= hi {
        hi
    } else {
        c
    }
}

/// Expected-O(n) segment search shared by the plain and boxed selection
/// kernels.
///
/// `events` encodes `f(λ) = base_a + Σ_{vₑ ≤ λ} (daₑ + λ·dbₑ)`: each event,
/// once crossed, adds `(daₑ, dbₑ)` to the active linear form — and is built
/// so its contribution is exactly zero *at* its own breakpoint. The routine
/// finds the segment containing the root of `f(λ) = S(λ)` (f nondecreasing)
/// by deterministic median-of-3 quickselect: pivot on an event value,
/// evaluate `f` there, and either discard the right part or fold the left
/// part into running coefficients. Every step retires at least the
/// pivot-equal events and partitions in place, so the search performs no
/// allocation and no sort.
///
/// Returns `None` when fixed mode finds no consistent segment (the caller
/// picks its fallback).
pub(crate) fn select_lambda(
    events: &mut [SelectEvent],
    base_a: f64,
    mode: TotalMode,
    flat: FlatPolicy,
    pivots: &mut u64,
) -> Option<f64> {
    let (el_slope, el_const) = elastic_constants(mode);
    let (mut lo, mut hi) = (0usize, events.len());
    let mut acc_a = base_a;
    let mut acc_b = 0.0_f64;
    // Boundaries of the narrowed segment: smallest pivot ruled
    // "root ≤ pivot" and largest pivot ruled "root > pivot" so far. The
    // root always lies in [seg_lo, seg_hi]; the final division is clamped
    // there so that catastrophic cancellation in acc_b (e.g. every boxed
    // event folded left, leaving a tiny ±ε slope) cannot fling λ out of
    // the segment.
    let mut seg_hi = f64::INFINITY;
    let mut seg_lo = f64::NEG_INFINITY;

    while lo < hi {
        *pivots += 1;
        let p = median3(events[lo].v, events[lo + (hi - lo) / 2].v, events[hi - 1].v);
        // Three-way partition of the window around p:
        // [lo..lt) < p, [lt..gt) == p, [gt..hi) > p.
        let (mut lt, mut cur, mut gt) = (lo, lo, hi);
        while cur < gt {
            let v = events[cur].v;
            if v < p {
                events.swap(lt, cur);
                lt += 1;
                cur += 1;
            } else if v > p {
                gt -= 1;
                events.swap(cur, gt);
            } else {
                cur += 1;
            }
        }
        let (mut sa, mut sb) = (0.0_f64, 0.0_f64);
        for e in &events[lo..gt] {
            sa += e.da;
            sb += e.db;
        }
        let f_p = (acc_a + sa) + p * (acc_b + sb);
        let s_p = match mode {
            TotalMode::Fixed { total } => total,
            TotalMode::Elastic { .. } => el_const - el_slope * p,
        };
        if f_p >= s_p {
            // Root at or left of the pivot: drop everything ≥ p.
            seg_hi = p;
            hi = lt;
        } else {
            // Root right of the pivot: fold everything ≤ p.
            acc_a += sa;
            acc_b += sb;
            lo = gt;
            seg_lo = p;
        }
    }

    // The root lies in the identified segment, where f(λ) = acc_a + λ·acc_b.
    match mode {
        TotalMode::Fixed { total } => {
            if acc_b > 0.0 {
                Some(((total - acc_a) / acc_b).clamp(seg_lo, seg_hi))
            } else {
                let flat_solves = match flat {
                    FlatPolicy::NonnegativePrefix => total <= 0.0,
                    FlatPolicy::BoundedMatch => {
                        (acc_a - total).abs() <= 1e-12 * total.abs().max(1.0)
                    }
                };
                if flat_solves {
                    Some(if seg_hi.is_finite() {
                        seg_hi
                    } else if seg_lo.is_finite() {
                        seg_lo
                    } else {
                        0.0
                    })
                } else {
                    None
                }
            }
        }
        TotalMode::Elastic { .. } => {
            Some(((el_const - acc_a) / (acc_b + el_slope)).clamp(seg_lo, seg_hi))
        }
    }
}

/// Box-bounded exact equilibration: `loⱼ ≤ xⱼ ≤ hiⱼ` instead of `xⱼ ≥ 0`.
///
/// Supports the Ohuchi–Kaji (1984) bounded transportation model and the
/// Harrigan–Buchanan (1984) interval-constrained I/O estimation model. The
/// projected entry is `xⱼ(λ) = clamp(qⱼ + (shiftⱼ + λ)/(2γⱼ), loⱼ, hiⱼ)`,
/// so each entry contributes two breakpoints; the sweep is otherwise the
/// same as [`exact_equilibration`].
///
/// # Errors
/// * [`SeaError::Shape`] on length mismatches.
/// * [`SeaError::InconsistentBounds`] if some `loⱼ > hiⱼ`.
/// * [`SeaError::InfeasibleSubproblem`] if the fixed total lies outside
///   `[Σ lo, Σ hi]`.
#[allow(clippy::too_many_arguments)]
pub fn exact_equilibration_boxed(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<EquilibrationResult, SeaError> {
    exact_equilibration_boxed_with(
        KernelKind::SortScan,
        q,
        gamma,
        shift,
        lo,
        hi,
        mode,
        x_out,
        scratch,
    )
}

/// [`exact_equilibration_boxed`] with an explicit kernel choice (see
/// [`exact_equilibration_with`]).
///
/// # Errors
/// Same contract as [`exact_equilibration_boxed`].
#[allow(clippy::too_many_arguments)]
pub fn exact_equilibration_boxed_with(
    kernel: KernelKind,
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    mode: TotalMode,
    x_out: &mut [f64],
    scratch: &mut EquilibrationScratch,
) -> Result<EquilibrationResult, SeaError> {
    validate_inputs(q, gamma, shift, x_out)?;
    let n = q.len();
    scratch.stats.subproblems += 1;
    if lo.len() != n || hi.len() != n {
        return Err(SeaError::Shape {
            context: "exact_equilibration_boxed bounds",
            expected: n,
            actual: lo.len().min(hi.len()),
        });
    }
    for j in 0..n {
        if lo[j] > hi[j] {
            return Err(SeaError::InconsistentBounds {
                index: j,
                lower: lo[j],
                upper: hi[j],
            });
        }
    }
    let sum_lo: f64 = lo.iter().sum();
    let sum_hi: f64 = hi.iter().sum();
    if let TotalMode::Fixed { total } = mode {
        let span = (sum_hi - sum_lo).abs().max(1.0);
        if total < sum_lo - 1e-9 * span || total > sum_hi + 1e-9 * span {
            return Err(SeaError::InfeasibleSubproblem {
                side: "row",
                index: 0,
            });
        }
    }
    if let TotalMode::Elastic { alpha, .. } = mode {
        if !(alpha > 0.0) {
            return Err(SeaError::NonPositiveWeight {
                which: "alpha",
                index: 0,
                value: alpha,
            });
        }
    }

    let mut lambda = match kernel {
        KernelKind::SortScan => {
            boxed_lambda_sort_scan(q, gamma, shift, lo, hi, sum_lo, mode, scratch)
        }
        KernelKind::Quickselect => {
            boxed_lambda_quickselect(q, gamma, shift, lo, hi, sum_lo, mode, scratch)
        }
    };
    if !lambda.is_finite() {
        // Fixed mode where the total is only attained at the extreme: clamp.
        lambda = match mode {
            TotalMode::Fixed { total } if total >= sum_hi => f64::MAX.sqrt(),
            _ => -f64::MAX.sqrt(),
        };
    }

    let mut active = 0usize;
    let mut sum = 0.0;
    for j in 0..n {
        let raw = q[j] + (shift[j] + lambda) / (2.0 * gamma[j]);
        let v = raw.clamp(lo[j], hi[j]);
        if v > lo[j] && v < hi[j] {
            active += 1;
        }
        x_out[j] = v;
        sum += v;
    }
    let total = match mode {
        TotalMode::Fixed { total } => total,
        TotalMode::Elastic {
            alpha,
            prior,
            cross,
        } => prior - (lambda + cross) / (2.0 * alpha),
    };
    let _ = sum;
    scratch.stats.boxed_clamps += (n - active) as u64;

    Ok(EquilibrationResult {
        lambda,
        total,
        active,
    })
}

/// Sort-based segment search for the boxed subproblem: two events per entry
/// (leaving its lower bound, saturating at its upper bound), argsorted and
/// swept. Returns NaN when no segment accepts (caller clamps).
#[allow(clippy::too_many_arguments)]
fn boxed_lambda_sort_scan(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    sum_lo: f64,
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f64 {
    let n = q.len();
    // Event k < n is entry k leaving its lower bound; event k ≥ n is entry
    // k−n saturating at its upper bound.
    scratch.prepare(n);
    scratch.events_hi.clear();
    scratch.events_hi.reserve(2 * n);
    for j in 0..n {
        scratch
            .events_hi
            .push(2.0 * gamma[j] * (lo[j] - q[j]) - shift[j]);
    }
    for j in 0..n {
        scratch
            .events_hi
            .push(2.0 * gamma[j] * (hi[j] - q[j]) - shift[j]);
    }
    scratch.order.resize(2 * n, 0);
    sort::identity_permutation(&mut scratch.order);
    sort::argsort(&mut scratch.order, &scratch.events_hi);

    let (el_slope, el_const) = elastic_constants(mode);

    // Start below every event: all entries pinned at lo.
    let mut a = sum_lo;
    let mut b = 0.0_f64;
    let mut lambda = f64::NAN;
    // Lower edge of the current segment (the last event crossed). Accepted
    // candidates are clamped to it: when the slope `b` cancels to a tiny
    // residue (all entries pinned at bounds), the division can otherwise
    // fling λ far outside the segment that actually contains the root.
    let mut seg_lo = f64::NEG_INFINITY;
    let mut swept = 0u64;
    for r in 0..=(2 * n) {
        swept += 1;
        let upper = if r < 2 * n {
            scratch.events_hi[scratch.order[r] as usize]
        } else {
            f64::INFINITY
        };
        let cand = match mode {
            TotalMode::Fixed { total } => {
                if b > 0.0 {
                    Some((total - a) / b)
                } else if (a - total).abs() <= 1e-12 * total.abs().max(1.0) {
                    // Flat segment already matching the total.
                    Some(if r < 2 * n { upper } else { seg_lo })
                } else {
                    None
                }
            }
            TotalMode::Elastic { .. } => Some((el_const - a) / (b + el_slope)),
        };
        if let Some(c) = cand {
            if c <= upper {
                lambda = c.max(seg_lo);
                break;
            }
        }
        if r < 2 * n {
            let e = scratch.order[r] as usize;
            let j = e % n;
            let inv2g = 1.0 / (2.0 * gamma[j]);
            if e < n {
                // Entry leaves its lower bound.
                a += q[j] + shift[j] * inv2g - lo[j];
                b += inv2g;
            } else {
                // Entry saturates at its upper bound.
                a += hi[j] - (q[j] + shift[j] * inv2g);
                b -= inv2g;
            }
            seg_lo = upper;
        }
    }
    scratch.stats.breakpoints_scanned += swept;
    lambda
}

/// Selection kernel for the boxed subproblem: the clamp decomposes into a
/// `+w` hinge at the lower-bound event and a `−w` hinge at the upper-bound
/// event, so the same [`select_lambda`] search applies with `base = Σ loⱼ`.
/// Returns NaN when no segment accepts (caller clamps).
#[allow(clippy::too_many_arguments)]
fn boxed_lambda_quickselect(
    q: &[f64],
    gamma: &[f64],
    shift: &[f64],
    lo: &[f64],
    hi: &[f64],
    sum_lo: f64,
    mode: TotalMode,
    scratch: &mut EquilibrationScratch,
) -> f64 {
    let n = q.len();
    scratch.prepare(n);
    for j in 0..n {
        let inv2g = 1.0 / (2.0 * gamma[j]);
        scratch.events.push(SelectEvent {
            v: 2.0 * gamma[j] * (lo[j] - q[j]) - shift[j],
            // Leaving the lower bound swaps loⱼ for the interior response.
            da: q[j] + shift[j] * inv2g - lo[j],
            db: inv2g,
        });
        scratch.events.push(SelectEvent {
            v: 2.0 * gamma[j] * (hi[j] - q[j]) - shift[j],
            // Saturating at the upper bound freezes the response at hiⱼ.
            da: hi[j] - (q[j] + shift[j] * inv2g),
            db: -inv2g,
        });
    }
    select_lambda(
        &mut scratch.events,
        sum_lo,
        mode,
        FlatPolicy::BoundedMatch,
        &mut scratch.stats.quickselect_pivots,
    )
    .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference solve by bisection on λ — independent of the sweep logic.
    fn bisect_reference(
        q: &[f64],
        gamma: &[f64],
        shift: &[f64],
        mode: TotalMode,
    ) -> (f64, Vec<f64>) {
        let g = |lam: f64| -> f64 {
            let s: f64 = q
                .iter()
                .zip(gamma)
                .zip(shift)
                .map(|((&qj, &gj), &mj)| (qj + (mj + lam) / (2.0 * gj)).max(0.0))
                .sum();
            match mode {
                TotalMode::Fixed { total } => s - total,
                TotalMode::Elastic {
                    alpha,
                    prior,
                    cross,
                } => s - (prior - (lam + cross) / (2.0 * alpha)),
            }
        };
        let (mut lo, mut hi) = (-1e9, 1e9);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if g(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let lam = 0.5 * (lo + hi);
        let x = q
            .iter()
            .zip(gamma)
            .zip(shift)
            .map(|((&qj, &gj), &mj)| (qj + (mj + lam) / (2.0 * gj)).max(0.0))
            .collect();
        (lam, x)
    }

    fn check_kkt(q: &[f64], gamma: &[f64], shift: &[f64], x: &[f64], lambda: f64, tol: f64) {
        for j in 0..q.len() {
            let grad = 2.0 * gamma[j] * (x[j] - q[j]) - shift[j] - lambda;
            if x[j] > tol {
                assert!(
                    grad.abs() <= tol * (1.0 + gamma[j].abs() * q[j].abs()),
                    "stationarity violated at {j}: grad={grad}"
                );
            } else {
                assert!(
                    grad >= -tol * (1.0 + gamma[j].abs()),
                    "sign violated at {j}"
                );
            }
        }
    }

    #[test]
    fn fixed_mode_simple() {
        // Equal weights, zero shift: equilibration spreads the total with
        // equal adjustments.
        let q = [1.0, 2.0, 3.0];
        let gamma = [1.0, 1.0, 1.0];
        let shift = [0.0; 3];
        let mut x = [0.0; 3];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Fixed { total: 9.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        // Each entry shifts by +1 ⇒ x = (2,3,4), λ = 2.
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - 4.0).abs() < 1e-12);
        assert!((r.lambda - 2.0).abs() < 1e-12);
        assert_eq!(r.active, 3);
    }

    #[test]
    fn fixed_mode_activates_nonnegativity() {
        // Shrinking the total far enough drives small entries to zero.
        let q = [1.0, 10.0];
        let gamma = [1.0, 1.0];
        let shift = [0.0; 2];
        let mut x = [0.0; 2];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Fixed { total: 2.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert_eq!(r.active, 1);
        check_kkt(&q, &gamma, &shift, &x, r.lambda, 1e-9);
    }

    #[test]
    fn fixed_zero_total_gives_zero_solution() {
        let q = [1.0, 2.0];
        let gamma = [0.5, 2.0];
        let shift = [0.3, -0.7];
        let mut x = [9.0; 2];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Fixed { total: 0.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(x, [0.0, 0.0]);
        assert_eq!(r.active, 0);
        // λ must keep every entry at or below zero.
        check_kkt(&q, &gamma, &shift, &x, r.lambda, 1e-9);
    }

    #[test]
    fn elastic_mode_matches_hand_computation() {
        // One entry, q=0, γ=1/2, shift=0, α=1/2, prior=4:
        // x(λ)=(λ)₊, s(λ)=4−λ; x=s ⇒ λ=2, x=2, s=2.
        let q = [0.0];
        let gamma = [0.5];
        let shift = [0.0];
        let mut x = [0.0];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Elastic {
                alpha: 0.5,
                prior: 4.0,
                cross: 0.0,
            },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert!((r.lambda - 2.0).abs() < 1e-12);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((r.total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn elastic_cross_shift_moves_total() {
        // SAM-style cross term reduces the realized total.
        let q = [0.0];
        let gamma = [0.5];
        let shift = [0.0];
        let mut x = [0.0];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration(
            &q,
            &gamma,
            &shift,
            TotalMode::Elastic {
                alpha: 0.5,
                prior: 4.0,
                cross: 1.0,
            },
            &mut x,
            &mut sc,
        )
        .unwrap();
        // x(λ)=λ₊, s=4−(λ+1) ⇒ λ = 1.5, x = 1.5.
        assert!((r.lambda - 1.5).abs() < 1e-12);
        assert!((x[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_subproblem_cases() {
        let mut x: [f64; 0] = [];
        let mut sc = EquilibrationScratch::new();
        assert!(exact_equilibration(
            &[],
            &[],
            &[],
            TotalMode::Fixed { total: 1.0 },
            &mut x,
            &mut sc
        )
        .is_err());
        let r = exact_equilibration(
            &[],
            &[],
            &[],
            TotalMode::Fixed { total: 0.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(r.active, 0);
        let r = exact_equilibration(
            &[],
            &[],
            &[],
            TotalMode::Elastic {
                alpha: 1.0,
                prior: 3.0,
                cross: 0.0,
            },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(r.total, 0.0);
        assert!((r.lambda - 6.0).abs() < 1e-12);
    }

    #[test]
    fn shape_errors() {
        let mut x = [0.0; 2];
        let mut sc = EquilibrationScratch::new();
        assert!(matches!(
            exact_equilibration(
                &[1.0, 2.0],
                &[1.0],
                &[0.0, 0.0],
                TotalMode::Fixed { total: 1.0 },
                &mut x,
                &mut sc
            ),
            Err(SeaError::Shape { .. })
        ));
    }

    #[test]
    fn boxed_respects_bounds_and_total() {
        let q = [1.0, 5.0, 2.0];
        let gamma = [1.0, 1.0, 1.0];
        let shift = [0.0; 3];
        let lo = [0.5, 0.0, 1.0];
        let hi = [2.0, 3.0, 2.5];
        let mut x = [0.0; 3];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration_boxed(
            &q,
            &gamma,
            &shift,
            &lo,
            &hi,
            TotalMode::Fixed { total: 6.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        let sum: f64 = x.iter().sum();
        assert!((sum - 6.0).abs() < 1e-9, "sum={sum}");
        for j in 0..3 {
            assert!(x[j] >= lo[j] - 1e-12 && x[j] <= hi[j] + 1e-12);
        }
        let _ = r;
    }

    #[test]
    fn boxed_detects_infeasible_total() {
        let mut x = [0.0; 2];
        let mut sc = EquilibrationScratch::new();
        assert!(matches!(
            exact_equilibration_boxed(
                &[1.0, 1.0],
                &[1.0, 1.0],
                &[0.0, 0.0],
                &[0.0, 0.0],
                &[1.0, 1.0],
                TotalMode::Fixed { total: 5.0 },
                &mut x,
                &mut sc
            ),
            Err(SeaError::InfeasibleSubproblem { .. })
        ));
        assert!(matches!(
            exact_equilibration_boxed(
                &[1.0, 1.0],
                &[1.0, 1.0],
                &[0.0, 0.0],
                &[2.0, 0.0],
                &[1.0, 1.0],
                TotalMode::Fixed { total: 1.5 },
                &mut x,
                &mut sc
            ),
            Err(SeaError::InconsistentBounds {
                index: 0,
                lower,
                upper,
            }) if lower == 2.0 && upper == 1.0
        ));
    }

    #[test]
    fn boxed_reduces_to_plain_when_bounds_loose() {
        let q = [1.0, 2.0, 3.0];
        let gamma = [0.5, 1.5, 1.0];
        let shift = [0.1, -0.2, 0.0];
        let lo = [0.0; 3];
        let hi = [1e12; 3];
        let mut x_plain = [0.0; 3];
        let mut x_box = [0.0; 3];
        let mut sc = EquilibrationScratch::new();
        let mode = TotalMode::Fixed { total: 7.0 };
        let r1 = exact_equilibration(&q, &gamma, &shift, mode, &mut x_plain, &mut sc).unwrap();
        let r2 = exact_equilibration_boxed(&q, &gamma, &shift, &lo, &hi, mode, &mut x_box, &mut sc)
            .unwrap();
        assert!((r1.lambda - r2.lambda).abs() < 1e-9);
        for j in 0..3 {
            assert!((x_plain[j] - x_box[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn boxed_elastic_mode_balances_total_against_bounds() {
        // Elastic total with tight upper bounds: the realized total cannot
        // exceed Σ hi even though the prior total asks for more.
        let q = [0.0, 0.0];
        let gamma = [0.5, 0.5];
        let shift = [0.0, 0.0];
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        let mut x = [0.0; 2];
        let mut sc = EquilibrationScratch::new();
        let r = exact_equilibration_boxed(
            &q,
            &gamma,
            &shift,
            &lo,
            &hi,
            TotalMode::Elastic {
                alpha: 0.5,
                prior: 100.0,
                cross: 0.0,
            },
            &mut x,
            &mut sc,
        )
        .unwrap();
        // Entries saturate at the bounds; the elastic total then sits at
        // Σx = 2, with λ at the stationarity value s = prior − λ/(2α).
        assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
        assert!((r.total - 2.0).abs() < 1e-9);
        let s_stat = 100.0 - r.lambda / (2.0 * 0.5);
        assert!((s_stat - 2.0).abs() < 1e-9);
    }

    #[test]
    fn boxed_elastic_interior_matches_plain_elastic() {
        let q = [1.0, 3.0, 2.0];
        let gamma = [0.7, 1.2, 0.4];
        let shift = [0.2, -0.1, 0.0];
        let mode = TotalMode::Elastic {
            alpha: 0.8,
            prior: 9.0,
            cross: 0.3,
        };
        let mut x_plain = [0.0; 3];
        let mut x_boxed = [0.0; 3];
        let mut sc = EquilibrationScratch::new();
        let r1 = exact_equilibration(&q, &gamma, &shift, mode, &mut x_plain, &mut sc).unwrap();
        let lo = [0.0; 3];
        let hi = [1e9; 3];
        let r2 =
            exact_equilibration_boxed(&q, &gamma, &shift, &lo, &hi, mode, &mut x_boxed, &mut sc)
                .unwrap();
        assert!((r1.lambda - r2.lambda).abs() < 1e-9);
        assert!((r1.total - r2.total).abs() < 1e-9);
        for k in 0..3 {
            assert!((x_plain[k] - x_boxed[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn operation_count_grows_superlinearly() {
        assert!(operation_count(2000) > 2.0 * operation_count(1000));
        assert!(operation_count(0) == 0.0);
    }

    #[test]
    fn kernel_kind_parses_and_prints() {
        assert_eq!(KernelKind::parse("sortscan"), Some(KernelKind::SortScan));
        assert_eq!(KernelKind::parse("sort-scan"), Some(KernelKind::SortScan));
        assert_eq!(KernelKind::parse("QS"), Some(KernelKind::Quickselect));
        assert_eq!(KernelKind::parse("select"), Some(KernelKind::Quickselect));
        assert_eq!(KernelKind::parse("bogosort"), None);
        assert_eq!(KernelKind::Quickselect.to_string(), "quickselect");
        assert_eq!(KernelKind::default(), KernelKind::SortScan);
    }

    #[test]
    fn scratch_counters_accumulate_per_kernel() {
        let q = [1.0, 2.0, 3.0, 4.0];
        let gamma = [1.0; 4];
        let shift = [0.0; 4];
        let mut x = [0.0; 4];
        let mode = TotalMode::Fixed { total: 12.0 };

        let mut sc = EquilibrationScratch::new();
        exact_equilibration_with(
            KernelKind::SortScan,
            &q,
            &gamma,
            &shift,
            mode,
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(sc.stats.subproblems, 1);
        assert!(sc.stats.breakpoints_scanned >= 1);
        assert_eq!(sc.stats.quickselect_pivots, 0);

        exact_equilibration_with(
            KernelKind::Quickselect,
            &q,
            &gamma,
            &shift,
            mode,
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(sc.stats.subproblems, 2);
        assert!(sc.stats.quickselect_pivots >= 1);

        // Boxed solve records clamps for every entry pinned at a bound.
        let lo = [0.0; 4];
        let hi = [2.0; 4];
        exact_equilibration_boxed_with(
            KernelKind::SortScan,
            &q,
            &gamma,
            &shift,
            &lo,
            &hi,
            TotalMode::Fixed { total: 8.0 },
            &mut x,
            &mut sc,
        )
        .unwrap();
        assert_eq!(sc.stats.subproblems, 3);
        assert!(sc.stats.boxed_clamps >= 1);

        // Reset is a plain assignment.
        sc.stats = sea_observe::KernelCounters::default();
        assert!(sc.stats.is_empty());
    }

    #[test]
    fn quickselect_cost_model_is_linear() {
        let per_entry = operation_count_for(KernelKind::Quickselect, 1000) / 1000.0;
        assert!(
            (operation_count_for(KernelKind::Quickselect, 4000) / 4000.0 - per_entry).abs() < 1e-9
        );
        // The sort-scan model keeps its n log n term.
        assert!(
            operation_count_for(KernelKind::SortScan, 4000)
                > operation_count_for(KernelKind::Quickselect, 4000)
        );
    }

    /// Run both kernels on the same plain subproblem; panic on hard error.
    fn both_plain(
        q: &[f64],
        gamma: &[f64],
        shift: &[f64],
        mode: TotalMode,
    ) -> (
        (EquilibrationResult, Vec<f64>),
        (EquilibrationResult, Vec<f64>),
    ) {
        let n = q.len();
        let mut sc = EquilibrationScratch::new();
        let mut x_sort = vec![0.0; n];
        let r_sort = exact_equilibration_with(
            KernelKind::SortScan,
            q,
            gamma,
            shift,
            mode,
            &mut x_sort,
            &mut sc,
        )
        .unwrap();
        let mut x_qs = vec![0.0; n];
        let r_qs = exact_equilibration_with(
            KernelKind::Quickselect,
            q,
            gamma,
            shift,
            mode,
            &mut x_qs,
            &mut sc,
        )
        .unwrap();
        ((r_sort, x_sort), (r_qs, x_qs))
    }

    /// Run both kernels on the same boxed subproblem; panic on hard error.
    #[allow(clippy::too_many_arguments)]
    fn both_boxed(
        q: &[f64],
        gamma: &[f64],
        shift: &[f64],
        lo: &[f64],
        hi: &[f64],
        mode: TotalMode,
    ) -> (
        (EquilibrationResult, Vec<f64>),
        (EquilibrationResult, Vec<f64>),
    ) {
        let n = q.len();
        let mut sc = EquilibrationScratch::new();
        let mut x_sort = vec![0.0; n];
        let r_sort = exact_equilibration_boxed_with(
            KernelKind::SortScan,
            q,
            gamma,
            shift,
            lo,
            hi,
            mode,
            &mut x_sort,
            &mut sc,
        )
        .unwrap();
        let mut x_qs = vec![0.0; n];
        let r_qs = exact_equilibration_boxed_with(
            KernelKind::Quickselect,
            q,
            gamma,
            shift,
            lo,
            hi,
            mode,
            &mut x_qs,
            &mut sc,
        )
        .unwrap();
        ((r_sort, x_sort), (r_qs, x_qs))
    }

    #[test]
    fn quickselect_single_element_rows() {
        // Single-element subproblems exercise the trivial selection window.
        let ((r1, x1), (r2, x2)) =
            both_plain(&[3.0], &[0.7], &[0.2], TotalMode::Fixed { total: 5.0 });
        assert_eq!(x1, x2);
        assert!((r1.lambda - r2.lambda).abs() < 1e-12);
        assert!((x1[0] - 5.0).abs() < 1e-12);

        let mode = TotalMode::Elastic {
            alpha: 0.5,
            prior: 4.0,
            cross: 0.0,
        };
        let ((r1, x1), (r2, x2)) = both_plain(&[0.0], &[0.5], &[0.0], mode);
        assert_eq!(x1, x2);
        assert!((r1.lambda - 2.0).abs() < 1e-12);
        assert!((r2.lambda - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quickselect_tied_breakpoints() {
        // Every breakpoint identical: the selection loop must retire all
        // events in one partition round and agree with the sorted sweep.
        let q = [2.0; 6];
        let gamma = [1.0; 6];
        let shift = [0.0; 6];
        for total in [0.0, 3.0, 12.0, 24.0] {
            let ((r1, x1), (r2, x2)) = both_plain(&q, &gamma, &shift, TotalMode::Fixed { total });
            for j in 0..6 {
                assert!(
                    (x1[j] - x2[j]).abs() <= 1e-10 * (1.0 + x1[j].abs()),
                    "total={total} j={j}: {} vs {}",
                    x1[j],
                    x2[j]
                );
            }
            let sum: f64 = x2.iter().sum();
            assert!((sum - total).abs() <= 1e-9 * (1.0 + total));
            check_kkt(&q, &gamma, &shift, &x2, r2.lambda, 1e-9);
            let _ = r1;
        }
    }

    #[test]
    fn quickselect_nonpositive_total_flat_segment() {
        // total <= 0 forces x = 0 with λ pinned to the lowest breakpoint
        // segment; both kernels must pick multipliers that satisfy KKT.
        let q = [1.0, 2.0, 4.0];
        let gamma = [0.5, 2.0, 1.0];
        let shift = [0.3, -0.7, 0.1];
        let ((r1, x1), (r2, x2)) = both_plain(&q, &gamma, &shift, TotalMode::Fixed { total: 0.0 });
        assert_eq!(x1, vec![0.0; 3]);
        assert_eq!(x2, vec![0.0; 3]);
        check_kkt(&q, &gamma, &shift, &x1, r1.lambda, 1e-9);
        check_kkt(&q, &gamma, &shift, &x2, r2.lambda, 1e-9);
    }

    #[test]
    fn quickselect_near_degenerate_weights() {
        // Weights spanning ten orders of magnitude stress the accumulator
        // arithmetic shared by the two kernels.
        let q = [1.0, 2.0, 3.0, 4.0];
        let gamma = [1e-5, 1e5, 1.0, 1e-5];
        let shift = [0.0, 1.0, -1.0, 0.5];
        for total in [1.0, 10.0, 50.0] {
            let ((r1, x1), (r2, x2)) = both_plain(&q, &gamma, &shift, TotalMode::Fixed { total });
            assert!(
                (r1.lambda - r2.lambda).abs() <= 1e-10 * (1.0 + r1.lambda.abs()),
                "λ {} vs {}",
                r1.lambda,
                r2.lambda
            );
            for j in 0..4 {
                assert!((x1[j] - x2[j]).abs() <= 1e-10 * (1.0 + x1[j].abs()));
            }
        }
    }

    #[test]
    fn quickselect_boxed_all_entries_at_bounds() {
        let q = [1.0, 5.0, 2.0];
        let gamma = [1.0, 2.0, 0.5];
        let shift = [0.0, 0.1, -0.2];
        let lo = [0.5, 1.0, 1.5];
        let hi = [2.0, 3.0, 2.5];
        let slo: f64 = lo.iter().sum();
        let shi: f64 = hi.iter().sum();
        // total = Σlo pins every entry at its lower bound; total = Σhi at the
        // upper bound. Both sit on flat segments of the breakpoint function.
        for total in [slo, shi] {
            let ((r1, x1), (r2, x2)) =
                both_boxed(&q, &gamma, &shift, &lo, &hi, TotalMode::Fixed { total });
            for j in 0..3 {
                assert!(
                    (x1[j] - x2[j]).abs() <= 1e-10 * (1.0 + x1[j].abs()),
                    "total={total} j={j}: {} vs {}",
                    x1[j],
                    x2[j]
                );
            }
            let sum: f64 = x2.iter().sum();
            assert!((sum - total).abs() <= 1e-9 * (1.0 + total.abs()));
            let (_, _) = (r1, r2);
        }
    }

    #[test]
    fn quickselect_boxed_pinned_entries() {
        // lo == hi entries contribute two coincident events with opposite
        // slopes; their net effect must cancel identically.
        let q = [1.0, 2.0, 3.0];
        let gamma = [1.0, 1.0, 1.0];
        let shift = [0.0; 3];
        let lo = [1.5, 0.0, 2.0];
        let hi = [1.5, 4.0, 2.0];
        let ((_, x1), (r2, x2)) = both_boxed(
            &q,
            &gamma,
            &shift,
            &lo,
            &hi,
            TotalMode::Fixed { total: 6.0 },
        );
        assert!((x2[0] - 1.5).abs() < 1e-12 && (x2[2] - 2.0).abs() < 1e-12);
        assert!((x2[1] - 2.5).abs() < 1e-9);
        for j in 0..3 {
            assert!((x1[j] - x2[j]).abs() <= 1e-10 * (1.0 + x1[j].abs()));
        }
        let _ = r2;
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn fixed_matches_bisection(
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let q: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..10.0)).collect();
            let gamma: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..5.0)).collect();
            let shift: Vec<f64> = (0..n).map(|_| rng.random_range(-3.0..3.0)).collect();
            let total = rng.random_range(0.0..30.0);
            let mode = TotalMode::Fixed { total };
            let mut x = vec![0.0; n];
            let mut sc = EquilibrationScratch::new();
            let r = exact_equilibration(&q, &gamma, &shift, mode, &mut x, &mut sc).unwrap();
            let (lam_ref, x_ref) = bisect_reference(&q, &gamma, &shift, mode);
            // Feasibility.
            let sum: f64 = x.iter().sum();
            prop_assert!((sum - total).abs() <= 1e-8 * (1.0 + total.abs()), "sum {} vs {}", sum, total);
            // Multiplier and solution agreement (λ can be non-unique only in
            // degenerate all-zero cases; compare solutions instead).
            for j in 0..n {
                prop_assert!((x[j] - x_ref[j]).abs() <= 1e-5 * (1.0 + x_ref[j].abs()));
            }
            if total > 1e-9 {
                prop_assert!((r.lambda - lam_ref).abs() <= 1e-4 * (1.0 + lam_ref.abs()));
            }
            check_kkt(&q, &gamma, &shift, &x, r.lambda, 1e-6);
        }

        #[test]
        fn elastic_matches_bisection(
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let q: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..10.0)).collect();
            let gamma: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..5.0)).collect();
            let shift: Vec<f64> = (0..n).map(|_| rng.random_range(-3.0..3.0)).collect();
            let alpha = rng.random_range(0.05..5.0);
            let prior = rng.random_range(-5.0..30.0);
            let cross = rng.random_range(-2.0..2.0);
            let mode = TotalMode::Elastic { alpha, prior, cross };
            let mut x = vec![0.0; n];
            let mut sc = EquilibrationScratch::new();
            let r = exact_equilibration(&q, &gamma, &shift, mode, &mut x, &mut sc).unwrap();
            let (lam_ref, _x_ref) = bisect_reference(&q, &gamma, &shift, mode);
            prop_assert!((r.lambda - lam_ref).abs() <= 1e-5 * (1.0 + lam_ref.abs()));
            // Realized total equals the elastic stationarity value and the
            // entry sum simultaneously.
            let sum: f64 = x.iter().sum();
            prop_assert!((sum - r.total).abs() <= 1e-8 * (1.0 + r.total.abs()));
            let s_stat = prior - (r.lambda + cross) / (2.0 * alpha);
            prop_assert!((r.total - s_stat).abs() <= 1e-8 * (1.0 + s_stat.abs()));
            check_kkt(&q, &gamma, &shift, &x, r.lambda, 1e-6);
        }

        #[test]
        fn boxed_feasible_and_kkt(
            n in 1usize..30,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xB0C5);
            let q: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..10.0)).collect();
            let gamma: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..5.0)).collect();
            let shift: Vec<f64> = (0..n).map(|_| rng.random_range(-3.0..3.0)).collect();
            let lo: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..2.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|&l| l + rng.random_range(0.1..5.0)).collect();
            let slo: f64 = lo.iter().sum();
            let shi: f64 = hi.iter().sum();
            let total = rng.random_range(slo..=shi);
            let mut x = vec![0.0; n];
            let mut sc = EquilibrationScratch::new();
            let r = exact_equilibration_boxed(
                &q, &gamma, &shift, &lo, &hi,
                TotalMode::Fixed { total }, &mut x, &mut sc,
            ).unwrap();
            let sum: f64 = x.iter().sum();
            prop_assert!((sum - total).abs() <= 1e-6 * (1.0 + total.abs()), "sum {} vs total {}", sum, total);
            for j in 0..n {
                prop_assert!(x[j] >= lo[j] - 1e-9 && x[j] <= hi[j] + 1e-9);
                let grad = 2.0 * gamma[j] * (x[j] - q[j]) - shift[j] - r.lambda;
                if x[j] > lo[j] + 1e-7 && x[j] < hi[j] - 1e-7 {
                    prop_assert!(grad.abs() <= 1e-5 * (1.0 + grad.abs()));
                } else if x[j] <= lo[j] + 1e-7 {
                    prop_assert!(grad >= -1e-6 * (1.0 + gamma[j]));
                } else {
                    prop_assert!(grad <= 1e-6 * (1.0 + gamma[j]));
                }
            }
        }

        /// Differential test: the quickselect kernel must reproduce the
        /// sort-scan oracle on adversarial plain subproblems. Half the cases
        /// snap inputs to a coarse grid so breakpoints collide.
        #[test]
        fn quickselect_differential_plain(
            n in 1usize..60,
            seed in 0u64..1500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x5E1EC7);
            let tie_grid = seed % 2 == 0;
            let snap = |v: f64| if tie_grid { (v * 2.0).round() / 2.0 } else { v };
            let q: Vec<f64> = (0..n).map(|_| snap(rng.random_range(-5.0..10.0))).collect();
            let gamma: Vec<f64> = (0..n)
                .map(|_| {
                    // Occasionally near-degenerate weights.
                    if rng.random_range(0.0..1.0) < 0.1 {
                        rng.random_range(1e-6..1e-4)
                    } else {
                        rng.random_range(0.05..5.0)
                    }
                })
                .collect();
            let shift: Vec<f64> = (0..n).map(|_| snap(rng.random_range(-3.0..3.0))).collect();
            // Mix binding (small/zero totals) with slack (large) constraints.
            let total = match seed % 4 {
                0 => 0.0,
                1 => rng.random_range(0.0..2.0),
                _ => rng.random_range(0.0..40.0),
            };
            let mode = TotalMode::Fixed { total };
            let ((r1, x1), (r2, x2)) = both_plain(&q, &gamma, &shift, mode);
            for j in 0..n {
                prop_assert!(
                    (x1[j] - x2[j]).abs() <= 1e-10 * (1.0 + x1[j].abs()),
                    "x[{}]: sortscan {} vs quickselect {}", j, x1[j], x2[j]
                );
            }
            // λ is unique whenever some entry is strictly active.
            if r1.active > 0 {
                prop_assert!(
                    (r1.lambda - r2.lambda).abs() <= 1e-9 * (1.0 + r1.lambda.abs()),
                    "λ: {} vs {}", r1.lambda, r2.lambda
                );
            }
            check_kkt(&q, &gamma, &shift, &x2, r2.lambda, 1e-6);
        }

        /// Elastic-mode differential: λ is always unique here (the elastic
        /// term adds strictly positive slope), so both λ and x must agree.
        #[test]
        fn quickselect_differential_elastic(
            n in 1usize..60,
            seed in 0u64..1500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xE1A57C);
            let tie_grid = seed % 2 == 0;
            let snap = |v: f64| if tie_grid { v.round() } else { v };
            let q: Vec<f64> = (0..n).map(|_| snap(rng.random_range(-5.0..10.0))).collect();
            let gamma: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..5.0)).collect();
            let shift: Vec<f64> = (0..n).map(|_| snap(rng.random_range(-3.0..3.0))).collect();
            let mode = TotalMode::Elastic {
                alpha: rng.random_range(0.05..5.0),
                prior: rng.random_range(-5.0..30.0),
                cross: rng.random_range(-2.0..2.0),
            };
            let ((r1, x1), (r2, x2)) = both_plain(&q, &gamma, &shift, mode);
            prop_assert!(
                (r1.lambda - r2.lambda).abs() <= 1e-9 * (1.0 + r1.lambda.abs()),
                "λ: {} vs {}", r1.lambda, r2.lambda
            );
            prop_assert!((r1.total - r2.total).abs() <= 1e-9 * (1.0 + r1.total.abs()));
            for j in 0..n {
                prop_assert!(
                    (x1[j] - x2[j]).abs() <= 1e-10 * (1.0 + x1[j].abs()),
                    "x[{}]: {} vs {}", j, x1[j], x2[j]
                );
            }
        }

        /// Boxed differential: compare solutions (λ may legitimately differ
        /// on flat tie segments where any multiplier in an interval is a
        /// valid KKT certificate — x is unique, λ is not).
        #[test]
        fn quickselect_differential_boxed(
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xB0CED);
            let tie_grid = seed % 2 == 0;
            let snap = |v: f64| if tie_grid { (v * 2.0).round() / 2.0 } else { v };
            let q: Vec<f64> = (0..n).map(|_| snap(rng.random_range(-5.0..10.0))).collect();
            let gamma: Vec<f64> = (0..n).map(|_| rng.random_range(0.05..5.0)).collect();
            let shift: Vec<f64> = (0..n).map(|_| snap(rng.random_range(-3.0..3.0))).collect();
            let lo: Vec<f64> = (0..n).map(|_| snap(rng.random_range(0.0..2.0))).collect();
            let hi: Vec<f64> = lo
                .iter()
                .map(|&l| {
                    // Some entries pinned (lo == hi), most with real slack.
                    if rng.random_range(0.0..1.0) < 0.15 {
                        l
                    } else {
                        l + snap(rng.random_range(0.1..5.0)).max(0.1)
                    }
                })
                .collect();
            let slo: f64 = lo.iter().sum();
            let shi: f64 = hi.iter().sum();
            // Include the exact endpoints: all-at-lower / all-at-upper rows.
            let total = match seed % 5 {
                0 => slo,
                1 => shi,
                _ => rng.random_range(slo..=shi),
            };
            let mode = TotalMode::Fixed { total };
            let ((_r1, x1), (r2, x2)) = both_boxed(&q, &gamma, &shift, &lo, &hi, mode);
            for j in 0..n {
                prop_assert!(
                    (x1[j] - x2[j]).abs() <= 1e-10 * (1.0 + x1[j].abs()),
                    "x[{}]: sortscan {} vs quickselect {}", j, x1[j], x2[j]
                );
                prop_assert!(x2[j] >= lo[j] - 1e-9 && x2[j] <= hi[j] + 1e-9);
            }
            let sum: f64 = x2.iter().sum();
            prop_assert!((sum - total).abs() <= 1e-6 * (1.0 + total.abs()));
            let _ = r2;
        }
    }
}
