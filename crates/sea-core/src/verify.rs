//! Independent optimality verification of computed solutions.
//!
//! [`verify_solution`] checks, from first principles, everything that makes
//! a [`Solution`] the optimum of its [`DiagonalProblem`]: primal
//! feasibility, the KKT stationarity/sign conditions (paper eq. 20–22),
//! total-stationarity for elastic/balanced classes, and the duality gap.
//! Downstream users can call it after any solve to obtain a machine-checked
//! certificate; the test suites use it as a one-stop oracle.

use crate::dual;
use crate::problem::{DiagonalProblem, Residuals, TotalSpec};
use crate::solver::Solution;
use crate::storage::{RowView, Storage};

/// A first-principles optimality report.
#[derive(Debug, Clone, Copy)]
pub struct KktReport {
    /// Worst stationarity violation `|2γᵢⱼ(xᵢⱼ−x⁰ᵢⱼ) − λᵢ − μⱼ|` over
    /// entries with `xᵢⱼ > 0` (relative to the gradient scale).
    pub max_stationarity: f64,
    /// Worst sign violation `max(0, λᵢ + μⱼ − 2γᵢⱼ(xᵢⱼ−x⁰ᵢⱼ))` over
    /// entries at zero (a positive value means the zero entry wants to be
    /// positive).
    pub max_sign_violation: f64,
    /// Worst total-stationarity violation (eq. 21/22/39): 0 for fixed
    /// totals.
    pub max_total_stationarity: f64,
    /// Constraint residuals.
    pub residuals: Residuals,
    /// `objective − ζ(λ,μ) ≥ 0`; approaches 0 at the optimum.
    pub duality_gap: f64,
    /// Primal objective value at the verified point — the natural scale
    /// for a relative duality-gap check on large problems.
    pub objective: f64,
    /// Smallest entry (must be ≥ 0).
    pub min_entry: f64,
}

/// How [`KktReport::is_optimal_with`] scales the duality gap before
/// comparing it with `tol`.
///
/// The stationarity and residual checks are always relative (to the
/// gradient and total scales); only the gap check has two useful scales.
/// On large-scale problems the objective grows with the problem, so an
/// absolute gap bound that is meaningful at `m = n = 10` is unreachably
/// tight at `m = n = 10⁴` — use [`GapCheck::RelativeToObjective`] there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapCheck {
    /// `|gap| ≤ tol · max(1, |gap|)` — an absolute bound with a unit
    /// floor (the historical behavior of [`KktReport::is_optimal`]).
    Absolute,
    /// `|gap| ≤ tol · max(1, |objective|)` — the gap measured against
    /// the objective's own magnitude.
    RelativeToObjective,
}

impl KktReport {
    /// True when every check is within `tol` (scaled checks) — a compact
    /// pass/fail for assertions. The duality gap is checked absolutely
    /// ([`GapCheck::Absolute`]); see [`Self::is_optimal_with`] for the
    /// relative variant suited to large-scale objectives.
    pub fn is_optimal(&self, tol: f64) -> bool {
        self.is_optimal_with(tol, GapCheck::Absolute)
    }

    /// [`Self::is_optimal`] with an explicit duality-gap scaling policy.
    pub fn is_optimal_with(&self, tol: f64, gap: GapCheck) -> bool {
        self.max_stationarity <= tol
            && self.max_sign_violation <= tol
            && self.max_total_stationarity <= tol
            && self.residuals.rel_row_inf <= tol
            && self.min_entry >= -tol
            && self.duality_gap.abs() <= tol * self.duality_gap_scale(gap)
    }

    fn duality_gap_scale(&self, gap: GapCheck) -> f64 {
        match gap {
            GapCheck::Absolute => 1.0_f64.max(self.duality_gap.abs()),
            GapCheck::RelativeToObjective => 1.0_f64.max(self.objective.abs()),
        }
    }
}

/// Verify `sol` against `p` from first principles.
///
/// ```
/// use sea_core::{solve_diagonal, verify_solution, DiagonalProblem, SeaOptions, TotalSpec};
/// use sea_linalg::DenseMatrix;
///
/// let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
/// let p = DiagonalProblem::new(
///     x0,
///     gamma,
///     TotalSpec::Fixed { s0: vec![4.0, 6.0], d0: vec![5.0, 5.0] },
/// ).unwrap();
/// let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
/// let report = verify_solution(&p, &sol);
/// assert!(report.is_optimal(1e-6));
/// ```
pub fn verify_solution<S: Storage>(p: &DiagonalProblem<S>, sol: &Solution<S>) -> KktReport {
    let (m, n) = (p.m(), p.n());
    let x0 = p.x0();
    let gamma = p.gamma();

    // Gradient scale for relative stationarity.
    let mut grad_scale: f64 = 1.0;
    for i in 0..m {
        grad_scale = grad_scale.max(sol.lambda[i].abs());
    }
    for j in 0..n {
        grad_scale = grad_scale.max(sol.mu[j].abs());
    }

    let mut max_stationarity: f64 = 0.0;
    let mut max_sign_violation: f64 = 0.0;
    let mut min_entry = f64::INFINITY;
    let entry_scale = x0
        .values()
        .iter()
        .fold(1e-12_f64, |acc, &v| acc.max(v.abs()));
    for i in 0..m {
        match (x0.row_view(i), gamma.row_view(i), sol.x.row_view(i)) {
            (RowView::Dense(x0r), RowView::Dense(gr), RowView::Dense(xr)) => {
                for j in 0..n {
                    min_entry = min_entry.min(xr[j]);
                    // Structural zeros carry no KKT condition.
                    if p.support().is_some() && x0r[j] == 0.0 {
                        continue;
                    }
                    let grad = 2.0 * gr[j] * (xr[j] - x0r[j]) - sol.lambda[i] - sol.mu[j];
                    if xr[j] > 1e-10 * entry_scale {
                        max_stationarity = max_stationarity.max(grad.abs() / grad_scale);
                    } else {
                        max_sign_violation = max_sign_violation.max((-grad).max(0.0) / grad_scale);
                    }
                }
            }
            (
                RowView::Indexed { idx, vals: x0v },
                RowView::Indexed { vals: gv, .. },
                RowView::Indexed { vals: xv, .. },
            ) => {
                // Stored entries are the variables; missing entries are
                // structural zeros and carry no KKT condition.
                for t in 0..idx.len() {
                    let j = idx[t] as usize;
                    min_entry = min_entry.min(xv[t]);
                    let grad = 2.0 * gv[t] * (xv[t] - x0v[t]) - sol.lambda[i] - sol.mu[j];
                    if xv[t] > 1e-10 * entry_scale {
                        max_stationarity = max_stationarity.max(grad.abs() / grad_scale);
                    } else {
                        max_sign_violation = max_sign_violation.max((-grad).max(0.0) / grad_scale);
                    }
                }
            }
            _ => debug_assert!(false, "mismatched row views in verify_solution"),
        }
    }

    let mut max_total_stationarity: f64 = 0.0;
    match p.totals() {
        TotalSpec::Fixed { .. } => {}
        TotalSpec::Elastic {
            alpha,
            s0,
            beta,
            d0,
        } => {
            for i in 0..m {
                let expect = 2.0 * alpha[i] * (s0[i] - sol.s[i]);
                max_total_stationarity =
                    max_total_stationarity.max((sol.lambda[i] - expect).abs() / grad_scale);
            }
            for j in 0..n {
                let expect = 2.0 * beta[j] * (d0[j] - sol.d[j]);
                max_total_stationarity =
                    max_total_stationarity.max((sol.mu[j] - expect).abs() / grad_scale);
            }
        }
        TotalSpec::Balanced { alpha, s0 } => {
            for i in 0..n {
                let expect = 2.0 * alpha[i] * (s0[i] - sol.s[i]);
                max_total_stationarity = max_total_stationarity
                    .max((sol.lambda[i] + sol.mu[i] - expect).abs() / grad_scale);
            }
        }
    }

    let residuals = p.residuals(&sol.x, &sol.s, &sol.d);
    let objective = p.objective(&sol.x, &sol.s, &sol.d);
    let zeta = dual::dual_value(p, &sol.lambda, &sol.mu);

    KktReport {
        max_stationarity,
        max_sign_violation,
        max_total_stationarity,
        residuals,
        duality_gap: objective - zeta,
        objective,
        min_entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ZeroPolicy;
    use crate::solver::{solve_diagonal, SeaOptions};
    use sea_linalg::DenseMatrix;

    fn solve(p: &DiagonalProblem) -> Solution {
        solve_diagonal(p, &SeaOptions::with_epsilon(1e-12)).unwrap()
    }

    #[test]
    fn verifies_fixed_solution() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        gamma.set(0, 0, 2.5);
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let report = verify_solution(&p, &solve(&p));
        assert!(report.is_optimal(1e-6), "{report:?}");
    }

    #[test]
    fn verifies_elastic_and_balanced_solutions() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let elastic = DiagonalProblem::new(
            x0.clone(),
            gamma.clone(),
            TotalSpec::Elastic {
                alpha: vec![1.0; 2],
                s0: vec![4.0, 8.0],
                beta: vec![1.0; 2],
                d0: vec![6.0, 6.0],
            },
        )
        .unwrap();
        let report = verify_solution(&elastic, &solve(&elastic));
        assert!(report.is_optimal(1e-6), "elastic: {report:?}");

        let balanced = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Balanced {
                alpha: vec![1.0; 2],
                s0: vec![4.0, 7.0],
            },
        )
        .unwrap();
        let report = verify_solution(&balanced, &solve(&balanced));
        assert!(report.is_optimal(1e-6), "balanced: {report:?}");
    }

    #[test]
    fn flags_a_corrupted_solution() {
        let x0 = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = DiagonalProblem::new(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![4.0, 6.0],
                d0: vec![5.0, 5.0],
            },
        )
        .unwrap();
        let mut sol = solve(&p);
        sol.x.set(0, 0, sol.x.get(0, 0) + 0.5);
        let report = verify_solution(&p, &sol);
        assert!(!report.is_optimal(1e-6));
        assert!(report.residuals.row_inf > 0.1);
    }

    #[test]
    fn gap_check_modes_disagree_on_large_objectives() {
        // The PR-6 gotcha, pinned: a solve whose objective is ~1e9 can
        // carry a duality gap that is absolutely large (handfuls of
        // units) yet relatively at machine precision. The absolute mode
        // must reject it; the relative mode must accept it.
        let report = KktReport {
            max_stationarity: 1e-10,
            max_sign_violation: 0.0,
            max_total_stationarity: 0.0,
            residuals: Residuals {
                row_inf: 1e-7,
                col_inf: 1e-7,
                rel_row_inf: 1e-10,
                norm2: 1e-7,
            },
            duality_gap: 3.0,
            objective: 1.5e9,
            min_entry: 0.0,
        };
        assert!(!report.is_optimal(1e-6), "absolute must reject gap 3.0");
        assert!(
            !report.is_optimal_with(1e-6, GapCheck::Absolute),
            "explicit absolute must match is_optimal"
        );
        assert!(
            report.is_optimal_with(1e-6, GapCheck::RelativeToObjective),
            "gap 3.0 against objective 1.5e9 is 2e-9 relative"
        );

        // And the relative mode is not a free pass: a relatively large
        // gap still fails it.
        let bad = KktReport {
            duality_gap: 1.5e4,
            ..report
        };
        assert!(!bad.is_optimal_with(1e-6, GapCheck::RelativeToObjective));
    }

    #[test]
    fn large_scale_fixture_passes_the_relative_gap_check() {
        // A solved fixture with entries ~1e6: both modes agree here
        // (the gap converges to ~0 absolutely too), and the report's
        // objective field matches the problem's own objective.
        let m = 20;
        let n = 30;
        let mut x0 = DenseMatrix::zeros(m, n).unwrap();
        let mut gamma = DenseMatrix::zeros(m, n).unwrap();
        for i in 0..m {
            for j in 0..n {
                let v = 1e6 * (1.0 + ((i * n + j) % 17) as f64);
                x0.set(i, j, v);
                gamma.set(i, j, 1.0 / v); // chi-square weights
            }
        }
        // Perturb the margins by ~3% so the solve does real work.
        let s0: Vec<f64> = x0.row_sums().iter().map(|&s| s * 1.03).collect();
        let mut d0 = x0.col_sums();
        let excess: f64 = s0.iter().sum::<f64>() - d0.iter().sum::<f64>();
        for d in &mut d0 {
            *d += excess / n as f64;
        }
        let p = DiagonalProblem::new(x0, gamma, TotalSpec::Fixed { s0, d0 }).unwrap();
        let sol = solve_diagonal(&p, &SeaOptions::with_epsilon(1e-12)).unwrap();
        assert!(sol.stats.converged);
        let report = verify_solution(&p, &sol);
        assert_eq!(
            report.objective,
            p.objective(&sol.x, &sol.s, &sol.d),
            "report must expose the primal objective it verified"
        );
        assert!(report.objective > 1e5, "fixture should be large-scale");
        assert!(
            report.is_optimal_with(1e-6, GapCheck::RelativeToObjective),
            "{report:?}"
        );
    }

    #[test]
    fn skips_structural_zeros() {
        let x0 = DenseMatrix::from_rows(&[vec![0.0, 5.0], vec![3.0, 2.0]]).unwrap();
        let gamma = DenseMatrix::filled(2, 2, 1.0).unwrap();
        let p = DiagonalProblem::with_zero_policy(
            x0,
            gamma,
            TotalSpec::Fixed {
                s0: vec![6.0, 6.0],
                d0: vec![4.0, 8.0],
            },
            ZeroPolicy::Structural,
        )
        .unwrap();
        let report = verify_solution(&p, &solve(&p));
        assert!(report.is_optimal(1e-6), "{report:?}");
    }
}
